//! The prover's obligation ledger: a crash-safe record of per-obligation
//! outcomes, so a killed or deadline-tripped campaign never re-proves what
//! it already discharged.
//!
//! Each entry is `(invariant, obligation, StepReport)` — the complete
//! report, not just the verdict, so a resumed run can splice cached
//! results into its `ProofReport` and end up bit-identical to an
//! uninterrupted run (durations aside, which no comparison inspects).
//! Only [`CaseOutcome::Proved`] entries are reused on resume: open,
//! faulted, and budget-skipped obligations are always re-run, because
//! their outcome could change once the original stop condition is gone.
//!
//! The ledger accumulates across the whole campaign (all 18 TLS
//! properties share one file) and is written through the
//! [`equitls_persist`] snapshot layer: versioned, CRC-checksummed,
//! atomically replaced at obligation boundaries.

use crate::report::{CaseOutcome, Decision, OpenCase, ProverMetrics, StepReport};
use equitls_obs::sink::Obs;
use equitls_persist::codec::{Reader, Writer};
use equitls_persist::{read_snapshot, write_snapshot, PersistError, SnapshotKind};
use equitls_rewrite::budget::WorkerFault;
use equitls_rewrite::engine::RewriteStats;
use std::path::Path;
use std::time::Duration;

/// One recorded obligation outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct LedgerEntry {
    /// The invariant being proved when the obligation ran.
    pub invariant: String,
    /// The obligation name (`init`, an action name, or `case-analysis`).
    pub action: String,
    /// The complete report the obligation produced.
    pub report: StepReport,
}

/// The obligation ledger: lookup by `(invariant, action)`, insert-or-
/// replace on record, serialized through the snapshot layer.
#[derive(Debug, Clone, Default)]
pub struct Ledger {
    entries: Vec<LedgerEntry>,
}

impl Ledger {
    /// An empty ledger.
    pub fn new() -> Self {
        Ledger::default()
    }

    /// Number of recorded obligations.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The recorded report for `(invariant, action)`, if any.
    pub fn lookup(&self, invariant: &str, action: &str) -> Option<&StepReport> {
        self.entries
            .iter()
            .find(|e| e.invariant == invariant && e.action == action)
            .map(|e| &e.report)
    }

    /// Record (or replace) the report for `(invariant, action)`.
    pub fn record(&mut self, invariant: &str, action: &str, report: StepReport) {
        if let Some(entry) = self
            .entries
            .iter_mut()
            .find(|e| e.invariant == invariant && e.action == action)
        {
            entry.report = report;
        } else {
            self.entries.push(LedgerEntry {
                invariant: invariant.to_string(),
                action: action.to_string(),
                report,
            });
        }
    }

    /// Drop every entry recorded for `invariant` (a fresh, non-resumed
    /// run recomputes the invariant from scratch while keeping other
    /// invariants' entries in the shared campaign file).
    pub fn clear_invariant(&mut self, invariant: &str) {
        self.entries.retain(|e| e.invariant != invariant);
    }

    /// Load a ledger from the snapshot at `path`, validating magic,
    /// version, kind, length, and checksum before decoding.
    pub fn load(path: &Path, obs: &Obs) -> Result<Ledger, PersistError> {
        let (_meta, payload) = read_snapshot(path, SnapshotKind::ProverLedger, obs)?;
        Ledger::from_payload(&payload)
    }

    /// Atomically write the ledger as a snapshot at `path`.
    pub fn save(&self, path: &Path, obs: &Obs) -> Result<(), PersistError> {
        write_snapshot(path, SnapshotKind::ProverLedger, &self.to_payload(), obs)?;
        Ok(())
    }

    /// Serialize to a snapshot payload.
    pub fn to_payload(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.usize(self.entries.len());
        for entry in &self.entries {
            w.str(&entry.invariant);
            w.str(&entry.action);
            put_report(&mut w, &entry.report);
        }
        w.into_bytes()
    }

    /// Decode a snapshot payload, rejecting trailing bytes and malformed
    /// tags with typed errors.
    pub fn from_payload(payload: &[u8]) -> Result<Ledger, PersistError> {
        let mut r = Reader::new(payload);
        let mut entries = Vec::new();
        for _ in 0..r.seq_len(16)? {
            let invariant = r.str()?;
            let action = r.str()?;
            let report = get_report(&mut r)?;
            entries.push(LedgerEntry {
                invariant,
                action,
                report,
            });
        }
        if !r.is_empty() {
            return Err(PersistError::Malformed(format!(
                "{} trailing bytes after ledger",
                r.remaining()
            )));
        }
        Ok(Ledger { entries })
    }
}

fn put_report(w: &mut Writer, report: &StepReport) {
    w.str(&report.action);
    match &report.outcome {
        CaseOutcome::Proved => w.u8(0),
        CaseOutcome::Open(cases) => {
            w.u8(1);
            w.usize(cases.len());
            for case in cases {
                w.usize(case.decisions.len());
                for d in &case.decisions {
                    w.str(d);
                }
                w.str(&case.residual);
            }
        }
        CaseOutcome::Fault(fault) => {
            w.u8(2);
            w.str(&fault.site);
            w.str(&fault.message);
        }
    }
    let m = &report.metrics;
    w.usize(m.passages);
    w.usize(m.splits);
    w.u64(m.rewrites);
    w.usize(m.max_depth);
    w.usize(m.proved);
    w.usize(m.vacuous);
    w.usize(m.open);
    let s = &report.rewrite_stats;
    w.u64(s.rewrites);
    w.u64(s.cache_hits);
    w.u64(s.cache_misses);
    w.u64(s.bool_normalizations);
    w.u64(s.eq_decisions);
    w.u64(s.blocked_conditions);
    w.u64(s.cache_evictions);
    w.u64(report.duration.as_micros().min(u128::from(u64::MAX)) as u64);
    w.usize(report.scores.len());
    for trail in &report.scores {
        w.usize(trail.len());
        for decision in trail {
            match decision {
                Decision::CondTrue { cond } => {
                    w.u8(0);
                    w.str(cond);
                }
                Decision::CondFalse { cond } => {
                    w.u8(1);
                    w.str(cond);
                }
                Decision::Atom { atom, value } => {
                    w.u8(2);
                    w.str(atom);
                    w.bool(*value);
                }
            }
        }
    }
}

fn get_report(r: &mut Reader) -> Result<StepReport, PersistError> {
    let action = r.str()?;
    let outcome = match r.u8()? {
        0 => CaseOutcome::Proved,
        1 => {
            let mut cases = Vec::new();
            for _ in 0..r.seq_len(16)? {
                let mut decisions = Vec::new();
                for _ in 0..r.seq_len(8)? {
                    decisions.push(r.str()?);
                }
                let residual = r.str()?;
                cases.push(OpenCase {
                    decisions,
                    residual,
                });
            }
            CaseOutcome::Open(cases)
        }
        2 => CaseOutcome::Fault(WorkerFault {
            site: r.str()?,
            message: r.str()?,
        }),
        t => return Err(PersistError::Malformed(format!("outcome tag {t}"))),
    };
    let metrics = ProverMetrics {
        passages: r.usize()?,
        splits: r.usize()?,
        rewrites: r.u64()?,
        max_depth: r.usize()?,
        proved: r.usize()?,
        vacuous: r.usize()?,
        open: r.usize()?,
    };
    let rewrite_stats = RewriteStats {
        rewrites: r.u64()?,
        cache_hits: r.u64()?,
        cache_misses: r.u64()?,
        bool_normalizations: r.u64()?,
        eq_decisions: r.u64()?,
        blocked_conditions: r.u64()?,
        cache_evictions: r.u64()?,
    };
    let duration = Duration::from_micros(r.u64()?);
    let mut scores = Vec::new();
    for _ in 0..r.seq_len(8)? {
        let mut trail = Vec::new();
        for _ in 0..r.seq_len(1)? {
            trail.push(match r.u8()? {
                0 => Decision::CondTrue { cond: r.str()? },
                1 => Decision::CondFalse { cond: r.str()? },
                2 => Decision::Atom {
                    atom: r.str()?,
                    value: r.bool()?,
                },
                t => return Err(PersistError::Malformed(format!("decision tag {t}"))),
            });
        }
        scores.push(trail);
    }
    Ok(StepReport {
        action,
        outcome,
        metrics,
        rewrite_stats,
        duration,
        scores,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report(action: &str, outcome: CaseOutcome) -> StepReport {
        StepReport {
            action: action.to_string(),
            outcome,
            metrics: ProverMetrics {
                passages: 7,
                splits: 3,
                rewrites: 1234,
                max_depth: 2,
                proved: 6,
                vacuous: 0,
                open: 1,
            },
            rewrite_stats: RewriteStats {
                rewrites: 1234,
                cache_hits: 55,
                cache_misses: 44,
                bool_normalizations: 33,
                eq_decisions: 22,
                blocked_conditions: 11,
                cache_evictions: 1,
            },
            duration: Duration::from_micros(98_765),
            scores: vec![vec![
                Decision::CondTrue {
                    cond: "c?(m)".into(),
                },
                Decision::Atom {
                    atom: "b1 = intruder".into(),
                    value: false,
                },
            ]],
        }
    }

    #[test]
    fn ledger_roundtrips_every_outcome_shape() {
        let mut ledger = Ledger::new();
        ledger.record("inv1", "init", sample_report("init", CaseOutcome::Proved));
        ledger.record(
            "inv1",
            "kexch",
            sample_report(
                "kexch",
                CaseOutcome::Open(vec![OpenCase {
                    decisions: vec!["assume (x) = true".into()],
                    residual: "residual goal".into(),
                }]),
            ),
        );
        ledger.record(
            "inv2",
            "chello",
            sample_report(
                "chello",
                CaseOutcome::Fault(WorkerFault {
                    site: "obligation:chello".into(),
                    message: "injected fault".into(),
                }),
            ),
        );
        let back = Ledger::from_payload(&ledger.to_payload()).expect("decodes");
        assert_eq!(back.len(), 3);
        for entry in &ledger.entries {
            let report = back
                .lookup(&entry.invariant, &entry.action)
                .expect("entry survives");
            assert_eq!(report, &entry.report);
        }
    }

    #[test]
    fn record_replaces_and_clear_scopes_to_one_invariant() {
        let mut ledger = Ledger::new();
        ledger.record("inv1", "init", sample_report("init", CaseOutcome::Proved));
        ledger.record("inv2", "init", sample_report("init", CaseOutcome::Proved));
        let updated = sample_report(
            "init",
            CaseOutcome::Open(vec![OpenCase {
                decisions: Vec::new(),
                residual: "later".into(),
            }]),
        );
        ledger.record("inv1", "init", updated.clone());
        assert_eq!(ledger.len(), 2, "record replaces, not duplicates");
        assert_eq!(ledger.lookup("inv1", "init"), Some(&updated));
        ledger.clear_invariant("inv1");
        assert_eq!(ledger.len(), 1);
        assert!(ledger.lookup("inv1", "init").is_none());
        assert!(ledger.lookup("inv2", "init").is_some());
    }

    #[test]
    fn save_and_load_through_the_snapshot_layer() {
        let path = std::env::temp_dir().join(format!(
            "equitls_ledger_roundtrip_{}.snap",
            std::process::id()
        ));
        let mut ledger = Ledger::new();
        ledger.record("inv1", "init", sample_report("init", CaseOutcome::Proved));
        let obs = Obs::noop();
        ledger.save(&path, &obs).expect("saves");
        let back = Ledger::load(&path, &obs).expect("loads");
        assert_eq!(back.len(), 1);
        assert!(back.lookup("inv1", "init").is_some());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn malformed_payloads_are_typed_errors() {
        assert!(Ledger::from_payload(&[1, 2, 3]).is_err());
        let mut ledger = Ledger::new();
        ledger.record("inv1", "init", sample_report("init", CaseOutcome::Proved));
        let mut payload = ledger.to_payload();
        payload.push(0xAA);
        assert!(matches!(
            Ledger::from_payload(&payload),
            Err(PersistError::Malformed(_))
        ));
    }
}
