//! Observational transition systems (§2.2 of the paper).
//!
//! An OTS `S = ⟨O, I, T⟩` consists of observers, initial states, and
//! conditional transitions. In the CafeOBJ encoding (§2.3):
//!
//! * the state space `Υ` is a hidden sort (`Protocol`),
//! * each observer `o` is an observation operator (`bop nw : Protocol ->
//!   Network`),
//! * each transition `τ` is an action operator (`bop chello : Protocol
//!   Prin Prin Rand ListOfChoices -> Protocol`) whose behaviour is given
//!   by equations over the observers, guarded by its effective condition.
//!
//! [`Ots`] records that structure over an `equitls_spec::spec::Spec`; the
//! equations themselves live in the spec's rule base.

use crate::error::CoreError;
use equitls_kernel::prelude::*;
use equitls_spec::spec::Spec;

/// An observer: an observation operator whose first argument is the state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Observer {
    /// Operator id in the signature.
    pub op: OpId,
    /// Operator name, e.g. `"nw"`.
    pub name: String,
    /// Parameter sorts after the state argument (e.g. `ss` takes
    /// `Prin Prin Sid`).
    pub params: Vec<SortId>,
}

/// A transition: an action operator whose first argument is the state and
/// whose result is the state sort.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Action {
    /// Operator id in the signature.
    pub op: OpId,
    /// Operator name, e.g. `"chello"` or `"fakeSfin2"`.
    pub name: String,
    /// Parameter sorts after the state argument.
    pub params: Vec<SortId>,
}

/// An OTS over a specification.
#[derive(Debug, Clone)]
pub struct Ots {
    /// The hidden state sort (`Protocol`).
    pub state_sort: SortId,
    /// The initial-state constant (`init`).
    pub init: TermId,
    /// Declared observers.
    pub observers: Vec<Observer>,
    /// Declared transitions, in declaration order.
    pub actions: Vec<Action>,
}

impl Ots {
    /// Collect the OTS structure from a specification.
    ///
    /// Every operator with [`equitls_kernel::op::OpKind::Observer`] whose
    /// first argument is `state_sort` becomes an observer; every
    /// [`equitls_kernel::op::OpKind::Action`] operator of shape
    /// `state_sort × params… → state_sort` becomes a transition. `init`
    /// must be a declared constant of the state sort.
    ///
    /// # Errors
    ///
    /// [`CoreError::MalformedOts`] when `init` is missing or an operator
    /// has an unexpected shape.
    pub fn from_spec(
        spec: &mut Spec,
        state_sort_name: &str,
        init_name: &str,
    ) -> Result<Self, CoreError> {
        let state_sort = spec.sort_id(state_sort_name)?;
        let sig = spec.store().signature();
        let mut observers = Vec::new();
        let mut actions = Vec::new();
        for (op, decl) in sig.ops() {
            match decl.attrs.kind {
                equitls_kernel::op::OpKind::Observer => {
                    if decl.args.first() != Some(&state_sort) {
                        return Err(CoreError::MalformedOts(format!(
                            "observer `{}` does not take the state as first argument",
                            decl.name
                        )));
                    }
                    observers.push(Observer {
                        op,
                        name: decl.name.clone(),
                        params: decl.args[1..].to_vec(),
                    });
                }
                equitls_kernel::op::OpKind::Action => {
                    if decl.args.first() != Some(&state_sort) || decl.result != state_sort {
                        return Err(CoreError::MalformedOts(format!(
                            "action `{}` is not of shape {} × … → {}",
                            decl.name, state_sort_name, state_sort_name
                        )));
                    }
                    actions.push(Action {
                        op,
                        name: decl.name.clone(),
                        params: decl.args[1..].to_vec(),
                    });
                }
                _ => {}
            }
        }
        let init_op = sig
            .ops_by_name(init_name)
            .iter()
            .copied()
            .find(|&id| {
                let d = sig.op(id);
                d.is_constant() && d.result == state_sort
            })
            .ok_or_else(|| {
                CoreError::MalformedOts(format!(
                    "initial state constant `{init_name}` of sort {state_sort_name} not declared"
                ))
            })?;
        let init = spec.store_mut().constant(init_op);
        Ok(Ots {
            state_sort,
            init,
            observers,
            actions,
        })
    }

    /// Find an action by name.
    pub fn action(&self, name: &str) -> Option<&Action> {
        self.actions.iter().find(|a| a.name == name)
    }

    /// Find an observer by name.
    pub fn observer(&self, name: &str) -> Option<&Observer> {
        self.observers.iter().find(|o| o.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A two-counter machine: observers `cnt`, actions `inc`/`reset`.
    fn counter_spec() -> Spec {
        let mut spec = Spec::new().unwrap();
        spec.begin_module("COUNTER");
        spec.visible_sort("Nat").unwrap();
        spec.hidden_sort("Sys").unwrap();
        spec.constructor("z", &[], "Nat").unwrap();
        spec.constructor("s", &["Nat"], "Nat").unwrap();
        spec.op("init", &[], "Sys", OpAttrs::defined()).unwrap();
        spec.observer("cnt", &["Sys"], "Nat").unwrap();
        spec.action("inc", &["Sys"], "Sys").unwrap();
        spec.action("reset", &["Sys"], "Sys").unwrap();
        // cnt(init) = z ; cnt(inc(S)) = s(cnt(S)) ; cnt(reset(S)) = z
        let init = spec.parse_term("init").unwrap();
        let cnt_init = spec.app("cnt", &[init]).unwrap();
        let z = spec.parse_term("z").unwrap();
        spec.eq("cnt-init", cnt_init, z).unwrap();
        let sv = spec.var("S", "Sys").unwrap();
        let inc_s = spec.app("inc", &[sv]).unwrap();
        let cnt_inc = spec.app("cnt", &[inc_s]).unwrap();
        let cnt_s = spec.app("cnt", &[sv]).unwrap();
        let s_cnt_s = spec.app("s", &[cnt_s]).unwrap();
        spec.eq("cnt-inc", cnt_inc, s_cnt_s).unwrap();
        let reset_s = spec.app("reset", &[sv]).unwrap();
        let cnt_reset = spec.app("cnt", &[reset_s]).unwrap();
        spec.eq("cnt-reset", cnt_reset, z).unwrap();
        spec
    }

    #[test]
    fn from_spec_collects_observers_and_actions() {
        let mut spec = counter_spec();
        let ots = Ots::from_spec(&mut spec, "Sys", "init").unwrap();
        assert_eq!(ots.observers.len(), 1);
        assert_eq!(ots.actions.len(), 2);
        assert!(ots.action("inc").is_some());
        assert!(ots.action("missing").is_none());
        assert!(ots.observer("cnt").is_some());
    }

    #[test]
    fn missing_init_is_an_error() {
        let mut spec = counter_spec();
        let e = Ots::from_spec(&mut spec, "Sys", "nope").unwrap_err();
        assert!(matches!(e, CoreError::MalformedOts(_)));
    }

    #[test]
    fn misshapen_action_is_rejected() {
        let mut spec = counter_spec();
        // An "action" returning Nat is malformed.
        spec.op("bad", &["Sys"], "Nat", OpAttrs::action()).unwrap();
        let e = Ots::from_spec(&mut spec, "Sys", "init").unwrap_err();
        assert!(matches!(e, CoreError::MalformedOts(_)));
    }

    #[test]
    fn observer_equations_drive_reduction() {
        let mut spec = counter_spec();
        let t = spec.parse_term("cnt(inc(inc(init)))").unwrap();
        let two = spec.parse_term("s(s(z))").unwrap();
        assert_eq!(spec.red(t).unwrap(), two);
        let r = spec.parse_term("cnt(reset(inc(init)))").unwrap();
        let z = spec.parse_term("z").unwrap();
        assert_eq!(spec.red(r).unwrap(), z);
    }
}
