//! Errors raised by the OTS layer and the prover.

use equitls_kernel::KernelError;
use equitls_persist::PersistError;
use equitls_rewrite::RewriteError;
use equitls_spec::SpecError;
use std::fmt;

/// An error raised while building an OTS or running a proof.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// The named invariant is not registered.
    UnknownInvariant(String),
    /// The named action is not registered.
    UnknownAction(String),
    /// An OTS construction problem (wrong operator shape, missing state
    /// sort, …).
    MalformedOts(String),
    /// Specification-layer error.
    Spec(SpecError),
    /// Rewriting error.
    Rewrite(RewriteError),
    /// Kernel error.
    Kernel(KernelError),
    /// Checkpoint persistence error (unreadable, corrupt, or missing
    /// obligation-ledger snapshot on resume).
    Persist(PersistError),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::UnknownInvariant(n) => write!(f, "unknown invariant `{n}`"),
            CoreError::UnknownAction(n) => write!(f, "unknown action `{n}`"),
            CoreError::MalformedOts(m) => write!(f, "malformed OTS: {m}"),
            CoreError::Spec(e) => write!(f, "{e}"),
            CoreError::Rewrite(e) => write!(f, "{e}"),
            CoreError::Kernel(e) => write!(f, "{e}"),
            CoreError::Persist(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Spec(e) => Some(e),
            CoreError::Rewrite(e) => Some(e),
            CoreError::Kernel(e) => Some(e),
            CoreError::Persist(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SpecError> for CoreError {
    fn from(e: SpecError) -> Self {
        CoreError::Spec(e)
    }
}

impl From<RewriteError> for CoreError {
    fn from(e: RewriteError) -> Self {
        CoreError::Rewrite(e)
    }
}

impl From<KernelError> for CoreError {
    fn from(e: KernelError) -> Self {
        CoreError::Kernel(e)
    }
}

impl From<PersistError> for CoreError {
    fn from(e: PersistError) -> Self {
        CoreError::Persist(e)
    }
}
