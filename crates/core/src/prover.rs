//! The inductive prover: mechanized proof scores.
//!
//! §2.4 and §5.2 of the paper describe the manual workflow: for each
//! invariant and each transition, write proof passages that (a) split the
//! state space into sub-cases, (b) optionally strengthen the induction
//! hypothesis with instances of other invariants, and (c) ask `red` to
//! reduce `SIH implies istep(...)` to `true`.
//!
//! [`Prover`] automates the same loop:
//!
//! * the **goal** of the inductive case for invariant `inv` and action `a`
//!   is `inv(s, xs) implies inv(a(s, ys), xs)` with `s`, `xs`, `ys` fresh
//!   arbitrary constants (the paper's "arbitrary objects");
//! * when the goal does not reduce, the normalizer reports the **blocked
//!   effective conditions**; the prover splits on them — the `true` branch
//!   assumes each conjunct (orienting equalities exactly like the paper's
//!   nine component equations), the `false` branch rewrites the whole
//!   condition to `false`, which lets the frame equation
//!   `a(s, ys) = s if not c-a(...)` fire;
//! * hinted **lemmas** are instantiated at the pre-state with candidate
//!   terms harvested from the goal, normalized under the current
//!   assumptions, and conjoined into the hypothesis — when an instance
//!   reduces to `false` the sub-case is unreachable and discharges
//!   vacuously (this is how `inv1` strengthens the fifth `fakeSfin2`
//!   sub-case in §5.2).
//!
//! Every leaf of the search is one proof passage; discharged passages can
//! be rendered as CafeOBJ-style `open … close` blocks by
//! [`crate::score`].

use crate::error::CoreError;
use crate::invariant::{Invariant, InvariantSet};
use crate::ledger::Ledger;
use crate::ots::{Action, Ots};
use crate::report::{CaseOutcome, Decision, OpenCase, ProofReport, ProverMetrics, StepReport};
use equitls_kernel::prelude::*;
use equitls_obs::sink::Obs;
use equitls_rewrite::assumption::orient_equation;
use equitls_rewrite::boolring::Poly;
use equitls_rewrite::budget::{panic_message, trigger_injected_panic};
use equitls_rewrite::prelude::*;
use equitls_spec::spec::Spec;
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Tunables for the proof search.
#[derive(Debug, Clone)]
pub struct ProverConfig {
    /// Maximum case-split depth per proof obligation.
    pub max_splits: usize,
    /// Maximum candidate terms per sort when instantiating lemmas.
    pub max_candidates_per_sort: usize,
    /// Maximum lemma instances conjoined into one hypothesis.
    pub max_lemma_instances: usize,
    /// Maximum monomials tolerated in a lemma instance before it is
    /// dropped from the hypothesis (keeps the ring small).
    pub max_instance_monomials: usize,
    /// Hard cap on proof passages per obligation (runaway guard).
    pub max_passages: usize,
    /// Rewriting fuel per reduction.
    pub fuel: u64,
    /// Record each discharged case's decision trail so proof scores can
    /// be rendered (`StepReport::scores`). Off by default (the trails of a
    /// large campaign are sizable).
    pub record_scores: bool,
    /// Collect per-rule profiles in the rewrite engine
    /// (`Normalizer::set_profiling`) and emit them as observability events
    /// after each obligation. Off by default: profiling reads the clock on
    /// every rule attempt.
    pub profile_rules: bool,
    /// Constructor-completeness witnesses: maps a kind predicate operator
    /// (e.g. `sh?`) to the constructor it recognizes (e.g. `sh`). When the
    /// prover assumes `pred?(x) = true` for an arbitrary constant `x`, it
    /// may soundly orient `x` to a fresh instance of the constructor —
    /// the predicate holds only for values built by that constructor.
    pub witnesses: HashMap<OpId, OpId>,
    /// Worker threads for independent proof obligations (`0` = available
    /// parallelism). Results are identical for every value: each
    /// obligation — at any jobs count, including 1 — runs on its own
    /// clone of the pristine [`Spec`], so term arenas never cross threads
    /// and no obligation sees another's fresh constants or assumptions.
    pub jobs: usize,
    /// Shared resource budget (deadline, heap ceiling, cancel token).
    /// Every obligation's normalizer checks it; a trip leaves the
    /// obligation open with a `(budget: …)` residual instead of killing
    /// the run. Unlimited by default.
    pub budget: Budget,
    /// Deterministic fault-injection plan for tests of the degradation
    /// paths. `None` (the default) injects nothing.
    pub fault_plan: Option<FaultPlan>,
    /// Path of the crash-safe obligation ledger ([`crate::ledger`]).
    /// `None` (the default) disables checkpointing. With a path set,
    /// every finished obligation is recorded and the ledger is
    /// atomically rewritten at obligation boundaries.
    pub checkpoint_path: Option<PathBuf>,
    /// Minimum seconds between ledger writes (`0` = write after every
    /// obligation). A final write always happens when the campaign's
    /// tasks finish, regardless of the throttle.
    pub checkpoint_every_secs: u64,
    /// Resume from the ledger at `checkpoint_path`: obligations it
    /// records as [`CaseOutcome::Proved`] are spliced into the report
    /// without re-running (open/faulted/skipped ones always re-run).
    /// Requires a readable, valid ledger — a missing or corrupt snapshot
    /// is a typed [`CoreError::Persist`], never a silent fresh start.
    pub resume: bool,
    /// Share finished normal forms between obligations through an
    /// `Arc`-shared [`SharedNfCache`]: each obligation's initial goal
    /// reduction may then replay subterm normal forms a sibling already
    /// derived instead of recomputing them on its private spec clone.
    /// **Off by default.** The engine's participation gates
    /// (`Normalizer::set_shared_cache`) are built so a hit replays
    /// exactly what a fresh derivation would produce, and the
    /// determinism suite pins campaign outcomes with the cache on and
    /// off — but the cache couples obligations through timing-dependent
    /// hit patterns, so it is opt-in for speed, never silently enabled.
    pub shared_nf_cache: bool,
    /// An externally owned [`SharedNfCache`] to use when
    /// [`shared_nf_cache`](Self::shared_nf_cache) is on, instead of a
    /// fresh per-property cache. This is how a resident service keeps
    /// normal forms warm *across* campaigns: the daemon owns one cache
    /// per pristine spec and threads it through every request. Soundness
    /// is unchanged — entries are keyed by structural fingerprint and
    /// published only at assumption-free top level, so they are a pure
    /// function of the rule set; the handle must simply never be shared
    /// between *different* specs (standard vs. variant each get their
    /// own). Ignored when `shared_nf_cache` is off.
    pub shared_nf_handle: Option<Arc<SharedNfCache>>,
    /// Disable the discrimination-tree candidate index and fall back to
    /// the per-head linear scan. The index returns candidates in
    /// declaration order, so results are identical either way; this
    /// knob exists for benchmarks and A/B determinism tests.
    pub linear_scan: bool,
}

impl Default for ProverConfig {
    fn default() -> Self {
        ProverConfig {
            max_splits: 64,
            max_candidates_per_sort: 6,
            max_lemma_instances: 16,
            max_instance_monomials: 16,
            max_passages: 20_000,
            fuel: 2_000_000,
            record_scores: false,
            profile_rules: false,
            witnesses: HashMap::new(),
            jobs: 1,
            budget: Budget::unlimited(),
            fault_plan: None,
            checkpoint_path: None,
            checkpoint_every_secs: 0,
            resume: false,
            shared_nf_cache: false,
            shared_nf_handle: None,
            linear_scan: false,
        }
    }
}

/// Resolve a `jobs` request: `0` means "use the machine's available
/// parallelism", anything else is taken literally.
pub fn resolve_jobs(jobs: usize) -> usize {
    if jobs == 0 {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    } else {
        jobs
    }
}

/// Which lemmas strengthen which obligations.
///
/// Lemma names refer to invariants registered in the same
/// [`InvariantSet`]. Simultaneous induction makes it sound to assume any
/// of them at the *pre*-state while proving any other.
#[derive(Debug, Clone, Default)]
pub struct Hints {
    global: HashMap<String, Vec<String>>,
    per_action: HashMap<(String, String), Vec<String>>,
}

impl Hints {
    /// No hints.
    pub fn new() -> Self {
        Hints::default()
    }

    /// Use `lemma` when proving `invariant`, for every action.
    pub fn lemma(mut self, invariant: &str, lemma: &str) -> Self {
        self.global
            .entry(invariant.to_string())
            .or_default()
            .push(lemma.to_string());
        self
    }

    /// Use `lemma` when proving `invariant` against `action` only.
    pub fn lemma_for_action(mut self, invariant: &str, action: &str, lemma: &str) -> Self {
        self.per_action
            .entry((invariant.to_string(), action.to_string()))
            .or_default()
            .push(lemma.to_string());
        self
    }

    fn lemmas_for<'a>(&'a self, invariant: &str, action: Option<&str>) -> Vec<&'a str> {
        let mut out: Vec<&str> = Vec::new();
        if let Some(global) = self.global.get(invariant) {
            out.extend(global.iter().map(String::as_str));
        }
        if let Some(action) = action {
            if let Some(extra) = self
                .per_action
                .get(&(invariant.to_string(), action.to_string()))
            {
                out.extend(extra.iter().map(String::as_str));
            }
        }
        out.dedup();
        out
    }
}

/// The result of one proof-passage leaf.
enum Leaf {
    Proved,
    Vacuous,
    Open(String),
}

/// Mutable search state threaded through the case-split recursion. The
/// metrics are the public [`ProverMetrics`]; every leaf bumps `passages`
/// and exactly one of the verdict buckets.
struct SearchStats {
    metrics: ProverMetrics,
    scores: Vec<Vec<Decision>>,
}

/// The inductive prover over one specification + OTS.
pub struct Prover<'a> {
    spec: &'a mut Spec,
    ots: &'a Ots,
    invariants: &'a InvariantSet,
    config: ProverConfig,
    obs: Obs,
    shared_nf: Option<Arc<SharedNfCache>>,
}

impl<'a> Prover<'a> {
    /// Create a prover.
    pub fn new(spec: &'a mut Spec, ots: &'a Ots, invariants: &'a InvariantSet) -> Self {
        Prover {
            spec,
            ots,
            invariants,
            config: ProverConfig::default(),
            obs: Obs::noop(),
            shared_nf: None,
        }
    }

    /// Attach a campaign-wide shared normal-form cache (see
    /// `ProverConfig::shared_nf_cache`); obligations run through this
    /// prover hand it to their normalizers.
    fn with_shared_nf(mut self, cache: Option<Arc<SharedNfCache>>) -> Self {
        self.shared_nf = cache;
        self
    }

    /// Replace the default configuration.
    pub fn with_config(mut self, config: ProverConfig) -> Self {
        self.config = config;
        self
    }

    /// Attach an observability handle. Obligations become spans, case
    /// splits and leaf verdicts become counters, and (with
    /// `ProverConfig::profile_rules`) per-rule profiles are emitted after
    /// each obligation.
    pub fn with_obs(mut self, obs: Obs) -> Self {
        self.obs = obs;
        self
    }

    /// Prove `invariant` by simultaneous induction over all transitions.
    ///
    /// The base case and each action's inductive case are independent
    /// obligations; with `ProverConfig::jobs > 1` they are distributed
    /// across worker threads. Each obligation clones the caller's [`Spec`]
    /// (at every jobs value, including 1), so the report is byte-identical
    /// for any thread count and the caller's spec is left untouched.
    ///
    /// # Errors
    ///
    /// Unknown names, or a rewriting failure (fuel exhaustion). With
    /// several failing obligations the error of the earliest one (base
    /// first, then campaign action order) is returned, regardless of
    /// which worker finished first.
    pub fn prove_inductive(
        &mut self,
        invariant: &str,
        hints: &Hints,
    ) -> Result<ProofReport, CoreError> {
        let start = Instant::now();
        let inv = self
            .invariants
            .get(invariant)
            .ok_or_else(|| CoreError::UnknownInvariant(invariant.to_string()))?
            .clone();
        // Build the discrimination-tree index once on the pristine rule
        // set: every obligation's spec clone then shares it by `Arc`
        // instead of rebuilding per worker.
        if !self.config.linear_scan {
            self.spec.rules().path_index(self.spec.store());
        }
        let pristine = self.spec.clone();
        let ctx = TaskCtx {
            spec: &pristine,
            ots: self.ots,
            invariants: self.invariants,
            config: &self.config,
            obs: &self.obs,
            inv: &inv,
            inv_name: invariant,
            hints,
            case_lemmas: Vec::new(),
            shared_nf: self.config.shared_nf_cache.then(|| {
                self.config
                    .shared_nf_handle
                    .clone()
                    .unwrap_or_else(|| Arc::new(SharedNfCache::new()))
            }),
        };
        let mut tasks: Vec<Task<'_>> = vec![Task::Base];
        tasks.extend(self.ots.actions.iter().map(Task::Step));
        let mut reports = run_tasks(&ctx, &tasks)?;
        let base = reports.remove(0);
        Ok(ProofReport::new(invariant, base, reports, start.elapsed()))
    }

    /// Prove `invariant` by case analysis only (no induction): the goal is
    /// `lemmas(s, …) implies invariant(s, xs)` for an arbitrary state `s`.
    ///
    /// This covers the paper's properties 4 and 5, which are "proved by
    /// case analyses with other properties". A case analysis is a single
    /// obligation, so `ProverConfig::jobs` has nothing to distribute here;
    /// campaigns parallelize across properties instead (each property's
    /// obligation is independent). Like [`Prover::prove_inductive`], the
    /// obligation runs on a clone of the caller's [`Spec`].
    ///
    /// # Errors
    ///
    /// Unknown names, or a rewriting failure.
    pub fn prove_by_cases(
        &mut self,
        invariant: &str,
        lemma_names: &[&str],
    ) -> Result<ProofReport, CoreError> {
        let start = Instant::now();
        let inv = self
            .invariants
            .get(invariant)
            .ok_or_else(|| CoreError::UnknownInvariant(invariant.to_string()))?
            .clone();
        // Build the discrimination-tree index once on the pristine rule
        // set: every obligation's spec clone then shares it by `Arc`
        // instead of rebuilding per worker.
        if !self.config.linear_scan {
            self.spec.rules().path_index(self.spec.store());
        }
        let pristine = self.spec.clone();
        let hints = Hints::new();
        let ctx = TaskCtx {
            spec: &pristine,
            ots: self.ots,
            invariants: self.invariants,
            config: &self.config,
            obs: &self.obs,
            inv: &inv,
            inv_name: invariant,
            hints: &hints,
            case_lemmas: lemma_names.iter().map(|s| (*s).to_string()).collect(),
            shared_nf: self.config.shared_nf_cache.then(|| {
                self.config
                    .shared_nf_handle
                    .clone()
                    .unwrap_or_else(|| Arc::new(SharedNfCache::new()))
            }),
        };
        let mut reports = run_tasks(&ctx, &[Task::CaseAnalysis])?;
        Ok(ProofReport::new(
            invariant,
            reports.remove(0),
            Vec::new(),
            start.elapsed(),
        ))
    }

    fn resolve_lemmas(&self, names: &[&str]) -> Result<Vec<Invariant>, CoreError> {
        names
            .iter()
            .map(|n| {
                self.invariants
                    .get(n)
                    .cloned()
                    .ok_or_else(|| CoreError::UnknownInvariant((*n).to_string()))
            })
            .collect()
    }

    fn fresh_params(&mut self, inv: &Invariant) -> Result<Vec<TermId>, CoreError> {
        let sorts = inv.param_sorts(self.spec);
        Ok(sorts
            .iter()
            .map(|&sort| {
                let prefix = self.spec.store().signature().sort(sort).name.to_lowercase();
                self.spec.store_mut().fresh_constant(&prefix, sort)
            })
            .collect())
    }

    /// One inductive case: action `a` preserves `inv`.
    fn prove_step(
        &mut self,
        inv: &Invariant,
        action: &Action,
        lemmas: &[Invariant],
    ) -> Result<StepReport, CoreError> {
        let state_sort = self.ots.state_sort;
        let s = self.spec.store_mut().fresh_constant("s", state_sort);
        let xs = self.fresh_params(inv)?;
        let ys: Vec<TermId> = action
            .params
            .iter()
            .map(|&sort| {
                let prefix = self.spec.store().signature().sort(sort).name.to_lowercase();
                self.spec.store_mut().fresh_constant(&prefix, sort)
            })
            .collect();
        let mut succ_args = vec![s];
        succ_args.extend(ys.iter().copied());
        let successor = self.spec.store_mut().app(action.op, &succ_args)?;
        let hyp = inv.instantiate(self.spec, s, &xs)?;
        let concl = inv.instantiate(self.spec, successor, &xs)?;
        let alg = self.spec.alg().clone();
        let goal = alg.implies(self.spec.store_mut(), hyp, concl)?;
        self.search_obligation(&action.name, goal, s, lemmas)
    }

    /// Run the case-split search for one obligation.
    fn search_obligation(
        &mut self,
        name: &str,
        goal: TermId,
        pre_state: TermId,
        lemmas: &[Invariant],
    ) -> Result<StepReport, CoreError> {
        let start = Instant::now();
        let _span = self.obs.span(&format!("prover.obligation:{name}"));
        let mut norm = self.spec.normalizer();
        norm.set_fuel_limit(self.config.fuel);
        norm.set_budget(self.config.budget.clone());
        if let Some(plan) = &self.config.fault_plan {
            match plan.fault_for(FaultSite::Obligation, name, 0) {
                Some(FaultKind::Panic) => trigger_injected_panic(FaultSite::Obligation, name, 0),
                Some(FaultKind::FuelStarvation) => norm.set_fuel_limit(0),
                // Stop-kind obligation faults are handled before the task
                // starts (see `run_task`); rewrite-site faults are the
                // hook's job.
                _ => {}
            }
            norm.set_fault_plan(plan.clone(), name);
        }
        norm.set_obs(self.obs.clone());
        if self.config.profile_rules {
            norm.set_profiling(true);
        }
        norm.set_indexing(!self.config.linear_scan);
        if let Some(cache) = &self.shared_nf {
            norm.set_shared_cache(Some(cache.clone()));
        }
        let mut stats = SearchStats {
            metrics: ProverMetrics::default(),
            scores: Vec::new(),
        };
        let mut open = Vec::new();
        let mut trail = Vec::new();
        self.search(
            &mut norm, goal, pre_state, lemmas, 0, &mut trail, &mut stats, &mut open,
        )?;
        // Branch clones were absorbed back into `norm`, so its counters
        // cover the whole obligation.
        let rewrite_stats = norm.stats();
        stats.metrics.rewrites = rewrite_stats.rewrites;
        norm.emit_profile();
        if self.obs.enabled() {
            self.obs
                .gauge("kernel.term_count", self.spec.store().term_count() as f64);
        }
        let outcome = if open.is_empty() {
            CaseOutcome::Proved
        } else {
            CaseOutcome::Open(open)
        };
        Ok(StepReport {
            action: name.to_string(),
            outcome,
            metrics: stats.metrics,
            rewrite_stats,
            duration: start.elapsed(),
            scores: stats.scores,
        })
    }

    #[allow(clippy::too_many_arguments)]
    fn search(
        &mut self,
        norm: &mut Normalizer,
        goal: TermId,
        pre_state: TermId,
        lemmas: &[Invariant],
        depth: usize,
        trail: &mut Vec<Decision>,
        stats: &mut SearchStats,
        open: &mut Vec<OpenCase>,
    ) -> Result<(), CoreError> {
        stats.metrics.max_depth = stats.metrics.max_depth.max(depth);
        if stats.metrics.passages >= self.config.max_passages {
            self.leaf_open(stats, open, trail, "(passage budget exhausted)");
            return Ok(());
        }
        // The normalization span nests under `prover.obligation:<name>`,
        // so trace tools can attribute obligation time to the rewrite
        // engine vs. the split search (one sample per passage).
        let reduced = {
            let _span = self.obs.span("prover.normalize");
            self.reduce_with_sih(norm, goal, pre_state, lemmas)
        };
        let (leaf, blocked, pool) = match reduced {
            Ok(x) => x,
            Err(e) if is_budget_error(&e) => {
                self.leaf_open(stats, open, trail, &budget_residual(&e));
                return Ok(());
            }
            Err(e) => return Err(e),
        };
        match leaf {
            Leaf::Proved => {
                stats.metrics.passages += 1;
                stats.metrics.proved += 1;
                self.obs.counter("prover.leaf.proved", 1);
                if self.config.record_scores {
                    stats.scores.push(trail.clone());
                }
                Ok(())
            }
            Leaf::Vacuous => {
                self.leaf_vacuous(stats);
                if self.config.record_scores {
                    stats.scores.push(trail.clone());
                }
                Ok(())
            }
            Leaf::Open(_) if depth >= self.config.max_splits => {
                if let Leaf::Open(residual) = leaf {
                    self.leaf_open(stats, open, trail, &residual);
                }
                Ok(())
            }
            Leaf::Open(residual) => {
                // Choose a split.
                let split = match self.choose_split(norm, goal, &blocked, &pool) {
                    Ok(s) => s,
                    Err(e) if is_budget_error(&e) => {
                        self.leaf_open(stats, open, trail, &budget_residual(&e));
                        return Ok(());
                    }
                    Err(e) => return Err(e),
                };
                match split {
                    Some(Split::Condition { cond, atoms }) => {
                        stats.metrics.splits += 1;
                        self.obs.counter("prover.split:cond", 1);
                        // TRUE branch: assume each conjunct, equalities
                        // first so their orientations reach the rest.
                        {
                            let mut branch = norm.clone();
                            branch.reset_stats();
                            let mut feasible = true;
                            let mut stop: Option<String> = None;
                            let mut ordered = atoms.clone();
                            let alg = self.spec.alg().clone();
                            ordered.sort_by_key(|&a| {
                                let is_eq = self
                                    .spec
                                    .store()
                                    .op_of(a)
                                    .map(|op| alg.is_eq_op(op))
                                    .unwrap_or(false);
                                (!is_eq, self.spec.store().size(a))
                            });
                            for &atom in &ordered {
                                match self.assume_atom(&mut branch, atom, true) {
                                    Ok(true) => {}
                                    Ok(false) => {
                                        feasible = false;
                                        break;
                                    }
                                    Err(e) if is_budget_error(&e) => {
                                        stop = Some(budget_residual(&e));
                                        break;
                                    }
                                    Err(e) => return Err(e),
                                }
                            }
                            trail.push(Decision::CondTrue {
                                cond: self.spec.store().display(cond).to_string(),
                            });
                            if let Some(residual) = stop {
                                self.leaf_open(stats, open, trail, &residual);
                            } else if feasible {
                                self.search(
                                    &mut branch,
                                    goal,
                                    pre_state,
                                    lemmas,
                                    depth + 1,
                                    trail,
                                    stats,
                                    open,
                                )?;
                            } else {
                                self.leaf_vacuous(stats);
                            }
                            norm.absorb(&branch);
                            trail.pop();
                        }
                        // FALSE branch: the whole condition is false.
                        {
                            let mut branch = norm.clone();
                            branch.reset_stats();
                            let feasible = match self.assume_term(&mut branch, cond, false) {
                                Ok(f) => f,
                                Err(e) if is_budget_error(&e) => {
                                    norm.absorb(&branch);
                                    self.leaf_open(stats, open, trail, &budget_residual(&e));
                                    return Ok(());
                                }
                                Err(e) => return Err(e),
                            };
                            trail.push(Decision::CondFalse {
                                cond: self.spec.store().display(cond).to_string(),
                            });
                            if feasible {
                                self.search(
                                    &mut branch,
                                    goal,
                                    pre_state,
                                    lemmas,
                                    depth + 1,
                                    trail,
                                    stats,
                                    open,
                                )?;
                            } else {
                                self.leaf_vacuous(stats);
                            }
                            norm.absorb(&branch);
                            trail.pop();
                        }
                        Ok(())
                    }
                    Some(Split::Atom(atom)) => {
                        stats.metrics.splits += 1;
                        self.obs.counter("prover.split:atom", 1);
                        for value in [true, false] {
                            let mut branch = norm.clone();
                            branch.reset_stats();
                            let feasible = match self.assume_atom(&mut branch, atom, value) {
                                Ok(f) => f,
                                Err(e) if is_budget_error(&e) => {
                                    norm.absorb(&branch);
                                    self.leaf_open(stats, open, trail, &budget_residual(&e));
                                    continue;
                                }
                                Err(e) => return Err(e),
                            };
                            trail.push(Decision::Atom {
                                atom: self.spec.store().display(atom).to_string(),
                                value,
                            });
                            if feasible {
                                self.search(
                                    &mut branch,
                                    goal,
                                    pre_state,
                                    lemmas,
                                    depth + 1,
                                    trail,
                                    stats,
                                    open,
                                )?;
                            } else {
                                self.leaf_vacuous(stats);
                            }
                            norm.absorb(&branch);
                            trail.pop();
                        }
                        Ok(())
                    }
                    None => {
                        self.leaf_open(stats, open, trail, &residual);
                        Ok(())
                    }
                }
            }
        }
    }

    /// Account one vacuous leaf (infeasible branch).
    fn leaf_vacuous(&self, stats: &mut SearchStats) {
        stats.metrics.passages += 1;
        stats.metrics.vacuous += 1;
        self.obs.counter("prover.leaf.vacuous", 1);
    }

    /// Account one open leaf and record its residual goal.
    fn leaf_open(
        &self,
        stats: &mut SearchStats,
        open: &mut Vec<OpenCase>,
        trail: &[Decision],
        residual: &str,
    ) {
        stats.metrics.passages += 1;
        stats.metrics.open += 1;
        self.obs.counter("prover.leaf.open", 1);
        open.push(OpenCase {
            decisions: trail.iter().map(|d| d.render()).collect(),
            residual: residual.to_string(),
        });
    }

    /// Normalize the goal, strengthen with lemma instances, and classify.
    /// Also returns the effective conditions that blocked conditional
    /// rules while reducing the goal — the split candidates.
    fn reduce_with_sih(
        &mut self,
        norm: &mut Normalizer,
        goal: TermId,
        pre_state: TermId,
        lemmas: &[Invariant],
    ) -> Result<(Leaf, Vec<TermId>, Vec<TermId>), CoreError> {
        let alg = self.spec.alg().clone();
        let _ = norm.take_blocked();
        let n = norm.normalize(self.spec.store_mut(), goal)?;
        let blocked = norm.take_blocked();
        if alg.as_constant(self.spec.store(), n) == Some(true) {
            return Ok((Leaf::Proved, blocked, Vec::new()));
        }
        if lemmas.is_empty() {
            let leaf = Leaf::Open(self.render_residual(norm, n)?);
            return Ok((leaf, blocked, Vec::new()));
        }
        let goal_poly = norm.normalize_to_poly(self.spec.store_mut(), n)?;
        let goal_atoms = goal_poly.atoms();
        // Harvest candidate instantiation terms from the goal's atoms.
        let candidates = self.harvest_candidates(&goal_atoms);
        // Conjoin lemma-instance polynomials directly at the ring level:
        // term-level conjunction would rebuild (and re-walk) a product
        // with potentially thousands of monomials. Instantiation runs in
        // rounds: atoms introduced by one instance (e.g. inv2's genuine-sf
        // conclusion) seed the next round's pattern matching (e.g.
        // lem-sf-session's premise).
        let mut sih_poly = Poly::one();
        let mut used = 0usize;
        let mut seen: Vec<TermId> = Vec::new();
        let mut atom_pool = goal_atoms.clone();
        for _round in 0..3 {
            let mut grew = false;
            for lemma in lemmas {
                let mut tuples = self.pattern_tuples(lemma, &atom_pool, &candidates);
                if tuples.is_empty() {
                    // Cartesian fallback only when pattern matching found
                    // nothing — it generates mostly-irrelevant tuples.
                    tuples = self.instantiation_tuples(lemma, &candidates);
                }
                for tuple in tuples {
                    if used >= self.config.max_lemma_instances {
                        break;
                    }
                    let inst = lemma.instantiate(self.spec, pre_state, &tuple)?;
                    let ni = norm.normalize(self.spec.store_mut(), inst)?;
                    match alg.as_constant(self.spec.store(), ni) {
                        Some(true) => continue,
                        Some(false) => return Ok((Leaf::Vacuous, blocked, atom_pool)),
                        None => {
                            if seen.contains(&ni) {
                                continue;
                            }
                            seen.push(ni);
                            let p = norm.normalize_to_poly(self.spec.store_mut(), ni)?;
                            let product_bound = 4096;
                            // Anchor on a shared *semantic* atom (a
                            // membership or predicate, not a mere equality)
                            // so noise instances don't burn the budget.
                            let anchored = p.atoms().iter().any(|&a| {
                                atom_pool.contains(&a)
                                    && self
                                        .spec
                                        .store()
                                        .op_of(a)
                                        .map(|op| !alg.is_eq_op(op))
                                        .unwrap_or(false)
                            });
                            if p.monomial_count() <= self.config.max_instance_monomials
                                && anchored
                                && sih_poly.monomial_count() * p.monomial_count() <= product_bound
                            {
                                sih_poly = sih_poly.mul(&p);
                                used += 1;
                                for a in p.atoms() {
                                    if !atom_pool.contains(&a) {
                                        atom_pool.push(a);
                                        grew = true;
                                    }
                                }
                            }
                        }
                    }
                }
            }
            if !grew {
                break;
            }
        }
        if std::env::var("EQUITLS_DEBUG_SIH").is_ok() {
            eprintln!(
                "[sih] lemmas={} used={} seen={} pool={} sih_monos={}",
                lemmas.len(),
                used,
                seen.len(),
                atom_pool.len(),
                sih_poly.monomial_count()
            );
            for &t in &seen {
                eprintln!("  inst: {}", self.spec.store().display(t));
            }
        }
        if sih_poly.is_false() {
            // The conjunction of known invariants is false here: the case
            // is unreachable.
            return Ok((Leaf::Vacuous, blocked, atom_pool));
        }
        if used == 0 {
            let leaf = Leaf::Open(self.render_residual(norm, n)?);
            return Ok((leaf, blocked, atom_pool));
        }
        // goal2 = sih implies goal = 1 + sih + sih·goal, all in the ring.
        let goal2 = Poly::one().add(&sih_poly).add(&sih_poly.mul(&goal_poly));
        if goal2.is_true() {
            return Ok((Leaf::Proved, blocked, atom_pool));
        }
        let leaf = Leaf::Open(self.render_residual(norm, n)?);
        Ok((leaf, blocked, atom_pool))
    }

    fn render_residual(&mut self, _norm: &mut Normalizer, n: TermId) -> Result<String, CoreError> {
        let rendered = self.spec.store().display(n).to_string();
        Ok(if rendered.len() > 400 {
            format!("{}…", &rendered[..400])
        } else {
            rendered
        })
    }

    /// Candidate terms per sort, harvested from goal atoms.
    fn harvest_candidates(&self, atoms: &[TermId]) -> HashMap<SortId, Vec<TermId>> {
        let mut map: HashMap<SortId, Vec<TermId>> = HashMap::new();
        for &atom in atoms {
            for sub in self.spec.store().subterms(atom) {
                let sort = self.spec.store().sort_of(sub);
                let entry = map.entry(sort).or_default();
                if !entry.contains(&sub) && entry.len() < self.config.max_candidates_per_sort {
                    entry.push(sub);
                }
            }
        }
        map
    }

    /// Pattern-guided instantiation: match the lemma body's own atoms
    /// (which contain the lemma's parameter variables) against the goal's
    /// ground atoms, and read the parameter bindings off the match. This
    /// finds e.g. the nine parameters of `lem-sf-session` directly from
    /// the `sf(B,B,A,…) \in nw(P)` atom of the goal.
    fn pattern_tuples(
        &mut self,
        lemma: &Invariant,
        goal_atoms: &[TermId],
        candidates: &HashMap<SortId, Vec<TermId>>,
    ) -> Vec<Vec<TermId>> {
        use equitls_kernel::matching::{match_term, MatchOutcome};
        // Collect the lemma body's candidate pattern atoms: Bool-sorted
        // applications that are not connectives/equalities and that
        // mention at least one parameter variable.
        let alg = self.spec.alg().clone();
        let bool_sort = alg.sort();
        let connectives = [
            alg.not_op(),
            alg.and_op(),
            alg.or_op(),
            alg.xor_op(),
            alg.implies_op(),
            alg.iff_op(),
            alg.ite_op(),
        ];
        let body_subterms = self.spec.store().subterms(lemma.body);
        let mut patterns = Vec::new();
        for t in body_subterms {
            if self.spec.store().sort_of(t) != bool_sort {
                continue;
            }
            let op = match self.spec.store().op_of(t) {
                Some(op) => op,
                None => continue,
            };
            if connectives.contains(&op) || alg.is_eq_op(op) {
                continue;
            }
            let vars = self.spec.store().vars_of(t);
            if vars.iter().any(|v| lemma.params.contains(v)) {
                patterns.push(t);
            }
        }
        let mut tuples: Vec<Vec<TermId>> = Vec::new();
        for pattern in patterns {
            for &atom in goal_atoms {
                let subst = match match_term(self.spec.store(), pattern, atom) {
                    MatchOutcome::Matched(s) => s,
                    MatchOutcome::Failed => continue,
                };
                // Build one tuple per match, filling unbound parameters
                // from the candidate pool (first candidate only, to keep
                // the blowup bounded).
                let mut tuple = Vec::with_capacity(lemma.params.len());
                let mut complete = true;
                for &param in &lemma.params {
                    if let Some(t) = subst.get(param) {
                        tuple.push(t);
                    } else {
                        let sort = self.spec.store().var_decl(param).sort;
                        match candidates.get(&sort).and_then(|c| c.first()) {
                            Some(&c) => tuple.push(c),
                            None => {
                                complete = false;
                                break;
                            }
                        }
                    }
                }
                if complete && !tuples.contains(&tuple) {
                    tuples.push(tuple);
                }
                if tuples.len() >= self.config.max_lemma_instances {
                    return tuples;
                }
            }
        }
        tuples
    }

    fn instantiation_tuples(
        &self,
        lemma: &Invariant,
        candidates: &HashMap<SortId, Vec<TermId>>,
    ) -> Vec<Vec<TermId>> {
        let sorts = lemma.param_sorts(self.spec);
        let mut tuples: Vec<Vec<TermId>> = vec![Vec::new()];
        for sort in sorts {
            let empty = Vec::new();
            let cands = candidates.get(&sort).unwrap_or(&empty);
            if cands.is_empty() {
                return Vec::new();
            }
            let mut next = Vec::new();
            for tuple in &tuples {
                for &c in cands {
                    let mut t = tuple.clone();
                    t.push(c);
                    next.push(t);
                    if next.len() >= 4 * self.config.max_lemma_instances {
                        break;
                    }
                }
            }
            tuples = next;
        }
        tuples
    }

    /// Assume a Bool atom's truth value; returns `false` when the
    /// assumption is infeasible (the atom already has the opposite value),
    /// making the branch vacuous.
    fn assume_atom(
        &mut self,
        norm: &mut Normalizer,
        atom: TermId,
        value: bool,
    ) -> Result<bool, CoreError> {
        let alg = self.spec.alg().clone();
        let n = norm.normalize(self.spec.store_mut(), atom)?;
        if let Some(b) = alg.as_constant(self.spec.store(), n) {
            return Ok(b == value);
        }
        if value {
            // Constructor-completeness witness: pred?(x) = true for an
            // arbitrary x means x was built by the matching constructor.
            if let Some(op) = self.spec.store().op_of(n) {
                if let Some(&ctor) = self.config.witnesses.get(&op) {
                    let args: Vec<TermId> = self.spec.store().args(n).to_vec();
                    if args.len() == 1 && self.spec.store().is_arbitrary_constant(args[0]) {
                        let arg_sorts: Vec<SortId> =
                            self.spec.store().signature().op(ctor).args.clone();
                        let fresh: Vec<TermId> = arg_sorts
                            .iter()
                            .map(|&sort| {
                                let prefix =
                                    self.spec.store().signature().sort(sort).name.to_lowercase();
                                self.spec.store_mut().fresh_constant(&prefix, sort)
                            })
                            .collect();
                        let witness = self.spec.store_mut().app(ctor, &fresh)?;
                        norm.assume(self.spec.store(), "case-witness", args[0], witness)?;
                        norm.refresh_assumptions(self.spec.store_mut())?;
                        return Ok(!norm.is_infeasible());
                    }
                }
            }
            if let Some(op) = self.spec.store().op_of(n) {
                if alg.is_eq_op(op) {
                    let args: Vec<TermId> = self.spec.store().args(n).to_vec();
                    let mut alg2 = alg.clone();
                    let oriented =
                        orient_equation(self.spec.store_mut(), &mut alg2, args[0], args[1])?;
                    *self.spec.alg_mut() = alg2;
                    for (l, r) in oriented {
                        norm.assume(self.spec.store(), "case-eq", l, r)?;
                    }
                    norm.refresh_assumptions(self.spec.store_mut())?;
                    return Ok(!norm.is_infeasible());
                }
            }
        }
        let rhs = alg.constant(self.spec.store_mut(), value);
        norm.assume(self.spec.store(), "case-atom", n, rhs)?;
        norm.refresh_assumptions(self.spec.store_mut())?;
        Ok(!norm.is_infeasible())
    }

    /// Assume a whole Bool term's value (used for the `false` branch of a
    /// blocked effective condition).
    fn assume_term(
        &mut self,
        norm: &mut Normalizer,
        term: TermId,
        value: bool,
    ) -> Result<bool, CoreError> {
        let alg = self.spec.alg().clone();
        let n = norm.normalize(self.spec.store_mut(), term)?;
        if let Some(b) = alg.as_constant(self.spec.store(), n) {
            return Ok(b == value);
        }
        let rhs = alg.constant(self.spec.store_mut(), value);
        norm.assume(self.spec.store(), "case-cond", n, rhs)?;
        norm.refresh_assumptions(self.spec.store_mut())?;
        Ok(!norm.is_infeasible())
    }

    /// Choose the next split: prefer a blocked effective condition whose
    /// polynomial is a single conjunction; otherwise a goal atom
    /// (equalities and small atoms first).
    fn choose_split(
        &mut self,
        norm: &mut Normalizer,
        goal: TermId,
        blocked: &[TermId],
        lemma_pool: &[TermId],
    ) -> Result<Option<Split>, CoreError> {
        let n = norm.normalize(self.spec.store_mut(), goal)?;
        for &cond in blocked {
            let poly = norm.normalize_to_poly(self.spec.store_mut(), cond)?;
            if poly.as_constant().is_some() {
                continue;
            }
            if poly.monomial_count() == 1 {
                let atoms: Vec<TermId> = poly
                    .monomials()
                    .next()
                    .expect("single monomial")
                    .iter()
                    .copied()
                    .collect();
                let alg = self.spec.alg().clone();
                let cond_term = poly.to_term(self.spec.store_mut(), &alg)?;
                return Ok(Some(Split::Condition {
                    cond: cond_term,
                    atoms,
                }));
            }
            // Disjunctive condition: split on its smallest atom.
            if let Some(atom) = self.smallest_atom(&poly.atoms()) {
                return Ok(Some(Split::Atom(atom)));
            }
        }
        // Fall back to the goal's own atoms — but only *productive* ones.
        // The Boolean ring is complete for propositional reasoning, so a
        // split is useful only when one branch enables rewriting: an
        // orientable equality (substitution) or a kind predicate with a
        // constructor witness. Splitting an opaque membership atom can
        // never close a goal the ring left open.
        let poly = norm.normalize_to_poly(self.spec.store_mut(), n)?;
        if let Some(atom) = self.productive_atom(&poly.atoms()) {
            return Ok(Some(Split::Atom(atom)));
        }
        // Atoms introduced by lemma instances (e.g. the `b = intruder`
        // guard of a session lemma) are split candidates too.
        Ok(self.productive_atom(lemma_pool).map(Split::Atom))
    }

    fn smallest_atom(&self, atoms: &[TermId]) -> Option<TermId> {
        atoms
            .iter()
            .copied()
            .min_by_key(|&a| self.spec.store().size(a))
    }

    /// An atom whose `true` branch enables rewriting, smallest first:
    /// orientable equalities (class 0), then witnessed kind predicates
    /// (class 1).
    fn productive_atom(&self, atoms: &[TermId]) -> Option<TermId> {
        let alg = self.spec.alg();
        let mut best: Option<(usize, usize, TermId)> = None;
        for &a in atoms {
            let op = match self.spec.store().op_of(a) {
                Some(op) => op,
                None => continue,
            };
            let class = if alg.is_eq_op(op) {
                let args = self.spec.store().args(a);
                let (l, r) = (args[0], args[1]);
                let store = self.spec.store();
                let orientable = (store.is_arbitrary_constant(l) && !occurs_in(store, l, r))
                    || (store.is_arbitrary_constant(r) && !occurs_in(store, r, l))
                    || (equitls_rewrite::assumption::is_value(store, l)
                        != equitls_rewrite::assumption::is_value(store, r));
                if orientable {
                    0
                } else {
                    continue;
                }
            } else if self.config.witnesses.contains_key(&op) {
                let args = self.spec.store().args(a);
                if args.len() == 1 && self.spec.store().is_arbitrary_constant(args[0]) {
                    1
                } else {
                    continue;
                }
            } else {
                continue;
            };
            let key = (class, self.spec.store().size(a));
            match best {
                Some((k0, k1, _)) if (key.0, key.1) >= (k0, k1) => {}
                _ => best = Some((key.0, key.1, a)),
            }
        }
        best.map(|(_, _, a)| a)
    }
}

/// One independent proof obligation.
enum Task<'t> {
    /// `inv(init, xs)`.
    Base,
    /// Action `a` preserves `inv`.
    Step(&'t Action),
    /// `lemmas(s, …) implies inv(s, xs)` for arbitrary `s`.
    CaseAnalysis,
}

/// Everything a worker needs to run one obligation. `spec` is the
/// pristine snapshot every task clones from — the sole way term arenas
/// stay thread-local without locking.
struct TaskCtx<'c> {
    spec: &'c Spec,
    ots: &'c Ots,
    invariants: &'c InvariantSet,
    config: &'c ProverConfig,
    obs: &'c Obs,
    inv: &'c Invariant,
    inv_name: &'c str,
    hints: &'c Hints,
    case_lemmas: Vec<String>,
    /// The campaign-wide shared normal-form cache, when
    /// `ProverConfig::shared_nf_cache` is on: every obligation's worker
    /// attaches the same `Arc`, so goal reductions exchange finished
    /// subterm normal forms across their private spec clones.
    shared_nf: Option<Arc<SharedNfCache>>,
}

/// Stack size for prover worker threads. The case-split recursion on top
/// of the rewrite engine's recursion overflows the platform default on
/// the TLS obligations; the repo's binaries and integration tests already
/// run the prover on 512 MiB stacks, so workers match that.
const WORKER_STACK_BYTES: usize = 512 * 1024 * 1024;

/// The obligation name a task reports under.
fn task_name(task: &Task<'_>) -> String {
    match task {
        Task::Base => "init".to_string(),
        Task::Step(action) => action.name.clone(),
        Task::CaseAnalysis => "case-analysis".to_string(),
    }
}

/// The well-formed partial report for an obligation the budget stopped
/// before it could start: one passage, left open with a typed residual, so
/// `passages == proved + vacuous + open` still holds.
fn budget_skipped_report(name: &str, reason: StopReason) -> StepReport {
    StepReport {
        action: name.to_string(),
        outcome: CaseOutcome::Open(vec![OpenCase {
            decisions: Vec::new(),
            residual: format!("(budget: {reason} before obligation start)"),
        }]),
        metrics: ProverMetrics {
            passages: 1,
            open: 1,
            ..ProverMetrics::default()
        },
        rewrite_stats: RewriteStats::default(),
        duration: Duration::ZERO,
        scores: Vec::new(),
    }
}

/// Run one obligation with panic containment and budget gating.
///
/// A panic anywhere in the obligation — injected or real — is caught here
/// and recorded as a typed [`CaseOutcome::Fault`], so one bad obligation
/// never poisons its siblings or the worker pool, at any `jobs` value.
fn run_task(ctx: &TaskCtx<'_>, task: &Task<'_>) -> Result<StepReport, CoreError> {
    let name = task_name(task);
    // Budget gate: once the shared budget is tripped, remaining
    // obligations are skipped with a well-formed open report instead of
    // burning time they no longer have.
    if let Err(reason) = ctx.config.budget.check(0) {
        ctx.obs.counter("prover.budget_skip", 1);
        return Ok(budget_skipped_report(&name, reason));
    }
    if let Some(plan) = &ctx.config.fault_plan {
        match plan.fault_for(FaultSite::Obligation, &name, 0) {
            Some(FaultKind::DeadlineExpiry) => {
                return Ok(budget_skipped_report(&name, StopReason::DeadlineExceeded));
            }
            Some(FaultKind::Cancel) => {
                ctx.config.budget.cancel();
                return Ok(budget_skipped_report(&name, StopReason::Cancelled));
            }
            // Panic and FuelStarvation fire inside the guarded body, in
            // `search_obligation`.
            _ => {}
        }
    }
    let started = Instant::now();
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| run_task_inner(ctx, task))) {
        Ok(result) => result,
        Err(payload) => {
            ctx.obs.counter("prover.worker_fault", 1);
            Ok(StepReport {
                action: name.clone(),
                outcome: CaseOutcome::Fault(WorkerFault {
                    site: format!("obligation:{name}"),
                    message: panic_message(&*payload),
                }),
                metrics: ProverMetrics::default(),
                rewrite_stats: RewriteStats::default(),
                duration: started.elapsed(),
                scores: Vec::new(),
            })
        }
    }
}

/// Run one obligation on a fresh clone of the pristine spec.
fn run_task_inner(ctx: &TaskCtx<'_>, task: &Task<'_>) -> Result<StepReport, CoreError> {
    let mut local = ctx.spec.clone();
    let mut prover = Prover::new(&mut local, ctx.ots, ctx.invariants)
        .with_config(ctx.config.clone())
        .with_obs(ctx.obs.clone())
        .with_shared_nf(ctx.shared_nf.clone());
    match task {
        Task::Base => {
            let lemmas = prover.resolve_lemmas(&ctx.hints.lemmas_for(ctx.inv_name, None))?;
            let xs = prover.fresh_params(ctx.inv)?;
            let init = ctx.ots.init;
            let goal = ctx.inv.instantiate(prover.spec, init, &xs)?;
            prover.search_obligation("init", goal, init, &lemmas)
        }
        Task::Step(action) => {
            let lemmas =
                prover.resolve_lemmas(&ctx.hints.lemmas_for(ctx.inv_name, Some(&action.name)))?;
            prover.prove_step(ctx.inv, action, &lemmas)
        }
        Task::CaseAnalysis => {
            let names: Vec<&str> = ctx.case_lemmas.iter().map(String::as_str).collect();
            let lemmas = prover.resolve_lemmas(&names)?;
            let state_sort = ctx.ots.state_sort;
            let s = prover.spec.store_mut().fresh_constant("p", state_sort);
            let xs = prover.fresh_params(ctx.inv)?;
            let goal = ctx.inv.instantiate(prover.spec, s, &xs)?;
            prover.search_obligation("case-analysis", goal, s, &lemmas)
        }
    }
}

/// The obligation ledger plus its write policy, shared by all workers
/// behind one mutex (writes happen at obligation boundaries, so the lock
/// is cold).
struct LedgerWriter {
    ledger: Ledger,
    path: PathBuf,
    every_secs: u64,
    last_write: Instant,
    /// Deterministic persist-fault injection (`FaultSite::PersistWrite`,
    /// scope `"ledger"`), consulted before each snapshot attempt.
    fault_plan: Option<FaultPlan>,
    /// Zero-based snapshot-write attempt counter (the fault index).
    writes: u64,
}

impl LedgerWriter {
    /// Record one finished obligation and rewrite the snapshot unless the
    /// throttle says the last write is recent enough.
    fn record(&mut self, invariant: &str, action: &str, report: StepReport, obs: &Obs) {
        self.ledger.record(invariant, action, report);
        if self.every_secs == 0 || self.last_write.elapsed().as_secs() >= self.every_secs {
            self.save(obs);
        }
    }

    /// Atomically rewrite the snapshot. Failure — real or injected via
    /// `FaultSite::PersistWrite` — is non-fatal: the proof result is
    /// unaffected, only crash-safety degrades, so it is counted, not
    /// raised.
    fn save(&mut self, obs: &Obs) {
        let n = self.writes;
        self.writes += 1;
        let injected = self
            .fault_plan
            .as_ref()
            .is_some_and(|plan| plan.persist_write_fails("ledger", n));
        if injected {
            obs.counter("persist.fault_injected", 1);
            obs.counter("persist.snapshot_failed", 1);
        } else if self.ledger.save(&self.path, obs).is_err() {
            obs.counter("persist.snapshot_failed", 1);
        } else {
            self.last_write = Instant::now();
        }
    }
}

/// Open the obligation ledger for this run, or `None` when checkpointing
/// is off. Resuming demands a valid snapshot (typed error otherwise); a
/// fresh run tolerates a missing or corrupt file and keeps any *other*
/// invariants' entries it can salvage, so one campaign file serves all
/// properties.
fn open_ledger(ctx: &TaskCtx<'_>) -> Result<Option<Mutex<LedgerWriter>>, CoreError> {
    let Some(path) = &ctx.config.checkpoint_path else {
        return Ok(None);
    };
    let ledger = if ctx.config.resume {
        Ledger::load(path, ctx.obs)?
    } else {
        match Ledger::load(path, ctx.obs) {
            Ok(mut salvaged) => {
                salvaged.clear_invariant(ctx.inv_name);
                salvaged
            }
            Err(_) => Ledger::new(),
        }
    };
    Ok(Some(Mutex::new(LedgerWriter {
        ledger,
        path: path.clone(),
        every_secs: ctx.config.checkpoint_every_secs,
        last_write: Instant::now(),
        fault_plan: ctx.config.fault_plan.clone(),
        writes: 0,
    })))
}

/// [`run_task`], short-circuited by the ledger: on resume a recorded
/// `Proved` outcome is returned verbatim (the obligation is pure, so the
/// recorded report *is* the report a re-run would produce); anything else
/// re-runs and the fresh report is recorded.
fn run_or_reuse(
    ctx: &TaskCtx<'_>,
    task: &Task<'_>,
    writer: Option<&Mutex<LedgerWriter>>,
) -> Result<StepReport, CoreError> {
    let name = task_name(task);
    if ctx.config.resume {
        if let Some(writer) = writer {
            let cached = writer
                .lock()
                .expect("ledger lock")
                .ledger
                .lookup(ctx.inv_name, &name)
                .filter(|r| matches!(r.outcome, CaseOutcome::Proved))
                .cloned();
            if let Some(report) = cached {
                ctx.obs.counter("persist.resume_skipped_obligations", 1);
                return Ok(report);
            }
        }
    }
    let result = run_task(ctx, task);
    if let (Ok(report), Some(writer)) = (&result, writer) {
        writer
            .lock()
            .expect("ledger lock")
            .record(ctx.inv_name, &name, report.clone(), ctx.obs);
    }
    result
}

/// Run `tasks` on `config.jobs` workers and return the reports in task
/// order. Workers pull the next task off a shared atomic index; results
/// land in per-task slots, so the output order (and, with several
/// failures, which error is reported — the lowest-index one) never
/// depends on scheduling. With `config.checkpoint_path` set, every
/// finished obligation lands in the ledger and a final snapshot is forced
/// when the tasks are done.
fn run_tasks(ctx: &TaskCtx<'_>, tasks: &[Task<'_>]) -> Result<Vec<StepReport>, CoreError> {
    let writer = open_ledger(ctx)?;
    let jobs = resolve_jobs(ctx.config.jobs).min(tasks.len().max(1));
    let reports: Result<Vec<StepReport>, CoreError> = if jobs <= 1 {
        tasks
            .iter()
            .map(|t| run_or_reuse(ctx, t, writer.as_ref()))
            .collect()
    } else {
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<Result<StepReport, CoreError>>>> =
            tasks.iter().map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for w in 0..jobs {
                std::thread::Builder::new()
                    .name(format!("prover-{w}"))
                    .stack_size(WORKER_STACK_BYTES)
                    .spawn_scoped(scope, || loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= tasks.len() {
                            break;
                        }
                        let result = run_or_reuse(ctx, &tasks[i], writer.as_ref());
                        *slots[i].lock().expect("result slot") = Some(result);
                    })
                    .expect("spawn prover worker");
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("result slot")
                    .expect("every task was completed by a worker")
            })
            .collect()
    };
    if let Some(writer) = &writer {
        writer.lock().expect("ledger lock").save(ctx.obs);
    }
    reports
}

/// A recoverable rewriting stop: fuel ran out or the shared budget
/// tripped. Both leave the current passage open; neither aborts the run.
fn is_budget_error(e: &CoreError) -> bool {
    matches!(
        e,
        CoreError::Rewrite(
            RewriteError::FuelExhausted { .. } | RewriteError::BudgetExceeded { .. }
        ) | CoreError::Spec(equitls_spec::SpecError::Rewrite(
            RewriteError::FuelExhausted { .. } | RewriteError::BudgetExceeded { .. }
        ))
    )
}

/// Render a budget/fuel stop as an open-case residual. The full error text
/// carries the offending term, the limit, and an engine-counter snapshot;
/// it is truncated on a char boundary so pathological terms stay readable.
fn budget_residual(e: &CoreError) -> String {
    let rendered = e.to_string();
    let mut cut = rendered.len().min(400);
    while !rendered.is_char_boundary(cut) {
        cut -= 1;
    }
    if cut < rendered.len() {
        format!("({}…)", &rendered[..cut])
    } else {
        format!("({rendered})")
    }
}

fn occurs_in(store: &equitls_kernel::term::TermStore, needle: TermId, hay: TermId) -> bool {
    hay == needle
        || store
            .args(hay)
            .to_vec()
            .iter()
            .any(|&a| occurs_in(store, needle, a))
}

/// A chosen case split.
enum Split {
    /// A blocked effective condition `cond` that is a single conjunction
    /// of `atoms`.
    Condition { cond: TermId, atoms: Vec<TermId> },
    /// A single Bool atom.
    Atom(TermId),
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ots::Ots;

    /// A mutex-ish machine: two flags, action `lock` sets flag1 if flag2
    /// is unset; invariant: never both set.
    fn build_machine() -> (Spec, Ots, InvariantSet) {
        let mut spec = Spec::new().unwrap();
        spec.begin_module("MUTEX");
        spec.hidden_sort("Sys").unwrap();
        spec.op("init", &[], "Sys", OpAttrs::defined()).unwrap();
        spec.observer("f1", &["Sys"], "Bool").unwrap();
        spec.observer("f2", &["Sys"], "Bool").unwrap();
        spec.action("lock1", &["Sys"], "Sys").unwrap();
        spec.action("lock2", &["Sys"], "Sys").unwrap();
        spec.action("unlock", &["Sys"], "Sys").unwrap();

        let alg = spec.alg().clone();
        let init = spec.parse_term("init").unwrap();
        let f1_init = spec.app("f1", &[init]).unwrap();
        let f2_init = spec.app("f2", &[init]).unwrap();
        let ff = alg.ff(spec.store_mut());
        let tt = alg.tt(spec.store_mut());
        spec.eq("f1-init", f1_init, ff).unwrap();
        spec.eq("f2-init", f2_init, ff).unwrap();

        let s = spec.var("S", "Sys").unwrap();
        // lock1: if not f2 then f1' = true else no-op.
        let lock1_s = spec.app("lock1", &[s]).unwrap();
        let f1_lock1 = spec.app("f1", &[lock1_s]).unwrap();
        let f2s = spec.app("f2", &[s]).unwrap();
        let f1s = spec.app("f1", &[s]).unwrap();
        let not_f2 = alg.not(spec.store_mut(), f2s).unwrap();
        spec.ceq("lock1-f1", f1_lock1, tt, not_f2).unwrap();
        let f2_lock1 = spec.app("f2", &[lock1_s]).unwrap();
        spec.eq("lock1-f2", f2_lock1, f2s).unwrap();
        let cond_false = alg.not(spec.store_mut(), not_f2).unwrap();
        spec.ceq("lock1-frame", lock1_s, s, cond_false).unwrap();

        // lock2 symmetric.
        let lock2_s = spec.app("lock2", &[s]).unwrap();
        let f2_lock2 = spec.app("f2", &[lock2_s]).unwrap();
        let not_f1 = alg.not(spec.store_mut(), f1s).unwrap();
        spec.ceq("lock2-f2", f2_lock2, tt, not_f1).unwrap();
        let f1_lock2 = spec.app("f1", &[lock2_s]).unwrap();
        spec.eq("lock2-f1", f1_lock2, f1s).unwrap();
        let cond2_false = alg.not(spec.store_mut(), not_f1).unwrap();
        spec.ceq("lock2-frame", lock2_s, s, cond2_false).unwrap();

        // unlock clears both unconditionally.
        let unlock_s = spec.app("unlock", &[s]).unwrap();
        let f1_unlock = spec.app("f1", &[unlock_s]).unwrap();
        let f2_unlock = spec.app("f2", &[unlock_s]).unwrap();
        spec.eq("unlock-f1", f1_unlock, ff).unwrap();
        spec.eq("unlock-f2", f2_unlock, ff).unwrap();

        let ots = Ots::from_spec(&mut spec, "Sys", "init").unwrap();

        // Invariant: not (f1 and f2).
        let sys_sort = spec.sort_id("Sys").unwrap();
        let p = spec.store_mut().declare_var("Pstate", sys_sort).unwrap();
        let pv = spec.store_mut().var(p);
        let f1p = spec.app("f1", &[pv]).unwrap();
        let f2p = spec.app("f2", &[pv]).unwrap();
        let both = alg.and(spec.store_mut(), f1p, f2p).unwrap();
        let body = alg.not(spec.store_mut(), both).unwrap();
        let inv = Invariant::new(&spec, "mutex", p, vec![], body).unwrap();
        let mut set = InvariantSet::new();
        set.push(inv);
        (spec, ots, set)
    }

    #[test]
    fn mutual_exclusion_is_proved_inductively() {
        let (mut spec, ots, invs) = build_machine();
        let mut prover = Prover::new(&mut spec, &ots, &invs);
        let report = prover.prove_inductive("mutex", &Hints::new()).unwrap();
        assert!(report.is_proved(), "open cases: {:?}", report.open_cases());
        assert_eq!(report.steps.len(), 3);
        assert!(report.total_passages() >= 4);
    }

    #[test]
    fn a_false_invariant_stays_open() {
        let (mut spec, ots, mut invs) = build_machine();
        // Claim: f1 is always false — refuted by lock1.
        let alg = spec.alg().clone();
        let sys_sort = spec.sort_id("Sys").unwrap();
        let p2 = spec.store_mut().declare_var("P2", sys_sort).unwrap();
        let pv = spec.store_mut().var(p2);
        let f1p = spec.app("f1", &[pv]).unwrap();
        let body = alg.not(spec.store_mut(), f1p).unwrap();
        let bogus = Invariant::new(&spec, "bogus", p2, vec![], body).unwrap();
        invs.push(bogus);
        let mut prover = Prover::new(&mut spec, &ots, &invs);
        let report = prover.prove_inductive("bogus", &Hints::new()).unwrap();
        assert!(!report.is_proved());
        let open = report.open_cases();
        assert!(open.iter().any(|c| c.0 == "lock1"), "open: {open:?}");
    }

    #[test]
    fn unknown_invariant_errors() {
        let (mut spec, ots, invs) = build_machine();
        let mut prover = Prover::new(&mut spec, &ots, &invs);
        assert!(matches!(
            prover.prove_inductive("nope", &Hints::new()),
            Err(CoreError::UnknownInvariant(_))
        ));
    }

    #[test]
    fn case_analysis_proves_propositional_consequences() {
        let (mut spec, ots, mut invs) = build_machine();
        let alg = spec.alg().clone();
        // Consequence: f1 implies not f2 — follows from mutex by cases.
        let sys_sort = spec.sort_id("Sys").unwrap();
        let p3 = spec.store_mut().declare_var("P3", sys_sort).unwrap();
        let pv = spec.store_mut().var(p3);
        let f1p = spec.app("f1", &[pv]).unwrap();
        let f2p = spec.app("f2", &[pv]).unwrap();
        let nf2 = alg.not(spec.store_mut(), f2p).unwrap();
        let body = alg.implies(spec.store_mut(), f1p, nf2).unwrap();
        let conseq = Invariant::new(&spec, "conseq", p3, vec![], body).unwrap();
        invs.push(conseq);
        let mut prover = Prover::new(&mut spec, &ots, &invs);
        let report = prover.prove_by_cases("conseq", &["mutex"]).unwrap();
        assert!(report.is_proved(), "open: {:?}", report.open_cases());
    }

    #[test]
    fn parallel_obligations_are_deterministic() {
        // The same proof at jobs = 1, 2, 4 must produce identical reports:
        // per-step outcomes, passage/split tallies, and rewrite counts.
        let reports: Vec<ProofReport> = [1, 2, 4]
            .iter()
            .map(|&jobs| {
                let (mut spec, ots, invs) = build_machine();
                let config = ProverConfig {
                    jobs,
                    record_scores: true,
                    ..ProverConfig::default()
                };
                let mut prover = Prover::new(&mut spec, &ots, &invs).with_config(config);
                prover.prove_inductive("mutex", &Hints::new()).unwrap()
            })
            .collect();
        let baseline = &reports[0];
        assert!(baseline.is_proved());
        for report in &reports[1..] {
            assert_eq!(report.base.action, baseline.base.action);
            assert_eq!(report.base.outcome, baseline.base.outcome);
            assert_eq!(report.base.metrics, baseline.base.metrics);
            assert_eq!(report.steps.len(), baseline.steps.len());
            for (a, b) in report.steps.iter().zip(&baseline.steps) {
                assert_eq!(a.action, b.action);
                assert_eq!(a.outcome, b.outcome, "{}", a.action);
                assert_eq!(a.metrics, b.metrics, "{}", a.action);
                assert_eq!(a.rewrite_stats, b.rewrite_stats, "{}", a.action);
                assert_eq!(a.scores, b.scores, "{}", a.action);
            }
        }
    }

    #[test]
    fn injected_obligation_panic_is_contained_and_deterministic() {
        use equitls_rewrite::budget::{Fault, FaultKind, FaultPlan, FaultSite};
        // Panic the `lock2` obligation; every sibling must still prove,
        // and the report must be identical at jobs 1 and 4.
        let reports: Vec<ProofReport> = [1, 4]
            .iter()
            .map(|&jobs| {
                let (mut spec, ots, invs) = build_machine();
                let config = ProverConfig {
                    jobs,
                    fault_plan: Some(FaultPlan::new().with_fault(
                        Fault::new(FaultSite::Obligation, FaultKind::Panic, 0).in_scope("lock2"),
                    )),
                    ..ProverConfig::default()
                };
                let mut prover = Prover::new(&mut spec, &ots, &invs).with_config(config);
                prover.prove_inductive("mutex", &Hints::new()).unwrap()
            })
            .collect();
        for report in &reports {
            assert!(!report.is_proved());
            let faults = report.faults();
            assert_eq!(faults.len(), 1, "exactly the injected fault");
            assert_eq!(faults[0].0, "lock2");
            assert_eq!(faults[0].1.site, "obligation:lock2");
            assert!(
                faults[0].1.message.contains("injected fault"),
                "message: {}",
                faults[0].1.message
            );
            // Siblings are untouched.
            assert!(report.base.outcome.is_proved());
            for step in &report.steps {
                if step.action != "lock2" {
                    assert!(step.outcome.is_proved(), "{} poisoned", step.action);
                }
            }
        }
        let (a, b) = (&reports[0], &reports[1]);
        assert_eq!(a.base.outcome, b.base.outcome);
        for (x, y) in a.steps.iter().zip(&b.steps) {
            assert_eq!(x.action, y.action);
            assert_eq!(x.outcome, y.outcome, "{}", x.action);
            assert_eq!(x.metrics, y.metrics, "{}", x.action);
        }
    }

    #[test]
    fn cancelled_budget_skips_obligations_with_open_reports() {
        let (mut spec, ots, invs) = build_machine();
        let budget = Budget::unlimited();
        budget.cancel();
        let config = ProverConfig {
            budget,
            ..ProverConfig::default()
        };
        let mut prover = Prover::new(&mut spec, &ots, &invs).with_config(config);
        let report = prover.prove_inductive("mutex", &Hints::new()).unwrap();
        assert!(!report.is_proved());
        // Every obligation is a single open passage with a typed residual,
        // and the metrics invariant holds.
        let totals = report.total_metrics();
        assert_eq!(
            totals.passages,
            totals.proved + totals.vacuous + totals.open
        );
        assert_eq!(totals.open, 1 + report.steps.len());
        for (_, case) in report.open_cases() {
            assert!(case.residual.contains("cancelled"), "{}", case.residual);
        }
    }

    #[test]
    fn injected_fuel_starvation_leaves_obligation_open_with_rich_residual() {
        use equitls_rewrite::budget::{Fault, FaultKind, FaultPlan, FaultSite};
        let (mut spec, ots, invs) = build_machine();
        let config = ProverConfig {
            fault_plan: Some(FaultPlan::new().with_fault(
                Fault::new(FaultSite::Obligation, FaultKind::FuelStarvation, 0).in_scope("lock1"),
            )),
            ..ProverConfig::default()
        };
        let mut prover = Prover::new(&mut spec, &ots, &invs).with_config(config);
        let report = prover.prove_inductive("mutex", &Hints::new()).unwrap();
        assert!(!report.is_proved());
        let open = report.open_cases();
        assert!(open.iter().all(|(name, _)| name == "lock1"));
        // The residual is the full enriched error: limit and term.
        assert!(
            open.iter()
                .any(|(_, c)| c.residual.contains("fuel exhausted (limit 0)")),
            "open: {open:?}"
        );
    }

    #[test]
    fn proving_leaves_the_callers_spec_untouched() {
        // Obligations run on clones: two identical prove calls see the
        // same world, so their reports agree exactly.
        let (mut spec, ots, invs) = build_machine();
        let terms_before = spec.store().term_count();
        let first = {
            let mut prover = Prover::new(&mut spec, &ots, &invs);
            prover.prove_inductive("mutex", &Hints::new()).unwrap()
        };
        assert_eq!(spec.store().term_count(), terms_before);
        let second = {
            let mut prover = Prover::new(&mut spec, &ots, &invs);
            prover.prove_inductive("mutex", &Hints::new()).unwrap()
        };
        assert_eq!(first.total_passages(), second.total_passages());
        assert_eq!(first.total_rewrite_stats(), second.total_rewrite_stats());
    }

    #[test]
    fn hints_builder_dedups_and_scopes() {
        let hints = Hints::new()
            .lemma("inv2", "inv1")
            .lemma("inv2", "inv1")
            .lemma_for_action("inv2", "fakeSfin2", "lemma-l1");
        assert_eq!(hints.lemmas_for("inv2", None), vec!["inv1"]);
        assert_eq!(
            hints.lemmas_for("inv2", Some("fakeSfin2")),
            vec!["inv1", "lemma-l1"]
        );
        assert!(hints.lemmas_for("inv9", None).is_empty());
    }
}
