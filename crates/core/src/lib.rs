//! # equitls-core
//!
//! The OTS/CafeOBJ method — the primary contribution of *Equational
//! Approach to Formal Analysis of TLS* (Ogata & Futatsugi, ICDCS 2005) —
//! reconstructed in Rust.
//!
//! The method models a distributed system as an **observational transition
//! system** (OTS) written in equations, and verifies invariants by writing
//! **proof scores**: case analyses whose leaves are reductions of Boolean
//! terms to `true`. This crate supplies:
//!
//! * [`ots`] — OTS structure (observers, actions, initial state) collected
//!   from an `equitls-spec` specification;
//! * [`invariant`] — invariant templates (`inv_i`) and their registry;
//! * [`prover`] — the mechanized proof-score search: simultaneous
//!   induction over all transitions, automatic case splitting on blocked
//!   effective conditions, equality orientation (the paper's "nine
//!   equations"), and lemma strengthening of induction hypotheses;
//! * [`ledger`] — the crash-safe obligation ledger: per-obligation
//!   outcomes snapshotted at obligation boundaries so an interrupted
//!   campaign resumes without re-proving discharged obligations;
//! * [`report`] — per-invariant proof statistics (passages, splits,
//!   rewrites, time), the machine-checked analogue of the paper's effort
//!   figures;
//! * [`score`] — rendering discharged cases as CafeOBJ-style
//!   `open … close` proof passages for direct comparison with §5.2.
//!
//! # Example
//!
//! A one-bit machine whose flag can only be set, with the invariant that
//! the flag never goes from set to unset (trivially preserved):
//!
//! ```
//! use equitls_core::prelude::*;
//! use equitls_spec::prelude::*;
//!
//! let mut spec = Spec::new()?;
//! spec.begin_module("FLAG");
//! spec.hidden_sort("Sys")?;
//! spec.op("init", &[], "Sys", equitls_kernel::op::OpAttrs::defined())?;
//! spec.observer("flag", &["Sys"], "Bool")?;
//! spec.action("set", &["Sys"], "Sys")?;
//! let alg = spec.alg().clone();
//! let init = spec.parse_term("init")?;
//! let flag_init = spec.app("flag", &[init])?;
//! let ff = alg.ff(spec.store_mut());
//! let tt = alg.tt(spec.store_mut());
//! spec.eq("flag-init", flag_init, ff)?;
//! let s = spec.var("S", "Sys")?;
//! let set_s = spec.app("set", &[s])?;
//! let flag_set = spec.app("flag", &[set_s])?;
//! spec.eq("flag-set", flag_set, tt)?;
//!
//! let ots = Ots::from_spec(&mut spec, "Sys", "init")?;
//! // Invariant: flag(p) or not flag(p) — a tautology, provable with no
//! // case splits.
//! let sys = spec.sort_id("Sys")?;
//! let p = spec.store_mut().declare_var("P", sys)?;
//! let pv = spec.store_mut().var(p);
//! let flag_p = spec.app("flag", &[pv])?;
//! let not_flag = alg.not(spec.store_mut(), flag_p)?;
//! let body = alg.or(spec.store_mut(), flag_p, not_flag)?;
//! let inv = Invariant::new(&spec, "taut", p, vec![], body)?;
//! let mut set = InvariantSet::new();
//! set.push(inv);
//! let mut prover = Prover::new(&mut spec, &ots, &set);
//! let report = prover.prove_inductive("taut", &Hints::new())?;
//! assert!(report.is_proved());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod invariant;
pub mod ledger;
pub mod ots;
pub mod prover;
pub mod report;
pub mod score;

pub use error::CoreError;

/// Convenient re-exports.
pub mod prelude {
    pub use crate::error::CoreError;
    pub use crate::invariant::{Invariant, InvariantSet};
    pub use crate::ledger::{Ledger, LedgerEntry};
    pub use crate::ots::{Action, Observer, Ots};
    pub use crate::prover::{resolve_jobs, Hints, Prover, ProverConfig};
    pub use crate::report::{
        CaseOutcome, Decision, OpenCase, ProofReport, ProverMetrics, StepReport,
    };
    pub use crate::score::{
        render_passage, render_recorded_scores, render_report_table, render_step_table,
    };
}
