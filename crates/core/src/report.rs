//! Proof reports: what the prover did, per invariant and per transition.
//!
//! The paper reports that verifying its 18 invariants took about one week
//! of human effort (§1, §7). The machine-checked analogue is a
//! [`ProofReport`] per invariant: passages written, case splits chosen,
//! rewrite steps performed, wall-clock time — the data behind experiment
//! E9 in EXPERIMENTS.md. Reports serialize to JSON through the
//! hand-rolled `equitls_obs::json` layer, so the dependency closure stays
//! free of external crates.

use equitls_obs::json::JsonValue;
use equitls_rewrite::budget::WorkerFault;
use equitls_rewrite::engine::RewriteStats;
use std::fmt;
use std::time::Duration;

/// One decision on the path to a proof passage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Decision {
    /// Assumed a blocked effective condition true (all conjuncts).
    CondTrue {
        /// Rendered condition.
        cond: String,
    },
    /// Assumed a blocked effective condition false.
    CondFalse {
        /// Rendered condition.
        cond: String,
    },
    /// Assumed a single atom's truth value.
    Atom {
        /// Rendered atom.
        atom: String,
        /// The assumed value.
        value: bool,
    },
}

impl Decision {
    /// Human-readable rendering.
    pub fn render(&self) -> String {
        match self {
            Decision::CondTrue { cond } => format!("assume ({cond}) = true"),
            Decision::CondFalse { cond } => format!("assume ({cond}) = false"),
            Decision::Atom { atom, value } => format!("assume ({atom}) = {value}"),
        }
    }
}

impl fmt::Display for Decision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.render())
    }
}

/// A case the prover could not discharge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpenCase {
    /// The decisions leading to the case.
    pub decisions: Vec<String>,
    /// The rendered residual goal.
    pub residual: String,
}

/// Outcome of one proof obligation (base case or one transition).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CaseOutcome {
    /// All passages reduced to `true`.
    Proved,
    /// Some cases stayed open.
    Open(Vec<OpenCase>),
    /// The obligation's worker panicked; the panic was contained by
    /// `catch_unwind` and recorded here instead of poisoning siblings.
    Fault(WorkerFault),
}

impl CaseOutcome {
    /// `true` when fully discharged.
    pub fn is_proved(&self) -> bool {
        matches!(self, CaseOutcome::Proved)
    }

    /// The contained worker fault, when the obligation panicked.
    pub fn fault(&self) -> Option<&WorkerFault> {
        match self {
            CaseOutcome::Fault(f) => Some(f),
            _ => None,
        }
    }
}

/// Aggregate search statistics for one proof obligation.
///
/// This is the public, serializable successor of the prover's old private
/// `SearchStats`. Every proof passage (a leaf of the case tree) lands in
/// exactly one verdict bucket, so
/// `passages == proved + vacuous + open` always holds.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProverMetrics {
    /// Number of proof passages (leaves of the case tree).
    pub passages: usize,
    /// Number of case splits (internal nodes).
    pub splits: usize,
    /// Cumulative rewrite-rule applications.
    pub rewrites: u64,
    /// Deepest split chain.
    pub max_depth: usize,
    /// Passages that reduced to `true`.
    pub proved: usize,
    /// Passages whose effective condition was infeasible.
    pub vacuous: usize,
    /// Passages left open (residual goal, budget, or fuel).
    pub open: usize,
}

impl ProverMetrics {
    /// Component-wise sum (durations and depths take the max where that is
    /// the meaningful aggregate).
    pub fn merged(&self, other: &ProverMetrics) -> ProverMetrics {
        ProverMetrics {
            passages: self.passages + other.passages,
            splits: self.splits + other.splits,
            rewrites: self.rewrites + other.rewrites,
            max_depth: self.max_depth.max(other.max_depth),
            proved: self.proved + other.proved,
            vacuous: self.vacuous + other.vacuous,
            open: self.open + other.open,
        }
    }

    /// The metrics as a JSON object.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::Object(vec![
            ("passages".into(), JsonValue::Number(self.passages as f64)),
            ("splits".into(), JsonValue::Number(self.splits as f64)),
            ("rewrites".into(), JsonValue::Number(self.rewrites as f64)),
            ("max_depth".into(), JsonValue::Number(self.max_depth as f64)),
            ("proved".into(), JsonValue::Number(self.proved as f64)),
            ("vacuous".into(), JsonValue::Number(self.vacuous as f64)),
            ("open".into(), JsonValue::Number(self.open as f64)),
        ])
    }
}

/// Statistics for one obligation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StepReport {
    /// Action name (or `"init"` / `"case-analysis"`).
    pub action: String,
    /// Whether the obligation was discharged.
    pub outcome: CaseOutcome,
    /// Search statistics (passages, splits, verdict buckets).
    pub metrics: ProverMetrics,
    /// The normalizer's counters at the end of the obligation (rewrites,
    /// cache hits/misses, Boolean-ring normalizations, …).
    pub rewrite_stats: RewriteStats,
    /// Wall-clock time for the obligation.
    pub duration: Duration,
    /// Decision trails of discharged passages, when
    /// `ProverConfig::record_scores` is on (empty otherwise). Each trail
    /// renders as one CafeOBJ-style proof passage via
    /// [`crate::score::render_passage`].
    pub scores: Vec<Vec<Decision>>,
}

impl StepReport {
    /// The report as a JSON object (scores are omitted; they have their
    /// own textual rendering).
    pub fn to_json(&self) -> JsonValue {
        let mut fields = vec![
            ("action".to_string(), JsonValue::String(self.action.clone())),
            (
                "proved".to_string(),
                JsonValue::Bool(self.outcome.is_proved()),
            ),
        ];
        if let CaseOutcome::Fault(fault) = &self.outcome {
            fields.push((
                "fault".to_string(),
                JsonValue::Object(vec![
                    ("site".into(), JsonValue::String(fault.site.clone())),
                    ("message".into(), JsonValue::String(fault.message.clone())),
                ]),
            ));
        }
        fields.extend([
            ("metrics".to_string(), self.metrics.to_json()),
            (
                "cache_hit_rate".into(),
                JsonValue::Number(self.rewrite_stats.cache_hit_rate()),
            ),
            (
                "duration_ms".into(),
                JsonValue::from_u128(self.duration.as_millis()),
            ),
        ]);
        JsonValue::Object(fields)
    }
}

/// A full per-invariant report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProofReport {
    /// Invariant name.
    pub invariant: String,
    /// The base case (`init`) or the single case-analysis obligation.
    pub base: StepReport,
    /// One entry per transition for inductive proofs; empty for
    /// case-analysis proofs.
    pub steps: Vec<StepReport>,
    /// Total wall-clock time.
    pub duration: Duration,
}

impl ProofReport {
    /// Assemble a report.
    pub fn new(
        invariant: &str,
        base: StepReport,
        steps: Vec<StepReport>,
        duration: Duration,
    ) -> Self {
        ProofReport {
            invariant: invariant.to_string(),
            base,
            steps,
            duration,
        }
    }

    /// `true` when every obligation is discharged.
    pub fn is_proved(&self) -> bool {
        self.base.outcome.is_proved() && self.steps.iter().all(|s| s.outcome.is_proved())
    }

    /// The open cases, tagged by obligation name.
    pub fn open_cases(&self) -> Vec<(String, OpenCase)> {
        let mut out = Vec::new();
        let mut collect = |step: &StepReport| {
            if let CaseOutcome::Open(cases) = &step.outcome {
                for c in cases {
                    out.push((step.action.clone(), c.clone()));
                }
            }
        };
        collect(&self.base);
        for s in &self.steps {
            collect(s);
        }
        out
    }

    /// The contained worker faults, tagged by obligation name.
    pub fn faults(&self) -> Vec<(String, WorkerFault)> {
        let mut out = Vec::new();
        let mut collect = |step: &StepReport| {
            if let CaseOutcome::Fault(f) = &step.outcome {
                out.push((step.action.clone(), f.clone()));
            }
        };
        collect(&self.base);
        for s in &self.steps {
            collect(s);
        }
        out
    }

    /// Metrics summed over the base case and every transition.
    pub fn total_metrics(&self) -> ProverMetrics {
        self.steps
            .iter()
            .fold(self.base.metrics, |acc, s| acc.merged(&s.metrics))
    }

    /// Rewrite-engine counters summed over all obligations.
    pub fn total_rewrite_stats(&self) -> RewriteStats {
        self.steps.iter().fold(self.base.rewrite_stats, |acc, s| {
            acc.merged(s.rewrite_stats)
        })
    }

    /// Total proof passages across all obligations.
    pub fn total_passages(&self) -> usize {
        self.total_metrics().passages
    }

    /// Total case splits across all obligations.
    pub fn total_splits(&self) -> usize {
        self.total_metrics().splits
    }

    /// Total rewrite applications across all obligations.
    pub fn total_rewrites(&self) -> u64 {
        self.total_metrics().rewrites
    }

    /// The report as a JSON object.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::Object(vec![
            (
                "invariant".into(),
                JsonValue::String(self.invariant.clone()),
            ),
            ("proved".into(), JsonValue::Bool(self.is_proved())),
            ("base".into(), self.base.to_json()),
            (
                "steps".into(),
                JsonValue::Array(self.steps.iter().map(StepReport::to_json).collect()),
            ),
            ("totals".into(), self.total_metrics().to_json()),
            (
                "duration_ms".into(),
                JsonValue::from_u128(self.duration.as_millis()),
            ),
        ])
    }

    /// A one-line summary, suitable for tables.
    pub fn summary_row(&self) -> String {
        let verdict = if self.is_proved() {
            "PROVED"
        } else if !self.faults().is_empty() {
            "FAULT"
        } else {
            "OPEN"
        };
        format!(
            "{:<16} {:>7} {:>7} {:>10} {:>9.2?}  {}",
            self.invariant,
            self.total_passages(),
            self.total_splits(),
            self.total_rewrites(),
            self.duration,
            verdict
        )
    }
}

impl fmt::Display for ProofReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "invariant {}: {}",
            self.invariant,
            if self.is_proved() { "PROVED" } else { "OPEN" }
        )?;
        writeln!(
            f,
            "  {:<14} {:>8} {:>7} {:>10} {:>10}",
            "obligation", "passages", "splits", "rewrites", "time"
        )?;
        let write_step = |f: &mut fmt::Formatter<'_>, step: &StepReport| -> fmt::Result {
            writeln!(
                f,
                "  {:<14} {:>8} {:>7} {:>10} {:>10.2?} {}",
                step.action,
                step.metrics.passages,
                step.metrics.splits,
                step.metrics.rewrites,
                step.duration,
                match &step.outcome {
                    CaseOutcome::Proved => "",
                    CaseOutcome::Open(_) => "OPEN",
                    CaseOutcome::Fault(_) => "FAULT",
                }
            )
        };
        write_step(f, &self.base)?;
        for s in &self.steps {
            write_step(f, s)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use equitls_obs::json;

    fn step(name: &str, proved: bool) -> StepReport {
        StepReport {
            action: name.to_string(),
            outcome: if proved {
                CaseOutcome::Proved
            } else {
                CaseOutcome::Open(vec![OpenCase {
                    decisions: vec!["assume (x = y) = true".into()],
                    residual: "x \\in s".into(),
                }])
            },
            metrics: ProverMetrics {
                passages: 3,
                splits: 1,
                rewrites: 10,
                max_depth: 1,
                proved: if proved { 3 } else { 2 },
                vacuous: 0,
                open: if proved { 0 } else { 1 },
            },
            rewrite_stats: RewriteStats::default(),
            duration: Duration::from_millis(5),
            scores: Vec::new(),
        }
    }

    #[test]
    fn proved_report_aggregates_counts() {
        let r = ProofReport::new(
            "inv1",
            step("init", true),
            vec![step("a", true), step("b", true)],
            Duration::from_millis(20),
        );
        assert!(r.is_proved());
        assert_eq!(r.total_passages(), 9);
        assert_eq!(r.total_splits(), 3);
        assert_eq!(r.total_rewrites(), 30);
        assert!(r.open_cases().is_empty());
        assert!(r.summary_row().contains("PROVED"));
    }

    #[test]
    fn open_cases_are_tagged_with_their_obligation() {
        let r = ProofReport::new(
            "inv2",
            step("init", true),
            vec![step("fakeSfin2", false)],
            Duration::from_millis(20),
        );
        assert!(!r.is_proved());
        let open = r.open_cases();
        assert_eq!(open.len(), 1);
        assert_eq!(open[0].0, "fakeSfin2");
        assert!(r.summary_row().contains("OPEN"));
    }

    #[test]
    fn decisions_render_readably() {
        let d = Decision::Atom {
            atom: "b = intruder".into(),
            value: false,
        };
        assert_eq!(d.render(), "assume (b = intruder) = false");
        let c = Decision::CondTrue {
            cond: "c-cert(s,b)".into(),
        };
        assert!(c.to_string().contains("true"));
    }

    #[test]
    fn display_renders_a_table() {
        let r = ProofReport::new(
            "inv1",
            step("init", true),
            vec![step("chello", true)],
            Duration::from_millis(20),
        );
        let text = r.to_string();
        assert!(text.contains("invariant inv1: PROVED"));
        assert!(text.contains("chello"));
    }

    #[test]
    fn metrics_buckets_partition_passages() {
        let m = step("init", false).metrics;
        assert_eq!(m.passages, m.proved + m.vacuous + m.open);
        let merged = m.merged(&step("a", true).metrics);
        assert_eq!(
            merged.passages,
            merged.proved + merged.vacuous + merged.open
        );
    }

    #[test]
    fn fault_outcomes_are_collected_and_rendered() {
        let mut faulty = step("fakeSfin2", true);
        faulty.outcome = CaseOutcome::Fault(WorkerFault {
            site: "obligation:fakeSfin2".into(),
            message: "injected fault: panic at obligation call 0".into(),
        });
        faulty.metrics = ProverMetrics::default();
        let r = ProofReport::new(
            "inv2",
            step("init", true),
            vec![faulty],
            Duration::from_millis(20),
        );
        assert!(!r.is_proved());
        let faults = r.faults();
        assert_eq!(faults.len(), 1);
        assert_eq!(faults[0].0, "fakeSfin2");
        assert!(faults[0].1.message.contains("injected fault"));
        assert!(r.summary_row().contains("FAULT"));
        assert!(r.to_string().contains("FAULT"));
        let rendered = r.to_json().to_string();
        let parsed = json::parse(&rendered).expect("report JSON parses");
        let steps = parsed.get("steps").expect("steps");
        let first_step = match steps {
            JsonValue::Array(items) => items.first().expect("one step"),
            other => panic!("steps is not an array: {other:?}"),
        };
        let fault = first_step.get("fault").expect("fault object");
        assert_eq!(
            fault.get("site").and_then(|v| v.as_str()),
            Some("obligation:fakeSfin2")
        );
    }

    #[test]
    fn reports_serialize_to_valid_json() {
        let r = ProofReport::new(
            "inv1",
            step("init", true),
            vec![step("chello", false)],
            Duration::from_millis(20),
        );
        let rendered = r.to_json().to_string();
        let parsed = json::parse(&rendered).expect("report JSON parses");
        assert_eq!(
            parsed.get("invariant").and_then(|v| v.as_str()),
            Some("inv1")
        );
        assert_eq!(
            parsed
                .get("totals")
                .and_then(|t| t.get("passages"))
                .and_then(|v| v.as_f64()),
            Some(6.0)
        );
    }
}
