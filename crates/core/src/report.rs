//! Proof reports: what the prover did, per invariant and per transition.
//!
//! The paper reports that verifying its 18 invariants took about one week
//! of human effort (§1, §7). The machine-checked analogue is a
//! [`ProofReport`] per invariant: passages written, case splits chosen,
//! rewrite steps performed, wall-clock time — the data behind experiment
//! E9 in EXPERIMENTS.md.

use serde::Serialize;
use std::fmt;
use std::time::Duration;

/// One decision on the path to a proof passage.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub enum Decision {
    /// Assumed a blocked effective condition true (all conjuncts).
    CondTrue {
        /// Rendered condition.
        cond: String,
    },
    /// Assumed a blocked effective condition false.
    CondFalse {
        /// Rendered condition.
        cond: String,
    },
    /// Assumed a single atom's truth value.
    Atom {
        /// Rendered atom.
        atom: String,
        /// The assumed value.
        value: bool,
    },
}

impl Decision {
    /// Human-readable rendering.
    pub fn render(&self) -> String {
        match self {
            Decision::CondTrue { cond } => format!("assume ({cond}) = true"),
            Decision::CondFalse { cond } => format!("assume ({cond}) = false"),
            Decision::Atom { atom, value } => format!("assume ({atom}) = {value}"),
        }
    }
}

impl fmt::Display for Decision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.render())
    }
}

/// A case the prover could not discharge.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct OpenCase {
    /// The decisions leading to the case.
    pub decisions: Vec<String>,
    /// The rendered residual goal.
    pub residual: String,
}

/// Outcome of one proof obligation (base case or one transition).
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub enum CaseOutcome {
    /// All passages reduced to `true`.
    Proved,
    /// Some cases stayed open.
    Open(Vec<OpenCase>),
}

impl CaseOutcome {
    /// `true` when fully discharged.
    pub fn is_proved(&self) -> bool {
        matches!(self, CaseOutcome::Proved)
    }
}

/// Statistics for one obligation.
#[derive(Debug, Clone, Serialize)]
pub struct StepReport {
    /// Action name (or `"init"` / `"case-analysis"`).
    pub action: String,
    /// Whether the obligation was discharged.
    pub outcome: CaseOutcome,
    /// Number of proof passages (leaves of the case tree).
    pub passages: usize,
    /// Number of case splits (internal nodes).
    pub splits: usize,
    /// Cumulative rewrite-rule applications.
    pub rewrites: u64,
    /// Deepest split chain.
    pub max_depth: usize,
    /// Wall-clock time for the obligation.
    #[serde(with = "duration_millis")]
    pub duration: Duration,
    /// Decision trails of discharged passages, when
    /// `ProverConfig::record_scores` is on (empty otherwise). Each trail
    /// renders as one CafeOBJ-style proof passage via
    /// [`crate::score::render_passage`].
    #[serde(skip)]
    pub scores: Vec<Vec<Decision>>,
}

/// A full per-invariant report.
#[derive(Debug, Clone, Serialize)]
pub struct ProofReport {
    /// Invariant name.
    pub invariant: String,
    /// The base case (`init`) or the single case-analysis obligation.
    pub base: StepReport,
    /// One entry per transition for inductive proofs; empty for
    /// case-analysis proofs.
    pub steps: Vec<StepReport>,
    /// Total wall-clock time.
    #[serde(with = "duration_millis")]
    pub duration: Duration,
}

mod duration_millis {
    use serde::Serializer;
    use std::time::Duration;

    pub fn serialize<S: Serializer>(d: &Duration, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_u128(d.as_millis())
    }
}

impl ProofReport {
    /// Assemble a report.
    pub fn new(
        invariant: &str,
        base: StepReport,
        steps: Vec<StepReport>,
        duration: Duration,
    ) -> Self {
        ProofReport {
            invariant: invariant.to_string(),
            base,
            steps,
            duration,
        }
    }

    /// `true` when every obligation is discharged.
    pub fn is_proved(&self) -> bool {
        self.base.outcome.is_proved() && self.steps.iter().all(|s| s.outcome.is_proved())
    }

    /// The open cases, tagged by obligation name.
    pub fn open_cases(&self) -> Vec<(String, OpenCase)> {
        let mut out = Vec::new();
        let mut collect = |step: &StepReport| {
            if let CaseOutcome::Open(cases) = &step.outcome {
                for c in cases {
                    out.push((step.action.clone(), c.clone()));
                }
            }
        };
        collect(&self.base);
        for s in &self.steps {
            collect(s);
        }
        out
    }

    /// Total proof passages across all obligations.
    pub fn total_passages(&self) -> usize {
        self.base.passages + self.steps.iter().map(|s| s.passages).sum::<usize>()
    }

    /// Total case splits across all obligations.
    pub fn total_splits(&self) -> usize {
        self.base.splits + self.steps.iter().map(|s| s.splits).sum::<usize>()
    }

    /// Total rewrite applications across all obligations.
    pub fn total_rewrites(&self) -> u64 {
        self.base.rewrites + self.steps.iter().map(|s| s.rewrites).sum::<u64>()
    }

    /// A one-line summary, suitable for tables.
    pub fn summary_row(&self) -> String {
        format!(
            "{:<16} {:>7} {:>7} {:>10} {:>9.2?}  {}",
            self.invariant,
            self.total_passages(),
            self.total_splits(),
            self.total_rewrites(),
            self.duration,
            if self.is_proved() { "PROVED" } else { "OPEN" }
        )
    }
}

impl fmt::Display for ProofReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "invariant {}: {}",
            self.invariant,
            if self.is_proved() { "PROVED" } else { "OPEN" }
        )?;
        writeln!(
            f,
            "  {:<14} {:>8} {:>7} {:>10} {:>10}",
            "obligation", "passages", "splits", "rewrites", "time"
        )?;
        let write_step = |f: &mut fmt::Formatter<'_>, step: &StepReport| -> fmt::Result {
            writeln!(
                f,
                "  {:<14} {:>8} {:>7} {:>10} {:>10.2?} {}",
                step.action,
                step.passages,
                step.splits,
                step.rewrites,
                step.duration,
                if step.outcome.is_proved() { "" } else { "OPEN" }
            )
        };
        write_step(f, &self.base)?;
        for s in &self.steps {
            write_step(f, s)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn step(name: &str, proved: bool) -> StepReport {
        StepReport {
            action: name.to_string(),
            outcome: if proved {
                CaseOutcome::Proved
            } else {
                CaseOutcome::Open(vec![OpenCase {
                    decisions: vec!["assume (x = y) = true".into()],
                    residual: "x \\in s".into(),
                }])
            },
            passages: 3,
            splits: 1,
            rewrites: 10,
            max_depth: 1,
            duration: Duration::from_millis(5),
            scores: Vec::new(),
        }
    }

    #[test]
    fn proved_report_aggregates_counts() {
        let r = ProofReport::new(
            "inv1",
            step("init", true),
            vec![step("a", true), step("b", true)],
            Duration::from_millis(20),
        );
        assert!(r.is_proved());
        assert_eq!(r.total_passages(), 9);
        assert_eq!(r.total_splits(), 3);
        assert_eq!(r.total_rewrites(), 30);
        assert!(r.open_cases().is_empty());
        assert!(r.summary_row().contains("PROVED"));
    }

    #[test]
    fn open_cases_are_tagged_with_their_obligation() {
        let r = ProofReport::new(
            "inv2",
            step("init", true),
            vec![step("fakeSfin2", false)],
            Duration::from_millis(20),
        );
        assert!(!r.is_proved());
        let open = r.open_cases();
        assert_eq!(open.len(), 1);
        assert_eq!(open[0].0, "fakeSfin2");
        assert!(r.summary_row().contains("OPEN"));
    }

    #[test]
    fn decisions_render_readably() {
        let d = Decision::Atom {
            atom: "b = intruder".into(),
            value: false,
        };
        assert_eq!(d.render(), "assume (b = intruder) = false");
        let c = Decision::CondTrue {
            cond: "c-cert(s,b)".into(),
        };
        assert!(c.to_string().contains("true"));
    }

    #[test]
    fn display_renders_a_table() {
        let r = ProofReport::new(
            "inv1",
            step("init", true),
            vec![step("chello", true)],
            Duration::from_millis(20),
        );
        let text = r.to_string();
        assert!(text.contains("invariant inv1: PROVED"));
        assert!(text.contains("chello"));
    }
}
