//! Rendering proof scores as CafeOBJ-style text.
//!
//! §5.2 of the paper displays a proof passage:
//!
//! ```text
//! open ISTEP
//! -- arbitrary objects
//!   ops a10 b10 : -> Prin .  …
//! -- assumptions
//!   eq b1 = intruder . …
//! -- successor state
//!   eq p' = fakeSfin2(p,b10,a10,i10,l10,c10,r10,r20,pms10) .
//! -- check if the predicate is true.
//!   red inv1(p,pms(a,b,s)) implies istep2(a,b,b1,r1,r2,l,c,i,s) .
//! close
//! ```
//!
//! [`render_passage`] reproduces that shape from the prover's decision
//! trail so that EquiTLS output is directly comparable with the paper.

use crate::report::{Decision, ProofReport, StepReport};

/// Render one proof passage for the inductive case of `invariant` against
/// `action`.
///
/// `decisions` is the path of case-split assumptions; `arbitrary` lists
/// `(name, sort)` pairs for the declared constants; `goal` is the rendered
/// reduction target.
pub fn render_passage(
    invariant: &str,
    action: &str,
    arbitrary: &[(String, String)],
    decisions: &[Decision],
    goal: &str,
) -> String {
    let mut out = String::new();
    out.push_str("open ISTEP\n");
    if !arbitrary.is_empty() {
        out.push_str("-- arbitrary objects\n");
        for (name, sort) in arbitrary {
            out.push_str(&format!("  op {name} : -> {sort} .\n"));
        }
    }
    if !decisions.is_empty() {
        out.push_str("-- assumptions\n");
        for d in decisions {
            match d {
                Decision::CondTrue { cond } => {
                    out.push_str(&format!("  eq ({cond}) = true .\n"));
                }
                Decision::CondFalse { cond } => {
                    out.push_str(&format!("  eq ({cond}) = false .\n"));
                }
                Decision::Atom { atom, value } => {
                    out.push_str(&format!("  eq ({atom}) = {value} .\n"));
                }
            }
        }
    }
    out.push_str("-- successor state\n");
    out.push_str(&format!("  eq p' = {action}(p, …) .\n"));
    out.push_str("-- check if the predicate is true.\n");
    out.push_str(&format!("  red {goal} implies istep-{invariant}(…) .\n"));
    out.push_str("close\n");
    out
}

/// Render a per-invariant proof report as a fixed-width summary table —
/// the machine-checked analogue of the paper's "18 invariants in about one
/// week".
pub fn render_report_table(reports: &[ProofReport]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<16} {:>7} {:>7} {:>10} {:>10}  {}\n",
        "invariant", "passag.", "splits", "rewrites", "time", "verdict"
    ));
    out.push_str(&"-".repeat(70));
    out.push('\n');
    for r in reports {
        out.push_str(&r.summary_row());
        out.push('\n');
    }
    out
}

/// Render every recorded proof passage of a report (requires
/// `ProverConfig::record_scores`); the output is a sequence of
/// `open … close` blocks, one per discharged case, in the §5.2 style.
pub fn render_recorded_scores(report: &ProofReport) -> String {
    let mut out = String::new();
    let mut render_step = |step: &StepReport| {
        for trail in &step.scores {
            out.push_str(&render_passage(
                &report.invariant,
                &step.action,
                &[],
                trail,
                &format!("SIH({})", report.invariant),
            ));
            out.push('\n');
        }
    };
    render_step(&report.base);
    for step in &report.steps {
        render_step(step);
    }
    out
}

/// Render the per-obligation breakdown of one report.
pub fn render_step_table(report: &ProofReport) -> String {
    let mut out = format!("== {} ==\n", report.invariant);
    let mut push_step = |s: &StepReport| {
        out.push_str(&format!(
            "  {:<14} passages={:<5} splits={:<4} depth={:<3} {}\n",
            s.action,
            s.metrics.passages,
            s.metrics.splits,
            s.metrics.max_depth,
            if s.outcome.is_proved() { "ok" } else { "OPEN" }
        ));
    };
    push_step(&report.base);
    for s in &report.steps {
        push_step(s);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::{CaseOutcome, OpenCase};
    use std::time::Duration;

    #[test]
    fn passage_rendering_matches_the_papers_shape() {
        let text = render_passage(
            "inv2",
            "fakeSfin2",
            &[("b10".into(), "Prin".into()), ("r10".into(), "Rand".into())],
            &[
                Decision::CondTrue {
                    cond: "pms(a,b,s) \\in cpms(nw(p))".into(),
                },
                Decision::Atom {
                    atom: "b = intruder".into(),
                    value: false,
                },
            ],
            "inv1(p,pms(a,b,s))",
        );
        assert!(text.starts_with("open ISTEP"));
        assert!(text.contains("op b10 : -> Prin ."));
        assert!(text.contains("eq (b = intruder) = false ."));
        assert!(text.contains("eq p' = fakeSfin2(p, …) ."));
        assert!(text.trim_end().ends_with("close"));
    }

    fn tiny_report(proved: bool) -> ProofReport {
        use crate::report::ProverMetrics;
        use equitls_rewrite::engine::RewriteStats;
        let step = StepReport {
            action: "chello".into(),
            outcome: if proved {
                CaseOutcome::Proved
            } else {
                CaseOutcome::Open(vec![OpenCase {
                    decisions: vec![],
                    residual: "stuck".into(),
                }])
            },
            metrics: ProverMetrics {
                passages: 2,
                splits: 1,
                rewrites: 7,
                max_depth: 1,
                proved: if proved { 2 } else { 1 },
                vacuous: 0,
                open: if proved { 0 } else { 1 },
            },
            rewrite_stats: RewriteStats::default(),
            duration: Duration::from_millis(1),
            scores: Vec::new(),
        };
        ProofReport::new(
            "inv1",
            StepReport {
                action: "init".into(),
                outcome: CaseOutcome::Proved,
                metrics: ProverMetrics {
                    passages: 1,
                    rewrites: 2,
                    proved: 1,
                    ..ProverMetrics::default()
                },
                rewrite_stats: RewriteStats::default(),
                duration: Duration::from_millis(1),
                scores: Vec::new(),
            },
            vec![step],
            Duration::from_millis(2),
        )
    }

    #[test]
    fn tables_render_rows_per_invariant_and_obligation() {
        let table = render_report_table(&[tiny_report(true)]);
        assert!(table.contains("inv1"));
        assert!(table.contains("PROVED"));
        let steps = render_step_table(&tiny_report(false));
        assert!(steps.contains("chello"));
        assert!(steps.contains("OPEN"));
    }
}
