//! Invariant declarations (§2.4's `INV` module).
//!
//! An invariant `inv_i` is a Bool-valued predicate over a state and zero or
//! more data parameters. Following the paper, we keep it as a *template
//! term* with a distinguished state variable and parameter variables;
//! instantiation is substitution:
//!
//! ```text
//! op inv1 : Protocol Pms -> Bool
//! eq inv1(P, PMS) = (PMS \in cpms(nw(P)) implies …) .
//! ```
//!
//! corresponds to an [`Invariant`] whose `body` is the right-hand side with
//! `P` and `PMS` as variables.

use crate::error::CoreError;
use equitls_kernel::prelude::*;
use equitls_spec::spec::Spec;

/// A named invariant template.
#[derive(Debug, Clone)]
pub struct Invariant {
    /// Name, e.g. `"inv1"`.
    pub name: String,
    /// The state variable occurring in `body`.
    pub state_var: VarId,
    /// Parameter variables (besides the state), with their names.
    pub params: Vec<VarId>,
    /// The Bool-sorted template term.
    pub body: TermId,
}

impl Invariant {
    /// Declare an invariant.
    ///
    /// `state_var` and `params` must be variables of the spec's store;
    /// `body` must be Bool-sorted and use no other variables.
    ///
    /// # Errors
    ///
    /// [`CoreError::MalformedOts`] when the body has the wrong sort or
    /// stray variables.
    pub fn new(
        spec: &Spec,
        name: &str,
        state_var: VarId,
        params: Vec<VarId>,
        body: TermId,
    ) -> Result<Self, CoreError> {
        if spec.store().sort_of(body) != spec.alg().sort() {
            return Err(CoreError::MalformedOts(format!(
                "invariant `{name}` body is not Bool-sorted"
            )));
        }
        for v in spec.store().vars_of(body) {
            if v != state_var && !params.contains(&v) {
                return Err(CoreError::MalformedOts(format!(
                    "invariant `{name}` body uses undeclared variable `{}`",
                    spec.store().var_decl(v).name
                )));
            }
        }
        Ok(Invariant {
            name: name.to_string(),
            state_var,
            params,
            body,
        })
    }

    /// Sorts of the parameter variables.
    pub fn param_sorts(&self, spec: &Spec) -> Vec<SortId> {
        self.params
            .iter()
            .map(|&v| spec.store().var_decl(v).sort)
            .collect()
    }

    /// Instantiate the template at a state term and parameter terms.
    ///
    /// # Errors
    ///
    /// [`CoreError::MalformedOts`] when the number of parameters differs.
    /// Sort errors surface as kernel errors.
    pub fn instantiate(
        &self,
        spec: &mut Spec,
        state: TermId,
        params: &[TermId],
    ) -> Result<TermId, CoreError> {
        if params.len() != self.params.len() {
            return Err(CoreError::MalformedOts(format!(
                "invariant `{}` expects {} parameters, got {}",
                self.name,
                self.params.len(),
                params.len()
            )));
        }
        let mut subst = Subst::new();
        subst.bind(self.state_var, state);
        for (&v, &t) in self.params.iter().zip(params.iter()) {
            subst.bind(v, t);
        }
        Ok(subst.apply(spec.store_mut(), self.body))
    }
}

/// A registry of invariants, looked up by name when strengthening
/// induction hypotheses.
#[derive(Debug, Clone, Default)]
pub struct InvariantSet {
    invariants: Vec<Invariant>,
}

impl InvariantSet {
    /// Empty set.
    pub fn new() -> Self {
        InvariantSet::default()
    }

    /// Add an invariant.
    pub fn push(&mut self, inv: Invariant) {
        self.invariants.push(inv);
    }

    /// Look up by name.
    pub fn get(&self, name: &str) -> Option<&Invariant> {
        self.invariants.iter().find(|i| i.name == name)
    }

    /// All invariants in declaration order.
    pub fn iter(&self) -> impl Iterator<Item = &Invariant> {
        self.invariants.iter()
    }

    /// Number of invariants.
    pub fn len(&self) -> usize {
        self.invariants.len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.invariants.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec_with_pred() -> (Spec, VarId, VarId, TermId) {
        let mut spec = Spec::new().unwrap();
        spec.begin_module("M");
        spec.visible_sort("D").unwrap();
        spec.hidden_sort("Sys").unwrap();
        spec.constructor("d0", &[], "D").unwrap();
        spec.defined_op("ok?", &["Sys", "D"], "Bool").unwrap();
        let sys = spec.sort_id("Sys").unwrap();
        let d = spec.sort_id("D").unwrap();
        let p = spec.store_mut().declare_var("P", sys).unwrap();
        let x = spec.store_mut().declare_var("X", d).unwrap();
        let pv = spec.store_mut().var(p);
        let xv = spec.store_mut().var(x);
        let body = spec.app("ok?", &[pv, xv]).unwrap();
        (spec, p, x, body)
    }

    #[test]
    fn instantiation_substitutes_all_variables() {
        let (mut spec, p, x, body) = spec_with_pred();
        let inv = Invariant::new(&spec, "inv", p, vec![x], body).unwrap();
        let sys = spec.sort_id("Sys").unwrap();
        let state = spec.store_mut().fresh_constant("s", sys);
        let d0 = spec.const_term("d0").unwrap();
        let inst = inv.instantiate(&mut spec, state, &[d0]).unwrap();
        assert!(spec.store().is_ground(inst));
        assert_eq!(spec.store().args(inst), &[state, d0]);
    }

    #[test]
    fn wrong_parameter_count_is_rejected() {
        let (mut spec, p, x, body) = spec_with_pred();
        let inv = Invariant::new(&spec, "inv", p, vec![x], body).unwrap();
        let sys = spec.sort_id("Sys").unwrap();
        let state = spec.store_mut().fresh_constant("s", sys);
        assert!(inv.instantiate(&mut spec, state, &[]).is_err());
    }

    #[test]
    fn non_bool_body_is_rejected() {
        let (mut spec, p, x, _) = spec_with_pred();
        let d0_body = spec.const_term("d0").unwrap();
        let e = Invariant::new(&spec, "bad", p, vec![x], d0_body);
        assert!(matches!(e, Err(CoreError::MalformedOts(_))));
    }

    #[test]
    fn stray_variables_are_rejected() {
        let (mut spec, p, _x, body) = spec_with_pred();
        // Omit X from the params: body uses an undeclared variable.
        let e = Invariant::new(&spec, "bad", p, vec![], body);
        assert!(matches!(e, Err(CoreError::MalformedOts(_))));
        let _ = &mut spec;
    }

    #[test]
    fn registry_lookup_by_name() {
        let (spec, p, x, body) = spec_with_pred();
        let inv = Invariant::new(&spec, "inv1", p, vec![x], body).unwrap();
        let mut set = InvariantSet::new();
        assert!(set.is_empty());
        set.push(inv);
        assert_eq!(set.len(), 1);
        assert!(set.get("inv1").is_some());
        assert!(set.get("inv2").is_none());
    }
}
