//! The OTS framework on a protocol that is not TLS: a two-node token
//! system modeled equationally, with an inductive safety proof and a
//! deliberately false property — exercising the prover's generality.
//!
//! The machine: a token travels between node 1 and node 2 over a lossy
//! channel; a node may only enter its critical section while holding the
//! token. Safety: nodes are never both in the critical section.

use equitls_core::prelude::*;
use equitls_spec::prelude::*;

fn token_machine() -> (Spec, Ots, InvariantSet) {
    let mut spec = Spec::new().unwrap();
    spec.load_module(
        r#"
        mod! TOKEN {
          [ Node ]
          *[ Sys ]*
          op n1 : -> Node {constr} .
          op n2 : -> Node {constr} .
          op init : -> Sys .
          bop holder : Sys -> Node .
          bop crit : Sys Node -> Bool .
          bop pass : Sys -> Sys .
          bop enter : Sys Node -> Sys .
          bop leave : Sys Node -> Sys .
          var S : Sys . vars N N2 : Node .

          eq holder(init) = n1 .
          eq crit(init, N) = false .

          -- pass: the holder hands the token over, unless it is critical
          op c-pass : Sys -> Bool .
          eq c-pass(S) = not crit(S, holder(S)) .
          ceq holder(pass(S)) = n2 if c-pass(S) and holder(S) = n1 .
          ceq holder(pass(S)) = n1 if c-pass(S) and holder(S) = n2 .
          eq crit(pass(S), N) = crit(S, N) .
          ceq pass(S) = S if not c-pass(S) .

          -- enter: only the holder may enter
          op c-enter : Sys Node -> Bool .
          eq c-enter(S, N) = holder(S) = N and not crit(S, N) .
          ceq crit(enter(S, N), N2) = true if c-enter(S, N) and N2 = N .
          ceq crit(enter(S, N), N2) = crit(S, N2)
            if not (c-enter(S, N) and N2 = N) .
          eq holder(enter(S, N)) = holder(S) .

          -- leave: unconditional exit
          ceq crit(leave(S, N), N2) = false if N2 = N .
          ceq crit(leave(S, N), N2) = crit(S, N2) if not (N2 = N) .
          eq holder(leave(S, N)) = holder(S) .
        }
        "#,
    )
    .unwrap();
    let ots = Ots::from_spec(&mut spec, "Sys", "init").unwrap();
    let alg = spec.alg().clone();
    let sys = spec.sort_id("Sys").unwrap();
    let node = spec.sort_id("Node").unwrap();
    let p = spec.store_mut().declare_var("Ptok", sys).unwrap();
    let n = spec.store_mut().declare_var("Ntok", node).unwrap();
    let pv = spec.store_mut().var(p);
    let nv = spec.store_mut().var(n);

    let mut set = InvariantSet::new();
    // Safety: critical implies holding the token.
    let crit = spec.app("crit", &[pv, nv]).unwrap();
    let holder = spec.app("holder", &[pv]).unwrap();
    let holds = spec.eq_term(holder, nv).unwrap();
    let body = alg.implies(spec.store_mut(), crit, holds).unwrap();
    set.push(Invariant::new(&spec, "crit-implies-token", p, vec![n], body).unwrap());

    // Mutual exclusion, a consequence (both critical → both hold → n1=n2).
    let n1 = spec.const_term("n1").unwrap();
    let n2 = spec.const_term("n2").unwrap();
    let c1 = spec.app("crit", &[pv, n1]).unwrap();
    let c2 = spec.app("crit", &[pv, n2]).unwrap();
    let both = alg.and(spec.store_mut(), c1, c2).unwrap();
    let mutex = alg.not(spec.store_mut(), both).unwrap();
    set.push(Invariant::new(&spec, "mutex", p, vec![], mutex).unwrap());

    // A FALSE property: node 2 never enters the critical section.
    let never = alg.not(spec.store_mut(), c2).unwrap();
    set.push(Invariant::new(&spec, "bogus-n2-never-critical", p, vec![], never).unwrap());

    (spec, ots, set)
}

#[test]
fn token_safety_proves_inductively() {
    let (mut spec, ots, invariants) = token_machine();
    let mut prover = Prover::new(&mut spec, &ots, &invariants);
    let report = prover
        .prove_inductive("crit-implies-token", &Hints::new())
        .unwrap();
    assert!(report.is_proved(), "open: {:#?}", report.open_cases());
    assert_eq!(report.steps.len(), 3, "pass/enter/leave");
}

#[test]
fn mutual_exclusion_follows_by_case_analysis() {
    let (mut spec, ots, invariants) = token_machine();
    let mut prover = Prover::new(&mut spec, &ots, &invariants);
    let report = prover
        .prove_by_cases("mutex", &["crit-implies-token"])
        .unwrap();
    assert!(report.is_proved(), "open: {:#?}", report.open_cases());
}

#[test]
fn the_false_property_stays_open_at_enter() {
    let (mut spec, ots, invariants) = token_machine();
    let mut prover = Prover::new(&mut spec, &ots, &invariants);
    let report = prover
        .prove_inductive("bogus-n2-never-critical", &Hints::new())
        .unwrap();
    assert!(!report.is_proved());
    let open = report.open_cases();
    assert!(
        open.iter().any(|(action, _)| action == "enter"),
        "the refutation is the enter transition: {open:?}"
    );
}
