//! Deciding equalities over free constructors.
//!
//! The paper's perfect-cryptosystem assumption (§4.2) is operationalized by
//! treating the data constructors as **free**: distinct constructors build
//! distinct values (`pms(…) ≠ epms(…)`, `intruder ≠ ca`) and every
//! constructor is injective (`pms(a,b,s) = pms(a',b',s')` iff the arguments
//! are pairwise equal). This module implements that decision procedure:
//!
//! * reflexivity — identical terms (a `TermId` comparison) are equal;
//! * constructor clash — different constructor heads are unequal;
//! * injectivity — same constructor head decomposes into argument
//!   equalities;
//! * occurs check — a term is never equal to a *strict* constructor
//!   subterm of itself;
//! * everything else (arbitrary constants, stuck projections) stays
//!   **symbolic** and becomes a Boolean atom for the case-splitting prover.

use crate::bool_alg::BoolAlg;
use equitls_kernel::prelude::*;

/// The outcome of an equality decision.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EqVerdict {
    /// The sides are provably equal.
    True,
    /// The sides are provably unequal.
    False,
    /// Undecided: equal iff all the contained symbolic atom equalities
    /// hold. Each atom is an interned `_=_` application in canonical
    /// argument order. The empty conjunction never occurs (that would be
    /// [`EqVerdict::True`]).
    Atoms(Vec<TermId>),
}

impl EqVerdict {
    /// Conjoin another verdict into this one.
    fn and(self, other: EqVerdict) -> EqVerdict {
        match (self, other) {
            (EqVerdict::False, _) | (_, EqVerdict::False) => EqVerdict::False,
            (EqVerdict::True, v) | (v, EqVerdict::True) => v,
            (EqVerdict::Atoms(mut a), EqVerdict::Atoms(b)) => {
                for t in b {
                    if !a.contains(&t) {
                        a.push(t);
                    }
                }
                EqVerdict::Atoms(a)
            }
        }
    }

    /// Render the verdict as a Bool term (`true`, `false`, or a
    /// conjunction of atoms).
    ///
    /// # Errors
    ///
    /// Propagates kernel errors (cannot occur for well-sorted atoms).
    pub fn to_term(&self, store: &mut TermStore, alg: &BoolAlg) -> Result<TermId, KernelError> {
        match self {
            EqVerdict::True => Ok(alg.tt(store)),
            EqVerdict::False => Ok(alg.ff(store)),
            EqVerdict::Atoms(atoms) => alg.conj(store, atoms),
        }
    }
}

/// `true` when `needle` occurs strictly inside `hay` along a path of free
/// constructors.
///
/// If it does, `hay = needle` is false in the free term algebra (a term is
/// strictly larger than any of its constructor subterms).
fn constructor_contains(store: &TermStore, hay: TermId, needle: TermId) -> bool {
    if !store.is_constructor_headed(hay) {
        return false;
    }
    let args: Vec<TermId> = store.args(hay).to_vec();
    args.iter()
        .any(|&a| a == needle || constructor_contains(store, a, needle))
}

/// Decide `lhs = rhs`.
///
/// Both sides should already be in normal form with respect to the
/// specification's equations (the [`crate::engine::Normalizer`] guarantees
/// this before calling in).
///
/// # Errors
///
/// Propagates kernel errors from atom construction.
pub fn decide_equality(
    store: &mut TermStore,
    alg: &mut BoolAlg,
    lhs: TermId,
    rhs: TermId,
) -> Result<EqVerdict, KernelError> {
    if lhs == rhs {
        return Ok(EqVerdict::True);
    }
    let lhs_ctor = store.is_constructor_headed(lhs);
    let rhs_ctor = store.is_constructor_headed(rhs);
    if lhs_ctor && rhs_ctor {
        let lop = store.op_of(lhs).expect("constructor-headed");
        let rop = store.op_of(rhs).expect("constructor-headed");
        if lop != rop {
            return Ok(EqVerdict::False);
        }
        // Injectivity: decompose into argument equalities.
        let largs: Vec<TermId> = store.args(lhs).to_vec();
        let rargs: Vec<TermId> = store.args(rhs).to_vec();
        debug_assert_eq!(largs.len(), rargs.len());
        let mut verdict = EqVerdict::True;
        for (&l, &r) in largs.iter().zip(rargs.iter()) {
            verdict = verdict.and(decide_equality(store, alg, l, r)?);
            if verdict == EqVerdict::False {
                return Ok(EqVerdict::False);
            }
        }
        return Ok(verdict);
    }
    // Occurs check: nothing equals a strict constructor subterm of itself.
    if constructor_contains(store, lhs, rhs) || constructor_contains(store, rhs, lhs) {
        return Ok(EqVerdict::False);
    }
    // Symbolic atom, canonical argument order for symmetry.
    let (a, b) = if lhs <= rhs { (lhs, rhs) } else { (rhs, lhs) };
    let atom = alg.eq(store, a, b)?;
    Ok(EqVerdict::Atoms(vec![atom]))
}

#[cfg(test)]
mod tests {
    use super::*;

    struct World {
        store: TermStore,
        alg: BoolAlg,
        intruder: TermId,
        ca: TermId,
        pms: OpId,
        s0: TermId,
    }

    fn world() -> World {
        let mut sig = Signature::new();
        let alg = BoolAlg::install(&mut sig).unwrap();
        let prin = sig.add_visible_sort("Principal").unwrap();
        let secret = sig.add_visible_sort("Secret").unwrap();
        let pms_sort = sig.add_visible_sort("Pms").unwrap();
        let intruder_op = sig
            .add_constant("intruder", prin, OpAttrs::constructor())
            .unwrap();
        let ca_op = sig
            .add_constant("ca", prin, OpAttrs::constructor())
            .unwrap();
        let s0_op = sig
            .add_constant("s0", secret, OpAttrs::constructor())
            .unwrap();
        let pms = sig
            .add_op(
                "pms",
                &[prin, prin, secret],
                pms_sort,
                OpAttrs::constructor(),
            )
            .unwrap();
        let mut store = TermStore::new(sig);
        let intruder = store.constant(intruder_op);
        let ca = store.constant(ca_op);
        let s0 = store.constant(s0_op);
        World {
            store,
            alg,
            intruder,
            ca,
            pms,
            s0,
        }
    }

    #[test]
    fn reflexivity() {
        let mut w = world();
        let v = decide_equality(&mut w.store, &mut w.alg, w.intruder, w.intruder).unwrap();
        assert_eq!(v, EqVerdict::True);
    }

    #[test]
    fn constructor_clash_is_false() {
        let mut w = world();
        let v = decide_equality(&mut w.store, &mut w.alg, w.intruder, w.ca).unwrap();
        assert_eq!(v, EqVerdict::False);
    }

    #[test]
    fn injectivity_decomposes_into_argument_atoms() {
        let mut w = world();
        let prin = w.store.signature().sort_by_name("Principal").unwrap();
        let a = w.store.fresh_constant("a", prin);
        let b = w.store.fresh_constant("b", prin);
        let t1 = w.store.app(w.pms, &[a, w.intruder, w.s0]).unwrap();
        let t2 = w.store.app(w.pms, &[b, w.intruder, w.s0]).unwrap();
        match decide_equality(&mut w.store, &mut w.alg, t1, t2).unwrap() {
            EqVerdict::Atoms(atoms) => {
                assert_eq!(atoms.len(), 1);
                assert_eq!(w.store.display(atoms[0]).to_string(), "a#1 = b#2");
            }
            v => panic!("expected atoms, got {v:?}"),
        }
    }

    #[test]
    fn injectivity_detects_clashing_argument() {
        let mut w = world();
        let t1 = w.store.app(w.pms, &[w.intruder, w.intruder, w.s0]).unwrap();
        let t2 = w.store.app(w.pms, &[w.ca, w.intruder, w.s0]).unwrap();
        let v = decide_equality(&mut w.store, &mut w.alg, t1, t2).unwrap();
        assert_eq!(v, EqVerdict::False);
    }

    #[test]
    fn arbitrary_constants_stay_symbolic_and_canonical() {
        let mut w = world();
        let prin = w.store.signature().sort_by_name("Principal").unwrap();
        let a = w.store.fresh_constant("a", prin);
        let v1 = decide_equality(&mut w.store, &mut w.alg, a, w.intruder).unwrap();
        let v2 = decide_equality(&mut w.store, &mut w.alg, w.intruder, a).unwrap();
        assert_eq!(v1, v2, "equality atoms must be symmetric");
        assert!(matches!(v1, EqVerdict::Atoms(ref ts) if ts.len() == 1));
    }

    #[test]
    fn occurs_check_rejects_strict_subterms() {
        let mut w = world();
        let pms_sort = w.store.signature().sort_by_name("Pms").unwrap();
        let prin = w.store.signature().sort_by_name("Principal").unwrap();
        // wrap : Pms -> Pms constructor to build a term containing x
        let wrap = w
            .store
            .signature_mut()
            .add_op("wrap", &[pms_sort], pms_sort, OpAttrs::constructor())
            .unwrap();
        let _ = prin;
        let x = w.store.fresh_constant("x", pms_sort);
        let wx = w.store.app(wrap, &[x]).unwrap();
        let v = decide_equality(&mut w.store, &mut w.alg, x, wx).unwrap();
        assert_eq!(v, EqVerdict::False);
    }

    #[test]
    fn verdict_to_term_renders_conjunction() {
        let mut w = world();
        let prin = w.store.signature().sort_by_name("Principal").unwrap();
        let secret = w.store.signature().sort_by_name("Secret").unwrap();
        let a = w.store.fresh_constant("a", prin);
        let b = w.store.fresh_constant("b", prin);
        let s1 = w.store.fresh_constant("s", secret);
        let t1 = w.store.app(w.pms, &[a, a, s1]).unwrap();
        let t2 = w.store.app(w.pms, &[b, b, w.s0]).unwrap();
        match decide_equality(&mut w.store, &mut w.alg, t1, t2).unwrap() {
            EqVerdict::Atoms(atoms) => {
                assert_eq!(atoms.len(), 2, "a=b deduplicates, s=s0 remains");
            }
            v => panic!("expected atoms, got {v:?}"),
        }
    }
}
