//! Unified resource budgets, cooperative cancellation, and fault injection.
//!
//! Long-running analyses — inductive proof campaigns and finite-scope state
//! exploration — must degrade *gracefully* under time, memory, and fault
//! pressure: a runaway rewrite or a panicking worker must produce a partial,
//! well-formed report, never kill the whole run. This module is the shared
//! vocabulary for that contract:
//!
//! * [`Budget`] — a wall-clock deadline and a heap-byte ceiling (tracked via
//!   arena/state accounting, no allocator hooks) shared by every engine;
//! * [`CancelToken`] — one cooperative stop signal (an `AtomicBool`) observed
//!   by all workers, so a single `cancel()` stops the prover, the rewriting
//!   engine, and the explorer together;
//! * [`StopReason`] — the typed verdict recorded on partial results
//!   (`Exploration::complete == false`, obligations left open);
//! * [`FaultPlan`] / [`Fault`] — a deterministic fault-injection harness:
//!   inject a panic, fuel starvation, deadline expiry, or a cancellation at
//!   the *N*-th rewrite / successor call (optionally scoped to one
//!   obligation), so every degradation path is testable end-to-end and
//!   byte-identical at every `jobs` value;
//! * [`WorkerFault`] — the typed record of a contained worker panic,
//!   re-merged deterministically into reports instead of poisoning siblings.

use equitls_obs::rng::SplitMix64;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Why an analysis stopped before running to completion.
///
/// A `StopReason` always accompanies a *partial but well-formed* result:
/// tallies are internally consistent for the portion of the work that was
/// done, and nothing after the stop point is half-merged.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StopReason {
    /// The wall-clock deadline of the [`Budget`] passed.
    DeadlineExceeded,
    /// The tracked heap estimate crossed the [`Budget`] ceiling.
    MemoryExceeded,
    /// The shared [`CancelToken`] was cancelled.
    Cancelled,
    /// The rewriting fuel budget ran out.
    FuelExhausted,
    /// The explorer's state cap truncated the search.
    StateCapReached,
    /// The explorer's depth cap ended the search with a non-empty frontier.
    DepthCapReached,
    /// A spilled visited-set shard could not be read back (I/O error or
    /// checksum mismatch): the search cannot continue soundly without
    /// its dedup set, so it stops with a typed reason instead of
    /// risking re-expanded (wrongly counted) states.
    SpillFailed,
}

impl StopReason {
    /// Stable lower-case label, used in reports and obs counters.
    pub fn as_str(self) -> &'static str {
        match self {
            StopReason::DeadlineExceeded => "deadline exceeded",
            StopReason::MemoryExceeded => "memory ceiling exceeded",
            StopReason::Cancelled => "cancelled",
            StopReason::FuelExhausted => "fuel exhausted",
            StopReason::StateCapReached => "state cap reached",
            StopReason::DepthCapReached => "depth cap reached",
            StopReason::SpillFailed => "visited-set spill failed",
        }
    }
}

impl fmt::Display for StopReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A cooperative cancellation signal shared by every worker of a run.
///
/// Cancellation is *sticky*: once [`cancel`](CancelToken::cancel) is called
/// the token stays cancelled forever. Clones share the underlying flag.
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Request a cooperative stop; all holders of clones observe it.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    /// Whether a stop has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }
}

/// A shared resource budget: wall-clock deadline, heap-byte ceiling, and a
/// [`CancelToken`].
///
/// Cloning a `Budget` shares the cancellation token (and copies the deadline
/// and ceiling), so one budget value can be handed to the prover, to every
/// `Normalizer` clone, and to the explorer, and a single trip is observed
/// everywhere. Heap usage is *estimated* by the engines from their arena and
/// state counts — there are no allocator hooks — so the ceiling is a
/// good-faith tripwire, not a hard rlimit.
#[derive(Debug, Clone, Default)]
pub struct Budget {
    deadline: Option<Instant>,
    max_heap_bytes: Option<u64>,
    cancel: CancelToken,
}

impl Budget {
    /// A budget with no deadline and no memory ceiling (cancellation only).
    pub fn unlimited() -> Self {
        Self::default()
    }

    /// Set a wall-clock deadline `d` from now.
    pub fn with_deadline(mut self, d: Duration) -> Self {
        self.deadline = Some(Instant::now() + d);
        self
    }

    /// Set an absolute wall-clock deadline.
    pub fn with_deadline_at(mut self, at: Instant) -> Self {
        self.deadline = Some(at);
        self
    }

    /// Set a heap-byte ceiling on the engines' tracked usage estimate.
    pub fn with_max_heap_bytes(mut self, bytes: u64) -> Self {
        self.max_heap_bytes = Some(bytes);
        self
    }

    /// Convenience: heap ceiling in mebibytes.
    pub fn with_max_mem_mb(self, mb: u64) -> Self {
        self.with_max_heap_bytes(mb.saturating_mul(1024 * 1024))
    }

    /// Share an existing cancellation token instead of the fresh default.
    pub fn with_cancel_token(mut self, token: CancelToken) -> Self {
        self.cancel = token;
        self
    }

    /// A clone of the cancellation token (for handing to other threads).
    pub fn cancel_token(&self) -> CancelToken {
        self.cancel.clone()
    }

    /// Request a cooperative stop of everything sharing this budget.
    pub fn cancel(&self) {
        self.cancel.cancel();
    }

    /// Whether this budget can ever trip on its own (ignoring cancellation).
    pub fn has_limits(&self) -> bool {
        self.deadline.is_some() || self.max_heap_bytes.is_some()
    }

    /// The heap-byte ceiling, if one is set.
    pub fn max_heap_bytes(&self) -> Option<u64> {
        self.max_heap_bytes
    }

    /// Memory-pressure probe: the fraction of the heap ceiling a usage
    /// estimate consumes (`1.0` = exactly at the ceiling), or `None`
    /// when no ceiling is set. Engines with a graceful degradation path
    /// (the explorer's disk spill tier) act on pressure *before*
    /// [`Budget::check`] would hard-trip, and the fraction is a pure
    /// function of the estimate, so pressure-driven decisions stay
    /// deterministic at every `jobs` value.
    pub fn memory_pressure(&self, heap_bytes: u64) -> Option<f64> {
        self.max_heap_bytes
            .map(|max| heap_bytes as f64 / max.max(1) as f64)
    }

    /// The time left before the deadline, if one is set.
    pub fn remaining_time(&self) -> Option<Duration> {
        self.deadline
            .map(|at| at.saturating_duration_since(Instant::now()))
    }

    /// Check the budget against a current heap-usage estimate.
    ///
    /// Order of checks: cancellation, deadline, memory. Returns the first
    /// tripped [`StopReason`], or `Ok(())` when within budget.
    pub fn check(&self, heap_bytes: u64) -> Result<(), StopReason> {
        if self.cancel.is_cancelled() {
            return Err(StopReason::Cancelled);
        }
        if let Some(at) = self.deadline {
            if Instant::now() >= at {
                return Err(StopReason::DeadlineExceeded);
            }
        }
        if let Some(max) = self.max_heap_bytes {
            if heap_bytes > max {
                return Err(StopReason::MemoryExceeded);
            }
        }
        Ok(())
    }
}

/// Where in the pipeline an injected fault fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultSite {
    /// The *N*-th fuel-consuming rewrite step of a `Normalizer` session.
    Rewrite,
    /// The successor computation for the *N*-th explored state.
    Successor,
    /// The start of a named prover obligation (`at` is ignored / 0).
    Obligation,
    /// The *N*-th persist-layer snapshot write attempted by the scoped
    /// writer (prover ledger, explorer checkpoint, lint cache, serve job
    /// journal). Injection sits *above* `equitls-persist`: the writer
    /// consults its plan before touching the filesystem, so a fired fault
    /// models the whole write/rename/fsync sequence failing atomically —
    /// the previous snapshot (if any) stays intact, exactly the guarantee
    /// the real temp-file protocol gives on a mid-write crash.
    PersistWrite,
    /// The *N*-th visited-set shard *write* attempted by the explorer's
    /// spill tier (disk-full modeling). Attempts are counted in barrier
    /// order on the merge thread, so the index is jobs-invariant. A
    /// fired fault fails the write atomically — the shard stays
    /// resident and the search degrades to backpressure, never stops.
    SpillWrite,
    /// A visited-set shard *reload* from the spill tier. Unlike the
    /// other sites, `at` is the **shard id**, not a call index: reloads
    /// are demand-driven, so "shard 3 is unreadable" is the stable,
    /// jobs-invariant way to name one.
    SpillRead,
}

impl fmt::Display for FaultSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            FaultSite::Rewrite => "rewrite",
            FaultSite::Successor => "successor",
            FaultSite::Obligation => "obligation",
            FaultSite::PersistWrite => "persist write",
            FaultSite::SpillWrite => "spill write",
            FaultSite::SpillRead => "spill read",
        })
    }
}

/// What an injected fault does when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// Panic at the fault site (must be contained by `catch_unwind`).
    Panic,
    /// Drop the remaining rewriting fuel to zero.
    FuelStarvation,
    /// Behave as if the wall-clock deadline had just passed.
    DeadlineExpiry,
    /// Trip the shared [`CancelToken`].
    Cancel,
    /// Fail the operation with a simulated I/O error. Only meaningful at
    /// [`FaultSite::PersistWrite`]: the writer must degrade to
    /// warn-and-continue (counting `persist.snapshot_failed`), never
    /// abort the campaign.
    IoError,
    /// Bit-flip corruption: the data lands (or is read) with a flipped
    /// byte. Meaningful at [`FaultSite::SpillRead`], where it simulates
    /// a shard file whose checksum no longer matches — the reader must
    /// surface a typed checksum error, never decode garbage states.
    Corruption,
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            FaultKind::Panic => "panic",
            FaultKind::FuelStarvation => "fuel starvation",
            FaultKind::DeadlineExpiry => "deadline expiry",
            FaultKind::Cancel => "cancel",
            FaultKind::IoError => "io error",
            FaultKind::Corruption => "corruption",
        })
    }
}

/// One planned fault: fire `kind` at the `at`-th call of `site`, optionally
/// only within the named `scope` (a prover obligation name).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fault {
    /// Where the fault fires.
    pub site: FaultSite,
    /// What happens when it fires.
    pub kind: FaultKind,
    /// Restrict to one scope (obligation name); `None` matches any scope.
    pub scope: Option<String>,
    /// Zero-based call index at which the fault fires.
    pub at: u64,
}

impl Fault {
    /// A fault at `site` with `kind`, firing at call index `at`, any scope.
    pub fn new(site: FaultSite, kind: FaultKind, at: u64) -> Self {
        Fault {
            site,
            kind,
            scope: None,
            at,
        }
    }

    /// Restrict the fault to the named scope (e.g. one obligation).
    pub fn in_scope(mut self, scope: impl Into<String>) -> Self {
        self.scope = Some(scope.into());
        self
    }
}

/// A deterministic fault-injection plan.
///
/// A plan is a pure value: [`fault_for`](FaultPlan::fault_for) is a function
/// of `(site, scope, call index)` only, so the same plan run at any `jobs`
/// value injects exactly the same faults at exactly the same logical points
/// — which is what lets the determinism contract hold under injection.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    faults: Vec<Fault>,
}

impl FaultPlan {
    /// The empty plan (injects nothing).
    pub fn new() -> Self {
        Self::default()
    }

    /// Builder: add one fault.
    pub fn with_fault(mut self, fault: Fault) -> Self {
        self.faults.push(fault);
        self
    }

    /// Add one fault.
    pub fn push(&mut self, fault: Fault) {
        self.faults.push(fault);
    }

    /// Whether the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// The planned faults, in insertion order.
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// A SplitMix64-seeded random plan of `n` faults with call indices below
    /// `max_at`. Equal seeds yield equal plans; scopes are left open so the
    /// faults apply wherever the indices land.
    ///
    /// The random mix deliberately excludes the I/O sites —
    /// [`FaultSite::PersistWrite`], [`FaultSite::SpillWrite`],
    /// [`FaultSite::SpillRead`] (and with them [`FaultKind::IoError`] /
    /// [`FaultKind::Corruption`]): I/O faults are targeted at specific
    /// writers and shards by explicit plans, and adding a site here
    /// would silently reshuffle every seeded fixture pinned by the
    /// robustness suite.
    pub fn seeded(seed: u64, n: usize, max_at: u64) -> Self {
        let mut rng = SplitMix64::new(seed);
        let sites = [
            FaultSite::Rewrite,
            FaultSite::Successor,
            FaultSite::Obligation,
        ];
        let kinds = [
            FaultKind::Panic,
            FaultKind::FuelStarvation,
            FaultKind::DeadlineExpiry,
            FaultKind::Cancel,
        ];
        let mut plan = FaultPlan::new();
        for _ in 0..n {
            let site = *rng.choose(&sites);
            let kind = *rng.choose(&kinds);
            let at = if site == FaultSite::Obligation || max_at == 0 {
                0
            } else {
                rng.next_below(max_at)
            };
            plan.push(Fault::new(site, kind, at));
        }
        plan
    }

    /// The fault (if any) that fires at the `n`-th call of `site` within
    /// `scope`. A fault with `scope: None` matches every scope; the first
    /// match in insertion order wins.
    pub fn fault_for(&self, site: FaultSite, scope: &str, n: u64) -> Option<FaultKind> {
        self.faults
            .iter()
            .find(|f| f.site == site && f.at == n && f.scope.as_ref().is_none_or(|s| s == scope))
            .map(|f| f.kind)
    }

    /// Whether the `n`-th snapshot write of the persist writer named
    /// `scope` should fail. Sugar over [`fault_for`](Self::fault_for) at
    /// [`FaultSite::PersistWrite`]; any planned kind fails the write (an
    /// injected persist fault has exactly one observable effect — the
    /// snapshot does not land — so the kind carries no extra signal
    /// here).
    pub fn persist_write_fails(&self, scope: &str, n: u64) -> bool {
        self.fault_for(FaultSite::PersistWrite, scope, n).is_some()
    }
}

/// Panic with a deterministic, recognizable message for an injected fault.
///
/// Kept as a function so the panic message (and thus the recorded
/// [`WorkerFault`]) is identical at every `jobs` value.
pub fn trigger_injected_panic(site: FaultSite, scope: &str, n: u64) -> ! {
    if scope.is_empty() {
        panic!("injected fault: panic at {site} call {n}")
    } else {
        panic!("injected fault: panic at {site} call {n} (scope `{scope}`)")
    }
}

/// Extract a human-readable message from a caught panic payload.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// A worker panic that was contained by `catch_unwind` and recorded instead
/// of poisoning sibling work.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerFault {
    /// Where the fault occurred (e.g. `obligation:lem-src-honest`,
    /// `successor:17`).
    pub site: String,
    /// The panic message.
    pub message: String,
}

impl fmt::Display for WorkerFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "worker fault at {}: {}", self.site, self.message)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budget_never_trips() {
        let b = Budget::unlimited();
        assert!(b.check(u64::MAX).is_ok());
        assert!(!b.has_limits());
        assert!(b.remaining_time().is_none());
    }

    #[test]
    fn deadline_trips_after_expiry() {
        let b = Budget::unlimited().with_deadline(Duration::from_secs(3600));
        assert!(b.check(0).is_ok());
        let expired = Budget::unlimited().with_deadline_at(Instant::now());
        assert_eq!(expired.check(0), Err(StopReason::DeadlineExceeded));
    }

    #[test]
    fn memory_ceiling_trips_on_estimate() {
        let b = Budget::unlimited().with_max_mem_mb(1);
        assert!(b.check(1024 * 1024).is_ok());
        assert_eq!(b.check(1024 * 1024 + 1), Err(StopReason::MemoryExceeded));
    }

    #[test]
    fn cancellation_is_shared_and_sticky() {
        let b = Budget::unlimited();
        let clone = b.clone();
        let token = b.cancel_token();
        assert!(clone.check(0).is_ok());
        token.cancel();
        assert_eq!(b.check(0), Err(StopReason::Cancelled));
        assert_eq!(clone.check(0), Err(StopReason::Cancelled));
        assert!(token.is_cancelled());
    }

    #[test]
    fn cancel_precedes_deadline_in_check_order() {
        let b = Budget::unlimited().with_deadline_at(Instant::now());
        b.cancel();
        assert_eq!(b.check(0), Err(StopReason::Cancelled));
    }

    #[test]
    fn fault_plan_matches_site_scope_and_index() {
        let plan = FaultPlan::new()
            .with_fault(Fault::new(FaultSite::Rewrite, FaultKind::Panic, 5))
            .with_fault(
                Fault::new(FaultSite::Obligation, FaultKind::FuelStarvation, 0).in_scope("lem-one"),
            );
        assert_eq!(
            plan.fault_for(FaultSite::Rewrite, "anything", 5),
            Some(FaultKind::Panic)
        );
        assert_eq!(plan.fault_for(FaultSite::Rewrite, "anything", 4), None);
        assert_eq!(plan.fault_for(FaultSite::Successor, "", 5), None);
        assert_eq!(
            plan.fault_for(FaultSite::Obligation, "lem-one", 0),
            Some(FaultKind::FuelStarvation)
        );
        assert_eq!(plan.fault_for(FaultSite::Obligation, "lem-two", 0), None);
    }

    #[test]
    fn persist_write_faults_are_scoped_and_indexed() {
        let plan = FaultPlan::new()
            .with_fault(
                Fault::new(FaultSite::PersistWrite, FaultKind::IoError, 1).in_scope("ledger"),
            )
            .with_fault(Fault::new(FaultSite::PersistWrite, FaultKind::IoError, 0));
        // Index 0 matches the unscoped fault for every writer.
        assert!(plan.persist_write_fails("ledger", 0));
        assert!(plan.persist_write_fails("explorer", 0));
        // Index 1 only fails for the ledger writer.
        assert!(plan.persist_write_fails("ledger", 1));
        assert!(!plan.persist_write_fails("explorer", 1));
        assert!(!plan.persist_write_fails("ledger", 2));
        // Persist faults never leak into the other sites.
        assert_eq!(plan.fault_for(FaultSite::Rewrite, "ledger", 0), None);
        assert_eq!(plan.fault_for(FaultSite::Obligation, "ledger", 0), None);
    }

    #[test]
    fn seeded_plans_never_contain_persist_or_spill_sites() {
        for seed in 0..32 {
            let plan = FaultPlan::seeded(seed, 16, 100);
            assert!(
                plan.faults().iter().all(|f| {
                    !matches!(
                        f.site,
                        FaultSite::PersistWrite | FaultSite::SpillWrite | FaultSite::SpillRead
                    ) && !matches!(f.kind, FaultKind::IoError | FaultKind::Corruption)
                }),
                "seeded plan {seed} must keep the pinned site/kind mix"
            );
        }
    }

    #[test]
    fn memory_pressure_probe_is_a_fraction_of_the_ceiling() {
        let unlimited = Budget::unlimited();
        assert_eq!(unlimited.max_heap_bytes(), None);
        assert_eq!(unlimited.memory_pressure(u64::MAX), None);
        let b = Budget::unlimited().with_max_mem_mb(1);
        assert_eq!(b.max_heap_bytes(), Some(1024 * 1024));
        let half = b.memory_pressure(512 * 1024).unwrap();
        assert!((half - 0.5).abs() < 1e-9, "got {half}");
        let over = b.memory_pressure(2 * 1024 * 1024).unwrap();
        assert!((over - 2.0).abs() < 1e-9, "got {over}");
        // The probe never hard-trips on its own: check() still decides.
        assert_eq!(b.check(2 * 1024 * 1024), Err(StopReason::MemoryExceeded));
    }

    #[test]
    fn spill_faults_match_by_site_kind_and_index() {
        let plan = FaultPlan::new()
            .with_fault(
                Fault::new(FaultSite::SpillWrite, FaultKind::IoError, 2).in_scope("visited"),
            )
            .with_fault(
                Fault::new(FaultSite::SpillRead, FaultKind::Corruption, 3).in_scope("visited"),
            );
        assert_eq!(
            plan.fault_for(FaultSite::SpillWrite, "visited", 2),
            Some(FaultKind::IoError)
        );
        assert_eq!(plan.fault_for(FaultSite::SpillWrite, "visited", 1), None);
        assert_eq!(
            plan.fault_for(FaultSite::SpillRead, "visited", 3),
            Some(FaultKind::Corruption)
        );
        // Spill faults never leak into the persist writer's site.
        assert_eq!(plan.fault_for(FaultSite::PersistWrite, "visited", 2), None);
        assert!(!plan.persist_write_fails("visited", 2));
    }

    #[test]
    fn seeded_plans_are_reproducible() {
        let a = FaultPlan::seeded(42, 8, 1000);
        let b = FaultPlan::seeded(42, 8, 1000);
        assert_eq!(a, b);
        assert_eq!(a.faults().len(), 8);
        let c = FaultPlan::seeded(43, 8, 1000);
        assert_ne!(a, c);
    }

    #[test]
    fn injected_panic_message_is_deterministic() {
        let caught =
            std::panic::catch_unwind(|| trigger_injected_panic(FaultSite::Obligation, "lem-x", 0));
        let payload = caught.expect_err("must panic");
        assert_eq!(
            panic_message(&*payload),
            "injected fault: panic at obligation call 0 (scope `lem-x`)"
        );
    }

    #[test]
    fn worker_fault_displays_site_and_message() {
        let f = WorkerFault {
            site: "obligation:inv1".to_string(),
            message: "boom".to_string(),
        };
        assert_eq!(f.to_string(), "worker fault at obligation:inv1: boom");
    }
}
