//! # equitls-rewrite
//!
//! The rewriting engine of the EquiTLS reproduction of *Equational Approach
//! to Formal Analysis of TLS* (Ogata & Futatsugi, ICDCS 2005).
//!
//! The paper's proofs are all of the form: *write equations, then ask the
//! CafeOBJ `red` command to rewrite a Boolean term to `true`*. Three pieces
//! cooperate to make that decision procedure work, and this crate provides
//! all three:
//!
//! * [`rule`] / [`engine`] — equations used as left-to-right (conditional)
//!   rewrite rules, applied innermost-first with discrimination-tree
//!   candidate indexing, segmented memoization (plus an optional
//!   cross-obligation [`shared`] normal-form cache), and fuel-bounded
//!   termination;
//! * [`boolring`] — the Boolean-ring (GF(2) polynomial) normal form that
//!   makes propositional reasoning *complete*: any propositional tautology
//!   rewrites to `true` and any contradiction to `false`. This is the
//!   Hsiang–Dershowitz result the paper cites as [5] for the `BOOL` module;
//! * [`equality`] — the free-constructor equality procedure that decides
//!   `t1 = t2` for constructor terms (reflexivity, constructor clash,
//!   injectivity) and leaves everything else as a symbolic atom, which is
//!   how the paper's "perfect cryptosystem" assumption becomes executable.
//!
//! The [`engine::Normalizer`] additionally supports **assumptions** — the
//! equations declared inside a proof passage (`eq b1 = intruder .`) — and
//! reports **blocked conditions**: conditional rules whose condition could
//! not be decided, which is precisely the information an inductive prover
//! needs to choose its next case split.
//!
//! # Example: a propositional tautology reduces to `true`
//!
//! ```
//! use equitls_kernel::prelude::*;
//! use equitls_rewrite::prelude::*;
//!
//! let mut sig = Signature::new();
//! let alg = BoolAlg::install(&mut sig)?;
//! let mut store = TermStore::new(sig);
//! // Peirce's law: ((p -> q) -> p) -> p
//! let p = store.fresh_constant("p", alg.sort());
//! let q = store.fresh_constant("q", alg.sort());
//! let pq = alg.implies(&mut store, p, q)?;
//! let pqp = alg.implies(&mut store, pq, p)?;
//! let peirce = alg.implies(&mut store, pqp, p)?;
//!
//! let mut norm = Normalizer::new(alg.clone(), RuleSet::new());
//! assert!(norm.proves(&mut store, peirce)?);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod assumption;
pub mod bool_alg;
pub mod bool_rules;
pub mod boolring;
pub mod budget;
pub mod engine;
pub mod equality;
pub mod error;
pub mod rule;
pub mod shared;

pub use error::RewriteError;

/// Convenient re-exports of the engine's most used items.
pub mod prelude {
    pub use crate::assumption::{orient_equation, OrientedEq};
    pub use crate::bool_alg::BoolAlg;
    pub use crate::bool_rules::hd_bool_rules;
    pub use crate::boolring::Poly;
    pub use crate::budget::{
        Budget, CancelToken, Fault, FaultKind, FaultPlan, FaultSite, StopReason, WorkerFault,
    };
    pub use crate::engine::{EngineCounters, Normalizer, RewriteStats, RuleProfile};
    pub use crate::equality::EqVerdict;
    pub use crate::error::RewriteError;
    pub use crate::rule::{validate_rule, PathIndex, Rule, RuleDefect, RuleSet};
    pub use crate::shared::{SharedCacheStats, SharedNfCache};
}
