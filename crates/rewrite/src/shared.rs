//! A shared, read-mostly normal-form cache for parallel proof campaigns.
//!
//! The prover in `equitls-core` runs each proof obligation on a private
//! clone of the pristine specification, so the term arenas stay
//! thread-local without locking — and every obligation re-derives the
//! normal forms of the subterms it shares with its siblings (most
//! prominently the induction hypothesis `inv(s, xs)`, identical across
//! all step obligations of an invariant). [`SharedNfCache`] lets those
//! obligations exchange finished normal forms across arenas:
//!
//! * **Keys** are 128-bit *structural fingerprints* ([`fingerprint`]):
//!   a term hash over operator names, sorts, and tree shape, stable
//!   across arena clones (term ids are arena-local; names are not).
//! * **Values** are [`SharedEntry`]s: the normal form and the blocked
//!   conditions recorded while computing it, both as portable
//!   [`EncodedTerm`] symbol strings that any clone of the same
//!   specification can decode into its own arena.
//! * **Storage** is an `Arc`-shared map striped over [`SHARD_COUNT`]
//!   `RwLock` shards (std-only, no external crates): obligations mostly
//!   read, so lookups take a read lock on one shard and clone an `Arc`.
//!
//! ## Soundness contract
//!
//! A hit must leave the consumer exactly where a fresh computation would
//! have left it — the campaign's verdicts, counts, traces, and tallies
//! may never depend on cache contents (the PR 3 determinism contract).
//! The engine therefore gates participation hard (see
//! `Normalizer::set_shared_cache`): only assumption-free, cold-start
//! normalizations consult the cache, and only *clean windows* — sub-
//! computations that provably equal a from-scratch derivation (no memo
//! hit on a pre-window entry, no blocked-condition dedup against a
//! pre-window entry) — are published. Within those gates a hit replays
//! the published normal form and blocked conditions verbatim, which is
//! what the fresh computation would have produced; the residual coupling
//! (GF(2) atom order follows arena-local term ids) is pinned empirically
//! by the `parallel_determinism` suite, which compares full campaign
//! outcomes with the cache on and off at every thread count. The cache
//! ships **off by default** (`ProverConfig::shared_nf_cache`).

use equitls_kernel::prelude::*;
use equitls_kernel::term::Term;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// Number of lock stripes. A small power of two: the prover runs at most
/// a few dozen workers, and each lookup holds a shard lock only long
/// enough to clone an `Arc`.
pub const SHARD_COUNT: usize = 16;

/// Default entry capacity across all shards. Entries are a few hundred
/// bytes (encoded symbol strings), so the default bounds the cache around
/// tens of megabytes on pathological campaigns; publication stops
/// silently at the bound (a full shard rejects new entries — hits on
/// existing entries are unaffected).
pub const DEFAULT_SHARED_CAPACITY: usize = 1 << 18;

/// The 128-bit structural fingerprint of `t`: two independent 64-bit
/// lanes over the term's tree shape, operator names with arity and
/// result sort, and variable names with sorts. Identical term structures
/// fingerprint identically in *any* arena over the same vocabulary
/// (fresh-constant names are generated deterministically, so clones of
/// one pristine specification agree on them); term ids never enter the
/// hash.
///
/// The kernel computes fingerprints incrementally at intern time
/// ([`TermStore::fingerprint`]), so this is a table lookup — arena
/// clones inherit the table, which is what makes a shared-cache consult
/// O(1) instead of a walk over the subject.
pub fn fingerprint(store: &TermStore, t: TermId) -> u128 {
    store.fingerprint(t)
}

/// One symbol of an encoded term's pre-order flattening.
#[derive(Debug, Clone, PartialEq, Eq)]
enum EncSym {
    /// An operator application, identified by name and argument count
    /// (operator names are overloaded only by arity, so the pair resolves
    /// uniquely in any arena over the same vocabulary).
    App {
        /// Operator name.
        name: String,
        /// Number of arguments that follow.
        argc: usize,
    },
    /// A variable occurrence, identified by name and sort name.
    Var {
        /// Variable name.
        name: String,
        /// Sort name.
        sort: String,
    },
}

/// An arena-portable term: the pre-order symbol string of its tree, with
/// every operator and variable identified by name. Encoding is total;
/// decoding resolves names in the consumer's signature and fails (returns
/// `None`) when a name or arity does not resolve — the consumer treats
/// that as a cache miss.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EncodedTerm {
    syms: Vec<EncSym>,
}

impl EncodedTerm {
    /// Flatten `t` into its portable symbol string.
    pub fn encode(store: &TermStore, t: TermId) -> EncodedTerm {
        let mut syms = Vec::new();
        let mut stack = vec![t];
        while let Some(cur) = stack.pop() {
            match store.node(cur) {
                Term::Var(v) => {
                    let decl = store.var_decl(*v);
                    syms.push(EncSym::Var {
                        name: decl.name.clone(),
                        sort: store.signature().sort(decl.sort).name.clone(),
                    });
                }
                Term::App { op, args } => {
                    syms.push(EncSym::App {
                        name: store.signature().op(*op).name.clone(),
                        argc: args.len(),
                    });
                    stack.extend(args.iter().rev());
                }
            }
        }
        EncodedTerm { syms }
    }

    /// Rebuild the term in (a clone of) the originating vocabulary.
    /// Returns `None` when any symbol fails to resolve — an impossible
    /// vocabulary mismatch for true fingerprint matches, handled as a
    /// miss rather than an error.
    pub fn decode(&self, store: &mut TermStore) -> Option<TermId> {
        let mut cursor = 0;
        let t = self.decode_at(store, &mut cursor)?;
        (cursor == self.syms.len()).then_some(t)
    }

    fn decode_at(&self, store: &mut TermStore, cursor: &mut usize) -> Option<TermId> {
        let sym = self.syms.get(*cursor)?.clone();
        *cursor += 1;
        match sym {
            EncSym::Var { name, sort } => {
                let sid = store.signature().sort_by_name(&sort)?;
                let v = store.declare_var(&name, sid).ok()?;
                Some(store.var(v))
            }
            EncSym::App { name, argc } => {
                let mut args = Vec::with_capacity(argc);
                for _ in 0..argc {
                    args.push(self.decode_at(store, cursor)?);
                }
                let op = {
                    let sig = store.signature();
                    sig.ops_by_name(&name)
                        .iter()
                        .copied()
                        .find(|&o| sig.op(o).arity() == argc)?
                };
                store.app(op, &args).ok()
            }
        }
    }
}

/// A published normal-form record: the canonical form of some subject
/// term plus the blocked conditions its derivation recorded, all
/// arena-portable.
#[derive(Debug, Clone)]
pub struct SharedEntry {
    /// The subject's normal form.
    pub nf: EncodedTerm,
    /// The blocked conditions recorded while deriving it, in first-
    /// occurrence order (the consumer replays them with the same
    /// contains-dedup the engine applies to fresh recordings).
    pub blocked: Vec<EncodedTerm>,
}

/// Global counters for one cache (all participants combined).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SharedCacheStats {
    /// Lookups that found an entry.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries published.
    pub published: u64,
    /// Entries currently stored.
    pub entries: u64,
}

/// The shared normal-form cache: an `Arc`-shared, striped-`RwLock` map
/// from structural fingerprints to [`SharedEntry`]s. See the module
/// documentation for the soundness contract.
#[derive(Debug)]
pub struct SharedNfCache {
    shards: Vec<RwLock<HashMap<u128, Arc<SharedEntry>>>>,
    per_shard_cap: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    published: AtomicU64,
}

impl Default for SharedNfCache {
    fn default() -> Self {
        SharedNfCache::new()
    }
}

impl SharedNfCache {
    /// A cache with the default capacity.
    pub fn new() -> Self {
        SharedNfCache::with_capacity(DEFAULT_SHARED_CAPACITY)
    }

    /// A cache bounded to roughly `capacity` entries (split evenly over
    /// the shards; a full shard rejects further publications).
    pub fn with_capacity(capacity: usize) -> Self {
        SharedNfCache {
            shards: (0..SHARD_COUNT)
                .map(|_| RwLock::new(HashMap::new()))
                .collect(),
            per_shard_cap: (capacity / SHARD_COUNT).max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            published: AtomicU64::new(0),
        }
    }

    fn shard(&self, fp: u128) -> &RwLock<HashMap<u128, Arc<SharedEntry>>> {
        // High lane bits pick the stripe; the low lane keys within it.
        &self.shards[((fp >> 64) as usize) & (SHARD_COUNT - 1)]
    }

    /// Look up a fingerprint; clones the entry handle out of the shard so
    /// the lock is released before the caller decodes.
    pub fn lookup(&self, fp: u128) -> Option<Arc<SharedEntry>> {
        let found = self
            .shard(fp)
            .read()
            .expect("shared-nf shard")
            .get(&fp)
            .cloned();
        match &found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// `true` when `fp` is already published (cheap read-lock probe used
    /// by producers to skip re-encoding).
    pub fn contains(&self, fp: u128) -> bool {
        self.shard(fp)
            .read()
            .expect("shared-nf shard")
            .contains_key(&fp)
    }

    /// Publish an entry. First writer wins (identical computations
    /// publish identical entries, so which one lands is immaterial); a
    /// full shard rejects the entry. Returns whether the entry was
    /// stored.
    pub fn publish(&self, fp: u128, entry: SharedEntry) -> bool {
        let mut shard = self.shard(fp).write().expect("shared-nf shard");
        if shard.contains_key(&fp) {
            return false;
        }
        if shard.len() >= self.per_shard_cap {
            return false;
        }
        shard.insert(fp, Arc::new(entry));
        self.published.fetch_add(1, Ordering::Relaxed);
        true
    }

    /// Number of entries stored.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.read().expect("shared-nf shard").len())
            .sum()
    }

    /// `true` when nothing has been published.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of the global counters.
    pub fn stats(&self) -> SharedCacheStats {
        SharedCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            published: self.published.load(Ordering::Relaxed),
            entries: self.len() as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bool_alg::BoolAlg;

    fn world() -> (TermStore, BoolAlg, SortId, OpId, OpId) {
        let mut sig = Signature::new();
        let alg = BoolAlg::install(&mut sig).unwrap();
        let s = sig.add_visible_sort("S").unwrap();
        let c = sig.add_constant("c", s, OpAttrs::constructor()).unwrap();
        let f = sig.add_op("f", &[s, s], s, OpAttrs::defined()).unwrap();
        (TermStore::new(sig), alg, s, c, f)
    }

    #[test]
    fn fingerprints_are_stable_across_arena_clones() {
        let (mut store, _alg, s, c, f) = world();
        // A pristine snapshot taken *before* any fresh allocation: clones
        // of it replay the same creation sequence and so agree on fresh
        // names — exactly the prover's per-obligation spec clones.
        let pristine = store.clone();
        // Unrelated allocations in one clone shift term ids but must not
        // shift fingerprints.
        let mut clone = store.clone();
        let _noise = clone.fresh_constant("noise", s);
        let _more = clone.fresh_constant("noise", s);

        let t1 = {
            let a = store.fresh_constant("a", s);
            let cv = store.constant(c);
            store.app(f, &[a, cv]).unwrap()
        };
        let t2 = {
            let a = clone.fresh_constant("a", s);
            let cv = clone.constant(c);
            clone.app(f, &[a, cv]).unwrap()
        };
        // The fresh counter advanced differently, so the *names* differ —
        // align them by construction instead: same prefix, same order.
        // (The prover's clones replay identical creation sequences, which
        // is what makes names align in practice.)
        let fp1 = fingerprint(&store, t1);
        let fp2 = fingerprint(&clone, t2);
        assert_ne!(fp1, fp2, "different fresh names must not collide");

        let mut aligned = pristine.clone();
        let t3 = {
            let a = aligned.fresh_constant("a", s);
            let cv = aligned.constant(c);
            aligned.app(f, &[a, cv]).unwrap()
        };
        assert_eq!(fp1, fingerprint(&aligned, t3));
    }

    #[test]
    fn distinct_structures_get_distinct_fingerprints() {
        let (mut store, alg, s, c, f) = world();
        let cv = store.constant(c);
        let a = store.fresh_constant("a", s);
        let fca = store.app(f, &[cv, a]).unwrap();
        let fac = store.app(f, &[a, cv]).unwrap();
        assert_ne!(
            fingerprint(&store, fca),
            fingerprint(&store, fac),
            "argument order is structural"
        );
        let tt = alg.tt(&mut store);
        assert_ne!(fingerprint(&store, tt), fingerprint(&store, cv));
    }

    #[test]
    fn encode_decode_round_trips_across_clones() {
        let (mut store, _alg, s, c, f) = world();
        let mut clone = store.clone();
        let t = {
            let a = store.fresh_constant("a", s);
            let cv = store.constant(c);
            let inner = store.app(f, &[a, cv]).unwrap();
            store.app(f, &[inner, a]).unwrap()
        };
        let enc = EncodedTerm::encode(&store, t);
        // Same arena: decodes to the identical term id (hash-consing).
        assert_eq!(enc.decode(&mut store), Some(t));
        // A clone that replayed the same creation sequence decodes to its
        // own structurally identical term.
        let t2 = {
            let a = clone.fresh_constant("a", s);
            let cv = clone.constant(c);
            let inner = clone.app(f, &[a, cv]).unwrap();
            clone.app(f, &[inner, a]).unwrap()
        };
        assert_eq!(enc.decode(&mut clone), Some(t2));
        assert_eq!(fingerprint(&store, t), fingerprint(&clone, t2));
    }

    #[test]
    fn decode_fails_closed_on_unknown_vocabulary() {
        let (mut store, _alg, s, _c, _f) = world();
        let a = store.fresh_constant("only-here", s);
        let enc = EncodedTerm::encode(&store, a);
        // A store over a DIFFERENT signature lacks the fresh constant.
        let (mut other, _alg2, _s2, _c2, _f2) = world();
        assert_eq!(enc.decode(&mut other), None, "unknown op name is a miss");
    }

    #[test]
    fn encode_decode_handles_variables() {
        let (mut store, _alg, s, _c, f) = world();
        let x = store.declare_var("X", s).unwrap();
        let xt = store.var(x);
        let t = store.app(f, &[xt, xt]).unwrap();
        let enc = EncodedTerm::encode(&store, t);
        assert_eq!(enc.decode(&mut store), Some(t));
        // A clone without the variable declares it on decode.
        let (mut fresh, _a2, _s2, _c2, _f2) = world();
        let decoded = enc.decode(&mut fresh);
        let x2 = fresh.declare_var("X", s).unwrap();
        let xt2 = fresh.var(x2);
        let expected = fresh.app(f, &[xt2, xt2]).unwrap();
        assert_eq!(decoded, Some(expected));
    }

    #[test]
    fn cache_publishes_looks_up_and_counts() {
        let (mut store, _alg, s, c, f) = world();
        let cv = store.constant(c);
        let a = store.fresh_constant("a", s);
        let t = store.app(f, &[a, cv]).unwrap();
        let fp = fingerprint(&store, t);
        let cache = SharedNfCache::new();
        assert!(cache.is_empty());
        assert!(cache.lookup(fp).is_none());
        let entry = SharedEntry {
            nf: EncodedTerm::encode(&store, cv),
            blocked: vec![EncodedTerm::encode(&store, a)],
        };
        assert!(cache.publish(fp, entry.clone()));
        assert!(!cache.publish(fp, entry), "first writer wins");
        assert!(cache.contains(fp));
        let got = cache.lookup(fp).expect("published entry");
        assert_eq!(got.nf.decode(&mut store), Some(cv));
        assert_eq!(got.blocked.len(), 1);
        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.published, 1);
        assert_eq!(stats.entries, 1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn full_shards_reject_new_entries_but_keep_serving_hits() {
        let (mut store, _alg, s, _c, _f) = world();
        let cache = SharedNfCache::with_capacity(SHARD_COUNT); // 1 per shard
        let mut stored: Vec<(u128, TermId)> = Vec::new();
        let mut rejected = 0;
        for _ in 0..64 {
            let t = store.fresh_constant("x", s);
            let fp = fingerprint(&store, t);
            let entry = SharedEntry {
                nf: EncodedTerm::encode(&store, t),
                blocked: Vec::new(),
            };
            if cache.publish(fp, entry) {
                stored.push((fp, t));
            } else {
                rejected += 1;
            }
        }
        assert!(rejected > 0, "capacity bound must bite");
        assert!(cache.len() <= SHARD_COUNT);
        for (fp, t) in stored {
            let got = cache.lookup(fp).expect("stored entries keep serving");
            assert_eq!(got.nf.decode(&mut store), Some(t));
        }
    }
}
