//! The `BOOL` built-in: truth values, connectives, and per-sort equality.
//!
//! CafeOBJ specifications import the built-in module `BOOL`, giving the
//! visible sort `Bool`, the constants `true`/`false`, and the connectives
//! `not_`, `_and_`, `_or_`, `_xor_`, `_implies_`, `_iff_` plus
//! `if_then_else_fi`. [`BoolAlg::install`] declares all of these in a
//! signature and remembers their [`OpId`]s so the engine can recognize them
//! structurally.
//!
//! Equality `_=_` is declared *per sort, on demand* ([`BoolAlg::eq_op`]):
//! CafeOBJ overloads `_=_` at every visible sort, and the TLS specification
//! compares principals, messages, pre-master secrets and more.

use equitls_kernel::prelude::*;
use std::collections::HashMap;

/// Handle to the `BOOL` vocabulary inside a signature.
///
/// Cheap to clone; the engine and the prover both carry one.
#[derive(Debug, Clone)]
pub struct BoolAlg {
    sort: SortId,
    tt: OpId,
    ff: OpId,
    not: OpId,
    and: OpId,
    or: OpId,
    xor: OpId,
    imp: OpId,
    iff: OpId,
    ite: OpId,
    eq_ops: HashMap<SortId, OpId>,
}

impl BoolAlg {
    /// Declare the `BOOL` vocabulary in `sig` and return the handle.
    ///
    /// # Errors
    ///
    /// Propagates [`KernelError::DuplicateSort`]/[`KernelError::DuplicateOp`]
    /// if `BOOL` was already installed.
    pub fn install(sig: &mut Signature) -> Result<Self, KernelError> {
        let sort = sig.add_visible_sort("Bool")?;
        let tt = sig.add_constant("true", sort, OpAttrs::constructor())?;
        let ff = sig.add_constant("false", sort, OpAttrs::constructor())?;
        let not = sig.add_op("not_", &[sort], sort, OpAttrs::defined())?;
        let and = sig.add_op("_and_", &[sort, sort], sort, OpAttrs::defined())?;
        let or = sig.add_op("_or_", &[sort, sort], sort, OpAttrs::defined())?;
        let xor = sig.add_op("_xor_", &[sort, sort], sort, OpAttrs::defined())?;
        let imp = sig.add_op("_implies_", &[sort, sort], sort, OpAttrs::defined())?;
        let iff = sig.add_op("_iff_", &[sort, sort], sort, OpAttrs::defined())?;
        let ite = sig.add_op(
            "if_then_else_fi",
            &[sort, sort, sort],
            sort,
            OpAttrs::defined(),
        )?;
        let mut alg = BoolAlg {
            sort,
            tt,
            ff,
            not,
            and,
            or,
            xor,
            imp,
            iff,
            ite,
            eq_ops: HashMap::new(),
        };
        // `_=_` at Bool itself behaves as iff.
        alg.ensure_eq(sig, sort)?;
        Ok(alg)
    }

    /// Reconstruct a handle from a signature where `BOOL` is installed.
    ///
    /// Useful after deserializing a signature.
    ///
    /// # Errors
    ///
    /// [`KernelError::UnknownSort`]/[`KernelError::UnknownOp`] when the
    /// vocabulary is missing.
    pub fn from_signature(sig: &Signature) -> Result<Self, KernelError> {
        let sort = sig
            .sort_by_name("Bool")
            .ok_or_else(|| KernelError::UnknownSort("Bool".into()))?;
        let find = |name: &str| {
            sig.op_by_name(name)
                .ok_or_else(|| KernelError::UnknownOp(name.into()))
        };
        let mut eq_ops = HashMap::new();
        for (id, decl) in sig.ops() {
            if decl.name == "_=_" && decl.args.len() == 2 && decl.args[0] == decl.args[1] {
                eq_ops.insert(decl.args[0], id);
            }
        }
        Ok(BoolAlg {
            sort,
            tt: find("true")?,
            ff: find("false")?,
            not: find("not_")?,
            and: find("_and_")?,
            or: find("_or_")?,
            xor: find("_xor_")?,
            imp: find("_implies_")?,
            iff: find("_iff_")?,
            ite: find("if_then_else_fi")?,
            eq_ops,
        })
    }

    /// The `Bool` sort.
    pub fn sort(&self) -> SortId {
        self.sort
    }

    /// The `true` constant operator.
    pub fn true_op(&self) -> OpId {
        self.tt
    }

    /// The `false` constant operator.
    pub fn false_op(&self) -> OpId {
        self.ff
    }

    /// The `not_` operator.
    pub fn not_op(&self) -> OpId {
        self.not
    }

    /// The `_and_` operator.
    pub fn and_op(&self) -> OpId {
        self.and
    }

    /// The `_or_` operator.
    pub fn or_op(&self) -> OpId {
        self.or
    }

    /// The `_xor_` operator.
    pub fn xor_op(&self) -> OpId {
        self.xor
    }

    /// The `_implies_` operator.
    pub fn implies_op(&self) -> OpId {
        self.imp
    }

    /// The `_iff_` operator.
    pub fn iff_op(&self) -> OpId {
        self.iff
    }

    /// The `if_then_else_fi` operator (Bool-valued branches).
    pub fn ite_op(&self) -> OpId {
        self.ite
    }

    /// Declare (or fetch) the equality operator `_=_ : S S -> Bool`.
    ///
    /// # Errors
    ///
    /// Propagates kernel errors from the declaration.
    pub fn ensure_eq(&mut self, sig: &mut Signature, sort: SortId) -> Result<OpId, KernelError> {
        if let Some(&op) = self.eq_ops.get(&sort) {
            return Ok(op);
        }
        let op = match sig.resolve_op("_=_", &[sort, sort]) {
            Some(op) => op,
            None => sig.add_op("_=_", &[sort, sort], self.sort, OpAttrs::defined())?,
        };
        self.eq_ops.insert(sort, op);
        Ok(op)
    }

    /// The equality operator for `sort`, if declared.
    pub fn eq_op(&self, sort: SortId) -> Option<OpId> {
        self.eq_ops.get(&sort).copied()
    }

    /// `true` when `op` is an equality operator of some sort.
    pub fn is_eq_op(&self, op: OpId) -> bool {
        self.eq_ops.values().any(|&e| e == op)
    }

    /// Intern `true`.
    pub fn tt(&self, store: &mut TermStore) -> TermId {
        store.constant(self.tt)
    }

    /// Intern `false`.
    pub fn ff(&self, store: &mut TermStore) -> TermId {
        store.constant(self.ff)
    }

    /// Intern a truth constant.
    pub fn constant(&self, store: &mut TermStore, value: bool) -> TermId {
        if value {
            self.tt(store)
        } else {
            self.ff(store)
        }
    }

    /// `Some(b)` when `t` is the constant `true`/`false`.
    pub fn as_constant(&self, store: &TermStore, t: TermId) -> Option<bool> {
        match store.op_of(t) {
            Some(op) if op == self.tt => Some(true),
            Some(op) if op == self.ff => Some(false),
            _ => None,
        }
    }

    /// Intern `not a`.
    ///
    /// # Errors
    ///
    /// Propagates kernel sort errors.
    pub fn not(&self, store: &mut TermStore, a: TermId) -> Result<TermId, KernelError> {
        store.app(self.not, &[a])
    }

    /// Intern `a and b`.
    ///
    /// # Errors
    ///
    /// Propagates kernel sort errors.
    pub fn and(&self, store: &mut TermStore, a: TermId, b: TermId) -> Result<TermId, KernelError> {
        store.app(self.and, &[a, b])
    }

    /// Intern the conjunction of `terms` (`true` when empty).
    ///
    /// # Errors
    ///
    /// Propagates kernel sort errors.
    pub fn conj(&self, store: &mut TermStore, terms: &[TermId]) -> Result<TermId, KernelError> {
        // Balanced to keep term depth logarithmic in the conjunct count.
        match terms.len() {
            0 => Ok(self.tt(store)),
            1 => Ok(terms[0]),
            n => {
                let (left, right) = terms.split_at(n / 2);
                let l = self.conj(store, left)?;
                let r = self.conj(store, right)?;
                self.and(store, l, r)
            }
        }
    }

    /// Intern `a or b`.
    ///
    /// # Errors
    ///
    /// Propagates kernel sort errors.
    pub fn or(&self, store: &mut TermStore, a: TermId, b: TermId) -> Result<TermId, KernelError> {
        store.app(self.or, &[a, b])
    }

    /// Intern `a xor b`.
    ///
    /// # Errors
    ///
    /// Propagates kernel sort errors.
    pub fn xor(&self, store: &mut TermStore, a: TermId, b: TermId) -> Result<TermId, KernelError> {
        store.app(self.xor, &[a, b])
    }

    /// Intern `a implies b`.
    ///
    /// # Errors
    ///
    /// Propagates kernel sort errors.
    pub fn implies(
        &self,
        store: &mut TermStore,
        a: TermId,
        b: TermId,
    ) -> Result<TermId, KernelError> {
        store.app(self.imp, &[a, b])
    }

    /// Intern `a iff b`.
    ///
    /// # Errors
    ///
    /// Propagates kernel sort errors.
    pub fn iff(&self, store: &mut TermStore, a: TermId, b: TermId) -> Result<TermId, KernelError> {
        store.app(self.iff, &[a, b])
    }

    /// Intern the equality `a = b`, declaring `_=_` for the sort on demand.
    ///
    /// # Errors
    ///
    /// [`KernelError::SortMismatch`]-style errors when the sides disagree in
    /// sort.
    pub fn eq(
        &mut self,
        store: &mut TermStore,
        a: TermId,
        b: TermId,
    ) -> Result<TermId, KernelError> {
        let sort = store.sort_of(a);
        let op = {
            let sig = store.signature_mut();
            self.ensure_eq(sig, sort)?
        };
        store.app(op, &[a, b])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn install_declares_the_full_vocabulary() {
        let mut sig = Signature::new();
        let alg = BoolAlg::install(&mut sig).unwrap();
        assert_eq!(sig.sort(alg.sort()).name, "Bool");
        assert_eq!(sig.op(alg.and_op()).name, "_and_");
        assert_eq!(sig.op(alg.ite_op()).arity(), 3);
        assert!(alg.eq_op(alg.sort()).is_some());
    }

    #[test]
    fn double_install_is_rejected() {
        let mut sig = Signature::new();
        BoolAlg::install(&mut sig).unwrap();
        assert!(BoolAlg::install(&mut sig).is_err());
    }

    #[test]
    fn from_signature_round_trips() {
        let mut sig = Signature::new();
        let alg = BoolAlg::install(&mut sig).unwrap();
        let rebuilt = BoolAlg::from_signature(&sig).unwrap();
        assert_eq!(alg.and_op(), rebuilt.and_op());
        assert_eq!(alg.eq_op(alg.sort()), rebuilt.eq_op(alg.sort()));
    }

    #[test]
    fn eq_is_declared_per_sort_on_demand() {
        let mut sig = Signature::new();
        let mut alg = BoolAlg::install(&mut sig).unwrap();
        let prin = sig.add_visible_sort("Principal").unwrap();
        assert_eq!(alg.eq_op(prin), None);
        let mut store = TermStore::new(sig);
        let a = store.fresh_constant("a", prin);
        let b = store.fresh_constant("b", prin);
        let eq = alg.eq(&mut store, a, b).unwrap();
        assert_eq!(store.sort_of(eq), alg.sort());
        assert!(alg.eq_op(prin).is_some());
        assert!(alg.is_eq_op(store.op_of(eq).unwrap()));
        assert_eq!(store.display(eq).to_string(), "a#1 = b#2");
    }

    #[test]
    fn truth_constants_are_recognized() {
        let mut sig = Signature::new();
        let alg = BoolAlg::install(&mut sig).unwrap();
        let mut store = TermStore::new(sig);
        let t = alg.tt(&mut store);
        let f = alg.ff(&mut store);
        assert_eq!(alg.as_constant(&store, t), Some(true));
        assert_eq!(alg.as_constant(&store, f), Some(false));
        let n = alg.not(&mut store, t).unwrap();
        assert_eq!(alg.as_constant(&store, n), None);
        assert_eq!(alg.constant(&mut store, true), t);
    }

    #[test]
    fn conj_builds_left_nested_conjunction() {
        let mut sig = Signature::new();
        let alg = BoolAlg::install(&mut sig).unwrap();
        let mut store = TermStore::new(sig);
        let p = store.fresh_constant("p", alg.sort());
        let q = store.fresh_constant("q", alg.sort());
        let r = store.fresh_constant("r", alg.sort());
        let empty = alg.conj(&mut store, &[]).unwrap();
        assert_eq!(alg.as_constant(&store, empty), Some(true));
        let single = alg.conj(&mut store, &[p]).unwrap();
        assert_eq!(single, p);
        let triple = alg.conj(&mut store, &[p, q, r]).unwrap();
        // Balanced: (p) and (q and r).
        let qr = alg.and(&mut store, q, r).unwrap();
        let expected = alg.and(&mut store, p, qr).unwrap();
        assert_eq!(triple, expected);
    }
}
