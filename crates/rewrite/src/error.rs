//! Errors raised by the rewriting engine.

use crate::budget::StopReason;
use equitls_kernel::KernelError;
use std::fmt;

/// An error raised while building rules or normalizing terms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RewriteError {
    /// A rule was malformed (variable left-hand side, unbound right-hand
    /// side variables, sort mismatch between sides, …).
    InvalidRule {
        /// The rule's label.
        label: String,
        /// Human-readable reason.
        reason: String,
    },
    /// Normalization exceeded its fuel budget — almost certainly a
    /// non-terminating equation set or a pathological assumption.
    FuelExhausted {
        /// Rendering of the term being normalized when fuel ran out.
        term: String,
        /// The fuel budget that was exhausted.
        fuel_limit: u64,
        /// Rendered snapshot of the engine's counters at failure
        /// (rewrites, cache hits, …) — the first thing to look at when
        /// diagnosing a divergent equation set.
        stats: String,
    },
    /// The shared [`crate::budget::Budget`] stopped normalization — the
    /// deadline passed, the heap-estimate ceiling was crossed, or the run
    /// was cancelled. The caller should record a partial result, not die.
    BudgetExceeded {
        /// Which limit tripped.
        reason: StopReason,
        /// Rendering of the term being normalized at the stop point.
        term: String,
    },
    /// A kernel-level error (ill-sorted term construction).
    Kernel(KernelError),
}

impl fmt::Display for RewriteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RewriteError::InvalidRule { label, reason } => {
                write!(f, "invalid rule `{label}`: {reason}")
            }
            RewriteError::FuelExhausted {
                term,
                fuel_limit,
                stats,
            } => {
                write!(
                    f,
                    "rewriting fuel exhausted (limit {fuel_limit}) while normalizing \
                     `{term}`; engine state: {stats}"
                )
            }
            RewriteError::BudgetExceeded { reason, term } => {
                write!(
                    f,
                    "budget stopped rewriting ({reason}) while normalizing `{term}`"
                )
            }
            RewriteError::Kernel(e) => write!(f, "kernel error: {e}"),
        }
    }
}

impl std::error::Error for RewriteError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RewriteError::Kernel(e) => Some(e),
            _ => None,
        }
    }
}

impl From<KernelError> for RewriteError {
    fn from(e: KernelError) -> Self {
        RewriteError::Kernel(e)
    }
}
