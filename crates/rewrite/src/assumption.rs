//! Orienting case-analysis assumptions into rewrite rules.
//!
//! §5.2 of the paper makes a subtle point: to assume `sfin1 = sfin2` in a
//! proof passage one does **not** write that single equation — one writes
//! the *nine* component equations (`eq r10 = r1 .`, `eq b1 = intruder .`,
//! …) because "the equation sfin1 = sfin2 can be deduced from the 9
//! equations by rewriting, but the nine equations cannot be deduced from
//! the one equation by rewriting".
//!
//! [`orient_equation`] mechanizes exactly that step. Given an equality the
//! prover wants to assume true, it decomposes constructor applications
//! (injectivity), orients arbitrary-constant sides into substitutions
//! (`b1 → intruder`), and falls back to an `atom → true` rule when no
//! orientation is possible.

use crate::bool_alg::BoolAlg;
use equitls_kernel::prelude::*;

/// An oriented assumption: use `lhs → rhs` as a rewrite rule.
pub type OrientedEq = (TermId, TermId);

/// Decompose and orient the assumption `lhs = rhs` (assumed **true**).
///
/// Returns the list of oriented equations to install, in the spirit of the
/// paper's nine component equations. The cases, in order:
///
/// 1. identical sides — nothing to assume;
/// 2. both sides headed by the same free constructor — recurse into the
///    arguments (injectivity);
/// 3. one side an arbitrary constant not occurring in the other — orient
///    the constant into the other side (a substitution);
/// 4. otherwise — rewrite the canonical equality atom to `true`.
///
/// # Errors
///
/// Propagates kernel errors from equality-atom construction.
pub fn orient_equation(
    store: &mut TermStore,
    alg: &mut BoolAlg,
    lhs: TermId,
    rhs: TermId,
) -> Result<Vec<OrientedEq>, KernelError> {
    let mut out = Vec::new();
    orient_into(store, alg, lhs, rhs, &mut out)?;
    Ok(out)
}

/// A value: built exclusively from free constructors and arbitrary
/// constants (hence irreducible by any terminating rule set).
pub fn is_value(store: &TermStore, t: TermId) -> bool {
    if store.is_arbitrary_constant(t) {
        return true;
    }
    if !store.is_constructor_headed(t) {
        return false;
    }
    store.args(t).to_vec().iter().all(|&a| is_value(store, a))
}

fn occurs_in(store: &TermStore, needle: TermId, hay: TermId) -> bool {
    hay == needle
        || store
            .args(hay)
            .to_vec()
            .iter()
            .any(|&a| occurs_in(store, needle, a))
}

fn orient_into(
    store: &mut TermStore,
    alg: &mut BoolAlg,
    lhs: TermId,
    rhs: TermId,
    out: &mut Vec<OrientedEq>,
) -> Result<(), KernelError> {
    if lhs == rhs {
        return Ok(());
    }
    // Injectivity decomposition.
    if store.is_constructor_headed(lhs)
        && store.is_constructor_headed(rhs)
        && store.op_of(lhs) == store.op_of(rhs)
    {
        let largs: Vec<TermId> = store.args(lhs).to_vec();
        let rargs: Vec<TermId> = store.args(rhs).to_vec();
        for (&l, &r) in largs.iter().zip(rargs.iter()) {
            orient_into(store, alg, l, r, out)?;
        }
        return Ok(());
    }
    // Substitution orientation. Between two arbitrary constants the
    // direction is canonical (larger TermId rewrites to smaller), so
    // assumption sets can never contain an orientation cycle.
    if store.is_arbitrary_constant(lhs) && store.is_arbitrary_constant(rhs) {
        let (from, to) = if lhs > rhs { (lhs, rhs) } else { (rhs, lhs) };
        push_unique(out, (from, to));
        return Ok(());
    }
    if store.is_arbitrary_constant(lhs) && !occurs_in(store, lhs, rhs) {
        push_unique(out, (lhs, rhs));
        return Ok(());
    }
    if store.is_arbitrary_constant(rhs) && !occurs_in(store, rhs, lhs) {
        push_unique(out, (rhs, lhs));
        return Ok(());
    }
    // A stuck application equal to a *value* (a term built only from
    // constructors and arbitrary constants) rewrites to the value:
    // `holder(s) = n1` installs `holder(s) → n1`, and the TLS proofs use
    // `pl(epms(m)) = pms(a,b,s)` the same way. Terminating: values are
    // irreducible.
    let lhs_value = is_value(store, lhs);
    let rhs_value = is_value(store, rhs);
    if rhs_value && !lhs_value && !occurs_in(store, lhs, rhs) {
        push_unique(out, (lhs, rhs));
        return Ok(());
    }
    if lhs_value && !rhs_value && !occurs_in(store, rhs, lhs) {
        push_unique(out, (rhs, lhs));
        return Ok(());
    }
    // Fallback: assert the canonical atom.
    let (a, b) = if lhs <= rhs { (lhs, rhs) } else { (rhs, lhs) };
    let atom = alg.eq(store, a, b)?;
    let tt = alg.tt(store);
    push_unique(out, (atom, tt));
    Ok(())
}

fn push_unique(out: &mut Vec<OrientedEq>, eq: OrientedEq) {
    if !out.contains(&eq) {
        out.push(eq);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct World {
        store: TermStore,
        alg: BoolAlg,
        intruder: TermId,
        pms: OpId,
    }

    fn world() -> World {
        let mut sig = Signature::new();
        let alg = BoolAlg::install(&mut sig).unwrap();
        let prin = sig.add_visible_sort("Principal").unwrap();
        let secret = sig.add_visible_sort("Secret").unwrap();
        let pms_sort = sig.add_visible_sort("Pms").unwrap();
        let intruder_op = sig
            .add_constant("intruder", prin, OpAttrs::constructor())
            .unwrap();
        let pms = sig
            .add_op(
                "pms",
                &[prin, prin, secret],
                pms_sort,
                OpAttrs::constructor(),
            )
            .unwrap();
        let mut store = TermStore::new(sig);
        let intruder = store.constant(intruder_op);
        World {
            store,
            alg,
            intruder,
            pms,
        }
    }

    #[test]
    fn identical_sides_produce_nothing() {
        let mut w = world();
        let eqs = orient_equation(&mut w.store, &mut w.alg, w.intruder, w.intruder).unwrap();
        assert!(eqs.is_empty());
    }

    #[test]
    fn constructor_sides_decompose_like_the_papers_nine_equations() {
        let mut w = world();
        let prin = w.store.signature().sort_by_name("Principal").unwrap();
        let secret = w.store.signature().sort_by_name("Secret").unwrap();
        let a = w.store.fresh_constant("a", prin);
        let b1 = w.store.fresh_constant("b1", prin);
        let s = w.store.fresh_constant("s", secret);
        let s0 = w.store.fresh_constant("s0", secret);
        let t1 = w.store.app(w.pms, &[a, b1, s]).unwrap();
        let t2 = w.store.app(w.pms, &[a, w.intruder, s0]).unwrap();
        let eqs = orient_equation(&mut w.store, &mut w.alg, t1, t2).unwrap();
        // a = a drops; b1 -> intruder and s/s0 orient.
        assert_eq!(eqs.len(), 2);
        assert!(eqs.contains(&(b1, w.intruder)));
        assert!(eqs.contains(&(s, s0)) || eqs.contains(&(s0, s)));
    }

    #[test]
    fn arbitrary_constant_orients_toward_the_other_side() {
        let mut w = world();
        let prin = w.store.signature().sort_by_name("Principal").unwrap();
        let b1 = w.store.fresh_constant("b1", prin);
        let eqs = orient_equation(&mut w.store, &mut w.alg, w.intruder, b1).unwrap();
        assert_eq!(eqs, vec![(b1, w.intruder)]);
    }

    #[test]
    fn unorientable_pairs_assert_the_atom() {
        let mut w = world();
        let prin = w.store.signature().sort_by_name("Principal").unwrap();
        // A defined projection makes both sides non-arbitrary, non-ctor.
        let f = w
            .store
            .signature_mut()
            .add_op("f", &[prin], prin, OpAttrs::defined())
            .unwrap();
        let a = w.store.fresh_constant("a", prin);
        let fa = w.store.app(f, &[a]).unwrap();
        let fb = {
            let b = w.store.fresh_constant("b", prin);
            w.store.app(f, &[b]).unwrap()
        };
        let eqs = orient_equation(&mut w.store, &mut w.alg, fa, fb).unwrap();
        assert_eq!(eqs.len(), 1);
        let (atom, tt) = eqs[0];
        assert_eq!(tt, w.alg.tt(&mut w.store));
        assert!(w.alg.is_eq_op(w.store.op_of(atom).unwrap()));
    }

    #[test]
    fn occurs_check_falls_back_to_atom() {
        let mut w = world();
        let pms_sort = w.store.signature().sort_by_name("Pms").unwrap();
        let wrap = w
            .store
            .signature_mut()
            .add_op("wrap", &[pms_sort], pms_sort, OpAttrs::constructor())
            .unwrap();
        let x = w.store.fresh_constant("x", pms_sort);
        let wx = w.store.app(wrap, &[x]).unwrap();
        // x = wrap(x): cannot substitute x -> wrap(x) (divergence);
        // orient_equation must fall back to the atom form.
        let eqs = orient_equation(&mut w.store, &mut w.alg, x, wx).unwrap();
        assert_eq!(eqs.len(), 1);
        let (atom, _) = eqs[0];
        assert!(w.alg.is_eq_op(w.store.op_of(atom).unwrap()));
    }
}
