//! Rewrite rules: equations read left-to-right.
//!
//! CafeOBJ's `red` command uses the equations of a module as left-to-right
//! rewrite rules; conditional equations (`ceq l = r if c`) fire only when
//! the instantiated condition itself rewrites to `true`. [`Rule`] captures
//! one oriented equation; [`RuleSet`] indexes rules by the head symbol of
//! their left-hand side for fast candidate lookup.

use crate::error::RewriteError;
use equitls_kernel::prelude::*;
use equitls_kernel::term::Term;
use std::collections::HashMap;

/// Why a candidate equation cannot be used as a rewrite rule.
///
/// [`RuleSet::add`] rejects such equations with
/// [`RewriteError::InvalidRule`]; [`validate_rule`] exposes the same
/// checks as a typed classification so front ends (the spec elaborator,
/// the lint `vars` pass) can quarantine and report defective equations
/// without string-matching error messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RuleDefect {
    /// The left-hand side is a bare variable: the rule would rewrite
    /// every term of its sort.
    VariableLhs,
    /// Left- and right-hand sides have different sorts (rendered names).
    SortMismatch {
        /// Sort of the left-hand side.
        lhs_sort: String,
        /// Sort of the right-hand side.
        rhs_sort: String,
    },
    /// A right-hand-side variable (by name) is not bound by the left-hand
    /// side: the rule is not executable.
    UnboundRhsVar(String),
    /// A condition variable (by name) is not bound by the left-hand side.
    UnboundCondVar(String),
    /// The condition is not Bool-sorted (rendered sort name).
    NonBoolCondition(String),
}

impl std::fmt::Display for RuleDefect {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RuleDefect::VariableLhs => write!(f, "left-hand side is a bare variable"),
            RuleDefect::SortMismatch { lhs_sort, rhs_sort } => write!(
                f,
                "left- and right-hand sides have different sorts ({lhs_sort} vs {rhs_sort})"
            ),
            RuleDefect::UnboundRhsVar(name) => write!(
                f,
                "right-hand side variable `{name}` is not bound by the left-hand side"
            ),
            RuleDefect::UnboundCondVar(name) => write!(
                f,
                "condition variable `{name}` is not bound by the left-hand side"
            ),
            RuleDefect::NonBoolCondition(sort) => {
                write!(f, "condition is not Bool-sorted (found sort {sort})")
            }
        }
    }
}

/// Validate a candidate rule without adding it anywhere.
///
/// Returns the head operator of the left-hand side on success. This is
/// the exact check [`RuleSet::add`] performs; front ends call it first
/// when they want to *quarantine* a defective equation (keeping its
/// source span and a typed reason) instead of failing the whole load.
///
/// # Errors
///
/// The first [`RuleDefect`] found, in the documented check order:
/// variable LHS, sort mismatch, unbound RHS variables, non-Bool
/// condition, unbound condition variables.
pub fn validate_rule(
    store: &TermStore,
    lhs: TermId,
    rhs: TermId,
    cond: Option<TermId>,
    bool_sort: Option<SortId>,
) -> Result<OpId, RuleDefect> {
    let head = match store.node(lhs) {
        Term::App { op, .. } => *op,
        Term::Var(_) => return Err(RuleDefect::VariableLhs),
    };
    if store.sort_of(lhs) != store.sort_of(rhs) {
        let name = |s: SortId| store.signature().sort(s).name.clone();
        return Err(RuleDefect::SortMismatch {
            lhs_sort: name(store.sort_of(lhs)),
            rhs_sort: name(store.sort_of(rhs)),
        });
    }
    let lhs_vars = store.vars_of(lhs);
    for v in store.vars_of(rhs) {
        if !lhs_vars.contains(&v) {
            return Err(RuleDefect::UnboundRhsVar(store.var_decl(v).name.clone()));
        }
    }
    if let Some(c) = cond {
        if let Some(bs) = bool_sort {
            if store.sort_of(c) != bs {
                return Err(RuleDefect::NonBoolCondition(
                    store.signature().sort(store.sort_of(c)).name.clone(),
                ));
            }
        }
        for v in store.vars_of(c) {
            if !lhs_vars.contains(&v) {
                return Err(RuleDefect::UnboundCondVar(store.var_decl(v).name.clone()));
            }
        }
    }
    Ok(head)
}

/// An oriented, possibly conditional, equation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rule {
    /// Human-readable label for tracing and error messages.
    pub label: String,
    /// Left-hand side pattern (must be an operator application).
    pub lhs: TermId,
    /// Right-hand side template.
    pub rhs: TermId,
    /// Optional Bool-sorted condition; `None` for unconditional equations.
    pub cond: Option<TermId>,
    /// Head operator of the left-hand side (index key).
    pub head: OpId,
}

/// A collection of rules indexed by left-hand-side head symbol.
#[derive(Debug, Clone, Default)]
pub struct RuleSet {
    rules: Vec<Rule>,
    by_head: HashMap<OpId, Vec<usize>>,
}

impl RuleSet {
    /// An empty rule set.
    pub fn new() -> Self {
        RuleSet::default()
    }

    /// Add a rule after validating it.
    ///
    /// # Errors
    ///
    /// [`RewriteError::InvalidRule`] when:
    /// * the left-hand side is a bare variable (such a rule would rewrite
    ///   everything of its sort),
    /// * the sides have different sorts,
    /// * the right-hand side or the condition contains a variable not bound
    ///   by the left-hand side,
    /// * the condition is not Bool-sorted (checked by the caller-supplied
    ///   `bool_sort`, pass `None` to skip).
    pub fn add(
        &mut self,
        store: &TermStore,
        label: impl Into<String>,
        lhs: TermId,
        rhs: TermId,
        cond: Option<TermId>,
        bool_sort: Option<SortId>,
    ) -> Result<(), RewriteError> {
        let label = label.into();
        let head = match validate_rule(store, lhs, rhs, cond, bool_sort) {
            Ok(head) => head,
            Err(defect) => {
                return Err(RewriteError::InvalidRule {
                    label,
                    reason: defect.to_string(),
                })
            }
        };
        let index = self.rules.len();
        self.rules.push(Rule {
            label,
            lhs,
            rhs,
            cond,
            head,
        });
        self.by_head.entry(head).or_default().push(index);
        Ok(())
    }

    /// The rules whose left-hand side head is `op`, in declaration order.
    pub fn candidates(&self, op: OpId) -> impl Iterator<Item = &Rule> {
        self.by_head
            .get(&op)
            .into_iter()
            .flatten()
            .map(move |&i| &self.rules[i])
    }

    /// The rules whose left-hand side head is `op`, with their indices in
    /// declaration order. Static analyses use the index to name a rule
    /// stably across passes.
    pub fn rules_for_op(&self, op: OpId) -> impl Iterator<Item = (usize, &Rule)> {
        self.by_head
            .get(&op)
            .into_iter()
            .flatten()
            .map(move |&i| (i, &self.rules[i]))
    }

    /// The head operators that have at least one rule — the operators this
    /// set *defines*, in first-rule order.
    pub fn defined_heads(&self) -> Vec<OpId> {
        let mut seen = Vec::new();
        for rule in &self.rules {
            if !seen.contains(&rule.head) {
                seen.push(rule.head);
            }
        }
        seen
    }

    /// The rule at `index` (declaration order).
    pub fn get(&self, index: usize) -> Option<&Rule> {
        self.rules.get(index)
    }

    /// `true` when a rule with identical sides and condition is already
    /// present. Hash-consing makes this an exact structural comparison:
    /// equal `TermId`s are equal terms.
    pub fn contains_exact(&self, lhs: TermId, rhs: TermId, cond: Option<TermId>) -> bool {
        self.rules
            .iter()
            .any(|r| r.lhs == lhs && r.rhs == rhs && r.cond == cond)
    }

    /// All rules in declaration order.
    pub fn iter(&self) -> impl Iterator<Item = &Rule> {
        self.rules.iter()
    }

    /// Number of rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// `true` when the set has no rules.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Merge another rule set into this one (both sets must have been built
    /// against the same term store; declaration order preserved per set,
    /// `other` appended). Rules structurally identical to one already
    /// present are skipped; the return value counts the skipped duplicates
    /// so callers can surface them (the lint reports them as
    /// `duplicate-rule`).
    pub fn extend_from(&mut self, other: &RuleSet) -> usize {
        let mut skipped = 0;
        for rule in &other.rules {
            if self.contains_exact(rule.lhs, rule.rhs, rule.cond) {
                skipped += 1;
                continue;
            }
            let index = self.rules.len();
            self.by_head.entry(rule.head).or_default().push(index);
            self.rules.push(rule.clone());
        }
        skipped
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bool_alg::BoolAlg;

    struct World {
        store: TermStore,
        alg: BoolAlg,
        s: SortId,
        c: OpId,
        f: OpId,
    }

    fn world() -> World {
        let mut sig = Signature::new();
        let alg = BoolAlg::install(&mut sig).unwrap();
        let s = sig.add_visible_sort("S").unwrap();
        let c = sig.add_constant("c", s, OpAttrs::constructor()).unwrap();
        let f = sig.add_op("f", &[s], s, OpAttrs::defined()).unwrap();
        World {
            store: TermStore::new(sig),
            alg,
            s,
            c,
            f,
        }
    }

    #[test]
    fn valid_rule_is_indexed_by_head() {
        let mut w = world();
        let x = w.store.declare_var("X", w.s).unwrap();
        let xt = w.store.var(x);
        let lhs = w.store.app(w.f, &[xt]).unwrap();
        let mut rules = RuleSet::new();
        rules
            .add(&w.store, "f-id", lhs, xt, None, Some(w.alg.sort()))
            .unwrap();
        assert_eq!(rules.len(), 1);
        assert_eq!(rules.candidates(w.f).count(), 1);
        assert_eq!(rules.candidates(w.c).count(), 0);
        assert!(!rules.is_empty());
    }

    #[test]
    fn variable_lhs_is_rejected() {
        let mut w = world();
        let x = w.store.declare_var("X", w.s).unwrap();
        let xt = w.store.var(x);
        let cv = w.store.constant(w.c);
        let mut rules = RuleSet::new();
        let err = rules.add(&w.store, "bad", xt, cv, None, None).unwrap_err();
        assert!(matches!(err, RewriteError::InvalidRule { .. }));
    }

    #[test]
    fn unbound_rhs_variable_is_rejected() {
        let mut w = world();
        let x = w.store.declare_var("X", w.s).unwrap();
        let y = w.store.declare_var("Y", w.s).unwrap();
        let xt = w.store.var(x);
        let yt = w.store.var(y);
        let lhs = w.store.app(w.f, &[xt]).unwrap();
        let mut rules = RuleSet::new();
        let err = rules.add(&w.store, "bad", lhs, yt, None, None).unwrap_err();
        assert!(matches!(err, RewriteError::InvalidRule { .. }));
    }

    #[test]
    fn sort_mismatch_between_sides_is_rejected() {
        let mut w = world();
        let x = w.store.declare_var("X", w.s).unwrap();
        let xt = w.store.var(x);
        let lhs = w.store.app(w.f, &[xt]).unwrap();
        let tt = w.alg.tt(&mut w.store);
        let mut rules = RuleSet::new();
        let err = rules.add(&w.store, "bad", lhs, tt, None, None).unwrap_err();
        assert!(matches!(err, RewriteError::InvalidRule { .. }));
    }

    #[test]
    fn non_bool_condition_is_rejected() {
        let mut w = world();
        let x = w.store.declare_var("X", w.s).unwrap();
        let xt = w.store.var(x);
        let lhs = w.store.app(w.f, &[xt]).unwrap();
        let mut rules = RuleSet::new();
        let err = rules
            .add(&w.store, "bad", lhs, xt, Some(xt), Some(w.alg.sort()))
            .unwrap_err();
        assert!(matches!(err, RewriteError::InvalidRule { .. }));
    }

    #[test]
    fn introspection_reports_heads_and_indexed_rules() {
        let mut w = world();
        let x = w.store.declare_var("X", w.s).unwrap();
        let xt = w.store.var(x);
        let cv = w.store.constant(w.c);
        let lhs = w.store.app(w.f, &[xt]).unwrap();
        let lhs_c = w.store.app(w.f, &[cv]).unwrap();
        let mut rules = RuleSet::new();
        rules
            .add(&w.store, "f-const", lhs_c, cv, None, None)
            .unwrap();
        rules.add(&w.store, "f-id", lhs, xt, None, None).unwrap();
        assert_eq!(rules.defined_heads(), vec![w.f]);
        let indexed: Vec<(usize, &str)> = rules
            .rules_for_op(w.f)
            .map(|(i, r)| (i, r.label.as_str()))
            .collect();
        assert_eq!(indexed, vec![(0, "f-const"), (1, "f-id")]);
        assert_eq!(rules.get(1).unwrap().label, "f-id");
        assert!(rules.get(2).is_none());
        assert!(rules.contains_exact(lhs, xt, None));
        assert!(!rules.contains_exact(lhs, cv, None));
    }

    #[test]
    fn extend_from_skips_exact_duplicates() {
        let mut w = world();
        let x = w.store.declare_var("X", w.s).unwrap();
        let xt = w.store.var(x);
        let cv = w.store.constant(w.c);
        let lhs = w.store.app(w.f, &[xt]).unwrap();
        let lhs_c = w.store.app(w.f, &[cv]).unwrap();
        let mut base = RuleSet::new();
        base.add(&w.store, "f-id", lhs, xt, None, None).unwrap();
        let mut incoming = RuleSet::new();
        // Same rule under a different label: still a structural duplicate.
        incoming
            .add(&w.store, "f-id-again", lhs, xt, None, None)
            .unwrap();
        incoming
            .add(&w.store, "f-const", lhs_c, cv, None, None)
            .unwrap();
        let skipped = base.extend_from(&incoming);
        assert_eq!(skipped, 1);
        assert_eq!(base.len(), 2);
        assert_eq!(base.candidates(w.f).count(), 2);
    }

    #[test]
    fn condition_variables_must_be_bound() {
        let mut w = world();
        let x = w.store.declare_var("X", w.s).unwrap();
        let xt = w.store.var(x);
        let lhs = w.store.app(w.f, &[xt]).unwrap();
        let yb = w.store.declare_var("B", w.alg.sort()).unwrap();
        let ybt = w.store.var(yb);
        let mut rules = RuleSet::new();
        let err = rules
            .add(&w.store, "bad", lhs, xt, Some(ybt), Some(w.alg.sort()))
            .unwrap_err();
        assert!(matches!(err, RewriteError::InvalidRule { .. }));
    }
}
