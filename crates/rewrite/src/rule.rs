//! Rewrite rules: equations read left-to-right.
//!
//! CafeOBJ's `red` command uses the equations of a module as left-to-right
//! rewrite rules; conditional equations (`ceq l = r if c`) fire only when
//! the instantiated condition itself rewrites to `true`. [`Rule`] captures
//! one oriented equation; [`RuleSet`] indexes rules by the head symbol of
//! their left-hand side for fast candidate lookup.

use crate::error::RewriteError;
use equitls_kernel::prelude::*;
use equitls_kernel::term::Term;
use std::collections::HashMap;

/// Why a candidate equation cannot be used as a rewrite rule.
///
/// [`RuleSet::add`] rejects such equations with
/// [`RewriteError::InvalidRule`]; [`validate_rule`] exposes the same
/// checks as a typed classification so front ends (the spec elaborator,
/// the lint `vars` pass) can quarantine and report defective equations
/// without string-matching error messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RuleDefect {
    /// The left-hand side is a bare variable: the rule would rewrite
    /// every term of its sort.
    VariableLhs,
    /// Left- and right-hand sides have different sorts (rendered names).
    SortMismatch {
        /// Sort of the left-hand side.
        lhs_sort: String,
        /// Sort of the right-hand side.
        rhs_sort: String,
    },
    /// A right-hand-side variable (by name) is not bound by the left-hand
    /// side: the rule is not executable.
    UnboundRhsVar(String),
    /// A condition variable (by name) is not bound by the left-hand side.
    UnboundCondVar(String),
    /// The condition is not Bool-sorted (rendered sort name).
    NonBoolCondition(String),
}

impl std::fmt::Display for RuleDefect {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RuleDefect::VariableLhs => write!(f, "left-hand side is a bare variable"),
            RuleDefect::SortMismatch { lhs_sort, rhs_sort } => write!(
                f,
                "left- and right-hand sides have different sorts ({lhs_sort} vs {rhs_sort})"
            ),
            RuleDefect::UnboundRhsVar(name) => write!(
                f,
                "right-hand side variable `{name}` is not bound by the left-hand side"
            ),
            RuleDefect::UnboundCondVar(name) => write!(
                f,
                "condition variable `{name}` is not bound by the left-hand side"
            ),
            RuleDefect::NonBoolCondition(sort) => {
                write!(f, "condition is not Bool-sorted (found sort {sort})")
            }
        }
    }
}

/// Validate a candidate rule without adding it anywhere.
///
/// Returns the head operator of the left-hand side on success. This is
/// the exact check [`RuleSet::add`] performs; front ends call it first
/// when they want to *quarantine* a defective equation (keeping its
/// source span and a typed reason) instead of failing the whole load.
///
/// # Errors
///
/// The first [`RuleDefect`] found, in the documented check order:
/// variable LHS, sort mismatch, unbound RHS variables, non-Bool
/// condition, unbound condition variables.
pub fn validate_rule(
    store: &TermStore,
    lhs: TermId,
    rhs: TermId,
    cond: Option<TermId>,
    bool_sort: Option<SortId>,
) -> Result<OpId, RuleDefect> {
    let head = match store.node(lhs) {
        Term::App { op, .. } => *op,
        Term::Var(_) => return Err(RuleDefect::VariableLhs),
    };
    if store.sort_of(lhs) != store.sort_of(rhs) {
        let name = |s: SortId| store.signature().sort(s).name.clone();
        return Err(RuleDefect::SortMismatch {
            lhs_sort: name(store.sort_of(lhs)),
            rhs_sort: name(store.sort_of(rhs)),
        });
    }
    let lhs_vars = store.vars_of(lhs);
    for v in store.vars_of(rhs) {
        if !lhs_vars.contains(&v) {
            return Err(RuleDefect::UnboundRhsVar(store.var_decl(v).name.clone()));
        }
    }
    if let Some(c) = cond {
        if let Some(bs) = bool_sort {
            if store.sort_of(c) != bs {
                return Err(RuleDefect::NonBoolCondition(
                    store.signature().sort(store.sort_of(c)).name.clone(),
                ));
            }
        }
        for v in store.vars_of(c) {
            if !lhs_vars.contains(&v) {
                return Err(RuleDefect::UnboundCondVar(store.var_decl(v).name.clone()));
            }
        }
    }
    Ok(head)
}

/// An oriented, possibly conditional, equation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rule {
    /// Human-readable label for tracing and error messages.
    pub label: String,
    /// Left-hand side pattern (must be an operator application).
    pub lhs: TermId,
    /// Right-hand side template.
    pub rhs: TermId,
    /// Optional Bool-sorted condition; `None` for unconditional equations.
    pub cond: Option<TermId>,
    /// Head operator of the left-hand side (index key).
    pub head: OpId,
}

/// A collection of rules indexed by left-hand-side head symbol.
#[derive(Debug, Clone, Default)]
pub struct RuleSet {
    rules: Vec<Rule>,
    by_head: HashMap<OpId, Vec<usize>>,
    /// The discrimination-tree index, built on first use and shared by
    /// clones of this set (a clone copies the initialized `OnceLock`, so
    /// cloning an indexed set — what `Spec::normalizer` and per-obligation
    /// spec clones do — costs one `Arc` bump, not a rebuild). Mutators
    /// reset it.
    index: std::sync::OnceLock<std::sync::Arc<PathIndex>>,
}

impl RuleSet {
    /// An empty rule set.
    pub fn new() -> Self {
        RuleSet::default()
    }

    /// Add a rule after validating it.
    ///
    /// # Errors
    ///
    /// [`RewriteError::InvalidRule`] when:
    /// * the left-hand side is a bare variable (such a rule would rewrite
    ///   everything of its sort),
    /// * the sides have different sorts,
    /// * the right-hand side or the condition contains a variable not bound
    ///   by the left-hand side,
    /// * the condition is not Bool-sorted (checked by the caller-supplied
    ///   `bool_sort`, pass `None` to skip).
    pub fn add(
        &mut self,
        store: &TermStore,
        label: impl Into<String>,
        lhs: TermId,
        rhs: TermId,
        cond: Option<TermId>,
        bool_sort: Option<SortId>,
    ) -> Result<(), RewriteError> {
        let label = label.into();
        let head = match validate_rule(store, lhs, rhs, cond, bool_sort) {
            Ok(head) => head,
            Err(defect) => {
                return Err(RewriteError::InvalidRule {
                    label,
                    reason: defect.to_string(),
                })
            }
        };
        let index = self.rules.len();
        self.rules.push(Rule {
            label,
            lhs,
            rhs,
            cond,
            head,
        });
        self.by_head.entry(head).or_default().push(index);
        self.index = std::sync::OnceLock::new();
        Ok(())
    }

    /// The discrimination-tree index over this set, built on first use.
    /// `store` must be the arena the rules' terms live in (or a clone of
    /// it — clones preserve `TermId`s).
    pub fn path_index(&self, store: &TermStore) -> std::sync::Arc<PathIndex> {
        self.index
            .get_or_init(|| std::sync::Arc::new(PathIndex::build(store, self)))
            .clone()
    }

    /// The rules whose left-hand side head is `op`, in declaration order.
    pub fn candidates(&self, op: OpId) -> impl Iterator<Item = &Rule> {
        self.by_head
            .get(&op)
            .into_iter()
            .flatten()
            .map(move |&i| &self.rules[i])
    }

    /// The rules whose left-hand side head is `op`, with their indices in
    /// declaration order. Static analyses use the index to name a rule
    /// stably across passes.
    pub fn rules_for_op(&self, op: OpId) -> impl Iterator<Item = (usize, &Rule)> {
        self.by_head
            .get(&op)
            .into_iter()
            .flatten()
            .map(move |&i| (i, &self.rules[i]))
    }

    /// The head operators that have at least one rule — the operators this
    /// set *defines*, in first-rule order.
    pub fn defined_heads(&self) -> Vec<OpId> {
        let mut seen = Vec::new();
        for rule in &self.rules {
            if !seen.contains(&rule.head) {
                seen.push(rule.head);
            }
        }
        seen
    }

    /// The rule at `index` (declaration order).
    pub fn get(&self, index: usize) -> Option<&Rule> {
        self.rules.get(index)
    }

    /// `true` when a rule with identical sides and condition is already
    /// present. Hash-consing makes this an exact structural comparison:
    /// equal `TermId`s are equal terms.
    pub fn contains_exact(&self, lhs: TermId, rhs: TermId, cond: Option<TermId>) -> bool {
        self.rules
            .iter()
            .any(|r| r.lhs == lhs && r.rhs == rhs && r.cond == cond)
    }

    /// All rules in declaration order.
    pub fn iter(&self) -> impl Iterator<Item = &Rule> {
        self.rules.iter()
    }

    /// Number of rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// `true` when the set has no rules.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Merge another rule set into this one (both sets must have been built
    /// against the same term store; declaration order preserved per set,
    /// `other` appended). Rules structurally identical to one already
    /// present are skipped; the return value counts the skipped duplicates
    /// so callers can surface them (the lint reports them as
    /// `duplicate-rule`).
    pub fn extend_from(&mut self, other: &RuleSet) -> usize {
        let mut skipped = 0;
        for rule in &other.rules {
            if self.contains_exact(rule.lhs, rule.rhs, rule.cond) {
                skipped += 1;
                continue;
            }
            let index = self.rules.len();
            self.by_head.entry(rule.head).or_default().push(index);
            self.rules.push(rule.clone());
            self.index = std::sync::OnceLock::new();
        }
        skipped
    }
}

/// One interior node of the [`PathIndex`] discrimination tree.
///
/// Edges are labelled by what the *pattern* demands at the current
/// pre-order position: a concrete operator (`ops`) or a pattern variable
/// (`star`, which matches any subject subtree). Rules whose left-hand
/// side is fully consumed at this node are listed in `rules`.
#[derive(Debug, Clone, Default)]
struct PathNode {
    /// Child for "the pattern has a variable here" — skips one subject
    /// subtree during traversal.
    star: Option<usize>,
    /// Children for "the pattern has this operator here", unordered
    /// (looked up linearly; fan-out per node is small in practice).
    ops: Vec<(OpId, usize)>,
    /// Indices (into the owning [`RuleSet`], declaration order) of rules
    /// whose flattened left-hand side ends exactly here.
    rules: Vec<usize>,
}

/// A discrimination-tree (path) index over a [`RuleSet`].
///
/// Left-hand sides are flattened in pre-order below their head operator
/// and inserted into a trie per head symbol. A query walks the subject
/// term in the same pre-order, following a concrete-operator edge when
/// the subject agrees and the `star` edge (skipping the whole subject
/// subtree) wherever a pattern variable could stand. The result is the
/// set of rules that are *structurally compatible* with the subject —
/// a superset of the rules that actually match, because non-linearity
/// and condition checks are left to the matcher, but never a subset:
/// the index has no false negatives.
///
/// Collected candidates are sorted ascending by rule index, which *is*
/// declaration order — so the engine tries candidates in exactly the
/// order the linear `rules_for_op` scan would, and the first match (and
/// therefore every rewrite, verdict, and statistic downstream) is
/// unchanged; the index only removes guaranteed-to-fail match attempts.
#[derive(Debug, Clone, Default)]
pub struct PathIndex {
    /// Per-head-operator tree roots.
    roots: HashMap<OpId, usize>,
    nodes: Vec<PathNode>,
    /// Per-head rule totals, for hit/prune accounting.
    head_totals: HashMap<OpId, usize>,
}

impl PathIndex {
    /// Build the index over every rule in `rules`.
    pub fn build(store: &TermStore, rules: &RuleSet) -> Self {
        let mut index = PathIndex::default();
        for (i, rule) in rules.iter().enumerate() {
            index.insert(store, i, rule);
        }
        index
    }

    fn alloc(&mut self) -> usize {
        self.nodes.push(PathNode::default());
        self.nodes.len() - 1
    }

    fn insert(&mut self, store: &TermStore, rule_index: usize, rule: &Rule) {
        *self.head_totals.entry(rule.head).or_insert(0) += 1;
        let mut node = match self.roots.get(&rule.head) {
            Some(&root) => root,
            None => {
                let root = self.alloc();
                self.roots.insert(rule.head, root);
                root
            }
        };
        // Flatten the lhs arguments in pre-order (the head operator is
        // already consumed by the `roots` lookup).
        let mut stack: Vec<TermId> = match store.node(rule.lhs) {
            Term::App { args, .. } => args.iter().rev().copied().collect(),
            Term::Var(_) => Vec::new(), // rejected by validate_rule; defensive
        };
        while let Some(t) = stack.pop() {
            match store.node(t) {
                Term::Var(_) => {
                    node = match self.nodes[node].star {
                        Some(child) => child,
                        None => {
                            let child = self.alloc();
                            self.nodes[node].star = Some(child);
                            child
                        }
                    };
                }
                Term::App { op, args } => {
                    let op = *op;
                    stack.extend(args.iter().rev());
                    node = match self.nodes[node].ops.iter().find(|(o, _)| *o == op) {
                        Some(&(_, child)) => child,
                        None => {
                            let child = self.alloc();
                            self.nodes[node].ops.push((op, child));
                            child
                        }
                    };
                }
            }
        }
        self.nodes[node].rules.push(rule_index);
    }

    /// Total number of rules indexed under head operator `op` (what a
    /// linear `rules_for_op` scan would have to try).
    pub fn head_total(&self, op: OpId) -> usize {
        self.head_totals.get(&op).copied().unwrap_or(0)
    }

    /// Collect into `out` the indices of all rules structurally
    /// compatible with `subject`, ascending (declaration order).
    ///
    /// `scratch` is a caller-owned work stack reused across queries to
    /// avoid per-query allocation; its prior contents are discarded.
    pub fn candidates_into(
        &self,
        store: &TermStore,
        subject: TermId,
        scratch: &mut Vec<TermId>,
        out: &mut Vec<usize>,
    ) {
        out.clear();
        let Term::App { op, args } = store.node(subject) else {
            return;
        };
        let Some(&root) = self.roots.get(op) else {
            return;
        };
        scratch.clear();
        scratch.extend(args.iter().rev());
        self.walk(store, root, scratch, out);
        out.sort_unstable();
    }

    /// DFS over the trie and the subject's pre-order traversal. `pending`
    /// holds the subject subtrees not yet consumed, top = next. Recursion
    /// depth is bounded by the *pattern* depth (star edges skip subject
    /// subtrees in O(1)), so deep subjects cost nothing extra.
    fn walk(
        &self,
        store: &TermStore,
        node: usize,
        pending: &mut Vec<TermId>,
        out: &mut Vec<usize>,
    ) {
        let n = &self.nodes[node];
        let Some(&next) = pending.last() else {
            // Pattern fully consumed exactly when the subject positions
            // are: collect the rules that end here.
            out.extend_from_slice(&n.rules);
            return;
        };
        if let Some(star) = n.star {
            // A pattern variable stands here: skip the whole subtree.
            pending.pop();
            self.walk(store, star, pending, out);
            pending.push(next);
        }
        if n.ops.is_empty() {
            return;
        }
        if let Term::App { op, args } = store.node(next) {
            if let Some(&(_, child)) = n.ops.iter().find(|(o, _)| o == op) {
                let restore = pending.len() - 1;
                pending.pop();
                pending.extend(args.iter().rev());
                self.walk(store, child, pending, out);
                pending.truncate(restore);
                pending.push(next);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bool_alg::BoolAlg;

    struct World {
        store: TermStore,
        alg: BoolAlg,
        s: SortId,
        c: OpId,
        f: OpId,
    }

    fn world() -> World {
        let mut sig = Signature::new();
        let alg = BoolAlg::install(&mut sig).unwrap();
        let s = sig.add_visible_sort("S").unwrap();
        let c = sig.add_constant("c", s, OpAttrs::constructor()).unwrap();
        let f = sig.add_op("f", &[s], s, OpAttrs::defined()).unwrap();
        World {
            store: TermStore::new(sig),
            alg,
            s,
            c,
            f,
        }
    }

    #[test]
    fn valid_rule_is_indexed_by_head() {
        let mut w = world();
        let x = w.store.declare_var("X", w.s).unwrap();
        let xt = w.store.var(x);
        let lhs = w.store.app(w.f, &[xt]).unwrap();
        let mut rules = RuleSet::new();
        rules
            .add(&w.store, "f-id", lhs, xt, None, Some(w.alg.sort()))
            .unwrap();
        assert_eq!(rules.len(), 1);
        assert_eq!(rules.candidates(w.f).count(), 1);
        assert_eq!(rules.candidates(w.c).count(), 0);
        assert!(!rules.is_empty());
    }

    #[test]
    fn variable_lhs_is_rejected() {
        let mut w = world();
        let x = w.store.declare_var("X", w.s).unwrap();
        let xt = w.store.var(x);
        let cv = w.store.constant(w.c);
        let mut rules = RuleSet::new();
        let err = rules.add(&w.store, "bad", xt, cv, None, None).unwrap_err();
        assert!(matches!(err, RewriteError::InvalidRule { .. }));
    }

    #[test]
    fn unbound_rhs_variable_is_rejected() {
        let mut w = world();
        let x = w.store.declare_var("X", w.s).unwrap();
        let y = w.store.declare_var("Y", w.s).unwrap();
        let xt = w.store.var(x);
        let yt = w.store.var(y);
        let lhs = w.store.app(w.f, &[xt]).unwrap();
        let mut rules = RuleSet::new();
        let err = rules.add(&w.store, "bad", lhs, yt, None, None).unwrap_err();
        assert!(matches!(err, RewriteError::InvalidRule { .. }));
    }

    #[test]
    fn sort_mismatch_between_sides_is_rejected() {
        let mut w = world();
        let x = w.store.declare_var("X", w.s).unwrap();
        let xt = w.store.var(x);
        let lhs = w.store.app(w.f, &[xt]).unwrap();
        let tt = w.alg.tt(&mut w.store);
        let mut rules = RuleSet::new();
        let err = rules.add(&w.store, "bad", lhs, tt, None, None).unwrap_err();
        assert!(matches!(err, RewriteError::InvalidRule { .. }));
    }

    #[test]
    fn non_bool_condition_is_rejected() {
        let mut w = world();
        let x = w.store.declare_var("X", w.s).unwrap();
        let xt = w.store.var(x);
        let lhs = w.store.app(w.f, &[xt]).unwrap();
        let mut rules = RuleSet::new();
        let err = rules
            .add(&w.store, "bad", lhs, xt, Some(xt), Some(w.alg.sort()))
            .unwrap_err();
        assert!(matches!(err, RewriteError::InvalidRule { .. }));
    }

    #[test]
    fn introspection_reports_heads_and_indexed_rules() {
        let mut w = world();
        let x = w.store.declare_var("X", w.s).unwrap();
        let xt = w.store.var(x);
        let cv = w.store.constant(w.c);
        let lhs = w.store.app(w.f, &[xt]).unwrap();
        let lhs_c = w.store.app(w.f, &[cv]).unwrap();
        let mut rules = RuleSet::new();
        rules
            .add(&w.store, "f-const", lhs_c, cv, None, None)
            .unwrap();
        rules.add(&w.store, "f-id", lhs, xt, None, None).unwrap();
        assert_eq!(rules.defined_heads(), vec![w.f]);
        let indexed: Vec<(usize, &str)> = rules
            .rules_for_op(w.f)
            .map(|(i, r)| (i, r.label.as_str()))
            .collect();
        assert_eq!(indexed, vec![(0, "f-const"), (1, "f-id")]);
        assert_eq!(rules.get(1).unwrap().label, "f-id");
        assert!(rules.get(2).is_none());
        assert!(rules.contains_exact(lhs, xt, None));
        assert!(!rules.contains_exact(lhs, cv, None));
    }

    #[test]
    fn extend_from_skips_exact_duplicates() {
        let mut w = world();
        let x = w.store.declare_var("X", w.s).unwrap();
        let xt = w.store.var(x);
        let cv = w.store.constant(w.c);
        let lhs = w.store.app(w.f, &[xt]).unwrap();
        let lhs_c = w.store.app(w.f, &[cv]).unwrap();
        let mut base = RuleSet::new();
        base.add(&w.store, "f-id", lhs, xt, None, None).unwrap();
        let mut incoming = RuleSet::new();
        // Same rule under a different label: still a structural duplicate.
        incoming
            .add(&w.store, "f-id-again", lhs, xt, None, None)
            .unwrap();
        incoming
            .add(&w.store, "f-const", lhs_c, cv, None, None)
            .unwrap();
        let skipped = base.extend_from(&incoming);
        assert_eq!(skipped, 1);
        assert_eq!(base.len(), 2);
        assert_eq!(base.candidates(w.f).count(), 2);
    }

    /// A richer signature for index tests: two constants, a unary `g`,
    /// and a binary `h`, so patterns can disagree below the head symbol.
    struct IndexWorld {
        store: TermStore,
        s: SortId,
        c: OpId,
        d: OpId,
        g: OpId,
        h: OpId,
    }

    fn index_world() -> IndexWorld {
        let mut sig = Signature::new();
        BoolAlg::install(&mut sig).unwrap();
        let s = sig.add_visible_sort("S").unwrap();
        let c = sig.add_constant("c", s, OpAttrs::constructor()).unwrap();
        let d = sig.add_constant("d", s, OpAttrs::constructor()).unwrap();
        let g = sig.add_op("g", &[s], s, OpAttrs::defined()).unwrap();
        let h = sig.add_op("h", &[s, s], s, OpAttrs::defined()).unwrap();
        IndexWorld {
            store: TermStore::new(sig),
            s,
            c,
            d,
            g,
            h,
        }
    }

    fn query(index: &PathIndex, store: &TermStore, subject: TermId) -> Vec<usize> {
        let mut scratch = Vec::new();
        let mut out = Vec::new();
        index.candidates_into(store, subject, &mut scratch, &mut out);
        out
    }

    #[test]
    fn index_returns_all_head_rules_for_variable_patterns() {
        let mut w = index_world();
        let x = w.store.declare_var("X", w.s).unwrap();
        let xt = w.store.var(x);
        let gx = w.store.app(w.g, &[xt]).unwrap();
        let mut rules = RuleSet::new();
        rules.add(&w.store, "g-id", gx, xt, None, None).unwrap();
        let index = PathIndex::build(&w.store, &rules);
        let cv = w.store.constant(w.c);
        let gc = w.store.app(w.g, &[cv]).unwrap();
        let ggc = w.store.app(w.g, &[gc]).unwrap();
        assert_eq!(query(&index, &w.store, gc), vec![0]);
        assert_eq!(query(&index, &w.store, ggc), vec![0]);
        assert_eq!(index.head_total(w.g), 1);
        assert_eq!(index.head_total(w.h), 0);
        // Wrong head: no candidates at all.
        assert_eq!(query(&index, &w.store, cv), Vec::<usize>::new());
    }

    #[test]
    fn index_prunes_structurally_incompatible_rules() {
        let mut w = index_world();
        let x = w.store.declare_var("X", w.s).unwrap();
        let xt = w.store.var(x);
        let cv = w.store.constant(w.c);
        let dv = w.store.constant(w.d);
        let gc = w.store.app(w.g, &[cv]).unwrap();
        let gd = w.store.app(w.g, &[dv]).unwrap();
        let gx = w.store.app(w.g, &[xt]).unwrap();
        let mut rules = RuleSet::new();
        rules.add(&w.store, "g-c", gc, cv, None, None).unwrap();
        rules.add(&w.store, "g-d", gd, dv, None, None).unwrap();
        rules.add(&w.store, "g-x", gx, xt, None, None).unwrap();
        let index = PathIndex::build(&w.store, &rules);
        // Subject g(c): the g(d) rule is pruned; order is declaration order.
        assert_eq!(query(&index, &w.store, gc), vec![0, 2]);
        assert_eq!(query(&index, &w.store, gd), vec![1, 2]);
        // Subject g(g(c)): only the variable pattern survives.
        let ggc = w.store.app(w.g, &[gc]).unwrap();
        assert_eq!(query(&index, &w.store, ggc), vec![2]);
        assert_eq!(index.head_total(w.g), 3);
    }

    #[test]
    fn index_candidate_order_matches_linear_scan_order() {
        let mut w = index_world();
        let x = w.store.declare_var("X", w.s).unwrap();
        let y = w.store.declare_var("Y", w.s).unwrap();
        let (xt, yt) = (w.store.var(x), w.store.var(y));
        let cv = w.store.constant(w.c);
        // Interleave h-rules with a g-rule so global indices are sparse
        // per head; the index must still report ascending global indices,
        // which is exactly `rules_for_op` order.
        let h_xc = w.store.app(w.h, &[xt, cv]).unwrap();
        let gx = w.store.app(w.g, &[xt]).unwrap();
        let h_xy = w.store.app(w.h, &[xt, yt]).unwrap();
        let mut rules = RuleSet::new();
        rules.add(&w.store, "h-xc", h_xc, xt, None, None).unwrap();
        rules.add(&w.store, "g-x", gx, xt, None, None).unwrap();
        rules.add(&w.store, "h-xy", h_xy, xt, None, None).unwrap();
        let index = PathIndex::build(&w.store, &rules);
        let subject = w.store.app(w.h, &[cv, cv]).unwrap();
        let linear: Vec<usize> = rules.rules_for_op(w.h).map(|(i, _)| i).collect();
        assert_eq!(linear, vec![0, 2]);
        assert_eq!(query(&index, &w.store, subject), linear);
        // Subject h(c, d): second argument rules out h(X, c).
        let dv = w.store.constant(w.d);
        let subject2 = w.store.app(w.h, &[cv, dv]).unwrap();
        assert_eq!(query(&index, &w.store, subject2), vec![2]);
    }

    #[test]
    fn index_star_edge_skips_whole_subtrees() {
        let mut w = index_world();
        let x = w.store.declare_var("X", w.s).unwrap();
        let xt = w.store.var(x);
        let cv = w.store.constant(w.c);
        let dv = w.store.constant(w.d);
        // Pattern h(X, c): the first argument is skipped as a unit, the
        // second must still be checked even when the first is deep.
        let h_xc = w.store.app(w.h, &[xt, cv]).unwrap();
        let mut rules = RuleSet::new();
        rules.add(&w.store, "h-xc", h_xc, xt, None, None).unwrap();
        let index = PathIndex::build(&w.store, &rules);
        let deep = {
            let gd = w.store.app(w.g, &[dv]).unwrap();
            let ggd = w.store.app(w.g, &[gd]).unwrap();
            w.store.app(w.h, &[ggd, cv]).unwrap()
        };
        assert_eq!(query(&index, &w.store, deep), vec![0]);
        let deep_wrong = {
            let gd = w.store.app(w.g, &[dv]).unwrap();
            w.store.app(w.h, &[gd, dv]).unwrap()
        };
        assert_eq!(query(&index, &w.store, deep_wrong), Vec::<usize>::new());
    }

    #[test]
    fn index_never_loses_a_matching_rule() {
        // Exhaustive cross-check on a small closed term universe: every
        // rule reported matchable by a direct scan must be in the index's
        // candidate set (no false negatives; over-approximation allowed).
        let mut w = index_world();
        let x = w.store.declare_var("X", w.s).unwrap();
        let xt = w.store.var(x);
        let cv = w.store.constant(w.c);
        let dv = w.store.constant(w.d);
        let gx = w.store.app(w.g, &[xt]).unwrap();
        let ggx = w.store.app(w.g, &[gx]).unwrap();
        let gc = w.store.app(w.g, &[cv]).unwrap();
        let h_xx = w.store.app(w.h, &[xt, xt]).unwrap();
        let h_cx = w.store.app(w.h, &[cv, xt]).unwrap();
        let mut rules = RuleSet::new();
        for (label, lhs) in [
            ("g-x", gx),
            ("g-g-x", ggx),
            ("g-c", gc),
            ("h-x-x", h_xx),
            ("h-c-x", h_cx),
        ] {
            rules.add(&w.store, label, lhs, cv, None, None).unwrap();
        }
        let index = PathIndex::build(&w.store, &rules);
        let mut subjects = vec![cv, dv];
        for _ in 0..2 {
            let mut next = Vec::new();
            for &a in &subjects {
                next.push(w.store.app(w.g, &[a]).unwrap());
                for &b in &subjects {
                    next.push(w.store.app(w.h, &[a, b]).unwrap());
                }
            }
            subjects.extend(next);
        }
        for &subject in &subjects {
            let candidates = query(&index, &w.store, subject);
            let Term::App { op, .. } = w.store.node(subject) else {
                unreachable!()
            };
            let op = *op;
            for (i, rule) in rules.rules_for_op(op) {
                use equitls_kernel::matching::{match_term, MatchOutcome};
                let head_matches = matches!(
                    match_term(&w.store, rule.lhs, subject),
                    MatchOutcome::Matched(_)
                );
                if head_matches {
                    assert!(
                        candidates.contains(&i),
                        "rule {} must be a candidate for {}",
                        rule.label,
                        w.store.display(subject)
                    );
                }
            }
        }
    }

    #[test]
    fn condition_variables_must_be_bound() {
        let mut w = world();
        let x = w.store.declare_var("X", w.s).unwrap();
        let xt = w.store.var(x);
        let lhs = w.store.app(w.f, &[xt]).unwrap();
        let yb = w.store.declare_var("B", w.alg.sort()).unwrap();
        let ybt = w.store.var(yb);
        let mut rules = RuleSet::new();
        let err = rules
            .add(&w.store, "bad", lhs, xt, Some(ybt), Some(w.alg.sort()))
            .unwrap_err();
        assert!(matches!(err, RewriteError::InvalidRule { .. }));
    }
}
