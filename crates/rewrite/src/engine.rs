//! The normalizer: CafeOBJ's `red` command, reconstructed.
//!
//! [`Normalizer::normalize`] rewrites a term to normal form using, in
//! order of priority:
//!
//! 1. **assumption rules** — the equations declared inside the current
//!    proof passage (`eq b1 = intruder .`, `eq (b = intruder) = false .`);
//! 2. **specification rules** — the equations of the protocol modules;
//! 3. **built-in layers** — the free-constructor equality procedure
//!    ([`crate::equality`]) and the Boolean-ring normal form
//!    ([`crate::boolring`]).
//!
//! Rewriting is innermost (arguments first), with memoization keyed on
//! hash-consed [`TermId`]s and a fuel bound that turns accidental
//! divergence into a reported error instead of a hang.
//!
//! Candidate rules at each root are found through a discrimination-tree
//! index ([`crate::rule::PathIndex`], built lazily on first use) that
//! prunes structurally incompatible rules before any matcher runs; the
//! index returns candidates in declaration order, so firing order — and
//! therefore every result and every [`RewriteStats`] counter — is
//! bit-identical to the linear scan it replaces
//! ([`Normalizer::set_indexing`] restores the scan for comparison). The
//! memo cache is segmented (hot/cold with second-chance promotion, see
//! [`Normalizer::set_cache_capacity`]), and an optional cross-session
//! [`crate::shared::SharedNfCache`] lets parallel prover obligations
//! exchange finished normal forms (see [`Normalizer::set_shared_cache`]
//! for the strict participation gates that protect determinism).
//!
//! ## Blocked conditions
//!
//! When a conditional rule matches but its condition normalizes to neither
//! `true` nor `false`, the rule cannot fire. The normalizer records the
//! normalized condition as **blocked**. The inductive prover in
//! `equitls-core` reads these to choose its next case split — mirroring how
//! the paper's authors chose the five sub-cases of `fakeSfin2` in §5.2 by
//! looking at which effective conditions were undecided.

use crate::assumption::orient_equation;
use crate::bool_alg::BoolAlg;
use crate::boolring::Poly;
use crate::budget::{trigger_injected_panic, Budget, FaultKind, FaultPlan, FaultSite, StopReason};
use crate::equality::{decide_equality, EqVerdict};
use crate::error::RewriteError;
use crate::rule::{PathIndex, RuleSet};
use crate::shared::{fingerprint, EncodedTerm, SharedEntry, SharedNfCache};
use equitls_kernel::matching::{match_term, MatchOutcome};
use equitls_kernel::prelude::*;
use equitls_kernel::term::Term;
use equitls_obs::sink::Obs;
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Counters describing one normalizer's work so far.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RewriteStats {
    /// Rule applications (assumption + specification rules).
    pub rewrites: u64,
    /// Memoization hits.
    pub cache_hits: u64,
    /// Memoization misses (full normalizations).
    pub cache_misses: u64,
    /// Boolean-ring normal form computations.
    pub bool_normalizations: u64,
    /// Free-constructor equality decisions.
    pub eq_decisions: u64,
    /// Conditional-rule attempts whose condition stayed undecided.
    pub blocked_conditions: u64,
    /// Memo-segment rotations forced by the memo-cache capacity bound:
    /// when the hot segment fills, the cold segment is dropped and the
    /// hot segment becomes the new cold one, so entries touched since the
    /// last rotation survive capacity pressure (see
    /// [`Normalizer::set_cache_capacity`]).
    pub cache_evictions: u64,
}

impl RewriteStats {
    /// Sum of two stats records.
    pub fn merged(self, other: RewriteStats) -> RewriteStats {
        RewriteStats {
            rewrites: self.rewrites + other.rewrites,
            cache_hits: self.cache_hits + other.cache_hits,
            cache_misses: self.cache_misses + other.cache_misses,
            bool_normalizations: self.bool_normalizations + other.bool_normalizations,
            eq_decisions: self.eq_decisions + other.eq_decisions,
            blocked_conditions: self.blocked_conditions + other.blocked_conditions,
            cache_evictions: self.cache_evictions + other.cache_evictions,
        }
    }

    /// Fraction of memo-cache lookups that hit, in `[0, 1]` (0 before any
    /// lookup happened).
    pub fn cache_hit_rate(&self) -> f64 {
        let lookups = self.cache_hits + self.cache_misses;
        if lookups == 0 {
            0.0
        } else {
            self.cache_hits as f64 / lookups as f64
        }
    }
}

impl fmt::Display for RewriteStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} rewrites, cache {}/{} ({:.1}% hit, {} evictions), \
             {} bool normalizations, {} eq decisions, {} blocked conditions",
            self.rewrites,
            self.cache_hits,
            self.cache_hits + self.cache_misses,
            100.0 * self.cache_hit_rate(),
            self.cache_evictions,
            self.bool_normalizations,
            self.eq_decisions,
            self.blocked_conditions,
        )
    }
}

/// Counters for the candidate-rule index and the shared normal-form
/// cache. Kept apart from [`RewriteStats`] on purpose: the index prunes
/// rules that could never have matched, so a `RewriteStats` snapshot is
/// bit-identical with the index on or off, and these counters carry the
/// (mode-dependent) bookkeeping instead. Emitted by
/// [`Normalizer::emit_profile`] as `rewrite.index_*` / `rewrite.shared_*`
/// counters so `tls-trace summarize` shows the win.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineCounters {
    /// Discrimination-tree traversals (one per indexed root attempt).
    pub index_lookups: u64,
    /// Candidate rules the index returned across all lookups.
    pub index_candidates: u64,
    /// Rules sharing the root operator that the index proved structurally
    /// incompatible before any matcher ran.
    pub index_pruned: u64,
    /// Shared-cache lookups that replayed a published normal form.
    pub shared_hits: u64,
    /// Shared-cache lookups that found nothing usable.
    pub shared_misses: u64,
    /// Clean windows this session published to the shared cache.
    pub shared_published: u64,
}

impl EngineCounters {
    /// Sum of two counter records.
    pub fn merged(self, other: EngineCounters) -> EngineCounters {
        EngineCounters {
            index_lookups: self.index_lookups + other.index_lookups,
            index_candidates: self.index_candidates + other.index_candidates,
            index_pruned: self.index_pruned + other.index_pruned,
            shared_hits: self.shared_hits + other.shared_hits,
            shared_misses: self.shared_misses + other.shared_misses,
            shared_published: self.shared_published + other.shared_published,
        }
    }
}

/// Per-rule profile: how often a named rule was tried, failed to match,
/// fired, or blocked, and the cumulative time spent on it. Collected only
/// when [`Normalizer::set_profiling`] is on.
///
/// `time` is inclusive: it covers matching *and* normalizing the rule's
/// condition (which may recursively rewrite), so it measures what the rule
/// actually costs the engine, not just its pattern match.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RuleProfile {
    /// The rule's label.
    pub label: String,
    /// Times the rule was a head-indexed candidate.
    pub attempts: u64,
    /// Times its left-hand side failed to match.
    pub failures: u64,
    /// Times it rewrote the subject.
    pub fires: u64,
    /// Times its condition stayed undecided.
    pub blocked: u64,
    /// Cumulative time spent matching and deciding conditions.
    pub time: Duration,
}

/// Default fuel budget per top-level [`Normalizer::normalize`] call.
pub const DEFAULT_FUEL: u64 = 5_000_000;

/// Default memo-cache capacity (entries). At a few machine words per
/// entry plus hash-table overhead this bounds the cache around a few tens
/// of megabytes; long prover runs rotate the segmented cache instead of
/// growing without bound (rotations are counted in
/// [`RewriteStats::cache_evictions`]).
pub const DEFAULT_CACHE_CAPACITY: usize = 1 << 20;

/// A rewriting session: rules + assumptions + caches.
///
/// Cloning a normalizer clones its assumptions and caches, which is how the
/// prover explores case splits: one clone per branch, each extended with
/// that branch's assumption.
#[derive(Debug, Clone)]
pub struct Normalizer {
    alg: BoolAlg,
    rules: RuleSet,
    assumptions: RuleSet,
    /// Hot memo segment: entries inserted or touched since the last
    /// rotation. Bounded to half the configured capacity.
    hot: HashMap<TermId, MemoEntry>,
    /// Cold memo segment: the previous hot segment. A lookup that hits
    /// here promotes the entry back into `hot` (its second chance); a
    /// rotation drops whatever was never touched.
    cold: HashMap<TermId, MemoEntry>,
    cache_capacity: usize,
    /// Monotone counter stamped onto memo entries; the shared-cache
    /// window logic uses it to tell in-window entries from older ones.
    epoch: u64,
    /// Smallest epoch of any memo entry hit since the innermost open
    /// window began (`u64::MAX` = none). Only maintained while
    /// `shared_active`.
    min_hit_epoch: u64,
    /// Smallest `blocked` index any in-window recording deduplicated
    /// against (`usize::MAX` = none). Only maintained while
    /// `shared_active`.
    min_dedup_idx: usize,
    shared: Option<Arc<SharedNfCache>>,
    /// `true` only inside a top-level [`Normalizer::normalize`] call that
    /// passed the participation gates (shared cache attached, no
    /// assumptions, cold memo).
    shared_active: bool,
    /// Discrimination-tree index over `rules`, built lazily on first
    /// root-matching attempt and shared by clones.
    index: Option<Arc<PathIndex>>,
    use_index: bool,
    index_scratch: Vec<TermId>,
    candidate_scratch: Vec<usize>,
    counters: EngineCounters,
    blocked: Vec<TermId>,
    stats: RewriteStats,
    fuel: u64,
    fuel_limit: u64,
    depth: u32,
    max_depth: u32,
    infeasible: bool,
    obs: Obs,
    profiling: bool,
    profiles: HashMap<String, RuleProfile>,
    budget: Budget,
    fault: Option<FaultHook>,
}

/// One memo entry: the normal form plus the epoch at which it was
/// inserted (promotions keep the original epoch — the entry's *content*
/// predates the promotion).
#[derive(Debug, Clone, Copy)]
struct MemoEntry {
    value: TermId,
    epoch: u64,
}

/// Saved window state for one `norm` activation while the shared cache
/// participates; see [`Normalizer::set_shared_cache`].
#[derive(Debug, Clone, Copy)]
struct WindowFrame {
    start_epoch: u64,
    blocked_start: usize,
    saved_min_hit_epoch: u64,
    saved_min_dedup_idx: usize,
}

/// Fault-injection bookkeeping for one rewriting session. Clones (the
/// prover's per-branch normalizers) share the call counter, so "the *N*-th
/// rewrite call of this obligation" is well-defined across branch clones —
/// and, because each obligation's search is sequential, deterministic at
/// every `jobs` value.
#[derive(Debug, Clone)]
struct FaultHook {
    plan: FaultPlan,
    scope: String,
    calls: Arc<AtomicU64>,
}

impl FaultHook {
    /// Advance the rewrite-call counter and return the call index paired
    /// with the fault planned for it, if any.
    fn tick(&self) -> Option<(u64, FaultKind)> {
        let n = self.calls.fetch_add(1, Ordering::Relaxed);
        self.plan
            .fault_for(FaultSite::Rewrite, &self.scope, n)
            .map(|kind| (n, kind))
    }
}

/// Default recursion depth bound (guards the stack before fuel runs out).
///
/// Chosen to stay within a 2 MiB thread stack even in debug builds; the
/// TLS proofs never exceed depth ~100 (balanced Boolean rebuilds keep
/// polynomial terms logarithmic). Raise with
/// [`Normalizer::set_max_depth`] when normalizing unusually deep data on
/// a big-stack thread.
pub const DEFAULT_MAX_DEPTH: u32 = 300;

impl Normalizer {
    /// Create a normalizer over the given Boolean vocabulary and
    /// specification rules.
    pub fn new(alg: BoolAlg, rules: RuleSet) -> Self {
        Normalizer {
            alg,
            rules,
            assumptions: RuleSet::new(),
            hot: HashMap::new(),
            cold: HashMap::new(),
            cache_capacity: DEFAULT_CACHE_CAPACITY,
            epoch: 0,
            min_hit_epoch: u64::MAX,
            min_dedup_idx: usize::MAX,
            shared: None,
            shared_active: false,
            index: None,
            use_index: true,
            index_scratch: Vec::new(),
            candidate_scratch: Vec::new(),
            counters: EngineCounters::default(),
            blocked: Vec::new(),
            stats: RewriteStats::default(),
            fuel: DEFAULT_FUEL,
            fuel_limit: DEFAULT_FUEL,
            depth: 0,
            max_depth: DEFAULT_MAX_DEPTH,
            infeasible: false,
            obs: Obs::noop(),
            profiling: false,
            profiles: HashMap::new(),
            budget: Budget::unlimited(),
            fault: None,
        }
    }

    /// Attach a shared [`Budget`]. The normalizer checks it at every
    /// [`Normalizer::normalize`] entry and on a stride of the fuel counter,
    /// and reports a trip as [`RewriteError::BudgetExceeded`] — a partial,
    /// recoverable stop, unlike fuel exhaustion which signals divergence.
    pub fn set_budget(&mut self, budget: Budget) {
        self.budget = budget;
    }

    /// The budget currently attached (unlimited by default).
    pub fn budget(&self) -> &Budget {
        &self.budget
    }

    /// Install a fault-injection plan for this session, scoped to `scope`
    /// (the prover passes the obligation name; tests may pass `""`). Resets
    /// the session's rewrite-call counter.
    pub fn set_fault_plan(&mut self, plan: FaultPlan, scope: impl Into<String>) {
        self.fault = Some(FaultHook {
            plan,
            scope: scope.into(),
            calls: Arc::new(AtomicU64::new(0)),
        });
    }

    /// Override the per-call fuel budget.
    pub fn set_fuel_limit(&mut self, fuel: u64) {
        self.fuel_limit = fuel;
    }

    /// Override the memo-cache capacity (entries; see
    /// [`DEFAULT_CACHE_CAPACITY`]). The cache is two segments of at most
    /// `capacity / 2` entries each: inserts land in the hot segment; when
    /// it fills, the cold segment is dropped, the hot segment becomes the
    /// new cold one, and [`RewriteStats::cache_evictions`] counts the
    /// rotation. A lookup that hits the cold segment promotes its entry
    /// back into the hot one — a second chance, so entries in active use
    /// survive capacity pressure instead of being wiped wholesale (the
    /// pre-segmentation behavior), while the bound stays allocation-free
    /// on the hot path (no per-entry LRU bookkeeping). A capacity of 0
    /// disables memoization.
    pub fn set_cache_capacity(&mut self, capacity: usize) {
        self.cache_capacity = capacity;
        if self.hot.len() + self.cold.len() > capacity {
            self.clear_memo();
            self.stats.cache_evictions += 1;
        }
    }

    /// Entries one segment may hold before a rotation.
    fn segment_capacity(&self) -> usize {
        if self.cache_capacity == 0 {
            0
        } else {
            (self.cache_capacity / 2).max(1)
        }
    }

    /// Put an entry into the hot segment, rotating the segments first
    /// when it is full.
    fn hot_insert(&mut self, key: TermId, entry: MemoEntry) {
        let cap = self.segment_capacity();
        if cap == 0 {
            return;
        }
        if self.hot.len() >= cap {
            self.cold = std::mem::take(&mut self.hot);
            self.stats.cache_evictions += 1;
        }
        self.hot.insert(key, entry);
    }

    /// Insert a memo entry at the current epoch.
    fn cache_insert(&mut self, key: TermId, value: TermId) {
        self.epoch += 1;
        let entry = MemoEntry {
            value,
            epoch: self.epoch,
        };
        self.hot_insert(key, entry);
    }

    /// Look up a memo entry, promoting cold hits into the hot segment
    /// (keeping their original epoch) and feeding the shared-cache window
    /// poison tracking when active.
    fn cache_lookup(&mut self, key: TermId) -> Option<TermId> {
        let entry = if let Some(e) = self.hot.get(&key) {
            *e
        } else if let Some(e) = self.cold.remove(&key) {
            self.hot_insert(key, e);
            e
        } else {
            return None;
        };
        if self.shared_active {
            self.min_hit_epoch = self.min_hit_epoch.min(entry.epoch);
        }
        Some(entry.value)
    }

    /// Drop both memo segments (assumptions changed, so every cached
    /// normal form is suspect).
    fn clear_memo(&mut self) {
        self.hot.clear();
        self.cold.clear();
    }

    /// `true` when nothing is memoized — the cold-start condition the
    /// shared cache's participation gate requires.
    fn memo_is_empty(&self) -> bool {
        self.hot.is_empty() && self.cold.is_empty()
    }

    /// Attach an observability handle; counters and gauges flow to its
    /// sink. The default handle is the no-op sink, which costs one boolean
    /// test per instrumented site.
    pub fn set_obs(&mut self, obs: Obs) {
        self.obs = obs;
    }

    /// Toggle per-rule profiling (see [`RuleProfile`]). Off by default:
    /// profiling clones rule labels and reads the monotonic clock on every
    /// candidate attempt, which costs a few percent on hot proofs.
    pub fn set_profiling(&mut self, on: bool) {
        self.profiling = on;
    }

    /// The per-rule profiles collected so far, hottest (most cumulative
    /// time, then most fires) first. Empty unless
    /// [`Normalizer::set_profiling`] was turned on.
    pub fn rule_profiles(&self) -> Vec<RuleProfile> {
        let mut out: Vec<RuleProfile> = self.profiles.values().cloned().collect();
        out.sort_by(|a, b| {
            b.time
                .cmp(&a.time)
                .then_with(|| b.fires.cmp(&a.fires))
                .then_with(|| a.label.cmp(&b.label))
        });
        out
    }

    /// Emit the collected per-rule profiles and engine gauges as
    /// observability events (`rule.attempts:<label>`,
    /// `rule.fires:<label>`, `rule.failures:<label>`,
    /// `rule.blocked:<label>`, `rule.time_us:<label>`, plus cache
    /// hit-rate and fuel gauges), then clear the profiles. Zero-valued
    /// counters are skipped: most of the 415 TLS rules never block, and
    /// the trace should not carry hundreds of zero lines per obligation.
    /// A no-op when the handle is disabled.
    pub fn emit_profile(&mut self) {
        if !self.obs.enabled() {
            return;
        }
        for p in self.profiles.values() {
            let emit = |kind: &str, value: u64| {
                if value > 0 {
                    self.obs.counter(&format!("rule.{kind}:{}", p.label), value);
                }
            };
            emit("attempts", p.attempts);
            emit("fires", p.fires);
            emit("failures", p.failures);
            emit("blocked", p.blocked);
            emit("time_us", p.time.as_micros() as u64);
        }
        self.profiles.clear();
        self.obs
            .gauge("rewrite.cache_hit_rate", self.stats.cache_hit_rate());
        self.obs.gauge("rewrite.fuel_remaining", self.fuel as f64);
        self.obs.counter("rewrite.rewrites", self.stats.rewrites);
        // Index and shared-cache counters, zero-skipped like the rule
        // profiles (linear-scan or cache-off runs should not emit noise).
        let c = self.counters;
        for (name, value) in [
            ("rewrite.index_lookups", c.index_lookups),
            ("rewrite.index_candidates", c.index_candidates),
            ("rewrite.index_pruned", c.index_pruned),
            ("rewrite.shared_hits", c.shared_hits),
            ("rewrite.shared_misses", c.shared_misses),
            ("rewrite.shared_published", c.shared_published),
        ] {
            if value > 0 {
                self.obs.counter(name, value);
            }
        }
    }

    /// Fold another normalizer's counters and per-rule profiles into this
    /// one. The prover explores case splits on clones; resetting each
    /// clone's stats at the branch point and absorbing it afterwards gives
    /// the root normalizer exact whole-obligation totals without double
    /// counting.
    pub fn absorb(&mut self, other: &Normalizer) {
        self.stats = self.stats.merged(other.stats);
        self.counters = self.counters.merged(other.counters);
        for (label, p) in &other.profiles {
            let entry = self
                .profiles
                .entry(label.clone())
                .or_insert_with(|| RuleProfile {
                    label: label.clone(),
                    ..RuleProfile::default()
                });
            entry.attempts += p.attempts;
            entry.failures += p.failures;
            entry.fires += p.fires;
            entry.blocked += p.blocked;
            entry.time += p.time;
        }
    }

    /// Reset the statistics counters (and per-rule profiles) to zero,
    /// e.g. between proof obligations so each [`RewriteStats`] snapshot
    /// covers exactly one obligation.
    pub fn reset_stats(&mut self) {
        self.stats = RewriteStats::default();
        self.counters = EngineCounters::default();
        self.profiles.clear();
    }

    /// Override the recursion-depth bound (see [`DEFAULT_MAX_DEPTH`]).
    pub fn set_max_depth(&mut self, depth: u32) {
        self.max_depth = depth;
    }

    /// The Boolean vocabulary in use.
    pub fn bool_alg(&self) -> &BoolAlg {
        &self.alg
    }

    /// The specification rules in use.
    pub fn rules(&self) -> &RuleSet {
        &self.rules
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> RewriteStats {
        self.stats
    }

    /// Index and shared-cache counters accumulated so far (see
    /// [`EngineCounters`]).
    pub fn engine_counters(&self) -> EngineCounters {
        self.counters
    }

    /// Toggle the discrimination-tree candidate index (on by default).
    /// With the index off, candidates come from the per-head linear scan;
    /// results and [`RewriteStats`] are identical either way — the flag
    /// exists so benchmarks and determinism tests can compare the paths.
    pub fn set_indexing(&mut self, on: bool) {
        self.use_index = on;
    }

    /// Attach (or detach, with `None`) a shared normal-form cache.
    ///
    /// ## Participation gates
    ///
    /// The cache participates only in top-level
    /// [`Normalizer::normalize`] calls that start with **no assumptions**
    /// and an **empty memo cache** — in the prover that is exactly the
    /// initial goal reduction of each obligation, before any case split
    /// installs passage equations. Within a participating call, a
    /// sub-computation is *published* only when its window is **clean**:
    /// it hit no memo entry predating the window and deduplicated no
    /// blocked condition against a pre-window recording, so its normal
    /// form and blocked conditions are exactly what a from-scratch
    /// derivation produces. A *hit* replays the published normal form and
    /// blocked conditions into the consumer's arena by name (see
    /// [`crate::shared`]); it can only skip work a fresh derivation would
    /// have repeated, never change its result — the residual coupling
    /// through arena-local atom ordering is pinned by the determinism
    /// suite, and the prover ships with the cache **off** by default.
    pub fn set_shared_cache(&mut self, cache: Option<Arc<SharedNfCache>>) {
        self.shared = cache;
    }

    /// The shared normal-form cache currently attached, if any.
    pub fn shared_cache(&self) -> Option<&Arc<SharedNfCache>> {
        self.shared.as_ref()
    }

    /// Add an assumption equation `lhs = rhs`, used as a highest-priority
    /// rewrite rule. Clears the memo cache.
    ///
    /// # Errors
    ///
    /// [`RewriteError::InvalidRule`] for malformed assumptions.
    pub fn assume(
        &mut self,
        store: &TermStore,
        label: impl Into<String>,
        lhs: TermId,
        rhs: TermId,
    ) -> Result<(), RewriteError> {
        self.assumptions.add(store, label, lhs, rhs, None, None)?;
        self.clear_memo();
        Ok(())
    }

    /// The assumptions currently in force (proof-passage equations).
    pub fn assumptions(&self) -> &RuleSet {
        &self.assumptions
    }

    /// `true` when the assumptions were detected to be jointly
    /// contradictory by [`Normalizer::refresh_assumptions`] — the current
    /// proof case is unreachable and discharges vacuously.
    pub fn is_infeasible(&self) -> bool {
        self.infeasible
    }

    /// Re-normalize every assumption under all the others — a bounded
    /// completion pass.
    ///
    /// The paper's proof passages list their assumption equations in a
    /// carefully chosen order so that each rewrites the later ones (§5.2's
    /// nine equations). The prover instead installs assumptions as case
    /// splits discover them, so an orientation learned late (`e10 →
    /// esfin(…)`) can strand an earlier assumption
    /// (`e10 \in cesfin(nw(s)) = true`) whose left-hand side no longer
    /// occurs in any normalized subject. This pass rewrites each
    /// assumption to canonical form and re-orients it; contradictory
    /// assumption sets set the [`Normalizer::is_infeasible`] flag.
    ///
    /// # Errors
    ///
    /// Rewriting errors (fuel).
    pub fn refresh_assumptions(&mut self, store: &mut TermStore) -> Result<(), RewriteError> {
        for _round in 0..4 {
            let pairs: Vec<(String, TermId, TermId)> = self
                .assumptions
                .iter()
                .map(|r| (r.label.clone(), r.lhs, r.rhs))
                .collect();
            if pairs.is_empty() {
                return Ok(());
            }
            let mut changed = false;
            let mut next: Vec<(String, TermId, TermId)> = Vec::with_capacity(pairs.len());
            for i in 0..pairs.len() {
                // Normalize pair i under all other (current-round) pairs.
                let mut others = RuleSet::new();
                for (j, (label, l, r)) in pairs.iter().enumerate() {
                    if j != i && l != r {
                        others.add(store, label.clone(), *l, *r, None, None)?;
                    }
                }
                std::mem::swap(&mut self.assumptions, &mut others);
                self.clear_memo();
                self.fuel = self.fuel_limit;
                let ln = self.norm(store, pairs[i].1);
                let rn = self.norm(store, pairs[i].2);
                std::mem::swap(&mut self.assumptions, &mut others);
                let (ln, rn) = (ln?, rn?);
                if ln != pairs[i].1 || rn != pairs[i].2 {
                    changed = true;
                }
                if ln == rn {
                    continue; // trivial
                }
                // Bool-valued assumptions keep their `term -> constant`
                // shape; everything else is re-oriented.
                let keep_direct = self.alg.as_constant(store, rn).is_some()
                    || store.sort_of(rn) == self.alg.sort();
                if keep_direct {
                    if let (Some(a), Some(b)) = (
                        self.alg.as_constant(store, ln),
                        self.alg.as_constant(store, rn),
                    ) {
                        if a != b {
                            self.infeasible = true;
                        }
                        continue;
                    }
                    // Never install a truth constant as a left-hand side.
                    if self.alg.as_constant(store, ln).is_some() {
                        next.push((pairs[i].0.clone(), rn, ln));
                    } else {
                        next.push((pairs[i].0.clone(), ln, rn));
                    }
                } else {
                    let mut alg = self.alg.clone();
                    let verdict = decide_equality(store, &mut alg, ln, rn)?;
                    if verdict == EqVerdict::False {
                        self.alg = alg;
                        self.infeasible = true;
                        continue;
                    }
                    let oriented = orient_equation(store, &mut alg, ln, rn)?;
                    self.alg = alg;
                    for (k, (l2, r2)) in oriented.into_iter().enumerate() {
                        if l2 != r2 {
                            next.push((format!("{}#{k}", pairs[i].0), l2, r2));
                        }
                    }
                }
            }
            // Rebuild the assumption set.
            let mut rebuilt = RuleSet::new();
            for (label, l, r) in &next {
                // Skip exact duplicates.
                if rebuilt.iter().any(|r0| r0.lhs == *l && r0.rhs == *r) {
                    continue;
                }
                rebuilt.add(store, label.clone(), *l, *r, None, None)?;
            }
            self.assumptions = rebuilt;
            self.clear_memo();
            if !changed {
                break;
            }
        }
        Ok(())
    }

    /// Drain the conditions that blocked conditional rules since the last
    /// call. Each entry is a normalized, undecided Bool term.
    pub fn take_blocked(&mut self) -> Vec<TermId> {
        std::mem::take(&mut self.blocked)
    }

    /// Normalize `t` to its canonical form.
    ///
    /// # Errors
    ///
    /// [`RewriteError::FuelExhausted`] on runaway rewriting;
    /// [`RewriteError::BudgetExceeded`] when the attached [`Budget`] trips
    /// (deadline, memory ceiling, or cancellation); kernel errors on
    /// (impossible for validated rules) ill-sorted construction.
    pub fn normalize(&mut self, store: &mut TermStore, t: TermId) -> Result<TermId, RewriteError> {
        self.check_budget(store, t)?;
        self.fuel = self.fuel_limit;
        // Shared-cache participation gate: assumption-free, cold-start
        // top-level calls only (see `set_shared_cache`).
        self.shared_active =
            self.shared.is_some() && self.assumptions.is_empty() && self.memo_is_empty();
        if self.shared_active {
            self.min_hit_epoch = u64::MAX;
            self.min_dedup_idx = usize::MAX;
        }
        let result = self.norm(store, t);
        self.shared_active = false;
        result
    }

    /// Normalize `t` and report whether it is `true` — the paper's
    /// `red <formula> .` returning `true`.
    ///
    /// # Errors
    ///
    /// Same as [`Normalizer::normalize`].
    pub fn proves(&mut self, store: &mut TermStore, t: TermId) -> Result<bool, RewriteError> {
        let n = self.normalize(store, t)?;
        Ok(self.alg.as_constant(store, n) == Some(true))
    }

    /// Normalize `t` and return its Boolean-ring polynomial.
    ///
    /// The polynomial view exposes the atoms the prover can split on.
    ///
    /// # Errors
    ///
    /// Same as [`Normalizer::normalize`].
    pub fn normalize_to_poly(
        &mut self,
        store: &mut TermStore,
        t: TermId,
    ) -> Result<Poly, RewriteError> {
        let n = self.normalize(store, t)?;
        if let Some(b) = self.alg.as_constant(store, n) {
            return Ok(Poly::constant(b));
        }
        if store.sort_of(n) != self.alg.sort() {
            return Err(RewriteError::InvalidRule {
                label: "normalize_to_poly".into(),
                reason: "term is not Bool-sorted".into(),
            });
        }
        self.poly_of(store, n)
    }

    /// Build the enriched fuel/depth-exhaustion error: the offending term,
    /// the budget, and a snapshot of the engine counters, so a divergence
    /// report is actionable without re-running under a debugger.
    fn exhausted(&self, store: &TermStore, t: TermId) -> RewriteError {
        RewriteError::FuelExhausted {
            term: store.display(t).to_string(),
            fuel_limit: self.fuel_limit,
            stats: self.stats.to_string(),
        }
    }

    /// Build the budget-stop error for the term being normalized.
    fn stopped(&self, store: &TermStore, t: TermId, reason: StopReason) -> RewriteError {
        RewriteError::BudgetExceeded {
            reason,
            term: store.display(t).to_string(),
        }
    }

    /// Estimate of this session's heap footprint (bytes): hash-consed term
    /// arena plus memo cache. Coarse by design — the budget's memory
    /// ceiling is a tripwire on arena growth, not an allocator audit.
    fn heap_estimate(&self, store: &TermStore) -> u64 {
        let memo = (self.hot.len() + self.cold.len()) as u64;
        (store.term_count() as u64) * 96 + memo * 40
    }

    /// Check the shared budget, translating a trip into a typed error.
    fn check_budget(&self, store: &TermStore, t: TermId) -> Result<(), RewriteError> {
        self.budget
            .check(self.heap_estimate(store))
            .map_err(|reason| self.stopped(store, t, reason))
    }

    fn consume_fuel(&mut self, store: &TermStore, t: TermId) -> Result<(), RewriteError> {
        if let Some(hook) = &self.fault {
            match hook.tick() {
                Some((n, FaultKind::Panic)) => {
                    let scope = hook.scope.clone();
                    trigger_injected_panic(FaultSite::Rewrite, &scope, n);
                }
                Some((_, FaultKind::FuelStarvation)) => self.fuel = 0,
                Some((_, FaultKind::DeadlineExpiry)) => {
                    return Err(self.stopped(store, t, StopReason::DeadlineExceeded));
                }
                Some((_, FaultKind::Cancel)) => {
                    self.budget.cancel();
                    return Err(self.stopped(store, t, StopReason::Cancelled));
                }
                // Persist-layer kinds are meaningless at a rewrite step:
                // the persist and spill I/O sites consult the plan
                // themselves, so an IoError or Corruption planned here
                // is simply inert.
                Some((_, FaultKind::IoError)) | Some((_, FaultKind::Corruption)) | None => {}
            }
        }
        if self.fuel == 0 {
            return Err(self.exhausted(store, t));
        }
        self.fuel -= 1;
        // Real budget checks are strided: `Instant::now` on every rewrite
        // would dominate hot proofs.
        if self.fuel & 511 == 0 {
            self.check_budget(store, t)?;
        }
        Ok(())
    }

    fn norm(&mut self, store: &mut TermStore, t: TermId) -> Result<TermId, RewriteError> {
        if let Some(r) = self.cache_lookup(t) {
            self.stats.cache_hits += 1;
            return Ok(r);
        }
        self.stats.cache_misses += 1;
        if self.shared_active {
            if let Some(r) = self.shared_consult(store, t) {
                return Ok(r);
            }
        }
        self.depth += 1;
        if self.depth > self.max_depth {
            self.depth -= 1;
            return Err(self.exhausted(store, t));
        }
        let frame = if self.shared_active {
            Some(self.window_open())
        } else {
            None
        };
        let result = self.norm_uncached(store, t);
        self.depth -= 1;
        let result = result?;
        if let Some(frame) = frame {
            self.window_close(store, frame, t, result);
        }
        self.cache_insert(t, result);
        self.cache_insert(result, result);
        Ok(result)
    }

    /// Try to resolve `t` from the shared cache. On a hit, replays the
    /// published normal form and blocked conditions into this session
    /// (memoizing them at fresh epochs) and returns the normal form; any
    /// decode failure fails closed as a miss.
    fn shared_consult(&mut self, store: &mut TermStore, t: TermId) -> Option<TermId> {
        if !matches!(store.node(t), Term::App { .. }) {
            return None;
        }
        let cache = self.shared.clone()?;
        let fp = fingerprint(store, t);
        let Some(entry) = cache.lookup(fp) else {
            self.counters.shared_misses += 1;
            return None;
        };
        let decoded = (|| {
            let nf = entry.nf.decode(store)?;
            let mut blocked = Vec::with_capacity(entry.blocked.len());
            for enc in &entry.blocked {
                blocked.push(enc.decode(store)?);
            }
            Some((nf, blocked))
        })();
        let Some((nf, blocked)) = decoded else {
            self.counters.shared_misses += 1;
            return None;
        };
        self.counters.shared_hits += 1;
        // Replay the blocked recordings with the same dedup a fresh
        // derivation applies, feeding the enclosing window's poison
        // tracking exactly as a fresh dedup would.
        for b in blocked {
            match self.blocked.iter().position(|&x| x == b) {
                Some(i) => self.min_dedup_idx = self.min_dedup_idx.min(i),
                None => self.blocked.push(b),
            }
        }
        self.cache_insert(t, nf);
        if nf != t {
            self.cache_insert(nf, nf);
        }
        Some(nf)
    }

    /// Open a shared-cache window for one `norm` activation: remember the
    /// enclosing window's poison state and start fresh.
    fn window_open(&mut self) -> WindowFrame {
        let frame = WindowFrame {
            start_epoch: self.epoch,
            blocked_start: self.blocked.len(),
            saved_min_hit_epoch: self.min_hit_epoch,
            saved_min_dedup_idx: self.min_dedup_idx,
        };
        self.min_hit_epoch = u64::MAX;
        self.min_dedup_idx = usize::MAX;
        frame
    }

    /// Close a window: publish it when clean (no dependency on pre-window
    /// state, so the result equals a from-scratch derivation), then fold
    /// the poison state back into the enclosing window.
    fn window_close(&mut self, store: &TermStore, frame: WindowFrame, subject: TermId, nf: TermId) {
        let clean =
            self.min_hit_epoch > frame.start_epoch && self.min_dedup_idx >= frame.blocked_start;
        if clean && matches!(store.node(subject), Term::App { .. }) {
            if let Some(cache) = self.shared.clone() {
                let fp = fingerprint(store, subject);
                if !cache.contains(fp) {
                    let entry = SharedEntry {
                        nf: EncodedTerm::encode(store, nf),
                        blocked: self.blocked[frame.blocked_start..]
                            .iter()
                            .map(|&b| EncodedTerm::encode(store, b))
                            .collect(),
                    };
                    if cache.publish(fp, entry) {
                        self.counters.shared_published += 1;
                    }
                }
            }
        }
        self.min_hit_epoch = self.min_hit_epoch.min(frame.saved_min_hit_epoch);
        self.min_dedup_idx = self.min_dedup_idx.min(frame.saved_min_dedup_idx);
    }

    fn norm_uncached(&mut self, store: &mut TermStore, t: TermId) -> Result<TermId, RewriteError> {
        let (op, args) = match store.node(t) {
            Term::Var(_) => return Ok(t),
            Term::App { op, args } => (*op, args.clone()),
        };
        // Innermost: arguments first.
        let mut nargs = Vec::with_capacity(args.len());
        let mut changed = false;
        for &a in &args {
            let na = self.norm(store, a)?;
            changed |= na != a;
            nargs.push(na);
        }
        let cur = if changed { store.app(op, &nargs)? } else { t };
        // Rules at the root.
        if let Some(next) = self.apply_rules_at_root(store, cur)? {
            self.consume_fuel(store, cur)?;
            self.stats.rewrites += 1;
            return self.norm(store, next);
        }
        // Built-in Boolean layer.
        let op_now = store.op_of(cur).expect("application");
        if self.is_connective(op_now) || self.alg.is_eq_op(op_now) {
            self.stats.bool_normalizations += 1;
            let poly = self.poly_of(store, cur)?;
            let rebuilt = poly.to_term(store, &self.alg)?;
            // Assumptions may target the canonical form itself (the prover
            // assumes whole effective conditions false): give the rules one
            // chance at the rebuilt root.
            if rebuilt != cur {
                if let Some(next) = self.apply_rules_at_root(store, rebuilt)? {
                    self.consume_fuel(store, rebuilt)?;
                    self.stats.rewrites += 1;
                    return self.norm(store, next);
                }
            }
            // The rebuilt canonical form is normal by construction (atoms
            // are normal, connectives are canonical); record it so the
            // equivalence class converges without re-walking.
            self.cache_insert(rebuilt, rebuilt);
            return Ok(rebuilt);
        }
        Ok(cur)
    }

    /// Try assumption rules then specification rules at the root of `t`
    /// (whose arguments are already normal). Returns the instantiated
    /// right-hand side of the first applicable rule.
    fn apply_rules_at_root(
        &mut self,
        store: &mut TermStore,
        t: TermId,
    ) -> Result<Option<TermId>, RewriteError> {
        let op = match store.op_of(t) {
            Some(op) => op,
            None => return Ok(None),
        };
        // Labels are cloned into the candidate list only when profiling:
        // the common (unprofiled) path must stay allocation-light.
        let profiling = self.profiling;
        // Assumption rules are always linear-scanned: the set is small,
        // changes at every case split, and has highest priority.
        let mut candidates: Vec<(TermId, TermId, Option<TermId>, Option<String>)> = self
            .assumptions
            .candidates(op)
            .map(|r| (r.lhs, r.rhs, r.cond, profiling.then(|| r.label.clone())))
            .collect();
        if self.use_index && !self.rules.is_empty() {
            // Specification rules come from the discrimination tree. The
            // index over-approximates (non-linearity and conditions are
            // left to the matcher) and returns candidates in declaration
            // order, so firing order — and every stats counter — matches
            // the linear scan exactly; only provably incompatible rules
            // are pruned before `match_term` runs.
            let index = self.ensure_index(store);
            let mut scratch = std::mem::take(&mut self.index_scratch);
            let mut picked = std::mem::take(&mut self.candidate_scratch);
            index.candidates_into(store, t, &mut scratch, &mut picked);
            self.counters.index_lookups += 1;
            self.counters.index_candidates += picked.len() as u64;
            self.counters.index_pruned += (index.head_total(op) - picked.len()) as u64;
            candidates.extend(picked.iter().map(|&i| {
                let r = self.rules.get(i).expect("index yields valid rule indices");
                (r.lhs, r.rhs, r.cond, profiling.then(|| r.label.clone()))
            }));
            self.index_scratch = scratch;
            self.candidate_scratch = picked;
        } else {
            candidates.extend(
                self.rules
                    .candidates(op)
                    .map(|r| (r.lhs, r.rhs, r.cond, profiling.then(|| r.label.clone()))),
            );
        }
        for (lhs, rhs, cond, label) in candidates {
            let started = label.as_ref().map(|_| Instant::now());
            let subst = match match_term(store, lhs, t) {
                MatchOutcome::Matched(s) => s,
                MatchOutcome::Failed => {
                    self.profile(label, started, |p| p.failures += 1);
                    continue;
                }
            };
            match cond {
                None => {
                    self.profile(label, started, |p| p.fires += 1);
                    return Ok(Some(subst.apply(store, rhs)));
                }
                Some(c) => {
                    let inst = subst.apply(store, c);
                    let nc = self.norm(store, inst)?;
                    match self.alg.as_constant(store, nc) {
                        Some(true) => {
                            self.profile(label, started, |p| p.fires += 1);
                            return Ok(Some(subst.apply(store, rhs)));
                        }
                        Some(false) => {
                            self.profile(label, started, |p| p.failures += 1);
                            continue;
                        }
                        None => {
                            self.stats.blocked_conditions += 1;
                            match self.blocked.iter().position(|&b| b == nc) {
                                // A dedup against an earlier recording:
                                // note its index for the shared-cache
                                // window poison tracking.
                                Some(i) => self.min_dedup_idx = self.min_dedup_idx.min(i),
                                None => self.blocked.push(nc),
                            }
                            self.profile(label, started, |p| p.blocked += 1);
                            continue;
                        }
                    }
                }
            }
        }
        Ok(None)
    }

    /// The discrimination-tree index over the specification rules,
    /// building it on first use. Clones share the built index through the
    /// `Arc` (the rule set is fixed for the life of a session).
    fn ensure_index(&mut self, store: &TermStore) -> Arc<PathIndex> {
        if let Some(index) = &self.index {
            return index.clone();
        }
        // The rule set builds (or reuses) the shared index: a normalizer
        // created from an already-indexed `RuleSet` clone pays one `Arc`
        // bump here, not a rebuild.
        let index = self.rules.path_index(store);
        self.index = Some(index.clone());
        index
    }

    /// Record one candidate attempt against rule `label` (no-op when
    /// profiling is off, signalled by `label == None`).
    fn profile(
        &mut self,
        label: Option<String>,
        started: Option<Instant>,
        update: impl FnOnce(&mut RuleProfile),
    ) {
        let (Some(label), Some(started)) = (label, started) else {
            return;
        };
        let entry = self
            .profiles
            .entry(label.clone())
            .or_insert_with(|| RuleProfile {
                label,
                ..RuleProfile::default()
            });
        entry.attempts += 1;
        entry.time += started.elapsed();
        update(entry);
    }

    fn is_connective(&self, op: OpId) -> bool {
        op == self.alg.not_op()
            || op == self.alg.and_op()
            || op == self.alg.or_op()
            || op == self.alg.xor_op()
            || op == self.alg.implies_op()
            || op == self.alg.iff_op()
            || op == self.alg.ite_op()
            || op == self.alg.true_op()
            || op == self.alg.false_op()
    }

    /// Convert an argument-normalized Bool term to its polynomial.
    fn poly_of(&mut self, store: &mut TermStore, t: TermId) -> Result<Poly, RewriteError> {
        self.consume_fuel(store, t)?;
        let op = match store.op_of(t) {
            Some(op) => op,
            None => return Ok(Poly::atom(t)), // Bool variable
        };
        let args: Vec<TermId> = store.args(t).to_vec();
        if op == self.alg.true_op() {
            return Ok(Poly::one());
        }
        if op == self.alg.false_op() {
            return Ok(Poly::zero());
        }
        if op == self.alg.not_op() {
            return Ok(self.poly_of(store, args[0])?.negate());
        }
        if op == self.alg.and_op() {
            let a = self.poly_of(store, args[0])?;
            let b = self.poly_of(store, args[1])?;
            return Ok(a.mul(&b));
        }
        if op == self.alg.or_op() {
            let a = self.poly_of(store, args[0])?;
            let b = self.poly_of(store, args[1])?;
            return Ok(a.add(&b).add(&a.mul(&b)));
        }
        if op == self.alg.xor_op() {
            let a = self.poly_of(store, args[0])?;
            let b = self.poly_of(store, args[1])?;
            return Ok(a.add(&b));
        }
        if op == self.alg.implies_op() {
            let a = self.poly_of(store, args[0])?;
            let b = self.poly_of(store, args[1])?;
            return Ok(Poly::one().add(&a).add(&a.mul(&b)));
        }
        if op == self.alg.iff_op() {
            let a = self.poly_of(store, args[0])?;
            let b = self.poly_of(store, args[1])?;
            return Ok(Poly::one().add(&a).add(&b));
        }
        if op == self.alg.ite_op() {
            let c = self.poly_of(store, args[0])?;
            let x = self.poly_of(store, args[1])?;
            let y = self.poly_of(store, args[2])?;
            return Ok(c.mul(&x).add(&c.mul(&y)).add(&y));
        }
        if self.alg.is_eq_op(op) {
            let (l, r) = (args[0], args[1]);
            if store.sort_of(l) == self.alg.sort() {
                // Equality on Bool is iff.
                let a = self.poly_of(store, l)?;
                let b = self.poly_of(store, r)?;
                return Ok(Poly::one().add(&a).add(&b));
            }
            self.stats.eq_decisions += 1;
            let mut alg = self.alg.clone();
            let verdict = decide_equality(store, &mut alg, l, r)?;
            self.alg = alg;
            return match verdict {
                EqVerdict::True => Ok(Poly::one()),
                EqVerdict::False => Ok(Poly::zero()),
                EqVerdict::Atoms(atoms) => {
                    let mut acc = Poly::one();
                    for atom in atoms {
                        acc = acc.mul(&self.atom_poly(store, atom)?);
                    }
                    Ok(acc)
                }
            };
        }
        // Any other Bool-sorted term is an opaque atom.
        Ok(Poly::atom(t))
    }

    /// Polynomial of a (possibly freshly decomposed) equality atom: give
    /// assumption/specification rules one chance at the root, otherwise
    /// keep it atomic.
    fn atom_poly(&mut self, store: &mut TermStore, atom: TermId) -> Result<Poly, RewriteError> {
        if let Some(next) = self.apply_rules_at_root(store, atom)? {
            self.consume_fuel(store, atom)?;
            self.stats.rewrites += 1;
            let n = self.norm(store, next)?;
            if let Some(b) = self.alg.as_constant(store, n) {
                return Ok(Poly::constant(b));
            }
            return self.poly_of(store, n);
        }
        Ok(Poly::atom(atom))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct World {
        store: TermStore,
        alg: BoolAlg,
    }

    fn bool_world() -> World {
        let mut sig = Signature::new();
        let alg = BoolAlg::install(&mut sig).unwrap();
        World {
            store: TermStore::new(sig),
            alg,
        }
    }

    #[test]
    fn tautologies_reduce_to_true() {
        let mut w = bool_world();
        let p = w.store.fresh_constant("p", w.alg.sort());
        let q = w.store.fresh_constant("q", w.alg.sort());
        let mut norm = Normalizer::new(w.alg.clone(), RuleSet::new());

        // p or not p
        let np = w.alg.not(&mut w.store, p).unwrap();
        let lem = w.alg.or(&mut w.store, p, np).unwrap();
        assert!(norm.proves(&mut w.store, lem).unwrap());

        // de Morgan: not(p and q) iff (not p or not q)
        let pq = w.alg.and(&mut w.store, p, q).unwrap();
        let npq = w.alg.not(&mut w.store, pq).unwrap();
        let nq = w.alg.not(&mut w.store, q).unwrap();
        let or = w.alg.or(&mut w.store, np, nq).unwrap();
        let demorgan = w.alg.iff(&mut w.store, npq, or).unwrap();
        assert!(norm.proves(&mut w.store, demorgan).unwrap());

        // contradiction: p and not p
        let contra = w.alg.and(&mut w.store, p, np).unwrap();
        let n = norm.normalize(&mut w.store, contra).unwrap();
        assert_eq!(w.alg.as_constant(&w.store, n), Some(false));
    }

    #[test]
    fn non_tautologies_stay_open() {
        let mut w = bool_world();
        let p = w.store.fresh_constant("p", w.alg.sort());
        let q = w.store.fresh_constant("q", w.alg.sort());
        let imp = w.alg.implies(&mut w.store, p, q).unwrap();
        let mut norm = Normalizer::new(w.alg.clone(), RuleSet::new());
        assert!(!norm.proves(&mut w.store, imp).unwrap());
        let poly = norm.normalize_to_poly(&mut w.store, imp).unwrap();
        assert_eq!(poly.atoms(), vec![p, q]);
    }

    #[test]
    fn unconditional_rules_rewrite_innermost() {
        // f(c) -> d ; g(d) -> c ; then g(f(c)) normalizes to c.
        let mut sig = Signature::new();
        let alg = BoolAlg::install(&mut sig).unwrap();
        let s = sig.add_visible_sort("S").unwrap();
        let c = sig.add_constant("c", s, OpAttrs::constructor()).unwrap();
        let d = sig.add_constant("d", s, OpAttrs::constructor()).unwrap();
        let f = sig.add_op("f", &[s], s, OpAttrs::defined()).unwrap();
        let g = sig.add_op("g", &[s], s, OpAttrs::defined()).unwrap();
        let mut store = TermStore::new(sig);
        let cv = store.constant(c);
        let dv = store.constant(d);
        let fc = store.app(f, &[cv]).unwrap();
        let gd = store.app(g, &[dv]).unwrap();
        let mut rules = RuleSet::new();
        rules.add(&store, "f", fc, dv, None, None).unwrap();
        rules.add(&store, "g", gd, cv, None, None).unwrap();
        let mut norm = Normalizer::new(alg, rules);
        let gfc = store.app(g, &[fc]).unwrap();
        assert_eq!(norm.normalize(&mut store, gfc).unwrap(), cv);
        assert!(norm.stats().rewrites >= 2);
    }

    #[test]
    fn conditional_rule_fires_only_when_condition_decides_true() {
        // h(X) -> c if X = c ; h(d) stays put, h(c) fires.
        let mut sig = Signature::new();
        let mut alg = BoolAlg::install(&mut sig).unwrap();
        let s = sig.add_visible_sort("S").unwrap();
        let c = sig.add_constant("c", s, OpAttrs::constructor()).unwrap();
        let d = sig.add_constant("d", s, OpAttrs::constructor()).unwrap();
        let h = sig.add_op("h", &[s], s, OpAttrs::defined()).unwrap();
        let mut store = TermStore::new(sig);
        let x = store.declare_var("X", s).unwrap();
        let xt = store.var(x);
        let cv = store.constant(c);
        let dv = store.constant(d);
        let hx = store.app(h, &[xt]).unwrap();
        let cond = alg.eq(&mut store, xt, cv).unwrap();
        let mut rules = RuleSet::new();
        rules
            .add(&store, "h-c", hx, cv, Some(cond), Some(alg.sort()))
            .unwrap();
        let mut norm = Normalizer::new(alg, rules);
        let hc = store.app(h, &[cv]).unwrap();
        let hd = store.app(h, &[dv]).unwrap();
        assert_eq!(norm.normalize(&mut store, hc).unwrap(), cv);
        assert_eq!(norm.normalize(&mut store, hd).unwrap(), hd);
    }

    #[test]
    fn blocked_conditions_are_reported() {
        // h(X) -> c if X = c applied to an arbitrary constant blocks.
        let mut sig = Signature::new();
        let mut alg = BoolAlg::install(&mut sig).unwrap();
        let s = sig.add_visible_sort("S").unwrap();
        let c = sig.add_constant("c", s, OpAttrs::constructor()).unwrap();
        let h = sig.add_op("h", &[s], s, OpAttrs::defined()).unwrap();
        let mut store = TermStore::new(sig);
        let x = store.declare_var("X", s).unwrap();
        let xt = store.var(x);
        let cv = store.constant(c);
        let hx = store.app(h, &[xt]).unwrap();
        let cond = alg.eq(&mut store, xt, cv).unwrap();
        let mut rules = RuleSet::new();
        rules
            .add(&store, "h-c", hx, cv, Some(cond), Some(alg.sort()))
            .unwrap();
        let mut norm = Normalizer::new(alg.clone(), rules);
        let a = store.fresh_constant("a", s);
        let ha = store.app(h, &[a]).unwrap();
        assert_eq!(norm.normalize(&mut store, ha).unwrap(), ha);
        let blocked = norm.take_blocked();
        assert_eq!(blocked.len(), 1);
        // The blocked condition is the undecided atom `a = c`
        // (in canonical argument order, so normalize the expectation).
        let raw = alg.eq(&mut store, a, cv).unwrap();
        let expected = norm.normalize(&mut store, raw).unwrap();
        assert_eq!(blocked[0], expected);
        assert!(norm.take_blocked().is_empty(), "take drains");
    }

    #[test]
    fn assumptions_unblock_conditional_rules() {
        let mut sig = Signature::new();
        let mut alg = BoolAlg::install(&mut sig).unwrap();
        let s = sig.add_visible_sort("S").unwrap();
        let c = sig.add_constant("c", s, OpAttrs::constructor()).unwrap();
        let h = sig.add_op("h", &[s], s, OpAttrs::defined()).unwrap();
        let mut store = TermStore::new(sig);
        let x = store.declare_var("X", s).unwrap();
        let xt = store.var(x);
        let cv = store.constant(c);
        let hx = store.app(h, &[xt]).unwrap();
        let cond = alg.eq(&mut store, xt, cv).unwrap();
        let mut rules = RuleSet::new();
        rules
            .add(&store, "h-c", hx, cv, Some(cond), Some(alg.sort()))
            .unwrap();
        let mut norm = Normalizer::new(alg.clone(), rules);
        let a = store.fresh_constant("a", s);
        let ha = store.app(h, &[a]).unwrap();
        assert_eq!(norm.normalize(&mut store, ha).unwrap(), ha);
        // Assume a = c by orienting a -> c (the paper's `eq b1 = intruder .`).
        norm.assume(&store, "a=c", a, cv).unwrap();
        assert_eq!(norm.normalize(&mut store, ha).unwrap(), cv);
    }

    #[test]
    fn equality_assumption_on_atom_rewrites_to_false() {
        let mut sig = Signature::new();
        let mut alg = BoolAlg::install(&mut sig).unwrap();
        let s = sig.add_visible_sort("S").unwrap();
        let c = sig.add_constant("c", s, OpAttrs::constructor()).unwrap();
        let mut store = TermStore::new(sig);
        let a = store.fresh_constant("a", s);
        let cv = store.constant(c);
        let atom = alg.eq(&mut store, a, cv).unwrap();
        let mut norm = Normalizer::new(alg.clone(), RuleSet::new());
        // undecided initially
        assert_eq!(norm.normalize(&mut store, atom).unwrap(), atom);
        // assume (a = c) = false — the paper's `eq (b = intruder) = false .`
        let ff = alg.ff(&mut store);
        norm.assume(&store, "a≠c", atom, ff).unwrap();
        let n = norm.normalize(&mut store, atom).unwrap();
        assert_eq!(alg.as_constant(&store, n), Some(false));
        // and `not (a = c)` now proves
        let na = alg.not(&mut store, atom).unwrap();
        assert!(norm.proves(&mut store, na).unwrap());
    }

    #[test]
    fn fuel_exhaustion_is_an_error_not_a_hang() {
        let mut sig = Signature::new();
        let alg = BoolAlg::install(&mut sig).unwrap();
        let s = sig.add_visible_sort("S").unwrap();
        let c = sig.add_constant("c", s, OpAttrs::defined()).unwrap();
        let f = sig.add_op("f", &[s], s, OpAttrs::defined()).unwrap();
        let mut store = TermStore::new(sig);
        let cv = store.constant(c);
        let fc = store.app(f, &[cv]).unwrap();
        let mut rules = RuleSet::new();
        // c -> f(c): diverges.
        rules.add(&store, "loop", cv, fc, None, None).unwrap();
        let mut norm = Normalizer::new(alg, rules);
        norm.set_fuel_limit(64);
        let err = norm.normalize(&mut store, cv).unwrap_err();
        assert!(matches!(err, RewriteError::FuelExhausted { .. }));
    }

    #[test]
    fn injective_equality_feeds_the_ring() {
        // pms(a, b, s) = pms(a, intruder, s)  reduces to  b = intruder.
        let mut sig = Signature::new();
        let mut alg = BoolAlg::install(&mut sig).unwrap();
        let prin = sig.add_visible_sort("Principal").unwrap();
        let secret = sig.add_visible_sort("Secret").unwrap();
        let pms_sort = sig.add_visible_sort("Pms").unwrap();
        let intruder = sig
            .add_constant("intruder", prin, OpAttrs::constructor())
            .unwrap();
        let pms = sig
            .add_op(
                "pms",
                &[prin, prin, secret],
                pms_sort,
                OpAttrs::constructor(),
            )
            .unwrap();
        let mut store = TermStore::new(sig);
        let a = store.fresh_constant("a", prin);
        let b = store.fresh_constant("b", prin);
        let s = store.fresh_constant("s", secret);
        let iv = store.constant(intruder);
        let t1 = store.app(pms, &[a, b, s]).unwrap();
        let t2 = store.app(pms, &[a, iv, s]).unwrap();
        let eq = alg.eq(&mut store, t1, t2).unwrap();
        let mut norm = Normalizer::new(alg.clone(), RuleSet::new());
        let n = norm.normalize(&mut store, eq).unwrap();
        let expected = alg.eq(&mut store, b, iv).unwrap();
        assert_eq!(n, expected);
        // And assuming it false kills the equality.
        let ff = alg.ff(&mut store);
        norm.assume(&store, "b≠intruder", expected, ff).unwrap();
        let n2 = norm.normalize(&mut store, eq).unwrap();
        assert_eq!(alg.as_constant(&store, n2), Some(false));
    }

    #[test]
    fn refresh_revives_stale_assumptions() {
        // Scenario from the paper's fakeSfin1 case: assume `p(e) = true`
        // for arbitrary e, then learn the orientation `e -> c`. Without a
        // refresh, `p(c)` stays undecided; with it, the assumption is
        // rewritten to `p(c) = true`.
        let mut sig = Signature::new();
        let alg = BoolAlg::install(&mut sig).unwrap();
        let s = sig.add_visible_sort("S").unwrap();
        let c = sig.add_constant("c", s, OpAttrs::constructor()).unwrap();
        let p = sig
            .add_op("p", &[s], alg.sort(), OpAttrs::defined())
            .unwrap();
        let mut store = TermStore::new(sig);
        let e = store.fresh_constant("e", s);
        let cv = store.constant(c);
        let pe = store.app(p, &[e]).unwrap();
        let pc = store.app(p, &[cv]).unwrap();
        let tt = alg.tt(&mut store);
        let mut norm = Normalizer::new(alg.clone(), RuleSet::new());
        norm.assume(&store, "p(e)", pe, tt).unwrap();
        norm.assume(&store, "e=c", e, cv).unwrap();
        // Stale: p(c) does not match the p(e) assumption syntactically…
        assert_eq!(norm.normalize(&mut store, pc).unwrap(), pc);
        // …until the refresh rewrites the assumption itself.
        norm.refresh_assumptions(&mut store).unwrap();
        assert!(norm.proves(&mut store, pc).unwrap());
        assert!(!norm.is_infeasible());
    }

    #[test]
    fn refresh_detects_contradictions() {
        let mut sig = Signature::new();
        let alg = BoolAlg::install(&mut sig).unwrap();
        let s = sig.add_visible_sort("S").unwrap();
        let c = sig.add_constant("c", s, OpAttrs::constructor()).unwrap();
        let d = sig.add_constant("d", s, OpAttrs::constructor()).unwrap();
        let mut store = TermStore::new(sig);
        let e = store.fresh_constant("e", s);
        let cv = store.constant(c);
        let dv = store.constant(d);
        let mut norm = Normalizer::new(alg.clone(), RuleSet::new());
        norm.assume(&store, "e=c", e, cv).unwrap();
        // A later split claims e = d: jointly contradictory with e = c.
        let f = store.fresh_constant("f", s);
        norm.assume(&store, "f=e", f, e).unwrap();
        norm.assume(&store, "f=d", f, dv).unwrap();
        norm.refresh_assumptions(&mut store).unwrap();
        assert!(norm.is_infeasible());
    }

    #[test]
    fn fuel_error_carries_limit_and_stats_snapshot() {
        let mut sig = Signature::new();
        let alg = BoolAlg::install(&mut sig).unwrap();
        let s = sig.add_visible_sort("S").unwrap();
        let c = sig.add_constant("c", s, OpAttrs::defined()).unwrap();
        let f = sig.add_op("f", &[s], s, OpAttrs::defined()).unwrap();
        let mut store = TermStore::new(sig);
        let cv = store.constant(c);
        let fc = store.app(f, &[cv]).unwrap();
        let mut rules = RuleSet::new();
        rules.add(&store, "loop", cv, fc, None, None).unwrap();
        let mut norm = Normalizer::new(alg, rules);
        norm.set_fuel_limit(64);
        match norm.normalize(&mut store, cv).unwrap_err() {
            RewriteError::FuelExhausted {
                term,
                fuel_limit,
                stats,
            } => {
                assert!(!term.is_empty());
                assert_eq!(fuel_limit, 64);
                assert!(stats.contains("rewrites"), "snapshot: {stats}");
            }
            other => panic!("expected FuelExhausted, got {other:?}"),
        }
    }

    /// A diverging world: `c -> f(c)`, so normalizing `c` consumes fuel
    /// forever — the workload every budget/fault test needs.
    fn diverging_world() -> (TermStore, Normalizer, TermId) {
        let mut sig = Signature::new();
        let alg = BoolAlg::install(&mut sig).unwrap();
        let s = sig.add_visible_sort("S").unwrap();
        let c = sig.add_constant("c", s, OpAttrs::defined()).unwrap();
        let f = sig.add_op("f", &[s], s, OpAttrs::defined()).unwrap();
        let mut store = TermStore::new(sig);
        let cv = store.constant(c);
        let fc = store.app(f, &[cv]).unwrap();
        let mut rules = RuleSet::new();
        rules.add(&store, "loop", cv, fc, None, None).unwrap();
        (store, Normalizer::new(alg, rules), cv)
    }

    #[test]
    fn expired_deadline_stops_normalization_with_typed_error() {
        use crate::budget::{Budget, StopReason};
        use std::time::Instant;
        let (mut store, mut norm, cv) = diverging_world();
        norm.set_budget(Budget::unlimited().with_deadline_at(Instant::now()));
        match norm.normalize(&mut store, cv).unwrap_err() {
            RewriteError::BudgetExceeded { reason, term } => {
                assert_eq!(reason, StopReason::DeadlineExceeded);
                assert!(!term.is_empty());
            }
            other => panic!("expected BudgetExceeded, got {other:?}"),
        }
    }

    #[test]
    fn cancellation_stops_normalization() {
        use crate::budget::{Budget, StopReason};
        let (mut store, mut norm, cv) = diverging_world();
        let budget = Budget::unlimited();
        budget.cancel();
        norm.set_budget(budget);
        match norm.normalize(&mut store, cv).unwrap_err() {
            RewriteError::BudgetExceeded { reason, .. } => {
                assert_eq!(reason, StopReason::Cancelled);
            }
            other => panic!("expected BudgetExceeded, got {other:?}"),
        }
    }

    #[test]
    fn memory_ceiling_trips_on_arena_growth() {
        use crate::budget::{Budget, StopReason};
        let (mut store, mut norm, cv) = diverging_world();
        // The diverging rule grows the arena one node per rewrite; a tiny
        // ceiling must trip on the strided check before fuel runs out.
        norm.set_fuel_limit(1_000_000);
        norm.set_budget(Budget::unlimited().with_max_heap_bytes(1));
        match norm.normalize(&mut store, cv).unwrap_err() {
            RewriteError::BudgetExceeded { reason, .. } => {
                assert_eq!(reason, StopReason::MemoryExceeded);
            }
            other => panic!("expected BudgetExceeded, got {other:?}"),
        }
    }

    #[test]
    fn injected_fuel_starvation_becomes_fuel_exhausted() {
        use crate::budget::{Fault, FaultKind, FaultPlan, FaultSite};
        let (mut store, mut norm, cv) = diverging_world();
        let plan = FaultPlan::new().with_fault(Fault::new(
            FaultSite::Rewrite,
            FaultKind::FuelStarvation,
            3,
        ));
        norm.set_fault_plan(plan, "");
        let err = norm.normalize(&mut store, cv).unwrap_err();
        assert!(matches!(err, RewriteError::FuelExhausted { .. }));
        // Only three rewrites happened before the starvation hit.
        assert_eq!(norm.stats().rewrites, 3);
    }

    #[test]
    fn injected_deadline_expiry_is_a_budget_stop() {
        use crate::budget::{Fault, FaultKind, FaultPlan, FaultSite, StopReason};
        let (mut store, mut norm, cv) = diverging_world();
        let plan = FaultPlan::new().with_fault(Fault::new(
            FaultSite::Rewrite,
            FaultKind::DeadlineExpiry,
            5,
        ));
        norm.set_fault_plan(plan, "");
        match norm.normalize(&mut store, cv).unwrap_err() {
            RewriteError::BudgetExceeded { reason, .. } => {
                assert_eq!(reason, StopReason::DeadlineExceeded);
            }
            other => panic!("expected BudgetExceeded, got {other:?}"),
        }
    }

    #[test]
    fn injected_cancel_trips_the_shared_token() {
        use crate::budget::{Budget, Fault, FaultKind, FaultPlan, FaultSite, StopReason};
        let (mut store, mut norm, cv) = diverging_world();
        let budget = Budget::unlimited();
        let token = budget.cancel_token();
        norm.set_budget(budget);
        let plan =
            FaultPlan::new().with_fault(Fault::new(FaultSite::Rewrite, FaultKind::Cancel, 2));
        norm.set_fault_plan(plan, "");
        match norm.normalize(&mut store, cv).unwrap_err() {
            RewriteError::BudgetExceeded { reason, .. } => {
                assert_eq!(reason, StopReason::Cancelled);
            }
            other => panic!("expected BudgetExceeded, got {other:?}"),
        }
        assert!(token.is_cancelled(), "cancel fault trips the shared token");
    }

    #[test]
    fn injected_panic_fires_at_the_exact_call_and_scope() {
        use crate::budget::{Fault, FaultKind, FaultPlan, FaultSite};
        let (mut store, mut norm, cv) = diverging_world();
        // A plan scoped to a different obligation never fires…
        let scoped = FaultPlan::new()
            .with_fault(Fault::new(FaultSite::Rewrite, FaultKind::Panic, 0).in_scope("other"));
        norm.set_fault_plan(scoped, "this");
        norm.set_fuel_limit(16);
        assert!(matches!(
            norm.normalize(&mut store, cv).unwrap_err(),
            RewriteError::FuelExhausted { .. }
        ));
        // …while an in-scope plan panics deterministically.
        let (mut store2, mut norm2, cv2) = diverging_world();
        let plan = FaultPlan::new().with_fault(Fault::new(FaultSite::Rewrite, FaultKind::Panic, 4));
        norm2.set_fault_plan(plan, "this");
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            norm2.normalize(&mut store2, cv2)
        }));
        let payload = caught.expect_err("must panic");
        let msg = crate::budget::panic_message(&*payload);
        assert_eq!(
            msg,
            "injected fault: panic at rewrite call 4 (scope `this`)"
        );
    }

    #[test]
    fn cache_hit_rate_counts_hits_and_misses() {
        let mut w = bool_world();
        let p = w.store.fresh_constant("p", w.alg.sort());
        let q = w.store.fresh_constant("q", w.alg.sort());
        let pq = w.alg.and(&mut w.store, p, q).unwrap();
        let mut norm = Normalizer::new(w.alg.clone(), RuleSet::new());
        assert_eq!(norm.stats().cache_hit_rate(), 0.0, "no lookups yet");
        norm.normalize(&mut w.store, pq).unwrap();
        let first = norm.stats();
        assert!(first.cache_misses > 0);
        // Second pass over the same term is a single cache hit.
        norm.normalize(&mut w.store, pq).unwrap();
        let second = norm.stats();
        assert_eq!(second.cache_misses, first.cache_misses);
        assert!(second.cache_hits > first.cache_hits);
        assert!(second.cache_hit_rate() > first.cache_hit_rate());
        assert!(second.cache_hit_rate() <= 1.0);
        norm.reset_stats();
        assert_eq!(norm.stats(), RewriteStats::default());
    }

    #[test]
    fn bounded_cache_resets_and_counts_evictions() {
        let mut w = bool_world();
        let mut norm = Normalizer::new(w.alg.clone(), RuleSet::new());
        norm.set_cache_capacity(8);
        // Normalize many distinct conjunctions: far more nodes than the
        // capacity, so the cache must reset (repeatedly) yet every result
        // must stay correct.
        let atoms: Vec<TermId> = (0..12)
            .map(|_| w.store.fresh_constant("p", w.alg.sort()))
            .collect();
        for i in 0..atoms.len() {
            for j in 0..atoms.len() {
                let np = w.alg.not(&mut w.store, atoms[j]).unwrap();
                let f = w.alg.or(&mut w.store, atoms[i], np).unwrap();
                let lem = w.alg.or(&mut w.store, f, atoms[j]).unwrap();
                // p_i \/ not p_j \/ p_j is a tautology for every i, j.
                assert!(norm.proves(&mut w.store, lem).unwrap(), "{i},{j}");
            }
        }
        let stats = norm.stats();
        assert!(stats.cache_evictions > 0, "stats: {stats}");
        assert!(stats.to_string().contains("evictions"));
        // Evictions survive a merge.
        let merged = stats.merged(stats);
        assert_eq!(merged.cache_evictions, 2 * stats.cache_evictions);
        // The default capacity never evicts on small workloads.
        let mut roomy = Normalizer::new(w.alg.clone(), RuleSet::new());
        let np = w.alg.not(&mut w.store, atoms[0]).unwrap();
        let lem = w.alg.or(&mut w.store, atoms[0], np).unwrap();
        assert!(roomy.proves(&mut w.store, lem).unwrap());
        assert_eq!(roomy.stats().cache_evictions, 0);
    }

    #[test]
    fn zero_cache_capacity_disables_memoization() {
        let mut w = bool_world();
        let p = w.store.fresh_constant("p", w.alg.sort());
        let np = w.alg.not(&mut w.store, p).unwrap();
        let lem = w.alg.or(&mut w.store, p, np).unwrap();
        let mut norm = Normalizer::new(w.alg.clone(), RuleSet::new());
        norm.set_cache_capacity(0);
        assert!(norm.proves(&mut w.store, lem).unwrap());
        assert!(norm.proves(&mut w.store, lem).unwrap());
        assert_eq!(norm.stats().cache_hits, 0, "nothing is ever cached");
    }

    #[test]
    fn profiling_attributes_fires_and_failures_per_rule() {
        // f(c) -> d fires; g(d) -> c is attempted (same head g) but the
        // subject is g(c), so it fails to match.
        let mut sig = Signature::new();
        let alg = BoolAlg::install(&mut sig).unwrap();
        let s = sig.add_visible_sort("S").unwrap();
        let c = sig.add_constant("c", s, OpAttrs::constructor()).unwrap();
        let d = sig.add_constant("d", s, OpAttrs::constructor()).unwrap();
        let f = sig.add_op("f", &[s], s, OpAttrs::defined()).unwrap();
        let g = sig.add_op("g", &[s], s, OpAttrs::defined()).unwrap();
        let mut store = TermStore::new(sig);
        let cv = store.constant(c);
        let dv = store.constant(d);
        let fc = store.app(f, &[cv]).unwrap();
        let gd = store.app(g, &[dv]).unwrap();
        let mut rules = RuleSet::new();
        rules.add(&store, "f-rule", fc, dv, None, None).unwrap();
        rules.add(&store, "g-rule", gd, cv, None, None).unwrap();
        let mut norm = Normalizer::new(alg, rules);
        norm.set_profiling(true);
        // g(f(c)) → g(d) → c : f-rule fires once, g-rule fires once.
        let gfc = store.app(g, &[fc]).unwrap();
        assert_eq!(norm.normalize(&mut store, gfc).unwrap(), cv);
        let profiles = norm.rule_profiles();
        let by_label = |l: &str| profiles.iter().find(|p| p.label == l).unwrap().clone();
        let f_prof = by_label("f-rule");
        let g_prof = by_label("g-rule");
        assert_eq!(f_prof.fires, 1);
        assert_eq!(g_prof.fires, 1);
        assert!(g_prof.attempts >= g_prof.fires);
        assert_eq!(
            f_prof.attempts,
            f_prof.fires + f_prof.failures + f_prof.blocked
        );
        // Profiling off: no profiles collected.
        let mut quiet = Normalizer::new(norm.bool_alg().clone(), norm.rules().clone());
        let gfc2 = store.app(g, &[fc]).unwrap();
        quiet.normalize(&mut store, gfc2).unwrap();
        assert!(quiet.rule_profiles().is_empty());
    }

    #[test]
    fn emit_profile_sends_counters_and_gauges() {
        use equitls_obs::sink::{Obs, RecordingSink};
        use equitls_obs::summary::MetricsSummary;
        use std::sync::Arc;

        let mut sig = Signature::new();
        let alg = BoolAlg::install(&mut sig).unwrap();
        let s = sig.add_visible_sort("S").unwrap();
        let c = sig.add_constant("c", s, OpAttrs::constructor()).unwrap();
        let d = sig.add_constant("d", s, OpAttrs::constructor()).unwrap();
        let f = sig.add_op("f", &[s], s, OpAttrs::defined()).unwrap();
        let mut store = TermStore::new(sig);
        let cv = store.constant(c);
        let dv = store.constant(d);
        let fc = store.app(f, &[cv]).unwrap();
        let mut rules = RuleSet::new();
        rules.add(&store, "f-rule", fc, dv, None, None).unwrap();
        let recorder = Arc::new(RecordingSink::new());
        let mut norm = Normalizer::new(alg, rules);
        norm.set_obs(Obs::new(recorder.clone()));
        norm.set_profiling(true);
        norm.normalize(&mut store, fc).unwrap();
        norm.emit_profile();
        let summary = MetricsSummary::from_events(&recorder.events());
        assert_eq!(summary.counter_total("rule.fires:f-rule"), 1);
        assert!(summary.gauge("rewrite.cache_hit_rate").is_some());
        assert!(summary.gauge("rewrite.fuel_remaining").is_some());
    }

    #[test]
    fn stats_accumulate_and_merge() {
        let mut w = bool_world();
        let p = w.store.fresh_constant("p", w.alg.sort());
        let np = w.alg.not(&mut w.store, p).unwrap();
        let lem = w.alg.or(&mut w.store, p, np).unwrap();
        let mut norm = Normalizer::new(w.alg.clone(), RuleSet::new());
        norm.proves(&mut w.store, lem).unwrap();
        let s1 = norm.stats();
        assert!(s1.bool_normalizations > 0);
        let merged = s1.merged(s1);
        assert_eq!(merged.bool_normalizations, 2 * s1.bool_normalizations);
    }

    #[test]
    fn second_chance_keeps_touched_entries_across_rotations() {
        let mut w = bool_world();
        let t: Vec<TermId> = (0..4)
            .map(|_| w.store.fresh_constant("t", w.alg.sort()))
            .collect();
        let mut norm = Normalizer::new(w.alg.clone(), RuleSet::new());
        norm.set_cache_capacity(4); // segments of 2
        norm.cache_insert(t[0], t[0]);
        norm.cache_insert(t[1], t[1]); // hot = {t0, t1}
        norm.cache_insert(t[2], t[2]); // rotation: cold = {t0, t1}, hot = {t2}
        assert_eq!(norm.stats().cache_evictions, 1);
        // Touch t0: promoted back into the hot segment.
        assert_eq!(norm.cache_lookup(t[0]), Some(t[0]));
        norm.cache_insert(t[3], t[3]); // rotation: cold = {t2, t0}, hot = {t3}
        assert_eq!(norm.stats().cache_evictions, 2);
        assert_eq!(
            norm.cache_lookup(t[0]),
            Some(t[0]),
            "the touched entry survived two rotations"
        );
        assert_eq!(
            norm.cache_lookup(t[1]),
            None,
            "the untouched entry was dropped with the cold segment"
        );
    }

    /// A world with same-head rule families and a conditional rule, so
    /// the index has something to prune and something to leave to the
    /// matcher.
    fn prunable_world() -> (TermStore, BoolAlg, RuleSet, Vec<TermId>) {
        let mut sig = Signature::new();
        let mut alg = BoolAlg::install(&mut sig).unwrap();
        let s = sig.add_visible_sort("S").unwrap();
        let c = sig.add_constant("c", s, OpAttrs::constructor()).unwrap();
        let d = sig.add_constant("d", s, OpAttrs::constructor()).unwrap();
        let f = sig.add_op("f", &[s], s, OpAttrs::defined()).unwrap();
        let h = sig.add_op("h", &[s], s, OpAttrs::defined()).unwrap();
        let mut store = TermStore::new(sig);
        let x = store.declare_var("X", s).unwrap();
        let xt = store.var(x);
        let cv = store.constant(c);
        let dv = store.constant(d);
        let fc = store.app(f, &[cv]).unwrap();
        let fd = store.app(f, &[dv]).unwrap();
        let hx = store.app(h, &[xt]).unwrap();
        let cond = alg.eq(&mut store, xt, cv).unwrap();
        let mut rules = RuleSet::new();
        rules.add(&store, "f-c", fc, dv, None, None).unwrap();
        rules.add(&store, "f-d", fd, cv, None, None).unwrap();
        rules
            .add(&store, "h-c", hx, cv, Some(cond), Some(alg.sort()))
            .unwrap();
        let a = store.fresh_constant("a", s);
        let fa = store.app(f, &[a]).unwrap();
        let hc = store.app(h, &[cv]).unwrap();
        let ha = store.app(h, &[a]).unwrap();
        let fhc = store.app(f, &[hc]).unwrap();
        let subjects = vec![fc, fd, fa, hc, ha, fhc];
        (store, alg, rules, subjects)
    }

    #[test]
    fn indexed_matching_matches_linear_scan_bit_for_bit() {
        let (mut store, alg, rules, subjects) = prunable_world();
        let mut run = |use_index: bool| {
            let mut norm = Normalizer::new(alg.clone(), rules.clone());
            norm.set_indexing(use_index);
            let outs: Vec<TermId> = subjects
                .iter()
                .map(|&t| norm.normalize(&mut store, t).unwrap())
                .collect();
            (
                outs,
                norm.stats(),
                norm.take_blocked(),
                norm.engine_counters(),
            )
        };
        let (linear_out, linear_stats, linear_blocked, linear_counters) = run(false);
        let (indexed_out, indexed_stats, indexed_blocked, indexed_counters) = run(true);
        assert_eq!(indexed_out, linear_out, "normal forms");
        assert_eq!(indexed_stats, linear_stats, "full RewriteStats");
        assert_eq!(indexed_blocked, linear_blocked, "blocked conditions");
        assert_eq!(linear_counters, EngineCounters::default());
        assert!(indexed_counters.index_lookups > 0);
        assert!(
            indexed_counters.index_pruned > 0,
            "f(a) and f(d) attempts must prune the incompatible f-rules: {indexed_counters:?}"
        );
    }

    #[test]
    fn shared_cache_replays_normal_forms_across_spec_clones() {
        let (mut store, alg, rules, subjects) = prunable_world();
        // Clone the arena first: the consumers below replay the producer's
        // work on identical pristine clones, as prover obligations do.
        let mut clone_a = store.clone();
        let mut clone_b = store.clone();
        let cache = Arc::new(SharedNfCache::new());

        let mut published = 0;
        let produced: Vec<TermId> = subjects
            .iter()
            .map(|&t| {
                let mut one = Normalizer::new(alg.clone(), rules.clone());
                one.set_shared_cache(Some(cache.clone()));
                let n = one.normalize(&mut store, t).unwrap();
                published += one.engine_counters().shared_published;
                n
            })
            .collect();
        assert!(published > 0, "producers published clean windows");

        // A consumer with the cache replays; one without recomputes; both
        // agree on every normal form and every blocked condition. The
        // arenas are distinct clones, so the comparison is structural
        // (rendered terms), not on raw ids.
        let mut hits = 0;
        for (&t, &expect) in subjects.iter().zip(&produced) {
            let mut one = Normalizer::new(alg.clone(), rules.clone());
            one.set_shared_cache(Some(cache.clone()));
            let n = one.normalize(&mut clone_a, t).unwrap();
            hits += one.engine_counters().shared_hits;
            let mut fresh = Normalizer::new(alg.clone(), rules.clone());
            let m = fresh.normalize(&mut clone_b, t).unwrap();
            let replayed: Vec<String> = one
                .take_blocked()
                .iter()
                .map(|&b| clone_a.display(b).to_string())
                .collect();
            let derived: Vec<String> = fresh
                .take_blocked()
                .iter()
                .map(|&b| clone_b.display(b).to_string())
                .collect();
            assert_eq!(replayed, derived, "blocked replay");
            assert_eq!(
                clone_a.display(n).to_string(),
                store.display(expect).to_string(),
                "cache replay equals producer result"
            );
            assert_eq!(
                clone_a.display(n).to_string(),
                clone_b.display(m).to_string(),
                "cache replay equals fresh derivation"
            );
        }
        assert!(hits > 0, "consumer replayed published entries");
    }

    #[test]
    fn shared_cache_sits_out_with_assumptions_or_a_warm_memo() {
        let (mut store, alg, rules, subjects) = prunable_world();
        let cache = Arc::new(SharedNfCache::new());
        // With an assumption installed, the gate fails: no consults, no
        // publications, even on a cold memo.
        let mut norm = Normalizer::new(alg.clone(), rules.clone());
        norm.set_shared_cache(Some(cache.clone()));
        let s = store.sort_of(subjects[0]);
        let extra = store.fresh_constant("extra", s);
        let extra2 = store.fresh_constant("extra", s);
        norm.assume(&store, "extra", extra, extra2).unwrap();
        norm.normalize(&mut store, subjects[0]).unwrap();
        let gated = norm.engine_counters();
        assert_eq!(gated.shared_hits, 0);
        assert_eq!(gated.shared_misses, 0);
        assert_eq!(gated.shared_published, 0);
        assert!(cache.is_empty());
        // Without assumptions the first call participates; the second
        // (warm memo) must not touch the shared cache again.
        let mut cold = Normalizer::new(alg.clone(), rules.clone());
        cold.set_shared_cache(Some(cache.clone()));
        cold.normalize(&mut store, subjects[0]).unwrap();
        let after_first = cold.engine_counters();
        assert!(after_first.shared_published > 0, "{after_first:?}");
        cold.normalize(&mut store, subjects[1]).unwrap();
        let after_second = cold.engine_counters();
        assert_eq!(
            (
                after_first.shared_hits,
                after_first.shared_misses,
                after_first.shared_published
            ),
            (
                after_second.shared_hits,
                after_second.shared_misses,
                after_second.shared_published
            ),
            "warm-memo calls must not consult or publish"
        );
    }
}
