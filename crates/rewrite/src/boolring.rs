//! Boolean rings: complete propositional normalization.
//!
//! The paper relies (§2.1) on the fact that the equations of CafeOBJ's
//! `BOOL` module, read as left-to-right rewrite rules, are *complete* for
//! propositional logic: every tautology rewrites to `true` and every
//! contradiction to `false`. That completeness result is Hsiang and
//! Dershowitz's — propositional formulas have a canonical form as
//! polynomials over the two-element field GF(2), with `xor` as addition and
//! `and` as multiplication.
//!
//! [`Poly`] implements that canonical form directly: a polynomial is a set
//! of monomials (xor is idempotent-cancelling, so a set suffices) and a
//! monomial is a set of atoms (and is idempotent). The empty polynomial is
//! `false`; the polynomial containing only the empty monomial is `true`.
//!
//! Connective translations (all classical):
//!
//! ```text
//! not a        = 1 + a
//! a or b       = a + b + ab
//! a implies b  = 1 + a + ab
//! a iff b      = 1 + a + b
//! if c then x else y fi = cx + cy + y
//! ```
//!
//! Atoms are arbitrary Bool-sorted [`TermId`]s (undecided equalities,
//! membership tests like `PMS \in cpms(nw(p))`, effective conditions …).
//! Hash-consing makes atom identity a single integer comparison.

use crate::bool_alg::BoolAlg;
use equitls_kernel::prelude::*;
use std::collections::BTreeSet;

/// A monomial: a conjunction of distinct atoms. The empty monomial is the
/// constant `1` (true).
pub type Monomial = BTreeSet<TermId>;

/// A polynomial over GF(2): an exclusive-or of distinct monomials.
///
/// `Poly` is the canonical form of a propositional formula; two formulas
/// are equivalent iff their polynomials are equal.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Poly {
    monos: BTreeSet<Monomial>,
}

impl Poly {
    /// The zero polynomial, i.e. `false`.
    pub fn zero() -> Self {
        Poly::default()
    }

    /// The unit polynomial, i.e. `true`.
    pub fn one() -> Self {
        let mut monos = BTreeSet::new();
        monos.insert(Monomial::new());
        Poly { monos }
    }

    /// The polynomial consisting of the single atom `t`.
    pub fn atom(t: TermId) -> Self {
        let mut mono = Monomial::new();
        mono.insert(t);
        let mut monos = BTreeSet::new();
        monos.insert(mono);
        Poly { monos }
    }

    /// A truth constant as a polynomial.
    pub fn constant(value: bool) -> Self {
        if value {
            Poly::one()
        } else {
            Poly::zero()
        }
    }

    /// `true` when this is the unit polynomial (the formula is a tautology
    /// relative to its atoms).
    pub fn is_true(&self) -> bool {
        self.monos.len() == 1 && self.monos.iter().next().is_some_and(|m| m.is_empty())
    }

    /// `true` when this is the zero polynomial (the formula is
    /// unsatisfiable relative to its atoms).
    pub fn is_false(&self) -> bool {
        self.monos.is_empty()
    }

    /// `Some(b)` when the polynomial is the constant `b`.
    pub fn as_constant(&self) -> Option<bool> {
        if self.is_true() {
            Some(true)
        } else if self.is_false() {
            Some(false)
        } else {
            None
        }
    }

    /// Addition in GF(2): exclusive or. Equal monomials cancel.
    pub fn add(&self, other: &Poly) -> Poly {
        let monos = self
            .monos
            .symmetric_difference(&other.monos)
            .cloned()
            .collect();
        Poly { monos }
    }

    /// Multiplication in GF(2): conjunction, distributed over xor.
    ///
    /// Atom sets union (idempotence); duplicate product monomials cancel.
    pub fn mul(&self, other: &Poly) -> Poly {
        let mut acc = Poly::zero();
        for a in &self.monos {
            for b in &other.monos {
                let product: Monomial = a.union(b).cloned().collect();
                // xor-in the single-monomial polynomial.
                if !acc.monos.remove(&product) {
                    acc.monos.insert(product);
                }
            }
        }
        acc
    }

    /// Negation: `1 + p`.
    pub fn negate(&self) -> Poly {
        self.add(&Poly::one())
    }

    /// All distinct atoms occurring in the polynomial, in `TermId` order.
    pub fn atoms(&self) -> Vec<TermId> {
        let mut set = BTreeSet::new();
        for m in &self.monos {
            set.extend(m.iter().copied());
        }
        set.into_iter().collect()
    }

    /// Number of monomials.
    pub fn monomial_count(&self) -> usize {
        self.monos.len()
    }

    /// Iterate over monomials in canonical order.
    pub fn monomials(&self) -> impl Iterator<Item = &Monomial> {
        self.monos.iter()
    }

    /// Evaluate under a total assignment of atoms.
    ///
    /// Used by the property-based tests to check the normal form against a
    /// brute-force truth table.
    pub fn eval(&self, assignment: &dyn Fn(TermId) -> bool) -> bool {
        self.monos
            .iter()
            .filter(|m| m.iter().all(|&a| assignment(a)))
            .count()
            % 2
            == 1
    }

    /// Rebuild a term from the polynomial: an xor-chain of and-chains in
    /// canonical (`TermId`) order.
    ///
    /// The canonical rebuild is *stable*: converting the produced term back
    /// to a polynomial yields `self`, and a single-atom polynomial returns
    /// the atom unchanged.
    ///
    /// # Errors
    ///
    /// Propagates kernel errors (cannot occur for well-sorted atoms).
    pub fn to_term(&self, store: &mut TermStore, alg: &BoolAlg) -> Result<TermId, KernelError> {
        if let Some(b) = self.as_constant() {
            return Ok(alg.constant(store, b));
        }
        let mut mono_terms = Vec::with_capacity(self.monos.len());
        for mono in &self.monos {
            if mono.is_empty() {
                mono_terms.push(alg.tt(store));
            } else {
                let atoms: Vec<TermId> = mono.iter().copied().collect();
                mono_terms.push(alg.conj(store, &atoms)?);
            }
        }
        // Balanced xor tree: keeps later traversals at logarithmic depth
        // even for polynomials with thousands of monomials.
        balanced(store, alg, &mono_terms, &|store, alg, a, b| {
            alg.xor(store, a, b)
        })
    }
}

/// A binary term constructor used to fold monomials into a tree.
type Combine = dyn Fn(&mut TermStore, &BoolAlg, TermId, TermId) -> Result<TermId, KernelError>;

fn balanced(
    store: &mut TermStore,
    alg: &BoolAlg,
    terms: &[TermId],
    combine: &Combine,
) -> Result<TermId, KernelError> {
    match terms.len() {
        0 => unreachable!("constant polynomials are handled by the caller"),
        1 => Ok(terms[0]),
        n => {
            let (left, right) = terms.split_at(n / 2);
            let l = balanced(store, alg, left, combine)?;
            let r = balanced(store, alg, right, combine)?;
            combine(store, alg, l, r)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn atoms3() -> (TermStore, BoolAlg, TermId, TermId, TermId) {
        let mut sig = Signature::new();
        let alg = BoolAlg::install(&mut sig).unwrap();
        let mut store = TermStore::new(sig);
        let p = store.fresh_constant("p", alg.sort());
        let q = store.fresh_constant("q", alg.sort());
        let r = store.fresh_constant("r", alg.sort());
        (store, alg, p, q, r)
    }

    #[test]
    fn constants_behave_as_ring_identities() {
        let (_, _, p, ..) = atoms3();
        let a = Poly::atom(p);
        assert_eq!(a.add(&Poly::zero()), a);
        assert_eq!(a.mul(&Poly::one()), a);
        assert!(a.mul(&Poly::zero()).is_false());
        assert!(a.add(&a).is_false()); // x xor x = 0
        assert_eq!(a.mul(&a), a); // x and x = x
    }

    #[test]
    fn excluded_middle_is_one() {
        let (_, _, p, ..) = atoms3();
        let a = Poly::atom(p);
        // p or not p  =  p + (1+p) + p(1+p)  =  1
        let not_a = a.negate();
        let or = a.add(&not_a).add(&a.mul(&not_a));
        assert!(or.is_true());
    }

    #[test]
    fn contradiction_is_zero() {
        let (_, _, p, ..) = atoms3();
        let a = Poly::atom(p);
        assert!(a.mul(&a.negate()).is_false());
    }

    #[test]
    fn distributivity_holds() {
        let (_, _, p, q, r) = atoms3();
        let (a, b, c) = (Poly::atom(p), Poly::atom(q), Poly::atom(r));
        let left = a.mul(&b.add(&c));
        let right = a.mul(&b).add(&a.mul(&c));
        assert_eq!(left, right);
    }

    #[test]
    fn to_term_round_trips_single_atom() {
        let (mut store, alg, p, ..) = atoms3();
        let a = Poly::atom(p);
        assert_eq!(a.to_term(&mut store, &alg).unwrap(), p);
        assert_eq!(
            Poly::one().to_term(&mut store, &alg).unwrap(),
            alg.tt(&mut store)
        );
        assert_eq!(
            Poly::zero().to_term(&mut store, &alg).unwrap(),
            alg.ff(&mut store)
        );
    }

    #[test]
    fn eval_matches_construction() {
        let (_, _, p, q, _) = atoms3();
        // p implies q  =  1 + p + pq
        let (a, b) = (Poly::atom(p), Poly::atom(q));
        let imp = Poly::one().add(&a).add(&a.mul(&b));
        // truth table of implication
        for (pv, qv, want) in [
            (false, false, true),
            (false, true, true),
            (true, false, false),
            (true, true, true),
        ] {
            let got = imp.eval(&|t| if t == p { pv } else { qv });
            assert_eq!(got, want, "p={pv} q={qv}");
        }
    }

    #[test]
    fn atoms_are_reported_sorted_and_deduped() {
        let (_, _, p, q, r) = atoms3();
        let poly = Poly::atom(r)
            .mul(&Poly::atom(p))
            .add(&Poly::atom(q).mul(&Poly::atom(p)));
        let atoms = poly.atoms();
        assert_eq!(atoms.len(), 3);
        let mut sorted = atoms.clone();
        sorted.sort();
        assert_eq!(atoms, sorted);
    }
}
