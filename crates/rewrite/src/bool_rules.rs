//! The Hsiang–Dershowitz `BOOL` system as an explicit rule set.
//!
//! The engine normalizes Bool-sorted terms through the built-in
//! Boolean-ring polynomial form ([`crate::boolring`]), so proofs never run
//! these rules one by one. Static analysis does need them spelled out: the
//! paper's claim that `red` decides propositional logic rests on the
//! Hsiang–Dershowitz rewrite system [5] being **terminating and
//! confluent**, and `equitls-lint` re-checks exactly that on this rule set
//! (an RPO-orientable precedence, an empty set of unjoinable critical
//! pairs).
//!
//! The rules translate every connective into the xor/and (GF(2) ring)
//! fragment and then normalize ring expressions:
//!
//! ```text
//! not p            → p xor true
//! p or q           → (p and q) xor (p xor q)
//! p implies q      → (p and q) xor (p xor true)
//! p iff q          → (p xor q) xor true
//! if c then p else q fi → ((c and p) xor (c and q)) xor q
//! p xor false      → p
//! p xor p          → false
//! p and true       → p
//! p and false      → false
//! p and p          → p
//! p and (q xor r)  → (p and q) xor (p and r)
//! ```
//!
//! (The original system is AC-complete; ours is its syntactic core, which
//! is what the workspace's innermost engine could run and what the lint
//! analyzes.)

use crate::bool_alg::BoolAlg;
use crate::error::RewriteError;
use crate::rule::RuleSet;
use equitls_kernel::prelude::*;

/// Build the Hsiang–Dershowitz `BOOL` rule set over `store`.
///
/// Declares three Bool-sorted variables (`BOOLP`, `BOOLQ`, `BOOLR`); the
/// names are chosen not to collide with the protocol specifications'
/// variable namespaces.
///
/// # Errors
///
/// Propagates kernel errors (only possible if the store's `BOOL`
/// vocabulary disagrees with `alg`) and rule-validation errors.
pub fn hd_bool_rules(store: &mut TermStore, alg: &BoolAlg) -> Result<RuleSet, RewriteError> {
    let bool_sort = alg.sort();
    let p = store.declare_var("BOOLP", bool_sort)?;
    let q = store.declare_var("BOOLQ", bool_sort)?;
    let r = store.declare_var("BOOLR", bool_sort)?;
    let (p, q, r) = (store.var(p), store.var(q), store.var(r));
    let tt = alg.tt(store);
    let ff = alg.ff(store);

    let mut rules = RuleSet::new();
    let bs = Some(bool_sort);

    // Connective translations into the ring fragment.
    let not_p = alg.not(store, p)?;
    let p_xor_true = alg.xor(store, p, tt)?;
    rules.add(store, "bool-not", not_p, p_xor_true, None, bs)?;

    let p_or_q = alg.or(store, p, q)?;
    let p_and_q = alg.and(store, p, q)?;
    let p_xor_q = alg.xor(store, p, q)?;
    let or_rhs = alg.xor(store, p_and_q, p_xor_q)?;
    rules.add(store, "bool-or", p_or_q, or_rhs, None, bs)?;

    let p_imp_q = alg.implies(store, p, q)?;
    let imp_rhs = alg.xor(store, p_and_q, p_xor_true)?;
    rules.add(store, "bool-implies", p_imp_q, imp_rhs, None, bs)?;

    let p_iff_q = alg.iff(store, p, q)?;
    let iff_rhs = alg.xor(store, p_xor_q, tt)?;
    rules.add(store, "bool-iff", p_iff_q, iff_rhs, None, bs)?;

    let ite = store.app(alg.ite_op(), &[p, q, r])?;
    let p_and_r = alg.and(store, p, r)?;
    let branches = alg.xor(store, p_and_q, p_and_r)?;
    let ite_rhs = alg.xor(store, branches, r)?;
    rules.add(store, "bool-ite", ite, ite_rhs, None, bs)?;

    // Ring normalization.
    let p_xor_false = alg.xor(store, p, ff)?;
    rules.add(store, "xor-unit", p_xor_false, p, None, bs)?;
    let p_xor_p = alg.xor(store, p, p)?;
    rules.add(store, "xor-nilpotent", p_xor_p, ff, None, bs)?;
    let p_and_true = alg.and(store, p, tt)?;
    rules.add(store, "and-unit", p_and_true, p, None, bs)?;
    let p_and_false = alg.and(store, p, ff)?;
    rules.add(store, "and-zero", p_and_false, ff, None, bs)?;
    let p_and_p = alg.and(store, p, p)?;
    rules.add(store, "and-idempotent", p_and_p, p, None, bs)?;
    let q_xor_r = alg.xor(store, q, r)?;
    let distrib_lhs = alg.and(store, p, q_xor_r)?;
    let distrib_rhs = alg.xor(store, p_and_q, p_and_r)?;
    rules.add(store, "and-distrib", distrib_lhs, distrib_rhs, None, bs)?;

    Ok(rules)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_the_twelve_rule_system_headed_by_the_connectives() {
        let mut sig = Signature::new();
        let alg = BoolAlg::install(&mut sig).unwrap();
        let mut store = TermStore::new(sig);
        let rules = hd_bool_rules(&mut store, &alg).unwrap();
        assert_eq!(rules.len(), 11);
        let heads = rules.defined_heads();
        for op in [
            alg.not_op(),
            alg.or_op(),
            alg.implies_op(),
            alg.iff_op(),
            alg.ite_op(),
            alg.xor_op(),
            alg.and_op(),
        ] {
            assert!(heads.contains(&op), "missing head {:?}", op);
        }
    }

    #[test]
    fn rules_agree_with_the_builtin_polynomial_semantics() {
        use crate::engine::Normalizer;
        // Every rule's two sides must denote the same GF(2) polynomial —
        // otherwise the explicit system and the built-in normalizer would
        // disagree about BOOL.
        let mut sig = Signature::new();
        let alg = BoolAlg::install(&mut sig).unwrap();
        let mut store = TermStore::new(sig);
        let rules = hd_bool_rules(&mut store, &alg).unwrap();
        let mut norm = Normalizer::new(alg.clone(), RuleSet::new());
        for rule in rules.iter() {
            let l = norm.normalize_to_poly(&mut store, rule.lhs).unwrap();
            let r = norm.normalize_to_poly(&mut store, rule.rhs).unwrap();
            assert_eq!(l, r, "rule {} changes the denotation", rule.label);
        }
    }
}
