//! Behavioral tests of the normalizer: rule priority, conditional
//! cascades, cache coherence across assumptions, and statistics.

use equitls_kernel::prelude::*;
use equitls_rewrite::prelude::*;

struct World {
    store: TermStore,
    alg: BoolAlg,
    s: SortId,
}

fn world() -> World {
    let mut sig = Signature::new();
    let alg = BoolAlg::install(&mut sig).unwrap();
    let s = sig.add_visible_sort("S").unwrap();
    World {
        store: TermStore::new(sig),
        alg,
        s,
    }
}

#[test]
fn assumptions_take_priority_over_specification_rules() {
    let mut w = world();
    let c = w
        .store
        .signature_mut()
        .add_constant("c", w.s, OpAttrs::constructor())
        .unwrap();
    let d = w
        .store
        .signature_mut()
        .add_constant("d", w.s, OpAttrs::constructor())
        .unwrap();
    let e = w
        .store
        .signature_mut()
        .add_constant("e", w.s, OpAttrs::constructor())
        .unwrap();
    let f = w
        .store
        .signature_mut()
        .add_op("f", &[w.s], w.s, OpAttrs::defined())
        .unwrap();
    let cv = w.store.constant(c);
    let dv = w.store.constant(d);
    let ev = w.store.constant(e);
    let fc = w.store.app(f, &[cv]).unwrap();
    let mut rules = RuleSet::new();
    // Spec says f(c) = d…
    rules.add(&w.store, "spec", fc, dv, None, None).unwrap();
    let mut norm = Normalizer::new(w.alg.clone(), rules);
    assert_eq!(norm.normalize(&mut w.store, fc).unwrap(), dv);
    // …but a proof-passage assumption f(c) = e wins.
    norm.assume(&w.store, "assume", fc, ev).unwrap();
    assert_eq!(norm.normalize(&mut w.store, fc).unwrap(), ev);
}

#[test]
fn conditional_rules_cascade_through_decided_conditions() {
    // g(X) = h(X) if p(X);  h(X) = c if q(X);  with p,q assumed true,
    // g(a) reduces all the way to c.
    let mut w = world();
    let c = w
        .store
        .signature_mut()
        .add_constant("c", w.s, OpAttrs::constructor())
        .unwrap();
    let sig = w.store.signature_mut();
    let g = sig.add_op("g", &[w.s], w.s, OpAttrs::defined()).unwrap();
    let h = sig.add_op("h", &[w.s], w.s, OpAttrs::defined()).unwrap();
    let p = sig
        .add_op("p", &[w.s], w.alg.sort(), OpAttrs::defined())
        .unwrap();
    let q = sig
        .add_op("q", &[w.s], w.alg.sort(), OpAttrs::defined())
        .unwrap();
    let x = w.store.declare_var("X", w.s).unwrap();
    let xt = w.store.var(x);
    let gx = w.store.app(g, &[xt]).unwrap();
    let hx = w.store.app(h, &[xt]).unwrap();
    let px = w.store.app(p, &[xt]).unwrap();
    let qx = w.store.app(q, &[xt]).unwrap();
    let cv = w.store.constant(c);
    let mut rules = RuleSet::new();
    rules
        .add(&w.store, "g", gx, hx, Some(px), Some(w.alg.sort()))
        .unwrap();
    rules
        .add(&w.store, "h", hx, cv, Some(qx), Some(w.alg.sort()))
        .unwrap();
    let mut norm = Normalizer::new(w.alg.clone(), rules);
    let a = w.store.fresh_constant("a", w.s);
    let ga = w.store.app(g, &[a]).unwrap();
    // Undecided: both rules block; two blocked conditions are reported.
    assert_eq!(norm.normalize(&mut w.store, ga).unwrap(), ga);
    let blocked = norm.take_blocked();
    assert_eq!(blocked.len(), 1, "only g's condition blocks at the root");
    // Assume both conditions.
    let pa = w.store.app(p, &[a]).unwrap();
    let qa = w.store.app(q, &[a]).unwrap();
    let tt = w.alg.tt(&mut w.store);
    norm.assume(&w.store, "p", pa, tt).unwrap();
    norm.assume(&w.store, "q", qa, tt).unwrap();
    assert_eq!(norm.normalize(&mut w.store, ga).unwrap(), cv);
}

#[test]
fn first_matching_rule_wins_in_declaration_order() {
    let mut w = world();
    let c = w
        .store
        .signature_mut()
        .add_constant("c", w.s, OpAttrs::constructor())
        .unwrap();
    let d = w
        .store
        .signature_mut()
        .add_constant("d", w.s, OpAttrs::constructor())
        .unwrap();
    let f = w
        .store
        .signature_mut()
        .add_op("f", &[w.s], w.s, OpAttrs::defined())
        .unwrap();
    let x = w.store.declare_var("X", w.s).unwrap();
    let xt = w.store.var(x);
    let fx = w.store.app(f, &[xt]).unwrap();
    let cv = w.store.constant(c);
    let dv = w.store.constant(d);
    let mut rules = RuleSet::new();
    rules.add(&w.store, "first", fx, cv, None, None).unwrap();
    rules.add(&w.store, "second", fx, dv, None, None).unwrap();
    let mut norm = Normalizer::new(w.alg.clone(), rules);
    let a = w.store.fresh_constant("a", w.s);
    let fa = w.store.app(f, &[a]).unwrap();
    assert_eq!(norm.normalize(&mut w.store, fa).unwrap(), cv);
}

#[test]
fn cache_is_coherent_across_assumption_changes() {
    let mut w = world();
    let p = w
        .store
        .signature_mut()
        .add_op("p", &[w.s], w.alg.sort(), OpAttrs::defined())
        .unwrap();
    let a = w.store.fresh_constant("a", w.s);
    let pa = w.store.app(p, &[a]).unwrap();
    let mut norm = Normalizer::new(w.alg.clone(), RuleSet::new());
    // Normalize once: cached as itself.
    assert_eq!(norm.normalize(&mut w.store, pa).unwrap(), pa);
    // Now assume it true: the cache must not serve the stale value.
    let tt = w.alg.tt(&mut w.store);
    norm.assume(&w.store, "pa", pa, tt).unwrap();
    assert!(norm.proves(&mut w.store, pa).unwrap());
}

#[test]
fn normalizer_clone_isolates_assumptions() {
    let mut w = world();
    let p = w
        .store
        .signature_mut()
        .add_op("p", &[w.s], w.alg.sort(), OpAttrs::defined())
        .unwrap();
    let a = w.store.fresh_constant("a", w.s);
    let pa = w.store.app(p, &[a]).unwrap();
    let tt = w.alg.tt(&mut w.store);
    let base = Normalizer::new(w.alg.clone(), RuleSet::new());
    let mut branch_true = base.clone();
    let mut branch_open = base.clone();
    branch_true.assume(&w.store, "pa", pa, tt).unwrap();
    assert!(branch_true.proves(&mut w.store, pa).unwrap());
    assert!(!branch_open.proves(&mut w.store, pa).unwrap());
}

#[test]
fn statistics_track_real_work() {
    let mut w = world();
    let c = w
        .store
        .signature_mut()
        .add_constant("c", w.s, OpAttrs::constructor())
        .unwrap();
    let f = w
        .store
        .signature_mut()
        .add_op("f", &[w.s], w.s, OpAttrs::defined())
        .unwrap();
    let x = w.store.declare_var("X", w.s).unwrap();
    let xt = w.store.var(x);
    let fx = w.store.app(f, &[xt]).unwrap();
    let mut rules = RuleSet::new();
    rules.add(&w.store, "f-id", fx, xt, None, None).unwrap();
    let mut norm = Normalizer::new(w.alg.clone(), rules);
    // f(f(f(c))) takes three rewrites.
    let cv = w.store.constant(c);
    let mut t = cv;
    for _ in 0..3 {
        t = w.store.app(f, &[t]).unwrap();
    }
    assert_eq!(norm.normalize(&mut w.store, t).unwrap(), cv);
    assert_eq!(norm.stats().rewrites, 3);
    // Cache hit on re-normalization.
    let before = norm.stats().cache_hits;
    norm.normalize(&mut w.store, t).unwrap();
    assert!(norm.stats().cache_hits > before);
}

#[test]
fn deep_terms_error_gracefully_instead_of_overflowing() {
    let mut w = world();
    let c = w
        .store
        .signature_mut()
        .add_constant("c", w.s, OpAttrs::constructor())
        .unwrap();
    let f = w
        .store
        .signature_mut()
        .add_op("f", &[w.s], w.s, OpAttrs::constructor())
        .unwrap();
    // Within the default depth bound: normalizes fine.
    let mut t = w.store.constant(c);
    for _ in 0..250 {
        t = w.store.app(f, &[t]).unwrap();
    }
    let mut norm = Normalizer::new(w.alg.clone(), RuleSet::new());
    assert_eq!(norm.normalize(&mut w.store, t).unwrap(), t);
    // Past the bound: a clean error, never a stack overflow.
    for _ in 0..200 {
        t = w.store.app(f, &[t]).unwrap();
    }
    let mut norm2 = Normalizer::new(w.alg.clone(), RuleSet::new());
    assert!(matches!(
        norm2.normalize(&mut w.store, t),
        Err(RewriteError::FuelExhausted { .. })
    ));
    // A raised bound admits the deeper term.
    let mut norm3 = Normalizer::new(w.alg.clone(), RuleSet::new());
    norm3.set_max_depth(2000);
    assert_eq!(norm3.normalize(&mut w.store, t).unwrap(), t);
}
