//! Randomized completeness check for the Boolean-ring normalizer.
//!
//! The paper (§2.1) leans on the completeness of `BOOL`'s equations for
//! propositional logic: a formula rewrites to `true` iff it is a tautology.
//! Here we generate random propositional formulas over a handful of atoms,
//! evaluate them by brute-force truth table, and check the engine agrees —
//! experiment E12 in DESIGN.md. Generation is SplitMix64-seeded (the
//! offline build cannot depend on proptest), so every run is reproducible.

use equitls_kernel::prelude::*;
use equitls_obs::rng::SplitMix64;
use equitls_rewrite::prelude::*;

/// A formula AST for generation.
#[derive(Debug, Clone)]
enum Formula {
    Atom(usize),
    True,
    False,
    Not(Box<Formula>),
    And(Box<Formula>, Box<Formula>),
    Or(Box<Formula>, Box<Formula>),
    Xor(Box<Formula>, Box<Formula>),
    Implies(Box<Formula>, Box<Formula>),
    Iff(Box<Formula>, Box<Formula>),
}

const ATOM_COUNT: usize = 4;
const CASES: usize = 256;

fn gen_formula(rng: &mut SplitMix64, depth: usize) -> Formula {
    if depth == 0 || rng.next_below(4) == 0 {
        return match rng.next_below(3) {
            0 => Formula::True,
            1 => Formula::False,
            _ => Formula::Atom(rng.next_index(ATOM_COUNT)),
        };
    }
    let op = rng.next_below(6);
    let a = Box::new(gen_formula(rng, depth - 1));
    if op == 0 {
        return Formula::Not(a);
    }
    let b = Box::new(gen_formula(rng, depth - 1));
    match op {
        1 => Formula::And(a, b),
        2 => Formula::Or(a, b),
        3 => Formula::Xor(a, b),
        4 => Formula::Implies(a, b),
        _ => Formula::Iff(a, b),
    }
}

fn eval(f: &Formula, env: &[bool]) -> bool {
    match f {
        Formula::Atom(i) => env[*i],
        Formula::True => true,
        Formula::False => false,
        Formula::Not(a) => !eval(a, env),
        Formula::And(a, b) => eval(a, env) && eval(b, env),
        Formula::Or(a, b) => eval(a, env) || eval(b, env),
        Formula::Xor(a, b) => eval(a, env) ^ eval(b, env),
        Formula::Implies(a, b) => !eval(a, env) || eval(b, env),
        Formula::Iff(a, b) => eval(a, env) == eval(b, env),
    }
}

fn build(f: &Formula, store: &mut TermStore, alg: &BoolAlg, atoms: &[TermId]) -> TermId {
    match f {
        Formula::Atom(i) => atoms[*i],
        Formula::True => alg.tt(store),
        Formula::False => alg.ff(store),
        Formula::Not(a) => {
            let at = build(a, store, alg, atoms);
            alg.not(store, at).unwrap()
        }
        Formula::And(a, b) => {
            let (x, y) = (build(a, store, alg, atoms), build(b, store, alg, atoms));
            alg.and(store, x, y).unwrap()
        }
        Formula::Or(a, b) => {
            let (x, y) = (build(a, store, alg, atoms), build(b, store, alg, atoms));
            alg.or(store, x, y).unwrap()
        }
        Formula::Xor(a, b) => {
            let (x, y) = (build(a, store, alg, atoms), build(b, store, alg, atoms));
            alg.xor(store, x, y).unwrap()
        }
        Formula::Implies(a, b) => {
            let (x, y) = (build(a, store, alg, atoms), build(b, store, alg, atoms));
            alg.implies(store, x, y).unwrap()
        }
        Formula::Iff(a, b) => {
            let (x, y) = (build(a, store, alg, atoms), build(b, store, alg, atoms));
            alg.iff(store, x, y).unwrap()
        }
    }
}

fn world() -> (TermStore, BoolAlg, Vec<TermId>) {
    let mut sig = Signature::new();
    let alg = BoolAlg::install(&mut sig).unwrap();
    let mut store = TermStore::new(sig);
    let atoms: Vec<TermId> = (0..ATOM_COUNT)
        .map(|_| store.fresh_constant("p", alg.sort()))
        .collect();
    (store, alg, atoms)
}

fn truth_table(f: &Formula) -> (bool, bool) {
    // (is_tautology, is_contradiction)
    let mut taut = true;
    let mut contra = true;
    for bits in 0..(1u32 << ATOM_COUNT) {
        let env: Vec<bool> = (0..ATOM_COUNT).map(|i| bits & (1 << i) != 0).collect();
        if eval(f, &env) {
            contra = false;
        } else {
            taut = false;
        }
    }
    (taut, contra)
}

/// Normalization decides tautology/contradiction exactly as the truth
/// table does.
#[test]
fn normalizer_is_a_tautology_oracle() {
    let mut rng = SplitMix64::new(0x0A11);
    for case in 0..CASES {
        let f = gen_formula(&mut rng, 5);
        let (mut store, alg, atoms) = world();
        let term = build(&f, &mut store, &alg, &atoms);
        let mut norm = Normalizer::new(alg.clone(), RuleSet::new());
        let n = norm.normalize(&mut store, term).unwrap();
        let (taut, contra) = truth_table(&f);
        match alg.as_constant(&store, n) {
            Some(true) => assert!(taut, "case {case}: reduced to true but not a tautology"),
            Some(false) => assert!(contra, "case {case}: reduced to false but satisfiable"),
            None => {
                assert!(!taut, "case {case}: tautology failed to reduce to true");
                assert!(
                    !contra,
                    "case {case}: contradiction failed to reduce to false"
                );
            }
        }
    }
}

/// The polynomial normal form is semantically faithful: it evaluates
/// exactly like the original formula under every assignment.
#[test]
fn polynomial_evaluates_like_the_formula() {
    let mut rng = SplitMix64::new(0x0B22);
    for case in 0..CASES {
        let f = gen_formula(&mut rng, 5);
        let (mut store, alg, atoms) = world();
        let term = build(&f, &mut store, &alg, &atoms);
        let mut norm = Normalizer::new(alg.clone(), RuleSet::new());
        let poly = norm.normalize_to_poly(&mut store, term).unwrap();
        for bits in 0..(1u32 << ATOM_COUNT) {
            let env: Vec<bool> = (0..ATOM_COUNT).map(|i| bits & (1 << i) != 0).collect();
            let want = eval(&f, &env);
            let got = poly.eval(&|t| {
                atoms
                    .iter()
                    .position(|&a| a == t)
                    .map(|i| env[i])
                    .unwrap_or(false)
            });
            assert_eq!(got, want, "case {case}: assignment {env:?}");
        }
    }
}

/// Normalization is idempotent: normal forms are fixed points.
#[test]
fn normalization_is_idempotent() {
    let mut rng = SplitMix64::new(0x0C33);
    for case in 0..CASES {
        let f = gen_formula(&mut rng, 5);
        let (mut store, alg, atoms) = world();
        let term = build(&f, &mut store, &alg, &atoms);
        let mut norm = Normalizer::new(alg.clone(), RuleSet::new());
        let n1 = norm.normalize(&mut store, term).unwrap();
        let mut norm2 = Normalizer::new(alg.clone(), RuleSet::new());
        let n2 = norm2.normalize(&mut store, n1).unwrap();
        assert_eq!(n1, n2, "case {case}");
    }
}

/// Double negation and de-Morgan rewrites agree with the engine.
#[test]
fn equivalent_formulas_share_a_normal_form() {
    let mut rng = SplitMix64::new(0x0D44);
    for case in 0..CASES {
        let f = gen_formula(&mut rng, 5);
        let (mut store, alg, atoms) = world();
        let term = build(&f, &mut store, &alg, &atoms);
        // not (not f) must normalize identically to f.
        let n0 = {
            let mut norm = Normalizer::new(alg.clone(), RuleSet::new());
            norm.normalize(&mut store, term).unwrap()
        };
        let nn = {
            let n1 = alg.not(&mut store, term).unwrap();
            let n2 = alg.not(&mut store, n1).unwrap();
            let mut norm = Normalizer::new(alg.clone(), RuleSet::new());
            norm.normalize(&mut store, n2).unwrap()
        };
        assert_eq!(n0, nn, "case {case}");
    }
}
