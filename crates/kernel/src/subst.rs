//! Substitutions: finite maps from variables to terms.
//!
//! A substitution is produced by [`crate::matching::match_term`] and applied
//! to the right-hand side (and condition) of a rewrite rule. Application
//! preserves hash-consing: identical instantiated subterms intern to the
//! same [`TermId`].

use crate::term::{Term, TermId, TermStore, VarId};
use std::collections::HashMap;

/// A finite map from variables to terms.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Subst {
    map: HashMap<VarId, TermId>,
}

impl Subst {
    /// The empty substitution.
    pub fn new() -> Self {
        Subst::default()
    }

    /// Bind `var` to `term`, returning the previous binding if any.
    pub fn bind(&mut self, var: VarId, term: TermId) -> Option<TermId> {
        self.map.insert(var, term)
    }

    /// Look up the binding for `var`.
    pub fn get(&self, var: VarId) -> Option<TermId> {
        self.map.get(&var).copied()
    }

    /// Number of bound variables.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` when no variable is bound.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Iterate over bindings in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (VarId, TermId)> + '_ {
        self.map.iter().map(|(&v, &t)| (v, t))
    }

    /// Apply the substitution to `t`, interning the result in `store`.
    ///
    /// Unbound variables are left in place, so applying a matching
    /// substitution to the rule's right-hand side is total whenever the rule
    /// satisfies the usual `vars(rhs) ⊆ vars(lhs)` condition (enforced at
    /// rule-construction time by `equitls-rewrite`).
    pub fn apply(&self, store: &mut TermStore, t: TermId) -> TermId {
        if self.map.is_empty() {
            return t;
        }
        match store.node(t).clone() {
            Term::Var(v) => self.get(v).unwrap_or(t),
            Term::App { op, args } => {
                if args.is_empty() {
                    return t;
                }
                let new_args: Vec<TermId> = args.iter().map(|&a| self.apply(store, a)).collect();
                if new_args == args {
                    t
                } else {
                    store
                        .app(op, &new_args)
                        .expect("substitution preserves sorts")
                }
            }
        }
    }
}

impl FromIterator<(VarId, TermId)> for Subst {
    fn from_iter<I: IntoIterator<Item = (VarId, TermId)>>(iter: I) -> Self {
        Subst {
            map: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::OpAttrs;
    use crate::signature::Signature;

    #[test]
    fn apply_replaces_variables_and_shares_structure() {
        let mut sig = Signature::new();
        let s = sig.add_visible_sort("S").unwrap();
        let c = sig.add_constant("c", s, OpAttrs::constructor()).unwrap();
        let f = sig.add_op("f", &[s, s], s, OpAttrs::constructor()).unwrap();
        let mut store = TermStore::new(sig);
        let x = store.declare_var("X", s).unwrap();
        let y = store.declare_var("Y", s).unwrap();
        let xt = store.var(x);
        let yt = store.var(y);
        let pattern = store.app(f, &[xt, yt]).unwrap();
        let cv = store.constant(c);

        let mut sub = Subst::new();
        sub.bind(x, cv);
        sub.bind(y, cv);
        let result = sub.apply(&mut store, pattern);
        let expected = store.app(f, &[cv, cv]).unwrap();
        assert_eq!(result, expected);
    }

    #[test]
    fn unbound_variables_stay_in_place() {
        let mut sig = Signature::new();
        let s = sig.add_visible_sort("S").unwrap();
        let c = sig.add_constant("c", s, OpAttrs::constructor()).unwrap();
        let f = sig.add_op("f", &[s, s], s, OpAttrs::constructor()).unwrap();
        let mut store = TermStore::new(sig);
        let x = store.declare_var("X", s).unwrap();
        let y = store.declare_var("Y", s).unwrap();
        let xt = store.var(x);
        let yt = store.var(y);
        let pattern = store.app(f, &[xt, yt]).unwrap();
        let cv = store.constant(c);

        let sub: Subst = [(x, cv)].into_iter().collect();
        let result = sub.apply(&mut store, pattern);
        let expected = store.app(f, &[cv, yt]).unwrap();
        assert_eq!(result, expected);
        assert_eq!(sub.len(), 1);
        assert!(!sub.is_empty());
    }

    #[test]
    fn empty_substitution_is_identity() {
        let mut sig = Signature::new();
        let s = sig.add_visible_sort("S").unwrap();
        let c = sig.add_constant("c", s, OpAttrs::constructor()).unwrap();
        let mut store = TermStore::new(sig);
        let cv = store.constant(c);
        let sub = Subst::new();
        assert_eq!(sub.apply(&mut store, cv), cv);
    }
}
