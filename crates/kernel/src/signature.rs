//! Signatures: the vocabulary of a specification.
//!
//! A [`Signature`] owns the declared sorts and operators and offers lookup
//! by name. Terms ([`crate::term::TermStore`]) are built against a
//! signature and validated on construction, so every term in the system is
//! well-sorted by construction — the Rust analogue of CafeOBJ's order-sorted
//! type checking.

use crate::error::KernelError;
use crate::op::{OpAttrs, OpDecl, OpId};
use crate::sort::{SortDecl, SortId, SortKind};
use std::collections::HashMap;

/// A registry of sorts and operators.
///
/// # Example
///
/// ```
/// use equitls_kernel::prelude::*;
///
/// let mut sig = Signature::new();
/// let bool_sort = sig.add_visible_sort("Bool")?;
/// let tt = sig.add_constant("true", bool_sort, OpAttrs::constructor())?;
/// assert_eq!(sig.op(tt).name, "true");
/// assert_eq!(sig.sort_by_name("Bool"), Some(bool_sort));
/// # Ok::<(), KernelError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct Signature {
    sorts: Vec<SortDecl>,
    ops: Vec<OpDecl>,
    sort_names: HashMap<String, SortId>,
    op_names: HashMap<String, Vec<OpId>>,
}

impl Signature {
    /// An empty signature.
    pub fn new() -> Self {
        Signature::default()
    }

    /// Declare a sort.
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::DuplicateSort`] if the name is taken.
    pub fn add_sort(&mut self, name: &str, kind: SortKind) -> Result<SortId, KernelError> {
        if self.sort_names.contains_key(name) {
            return Err(KernelError::DuplicateSort(name.to_string()));
        }
        let id = SortId(self.sorts.len() as u32);
        self.sorts.push(SortDecl {
            name: name.to_string(),
            kind,
        });
        self.sort_names.insert(name.to_string(), id);
        Ok(id)
    }

    /// Declare a visible sort (data type).
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::DuplicateSort`] if the name is taken.
    pub fn add_visible_sort(&mut self, name: &str) -> Result<SortId, KernelError> {
        self.add_sort(name, SortKind::Visible)
    }

    /// Declare a hidden sort (machine state space).
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::DuplicateSort`] if the name is taken.
    pub fn add_hidden_sort(&mut self, name: &str) -> Result<SortId, KernelError> {
        self.add_sort(name, SortKind::Hidden)
    }

    /// Declare an operator.
    ///
    /// Overloading is supported the CafeOBJ way: the same name may be
    /// declared several times with *different argument sort lists* (the
    /// paper overloads `_=_`, `_\in_` and `k` across sorts). Redeclaring a
    /// name with the identical argument sorts is rejected.
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::DuplicateOp`] if the name is already declared
    /// with the same argument sorts.
    pub fn add_op(
        &mut self,
        name: &str,
        args: &[SortId],
        result: SortId,
        attrs: OpAttrs,
    ) -> Result<OpId, KernelError> {
        if let Some(existing) = self.op_names.get(name) {
            for &id in existing {
                if self.ops[id.index()].args == args {
                    return Err(KernelError::DuplicateOp(name.to_string()));
                }
            }
        }
        let id = OpId(self.ops.len() as u32);
        self.ops.push(OpDecl {
            name: name.to_string(),
            args: args.to_vec(),
            result,
            attrs,
        });
        self.op_names.entry(name.to_string()).or_default().push(id);
        Ok(id)
    }

    /// Declare a constant (nullary operator).
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::DuplicateOp`] if the name is taken.
    pub fn add_constant(
        &mut self,
        name: &str,
        sort: SortId,
        attrs: OpAttrs,
    ) -> Result<OpId, KernelError> {
        self.add_op(name, &[], sort, attrs)
    }

    /// Look up a sort by name.
    pub fn sort_by_name(&self, name: &str) -> Option<SortId> {
        self.sort_names.get(name).copied()
    }

    /// Look up an operator by name.
    ///
    /// When the name is overloaded this returns the first declaration; use
    /// [`Signature::resolve_op`] to disambiguate by argument sorts.
    pub fn op_by_name(&self, name: &str) -> Option<OpId> {
        self.op_names.get(name).and_then(|v| v.first().copied())
    }

    /// All declarations sharing `name` (overload set).
    pub fn ops_by_name(&self, name: &str) -> &[OpId] {
        self.op_names.get(name).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// Resolve an overloaded operator by its exact argument sort list.
    pub fn resolve_op(&self, name: &str, args: &[SortId]) -> Option<OpId> {
        self.ops_by_name(name)
            .iter()
            .copied()
            .find(|&id| self.ops[id.index()].args == args)
    }

    /// The declaration of `sort`.
    ///
    /// # Panics
    ///
    /// Panics if `sort` was issued by a different signature.
    pub fn sort(&self, sort: SortId) -> &SortDecl {
        &self.sorts[sort.index()]
    }

    /// The declaration of `op`.
    ///
    /// # Panics
    ///
    /// Panics if `op` was issued by a different signature.
    pub fn op(&self, op: OpId) -> &OpDecl {
        &self.ops[op.index()]
    }

    /// Iterate over all declared sorts.
    pub fn sorts(&self) -> impl Iterator<Item = (SortId, &SortDecl)> {
        self.sorts
            .iter()
            .enumerate()
            .map(|(i, d)| (SortId(i as u32), d))
    }

    /// Iterate over all declared operators.
    pub fn ops(&self) -> impl Iterator<Item = (OpId, &OpDecl)> {
        self.ops
            .iter()
            .enumerate()
            .map(|(i, d)| (OpId(i as u32), d))
    }

    /// Number of declared sorts.
    pub fn sort_count(&self) -> usize {
        self.sorts.len()
    }

    /// Number of declared operators.
    pub fn op_count(&self) -> usize {
        self.ops.len()
    }

    /// All constants (nullary constructors) of the given sort.
    ///
    /// Used by the model checker to enumerate finite scopes and by the
    /// prover to ground lemma instantiations.
    pub fn constants_of_sort(&self, sort: SortId) -> Vec<OpId> {
        self.ops()
            .filter(|(_, d)| d.is_constant() && d.result == sort)
            .map(|(id, _)| id)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> (Signature, SortId) {
        let mut sig = Signature::new();
        let s = sig.add_visible_sort("Principal").unwrap();
        (sig, s)
    }

    #[test]
    fn duplicate_sort_is_rejected() {
        let (mut sig, _) = tiny();
        assert_eq!(
            sig.add_visible_sort("Principal"),
            Err(KernelError::DuplicateSort("Principal".into()))
        );
    }

    #[test]
    fn duplicate_op_is_rejected() {
        let (mut sig, s) = tiny();
        sig.add_constant("intruder", s, OpAttrs::constructor())
            .unwrap();
        assert_eq!(
            sig.add_constant("intruder", s, OpAttrs::constructor()),
            Err(KernelError::DuplicateOp("intruder".into()))
        );
    }

    #[test]
    fn lookup_by_name_finds_declarations() {
        let (mut sig, s) = tiny();
        let op = sig.add_constant("ca", s, OpAttrs::constructor()).unwrap();
        assert_eq!(sig.sort_by_name("Principal"), Some(s));
        assert_eq!(sig.op_by_name("ca"), Some(op));
        assert_eq!(sig.op_by_name("nope"), None);
        assert_eq!(sig.sort_by_name("nope"), None);
    }

    #[test]
    fn constants_of_sort_enumerates_only_matching_constants() {
        let (mut sig, s) = tiny();
        let r = sig.add_visible_sort("Rand").unwrap();
        let ca = sig.add_constant("ca", s, OpAttrs::constructor()).unwrap();
        let intr = sig
            .add_constant("intruder", s, OpAttrs::constructor())
            .unwrap();
        let _r1 = sig.add_constant("r1", r, OpAttrs::constructor()).unwrap();
        sig.add_op("f", &[s], s, OpAttrs::defined()).unwrap();
        let mut consts = sig.constants_of_sort(s);
        consts.sort();
        let mut expected = vec![ca, intr];
        expected.sort();
        assert_eq!(consts, expected);
    }

    #[test]
    fn hidden_sorts_are_tracked() {
        let mut sig = Signature::new();
        let h = sig.add_hidden_sort("Protocol").unwrap();
        assert!(sig.sort(h).kind.is_hidden());
        assert_eq!(sig.sort_count(), 1);
    }
}
