//! Sorts: the types of the algebraic world.
//!
//! CafeOBJ distinguishes **visible sorts**, which denote abstract data types
//! (principals, random numbers, messages, …), from **hidden sorts**, which
//! denote the state spaces of abstract machines (the paper's `Protocol`
//! sort). The distinction matters to the OTS layer: observation and action
//! operators (`bop`) take a hidden-sorted argument, everything else is
//! visible.

use std::fmt;

/// Identifier of a sort inside a [`crate::signature::Signature`].
///
/// `SortId`s are small dense indices; they are only meaningful relative to
/// the signature that issued them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SortId(pub(crate) u32);

impl SortId {
    /// The dense index of this sort.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Rebuild a `SortId` from a dense index.
    ///
    /// Intended for serialization round-trips; the index must have been
    /// produced by [`SortId::index`] on the same signature.
    pub fn from_index(index: usize) -> Self {
        SortId(index as u32)
    }
}

impl fmt::Display for SortId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sort#{}", self.0)
    }
}

/// Whether a sort denotes data (visible) or machine state (hidden).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SortKind {
    /// An abstract data type, e.g. `Principal`, `Rand`, `Msg`.
    Visible,
    /// A state space of an abstract machine, e.g. `Protocol`.
    Hidden,
}

impl SortKind {
    /// `true` for [`SortKind::Hidden`].
    pub fn is_hidden(self) -> bool {
        matches!(self, SortKind::Hidden)
    }
}

/// A declared sort: its name and kind.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SortDecl {
    /// Sort name, unique within a signature.
    pub name: String,
    /// Visible or hidden.
    pub kind: SortKind,
}

impl fmt::Display for SortDecl {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            SortKind::Visible => write!(f, "[ {} ]", self.name),
            SortKind::Hidden => write!(f, "*[ {} ]*", self.name),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sort_id_round_trips_through_index() {
        let id = SortId(7);
        assert_eq!(SortId::from_index(id.index()), id);
    }

    #[test]
    fn hidden_kind_is_hidden() {
        assert!(SortKind::Hidden.is_hidden());
        assert!(!SortKind::Visible.is_hidden());
    }

    #[test]
    fn sort_decl_display_marks_hidden_sorts() {
        let visible = SortDecl {
            name: "Principal".into(),
            kind: SortKind::Visible,
        };
        let hidden = SortDecl {
            name: "Protocol".into(),
            kind: SortKind::Hidden,
        };
        assert_eq!(visible.to_string(), "[ Principal ]");
        assert_eq!(hidden.to_string(), "*[ Protocol ]*");
    }
}
