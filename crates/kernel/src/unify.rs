//! Syntactic (first-order) unification.
//!
//! Rewriting itself only needs *matching* ([`crate::matching`]): proof
//! subjects are ground, so one side of every comparison is variable-free.
//! Static analysis of the rule set needs more: computing **critical pairs**
//! requires unifying one rule's left-hand side with a subterm of another's,
//! where *both* sides contain variables. This module provides the most
//! general unifier for that purpose.
//!
//! The implementation is the standard worklist algorithm with an occurs
//! check and the same sort discipline as matching: a variable only unifies
//! with terms of exactly its sort. The returned substitution is
//! **idempotent** — every binding is fully resolved through the others — so
//! a single [`Subst::apply`] instantiates a term completely.

use crate::subst::Subst;
use crate::term::{Term, TermId, TermStore, VarId};

/// The result of a unification attempt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UnifyOutcome {
    /// The terms unify; the contained substitution is their most general
    /// unifier (idempotent).
    Unified(Subst),
    /// The terms do not unify (symbol clash, sort clash, or occurs check).
    Failed,
}

impl UnifyOutcome {
    /// Extract the unifier, if any.
    pub fn into_subst(self) -> Option<Subst> {
        match self {
            UnifyOutcome::Unified(s) => Some(s),
            UnifyOutcome::Failed => None,
        }
    }
}

/// Compute the most general unifier of `a` and `b`, if one exists.
///
/// Both terms must come from `store`. Variables from both sides may be
/// bound; callers that need the overlap of two *rules* must rename the
/// rules apart first (see `equitls-lint`'s critical-pair pass).
pub fn unify(store: &TermStore, a: TermId, b: TermId) -> UnifyOutcome {
    let mut subst = Subst::new();
    let mut work = vec![(a, b)];
    while let Some((x, y)) = work.pop() {
        let x = resolve(store, &subst, x);
        let y = resolve(store, &subst, y);
        if x == y {
            continue;
        }
        match (store.node(x).clone(), store.node(y).clone()) {
            (Term::Var(v), _) => {
                if !try_bind(store, &mut subst, v, y) {
                    return UnifyOutcome::Failed;
                }
            }
            (_, Term::Var(v)) => {
                if !try_bind(store, &mut subst, v, x) {
                    return UnifyOutcome::Failed;
                }
            }
            (Term::App { op: f, args: xs }, Term::App { op: g, args: ys }) => {
                if f != g || xs.len() != ys.len() {
                    return UnifyOutcome::Failed;
                }
                work.extend(xs.into_iter().zip(ys));
            }
        }
    }
    UnifyOutcome::Unified(normalize_subst(store, subst))
}

/// Chase variable bindings until a non-variable or unbound variable.
fn resolve(store: &TermStore, subst: &Subst, mut t: TermId) -> TermId {
    while let Term::Var(v) = store.node(t) {
        match subst.get(*v) {
            Some(next) if next != t => t = next,
            _ => break,
        }
    }
    t
}

/// Bind `v := t`, enforcing the sort discipline and the occurs check.
fn try_bind(store: &TermStore, subst: &mut Subst, v: VarId, t: TermId) -> bool {
    if store.var_decl(v).sort != store.sort_of(t) {
        return false;
    }
    if occurs(store, subst, v, t) {
        return false;
    }
    subst.bind(v, t);
    true
}

/// `true` when `v` occurs in `t` after resolving bindings.
fn occurs(store: &TermStore, subst: &Subst, v: VarId, t: TermId) -> bool {
    let t = resolve(store, subst, t);
    match store.node(t) {
        Term::Var(w) => *w == v,
        Term::App { args, .. } => {
            let args = args.clone();
            args.iter().any(|&a| occurs(store, subst, v, a))
        }
    }
}

/// Make a unifier idempotent: resolve every binding through all the others.
///
/// The occurs check guarantees the binding graph is acyclic, so repeated
/// application terminates.
fn normalize_subst(store: &TermStore, subst: Subst) -> Subst {
    // `Subst::apply` needs `&mut TermStore` only to intern instantiated
    // applications; here every instantiated term already exists, but we
    // cannot assume that in general, so resolve structurally instead.
    fn deep_resolve(store: &TermStore, subst: &Subst, t: TermId) -> Option<TermId> {
        match store.node(t) {
            Term::Var(v) => match subst.get(*v) {
                Some(bound) if bound != t => deep_resolve(store, subst, bound).or(Some(bound)),
                _ => None,
            },
            Term::App { .. } => None,
        }
    }
    let mut out = Subst::new();
    for (v, t) in subst.iter() {
        let resolved = deep_resolve(store, &subst, t).unwrap_or(t);
        out.bind(v, resolved);
    }
    out
}

/// Fully instantiate `t` under `subst`, interning new nodes as needed.
///
/// Unlike [`Subst::apply`] this iterates to a fixpoint, so it is safe for
/// unifiers whose bindings mention other bound variables (pre-normalized
/// substitutions built incrementally).
pub fn apply_to_fixpoint(store: &mut TermStore, subst: &Subst, t: TermId) -> TermId {
    let mut cur = t;
    // The occurs check bounds the chain length by the number of bindings.
    for _ in 0..=subst.len() {
        let next = subst.apply(store, cur);
        if next == cur {
            return cur;
        }
        cur = next;
    }
    cur
}

/// All positions of `t` holding a non-variable subterm, in pre-order.
///
/// A position is a path of argument indices from the root; the root is the
/// empty path. Critical-pair computation overlaps rule left-hand sides at
/// exactly these positions (variable positions never give critical pairs).
pub fn function_positions(store: &TermStore, t: TermId) -> Vec<(Vec<usize>, TermId)> {
    let mut out = Vec::new();
    let mut stack = vec![(Vec::new(), t)];
    while let Some((path, cur)) = stack.pop() {
        if let Term::App { args, .. } = store.node(cur) {
            let args = args.clone();
            for (i, &a) in args.iter().enumerate().rev() {
                let mut p = path.clone();
                p.push(i);
                stack.push((p, a));
            }
            out.push((path, cur));
        }
    }
    // Pre-order: the stack pushes children after recording the parent, but
    // popping reverses sibling order; sort by path for a stable ordering.
    out.sort_by(|a, b| a.0.cmp(&b.0));
    out
}

/// Replace the subterm of `t` at `position` with `replacement`.
///
/// # Panics
///
/// Panics if the position does not exist in `t` or if the replacement is
/// ill-sorted at that position (both are programming errors in the caller —
/// positions come from [`function_positions`] and replacements from rules
/// whose sides share a sort).
pub fn replace_at(
    store: &mut TermStore,
    t: TermId,
    position: &[usize],
    replacement: TermId,
) -> TermId {
    match position.split_first() {
        None => replacement,
        Some((&i, rest)) => {
            let (op, args) = match store.node(t) {
                Term::App { op, args } => (*op, args.clone()),
                Term::Var(_) => panic!("replace_at: position descends into a variable"),
            };
            let mut new_args = args;
            new_args[i] = replace_at(store, new_args[i], rest, replacement);
            store
                .app(op, &new_args)
                .expect("replace_at: replacement preserves sorts")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{OpAttrs, OpId};
    use crate::signature::Signature;
    use crate::sort::SortId;

    struct World {
        store: TermStore,
        s: SortId,
        r: SortId,
        c: OpId,
        d: OpId,
        f: OpId,
        g: OpId,
    }

    fn world() -> World {
        let mut sig = Signature::new();
        let s = sig.add_visible_sort("S").unwrap();
        let r = sig.add_visible_sort("R").unwrap();
        let c = sig.add_constant("c", s, OpAttrs::constructor()).unwrap();
        let d = sig.add_constant("d", s, OpAttrs::constructor()).unwrap();
        let f = sig.add_op("f", &[s, s], s, OpAttrs::constructor()).unwrap();
        let g = sig.add_op("g", &[s], s, OpAttrs::constructor()).unwrap();
        World {
            store: TermStore::new(sig),
            s,
            r,
            c,
            d,
            f,
            g,
        }
    }

    #[test]
    fn unifies_variable_with_term_both_directions() {
        let mut w = world();
        let x = w.store.declare_var("X", w.s).unwrap();
        let xt = w.store.var(x);
        let cv = w.store.constant(w.c);
        let gc = w.store.app(w.g, &[cv]).unwrap();
        for (a, b) in [(xt, gc), (gc, xt)] {
            let mgu = unify(&w.store, a, b).into_subst().expect("unifies");
            assert_eq!(mgu.get(x), Some(gc));
        }
    }

    #[test]
    fn unifies_two_open_terms_to_common_instance() {
        // f(X, c) =? f(d, Y)  →  X := d, Y := c.
        let mut w = world();
        let x = w.store.declare_var("X", w.s).unwrap();
        let y = w.store.declare_var("Y", w.s).unwrap();
        let xt = w.store.var(x);
        let yt = w.store.var(y);
        let cv = w.store.constant(w.c);
        let dv = w.store.constant(w.d);
        let a = w.store.app(w.f, &[xt, cv]).unwrap();
        let b = w.store.app(w.f, &[dv, yt]).unwrap();
        let mgu = unify(&w.store, a, b).into_subst().expect("unifies");
        let ia = apply_to_fixpoint(&mut w.store, &mgu, a);
        let ib = apply_to_fixpoint(&mut w.store, &mgu, b);
        assert_eq!(ia, ib);
        let expected = w.store.app(w.f, &[dv, cv]).unwrap();
        assert_eq!(ia, expected);
    }

    #[test]
    fn variable_chains_resolve_to_an_idempotent_unifier() {
        // f(X, X) =? f(Y, g(Z)): X ~ Y, then X ~ g(Z); the binding for Y
        // must resolve through X to g(Z).
        let mut w = world();
        let x = w.store.declare_var("X", w.s).unwrap();
        let y = w.store.declare_var("Y", w.s).unwrap();
        let z = w.store.declare_var("Z", w.s).unwrap();
        let (xt, yt, zt) = (w.store.var(x), w.store.var(y), w.store.var(z));
        let gz = w.store.app(w.g, &[zt]).unwrap();
        let a = w.store.app(w.f, &[xt, xt]).unwrap();
        let b = w.store.app(w.f, &[yt, gz]).unwrap();
        let mgu = unify(&w.store, a, b).into_subst().expect("unifies");
        let ia = apply_to_fixpoint(&mut w.store, &mgu, a);
        let ib = apply_to_fixpoint(&mut w.store, &mgu, b);
        assert_eq!(ia, ib);
        // Idempotence: a single plain apply must already reach the fixpoint.
        assert_eq!(mgu.apply(&mut w.store, a), ia);
    }

    #[test]
    fn occurs_check_rejects_cyclic_solutions() {
        let mut w = world();
        let x = w.store.declare_var("X", w.s).unwrap();
        let xt = w.store.var(x);
        let gx = w.store.app(w.g, &[xt]).unwrap();
        assert_eq!(unify(&w.store, xt, gx), UnifyOutcome::Failed);
        // Indirect cycle: f(X, g(X)) =? f(g(Y), Y).
        let y = w.store.declare_var("Y", w.s).unwrap();
        let yt = w.store.var(y);
        let gy = w.store.app(w.g, &[yt]).unwrap();
        let a = w.store.app(w.f, &[xt, gx]).unwrap();
        let b = w.store.app(w.f, &[gy, yt]).unwrap();
        assert_eq!(unify(&w.store, a, b), UnifyOutcome::Failed);
    }

    #[test]
    fn symbol_and_sort_clashes_fail() {
        let mut w = world();
        let cv = w.store.constant(w.c);
        let dv = w.store.constant(w.d);
        assert_eq!(unify(&w.store, cv, dv), UnifyOutcome::Failed);
        let x = w.store.declare_var("RX", w.r).unwrap();
        let xt = w.store.var(x);
        // Variable of sort R cannot take a term of sort S.
        assert_eq!(unify(&w.store, xt, cv), UnifyOutcome::Failed);
    }

    #[test]
    fn function_positions_enumerate_non_variable_subterms_in_preorder() {
        let mut w = world();
        let x = w.store.declare_var("X", w.s).unwrap();
        let xt = w.store.var(x);
        let cv = w.store.constant(w.c);
        let gc = w.store.app(w.g, &[cv]).unwrap();
        let t = w.store.app(w.f, &[xt, gc]).unwrap();
        let positions = function_positions(&w.store, t);
        let paths: Vec<Vec<usize>> = positions.iter().map(|(p, _)| p.clone()).collect();
        // Root, g(c) at [1], c at [1,0]; the variable at [0] is skipped.
        assert_eq!(paths, vec![vec![], vec![1], vec![1, 0]]);
        assert_eq!(positions[1].1, gc);
        assert_eq!(positions[2].1, cv);
    }

    #[test]
    fn replace_at_rebuilds_the_spine() {
        let mut w = world();
        let cv = w.store.constant(w.c);
        let dv = w.store.constant(w.d);
        let gc = w.store.app(w.g, &[cv]).unwrap();
        let t = w.store.app(w.f, &[gc, cv]).unwrap();
        let replaced = replace_at(&mut w.store, t, &[0, 0], dv);
        let gd = w.store.app(w.g, &[dv]).unwrap();
        let expected = w.store.app(w.f, &[gd, cv]).unwrap();
        assert_eq!(replaced, expected);
        assert_eq!(replace_at(&mut w.store, t, &[], dv), dv);
    }
}
