//! # equitls-kernel
//!
//! The order-sorted term kernel underlying the EquiTLS reproduction of
//! *Equational Approach to Formal Analysis of TLS* (Ogata & Futatsugi,
//! ICDCS 2005).
//!
//! The paper specifies distributed systems in CafeOBJ, an algebraic
//! specification language whose basic objects are **sorts** (visible sorts
//! for data, hidden sorts for state spaces), **operators** (`op` for data
//! constructors and functions, `bop` for observation and action operators),
//! and **terms** built from them. This crate provides those objects for the
//! rest of the workspace:
//!
//! * [`sort`] — sort identifiers and kinds (visible / hidden),
//! * [`op`] — operator declarations with attributes (constructor, observer,
//!   action, projection),
//! * [`signature`] — a registry of sorts and operators with well-formedness
//!   checks,
//! * [`term`] — hash-consed terms stored in a [`term::TermStore`] arena,
//! * [`subst`] — substitutions mapping variables to terms,
//! * [`matching`] — first-order matching of rule patterns against subjects,
//! * [`unify`] — syntactic unification and position utilities for
//!   critical-pair analysis,
//! * [`display`] — human-readable CafeOBJ-flavoured printing.
//!
//! # Example
//!
//! Build the signature fragment for pre-master secrets (`pms(a, b, s)` from
//! §4.2 of the paper) and construct a term:
//!
//! ```
//! use equitls_kernel::prelude::*;
//!
//! let mut sig = Signature::new();
//! let principal = sig.add_visible_sort("Principal")?;
//! let secret = sig.add_visible_sort("Secret")?;
//! let pms_sort = sig.add_visible_sort("Pms")?;
//! let intruder = sig.add_constant("intruder", principal, OpAttrs::constructor())?;
//! let ca = sig.add_constant("ca", principal, OpAttrs::constructor())?;
//! let s0 = sig.add_constant("s0", secret, OpAttrs::constructor())?;
//! let pms = sig.add_op("pms", &[principal, principal, secret], pms_sort,
//!                      OpAttrs::constructor())?;
//!
//! let mut store = TermStore::new(sig);
//! let a = store.constant(intruder);
//! let b = store.constant(ca);
//! let s = store.constant(s0);
//! let t = store.app(pms, &[a, b, s])?;
//! assert_eq!(store.display(t).to_string(), "pms(intruder,ca,s0)");
//! # Ok::<(), equitls_kernel::KernelError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod display;
pub mod error;
pub mod matching;
pub mod op;
pub mod signature;
pub mod sort;
pub mod subst;
pub mod term;
pub mod unify;

pub use error::KernelError;

/// Convenient re-exports of the kernel's most used items.
pub mod prelude {
    pub use crate::error::KernelError;
    pub use crate::matching::{match_term, MatchOutcome};
    pub use crate::op::{OpAttrs, OpDecl, OpId, OpKind};
    pub use crate::signature::Signature;
    pub use crate::sort::{SortId, SortKind};
    pub use crate::subst::Subst;
    pub use crate::term::{Term, TermId, TermStore, VarDecl, VarId};
    pub use crate::unify::{
        apply_to_fixpoint, function_positions, replace_at, unify, UnifyOutcome,
    };
}
