//! Operator declarations.
//!
//! Operators are the function symbols of the algebra. The paper uses three
//! flavours:
//!
//! * ordinary operators declared with `op` — data constructors
//!   (`pms`, `k`, `cert`, the ten message constructors …) and defined
//!   functions (`cpms`, projections, `_\in_`),
//! * observation operators declared with `bop` — `nw`, `ss`, `ur`, `ui`,
//!   `us`,
//! * action operators declared with `bop` — the 12 trustable transitions and
//!   the 15 intruder transitions.
//!
//! [`OpAttrs`] records which flavour an operator is, because the rewriting
//! engine and the prover treat them differently: constructors support the
//! free-constructor equality decision procedure, observers/actions delimit
//! the OTS structure.

use crate::sort::SortId;
use std::fmt;

/// Identifier of an operator inside a [`crate::signature::Signature`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct OpId(pub(crate) u32);

impl OpId {
    /// The dense index of this operator.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Rebuild an `OpId` from a dense index (serialization support).
    pub fn from_index(index: usize) -> Self {
        OpId(index as u32)
    }
}

impl fmt::Display for OpId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "op#{}", self.0)
    }
}

/// The role an operator plays in a specification.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// A free data constructor (e.g. `pms`, `intruder`, `ch`).
    ///
    /// Constructors of the same sort are assumed free: distinct constructors
    /// build distinct values and constructor applications are injective.
    /// This is exactly the paper's "perfect cryptosystem" assumption of
    /// §4.2 — different hashes/ciphertext kinds get different constructors.
    Constructor,
    /// A defined function, given meaning by equations (e.g. `cpms`,
    /// projections such as `client`/`server`/`secret`).
    Defined,
    /// A CafeOBJ observation operator (`bop` returning a visible sort).
    Observer,
    /// A CafeOBJ action operator (`bop` returning the hidden sort).
    Action,
    /// A constant denoting an *arbitrary* value of its sort — the
    /// "arbitrary objects" declared inside a proof passage (`op b10 : ->
    /// Prin .` in the paper's §5.2).
    ///
    /// Unlike [`OpKind::Constructor`] constants, two distinct arbitrary
    /// constants are **not** assumed different: the free-constructor
    /// equality procedure leaves `b10 = intruder` symbolic so that a case
    /// analysis can assume it either way.
    Arbitrary,
}

/// Attributes attached to an operator declaration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct OpAttrs {
    /// The operator's role.
    pub kind: OpKind,
}

impl OpAttrs {
    /// Attributes for a free data constructor.
    pub fn constructor() -> Self {
        OpAttrs {
            kind: OpKind::Constructor,
        }
    }

    /// Attributes for a defined (equation-given) function.
    pub fn defined() -> Self {
        OpAttrs {
            kind: OpKind::Defined,
        }
    }

    /// Attributes for an observation operator.
    pub fn observer() -> Self {
        OpAttrs {
            kind: OpKind::Observer,
        }
    }

    /// Attributes for an action operator.
    pub fn action() -> Self {
        OpAttrs {
            kind: OpKind::Action,
        }
    }

    /// Attributes for an arbitrary (proof-passage) constant.
    pub fn arbitrary() -> Self {
        OpAttrs {
            kind: OpKind::Arbitrary,
        }
    }

    /// `true` when the operator is a free constructor.
    pub fn is_constructor(self) -> bool {
        self.kind == OpKind::Constructor
    }

    /// `true` when the operator is an arbitrary proof-passage constant.
    pub fn is_arbitrary(self) -> bool {
        self.kind == OpKind::Arbitrary
    }
}

/// A declared operator: name, argument sorts, result sort, attributes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpDecl {
    /// Operator name. Names may be overloaded only by arity, not by sorts.
    pub name: String,
    /// Argument sorts, in order. Empty for constants.
    pub args: Vec<SortId>,
    /// Result sort.
    pub result: SortId,
    /// Role attributes.
    pub attrs: OpAttrs,
}

impl OpDecl {
    /// Number of arguments.
    pub fn arity(&self) -> usize {
        self.args.len()
    }

    /// `true` for nullary operators.
    pub fn is_constant(&self) -> bool {
        self.args.is_empty()
    }
}

impl fmt::Display for OpDecl {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let keyword = match self.attrs.kind {
            OpKind::Observer | OpKind::Action => "bop",
            _ => "op",
        };
        write!(f, "{} {} :", keyword, self.name)?;
        for arg in &self.args {
            write!(f, " {}", arg)?;
        }
        write!(f, " -> {}", self.result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_has_zero_arity() {
        let decl = OpDecl {
            name: "intruder".into(),
            args: vec![],
            result: SortId(0),
            attrs: OpAttrs::constructor(),
        };
        assert_eq!(decl.arity(), 0);
        assert!(decl.is_constant());
        assert!(decl.attrs.is_constructor());
    }

    #[test]
    fn display_uses_bop_for_observers_and_actions() {
        let obs = OpDecl {
            name: "nw".into(),
            args: vec![SortId(1)],
            result: SortId(2),
            attrs: OpAttrs::observer(),
        };
        assert!(obs.to_string().starts_with("bop nw :"));
        let act = OpDecl {
            name: "chello".into(),
            args: vec![SortId(1)],
            result: SortId(1),
            attrs: OpAttrs::action(),
        };
        assert!(act.to_string().starts_with("bop chello :"));
        let ctor = OpDecl {
            name: "pms".into(),
            args: vec![SortId(0), SortId(0), SortId(3)],
            result: SortId(4),
            attrs: OpAttrs::constructor(),
        };
        assert!(ctor.to_string().starts_with("op pms :"));
    }
}
