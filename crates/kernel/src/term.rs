//! Hash-consed terms.
//!
//! All terms live in a [`TermStore`], an arena that interns structurally
//! identical terms to the same [`TermId`]. Hash-consing gives the rest of
//! the system three things:
//!
//! 1. **O(1) structural equality** — `TermId` equality *is* term equality,
//!    which the Boolean-ring normalizer and the free-constructor equality
//!    procedure rely on heavily;
//! 2. **compact proofs** — inductive proof goals share large sub-terms
//!    (whole networks, whole messages) instead of copying them;
//! 3. **cheap memoization keys** — the rewriting engine caches normal forms
//!    per `TermId`.
//!
//! Terms are either operator applications (constants are applications with
//! zero arguments) or variables. Variables only occur in rule patterns and
//! invariant templates; the subjects reduced during proofs are
//! "ground-plus-fresh-constants": the arbitrary objects of a proof passage
//! (`op b10 : -> Prin .` in the paper's §5.2) are fresh *constants*, not
//! variables.

use crate::error::KernelError;
use crate::op::{OpId, OpKind};
use crate::signature::Signature;
use crate::sort::SortId;
use std::collections::HashMap;
use std::fmt;

/// Identifier of an interned term inside a [`TermStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TermId(pub(crate) u32);

impl TermId {
    /// The dense index of this term.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Identifier of a declared variable inside a [`TermStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(pub(crate) u32);

impl VarId {
    /// The dense index of this variable.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A declared variable: name and sort.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VarDecl {
    /// Variable name, unique within a store.
    pub name: String,
    /// The variable's sort.
    pub sort: SortId,
}

/// The shape of a term: an application or a variable.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Term {
    /// `op(args…)`; constants have empty `args`.
    App {
        /// Head operator.
        op: OpId,
        /// Argument terms, already interned.
        args: Vec<TermId>,
    },
    /// A variable occurrence (rule patterns only).
    Var(VarId),
}

const FP_FNV_PRIME: u64 = 0x100_0000_01b3;

/// `splitmix64` finalizer: scrambles a lane so nearby inputs diverge.
fn fp_splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// FNV-style string hash with a seed, finalized through [`fp_splitmix`].
fn fp_str_hash(s: &str, seed: u64) -> u64 {
    let mut h = seed ^ 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(FP_FNV_PRIME);
    }
    fp_splitmix(h)
}

/// Fold a child value into a running lane hash.
fn fp_combine(h: u64, child: u64) -> u64 {
    fp_splitmix(h ^ child.wrapping_mul(FP_FNV_PRIME))
}

/// Arena of interned terms plus the signature they are built over.
///
/// See the [crate-level documentation](crate) for an end-to-end example.
#[derive(Debug, Clone)]
pub struct TermStore {
    sig: Signature,
    nodes: Vec<Term>,
    sorts: Vec<SortId>,
    /// Structural fingerprint per node, computed incrementally at intern
    /// time from the children's fingerprints (hash-consing guarantees
    /// children are interned first). See [`TermStore::fingerprint`].
    fps: Vec<u128>,
    intern: HashMap<Term, TermId>,
    vars: Vec<VarDecl>,
    var_names: HashMap<String, VarId>,
    fresh_counter: u64,
    intern_hits: u64,
}

impl TermStore {
    /// Create a store over `sig`.
    pub fn new(sig: Signature) -> Self {
        TermStore {
            sig,
            nodes: Vec::new(),
            sorts: Vec::new(),
            fps: Vec::new(),
            intern: HashMap::new(),
            vars: Vec::new(),
            var_names: HashMap::new(),
            fresh_counter: 0,
            intern_hits: 0,
        }
    }

    /// The underlying signature.
    pub fn signature(&self) -> &Signature {
        &self.sig
    }

    /// Mutable access to the signature.
    ///
    /// Proof passages extend the signature with fresh constants ("arbitrary
    /// objects" in the paper's proof scores), which is why the store owns a
    /// mutable signature.
    pub fn signature_mut(&mut self) -> &mut Signature {
        &mut self.sig
    }

    fn intern_node(&mut self, node: Term, sort: SortId) -> TermId {
        if let Some(&id) = self.intern.get(&node) {
            self.intern_hits += 1;
            return id;
        }
        let fp = self.node_fp(&node);
        let id = TermId(self.nodes.len() as u32);
        self.nodes.push(node.clone());
        self.sorts.push(sort);
        self.fps.push(fp);
        self.intern.insert(node, id);
        id
    }

    /// The fingerprint of a node about to be interned; its children are
    /// already interned, so their lanes are table lookups.
    fn node_fp(&self, node: &Term) -> u128 {
        match node {
            Term::Var(v) => {
                let decl = &self.vars[v.index()];
                let sort = &self.sig.sort(decl.sort).name;
                let lo = fp_combine(fp_str_hash(&decl.name, 0x11), fp_str_hash(sort, 0x13));
                let hi = fp_combine(fp_str_hash(&decl.name, 0x29), fp_str_hash(sort, 0x31));
                (u128::from(hi) << 64) | u128::from(lo)
            }
            Term::App { op, args } => {
                let decl = self.sig.op(*op);
                let result = &self.sig.sort(decl.result).name;
                let mut lo = fp_combine(fp_str_hash(&decl.name, 0x17), fp_str_hash(result, 0x19));
                let mut hi = fp_combine(fp_str_hash(&decl.name, 0x37), fp_str_hash(result, 0x41));
                lo = fp_combine(lo, args.len() as u64);
                hi = fp_combine(hi, !(args.len() as u64));
                for a in args {
                    let child = self.fps[a.index()];
                    lo = fp_combine(lo, child as u64);
                    hi = fp_combine(hi, (child >> 64) as u64);
                }
                (u128::from(hi) << 64) | u128::from(lo)
            }
        }
    }

    /// The 128-bit structural fingerprint of `t`: two independent 64-bit
    /// lanes over the term's tree shape, operator names with arity and
    /// result sort, and variable names with sorts. Identical term
    /// structures fingerprint identically in *any* arena over the same
    /// vocabulary (fresh-constant names are generated deterministically,
    /// so clones of one pristine store agree on them); term ids never
    /// enter the hash. Computed incrementally at intern time, so this is
    /// a table lookup — and clones inherit the table.
    pub fn fingerprint(&self, t: TermId) -> u128 {
        self.fps[t.index()]
    }

    /// Intern the application `op(args…)`.
    ///
    /// # Errors
    ///
    /// [`KernelError::ArityMismatch`] or [`KernelError::SortMismatch`] when
    /// the application is ill-sorted.
    pub fn app(&mut self, op: OpId, args: &[TermId]) -> Result<TermId, KernelError> {
        let decl = self.sig.op(op);
        if decl.arity() != args.len() {
            return Err(KernelError::ArityMismatch {
                op: decl.name.clone(),
                expected: decl.arity(),
                got: args.len(),
            });
        }
        let result = decl.result;
        let expected: Vec<SortId> = decl.args.clone();
        let name = decl.name.clone();
        for (i, (&arg, &want)) in args.iter().zip(expected.iter()).enumerate() {
            let got = self.sort_of(arg);
            if got != want {
                return Err(KernelError::SortMismatch {
                    op: name,
                    position: i,
                    expected: self.sig.sort(want).name.clone(),
                    got: self.sig.sort(got).name.clone(),
                });
            }
        }
        Ok(self.intern_node(
            Term::App {
                op,
                args: args.to_vec(),
            },
            result,
        ))
    }

    /// Intern the constant `op`.
    ///
    /// # Panics
    ///
    /// Panics if `op` is not nullary; use [`TermStore::app`] for the
    /// fallible general case.
    pub fn constant(&mut self, op: OpId) -> TermId {
        assert!(
            self.sig.op(op).is_constant(),
            "TermStore::constant called with non-nullary operator `{}`",
            self.sig.op(op).name
        );
        self.app(op, &[]).expect("nullary application cannot fail")
    }

    /// Declare a variable, or return the existing one with the same name.
    ///
    /// # Errors
    ///
    /// [`KernelError::VariableSortClash`] if the name exists with a
    /// different sort.
    pub fn declare_var(&mut self, name: &str, sort: SortId) -> Result<VarId, KernelError> {
        if let Some(&v) = self.var_names.get(name) {
            let declared = self.vars[v.index()].sort;
            if declared != sort {
                return Err(KernelError::VariableSortClash {
                    var: name.to_string(),
                    declared: self.sig.sort(declared).name.clone(),
                    requested: self.sig.sort(sort).name.clone(),
                });
            }
            return Ok(v);
        }
        let v = VarId(self.vars.len() as u32);
        self.vars.push(VarDecl {
            name: name.to_string(),
            sort,
        });
        self.var_names.insert(name.to_string(), v);
        Ok(v)
    }

    /// Intern a variable occurrence.
    pub fn var(&mut self, var: VarId) -> TermId {
        let sort = self.vars[var.index()].sort;
        self.intern_node(Term::Var(var), sort)
    }

    /// Declare a brand-new constant with a unique generated name and intern
    /// it — the "arbitrary object" of a proof passage.
    ///
    /// The constant gets [`crate::op::OpKind::Arbitrary`], so the equality
    /// decision procedure will not assume it distinct from anything.
    pub fn fresh_constant(&mut self, prefix: &str, sort: SortId) -> TermId {
        loop {
            self.fresh_counter += 1;
            let name = format!("{}#{}", prefix, self.fresh_counter);
            match self
                .sig
                .add_constant(&name, sort, crate::op::OpAttrs::arbitrary())
            {
                Ok(op) => return self.constant(op),
                Err(KernelError::DuplicateOp(_)) => continue,
                Err(e) => unreachable!("fresh constant declaration failed: {e}"),
            }
        }
    }

    /// Declare a *named* arbitrary constant (`op b10 : -> Prin .`).
    ///
    /// # Errors
    ///
    /// [`KernelError::DuplicateOp`] if the name is already declared with no
    /// arguments.
    pub fn arbitrary_constant(&mut self, name: &str, sort: SortId) -> Result<TermId, KernelError> {
        let op = self
            .sig
            .add_constant(name, sort, crate::op::OpAttrs::arbitrary())?;
        Ok(self.constant(op))
    }

    /// The shape of `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t` was issued by a different store.
    pub fn node(&self, t: TermId) -> &Term {
        &self.nodes[t.index()]
    }

    /// The sort of `t`.
    pub fn sort_of(&self, t: TermId) -> SortId {
        self.sorts[t.index()]
    }

    /// The head operator of `t`, or `None` for variables.
    pub fn op_of(&self, t: TermId) -> Option<OpId> {
        match self.node(t) {
            Term::App { op, .. } => Some(*op),
            Term::Var(_) => None,
        }
    }

    /// The arguments of `t` (empty for constants and variables).
    pub fn args(&self, t: TermId) -> &[TermId] {
        match self.node(t) {
            Term::App { args, .. } => args,
            Term::Var(_) => &[],
        }
    }

    /// The declaration of variable `v`.
    pub fn var_decl(&self, v: VarId) -> &VarDecl {
        &self.vars[v.index()]
    }

    /// Look up a variable by name.
    pub fn var_by_name(&self, name: &str) -> Option<VarId> {
        self.var_names.get(name).copied()
    }

    /// Number of interned terms.
    pub fn term_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of hash-cons lookups that returned an existing term — the
    /// sharing the intern table bought. Together with
    /// [`TermStore::term_count`] (the misses) this gives the table's
    /// hit rate; higher layers surface both as gauges.
    pub fn intern_hits(&self) -> u64 {
        self.intern_hits
    }

    /// `true` when `t` contains no variables.
    pub fn is_ground(&self, t: TermId) -> bool {
        match self.node(t) {
            Term::Var(_) => false,
            Term::App { args, .. } => {
                let args = args.clone();
                args.iter().all(|&a| self.is_ground(a))
            }
        }
    }

    /// `true` when the head of `t` is a *strict* free constructor.
    ///
    /// Arbitrary proof-passage constants are excluded: they denote unknown
    /// values, so nothing may be concluded from their head symbol.
    pub fn is_constructor_headed(&self, t: TermId) -> bool {
        match self.op_of(t) {
            Some(op) => self.sig.op(op).attrs.kind == OpKind::Constructor,
            None => false,
        }
    }

    /// `true` when `t` is an arbitrary (proof-passage) constant.
    pub fn is_arbitrary_constant(&self, t: TermId) -> bool {
        match self.op_of(t) {
            Some(op) => {
                let decl = self.sig.op(op);
                decl.is_constant() && decl.attrs.is_arbitrary()
            }
            None => false,
        }
    }

    /// Number of nodes in `t` (counting shared subterms once per occurrence).
    pub fn size(&self, t: TermId) -> usize {
        match self.node(t) {
            Term::Var(_) => 1,
            Term::App { args, .. } => {
                let args = args.clone();
                1 + args.iter().map(|&a| self.size(a)).sum::<usize>()
            }
        }
    }

    /// Depth of `t` (a constant or variable has depth 1).
    pub fn depth(&self, t: TermId) -> usize {
        match self.node(t) {
            Term::Var(_) => 1,
            Term::App { args, .. } => {
                let args = args.clone();
                1 + args.iter().map(|&a| self.depth(a)).max().unwrap_or(0)
            }
        }
    }

    /// All distinct subterms of `t`, including `t` itself, in first-visit
    /// (pre-order) order.
    pub fn subterms(&self, t: TermId) -> Vec<TermId> {
        let mut seen = Vec::new();
        let mut stack = vec![t];
        while let Some(cur) = stack.pop() {
            if seen.contains(&cur) {
                continue;
            }
            seen.push(cur);
            for &a in self.args(cur) {
                stack.push(a);
            }
        }
        seen
    }

    /// All distinct variables occurring in `t`.
    pub fn vars_of(&self, t: TermId) -> Vec<VarId> {
        let mut out = Vec::new();
        for s in self.subterms(t) {
            if let Term::Var(v) = self.node(s) {
                if !out.contains(v) {
                    out.push(*v);
                }
            }
        }
        out
    }

    /// A displayable wrapper for `t`; see [`crate::display`].
    pub fn display(&self, t: TermId) -> crate::display::DisplayTerm<'_> {
        crate::display::DisplayTerm {
            store: self,
            term: t,
        }
    }
}

impl fmt::Display for TermStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "TermStore({} terms, {} vars, {} ops)",
            self.nodes.len(),
            self.vars.len(),
            self.sig.op_count()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::OpAttrs;

    fn pms_world() -> (TermStore, OpId, OpId, OpId, OpId) {
        let mut sig = Signature::new();
        let prin = sig.add_visible_sort("Principal").unwrap();
        let secret = sig.add_visible_sort("Secret").unwrap();
        let pms_sort = sig.add_visible_sort("Pms").unwrap();
        let intruder = sig
            .add_constant("intruder", prin, OpAttrs::constructor())
            .unwrap();
        let ca = sig
            .add_constant("ca", prin, OpAttrs::constructor())
            .unwrap();
        let s0 = sig
            .add_constant("s0", secret, OpAttrs::constructor())
            .unwrap();
        let pms = sig
            .add_op(
                "pms",
                &[prin, prin, secret],
                pms_sort,
                OpAttrs::constructor(),
            )
            .unwrap();
        (TermStore::new(sig), intruder, ca, s0, pms)
    }

    #[test]
    fn hash_consing_interns_equal_terms_once() {
        let (mut store, intruder, ca, s0, pms) = pms_world();
        let a = store.constant(intruder);
        let b = store.constant(ca);
        let s = store.constant(s0);
        let t1 = store.app(pms, &[a, b, s]).unwrap();
        let t2 = store.app(pms, &[a, b, s]).unwrap();
        assert_eq!(t1, t2);
        let t3 = store.app(pms, &[b, a, s]).unwrap();
        assert_ne!(t1, t3);
    }

    #[test]
    fn arity_and_sort_errors_are_reported() {
        let (mut store, intruder, _ca, s0, pms) = pms_world();
        let a = store.constant(intruder);
        let s = store.constant(s0);
        assert!(matches!(
            store.app(pms, &[a, s]),
            Err(KernelError::ArityMismatch { .. })
        ));
        assert!(matches!(
            store.app(pms, &[a, s, s]),
            Err(KernelError::SortMismatch { position: 1, .. })
        ));
    }

    #[test]
    fn size_depth_and_subterms() {
        let (mut store, intruder, ca, s0, pms) = pms_world();
        let a = store.constant(intruder);
        let b = store.constant(ca);
        let s = store.constant(s0);
        let t = store.app(pms, &[a, b, s]).unwrap();
        assert_eq!(store.size(t), 4);
        assert_eq!(store.depth(t), 2);
        let subs = store.subterms(t);
        assert_eq!(subs.len(), 4);
        assert!(subs.contains(&a) && subs.contains(&b) && subs.contains(&s) && subs.contains(&t));
    }

    #[test]
    fn variables_are_per_name_and_sort_checked() {
        let (mut store, ..) = pms_world();
        let prin = store.signature().sort_by_name("Principal").unwrap();
        let secret = store.signature().sort_by_name("Secret").unwrap();
        let v1 = store.declare_var("A", prin).unwrap();
        let v2 = store.declare_var("A", prin).unwrap();
        assert_eq!(v1, v2);
        assert!(matches!(
            store.declare_var("A", secret),
            Err(KernelError::VariableSortClash { .. })
        ));
        let occurrence = store.var(v1);
        assert!(!store.is_ground(occurrence));
        assert_eq!(store.vars_of(occurrence), vec![v1]);
    }

    #[test]
    fn fresh_constants_are_distinct_and_well_sorted() {
        let (mut store, ..) = pms_world();
        let prin = store.signature().sort_by_name("Principal").unwrap();
        let c1 = store.fresh_constant("a", prin);
        let c2 = store.fresh_constant("a", prin);
        assert_ne!(c1, c2);
        assert_eq!(store.sort_of(c1), prin);
        assert!(store.is_ground(c1));
        // Arbitrary constants are deliberately NOT constructor-headed: the
        // equality procedure must leave `a#1 = intruder` symbolic.
        assert!(!store.is_constructor_headed(c1));
        assert!(store.is_arbitrary_constant(c1));
    }

    #[test]
    fn named_arbitrary_constants_reject_duplicates() {
        let (mut store, ..) = pms_world();
        let prin = store.signature().sort_by_name("Principal").unwrap();
        let b10 = store.arbitrary_constant("b10", prin).unwrap();
        assert!(store.is_arbitrary_constant(b10));
        assert!(store.arbitrary_constant("b10", prin).is_err());
    }

    #[test]
    fn overloading_by_arg_sorts_is_allowed() {
        let (mut store, ..) = pms_world();
        let prin = store.signature().sort_by_name("Principal").unwrap();
        let secret = store.signature().sort_by_name("Secret").unwrap();
        let sig = store.signature_mut();
        let f1 = sig
            .add_op("pick", &[prin], prin, OpAttrs::defined())
            .unwrap();
        let f2 = sig
            .add_op("pick", &[secret], prin, OpAttrs::defined())
            .unwrap();
        assert_ne!(f1, f2);
        assert!(sig
            .add_op("pick", &[prin], secret, OpAttrs::defined())
            .is_err());
        assert_eq!(sig.resolve_op("pick", &[secret]), Some(f2));
        assert_eq!(sig.ops_by_name("pick").len(), 2);
    }

    #[test]
    fn constructor_headedness_follows_attrs() {
        let (mut store, intruder, ..) = pms_world();
        let prin = store.signature().sort_by_name("Principal").unwrap();
        let f = store
            .signature_mut()
            .add_op("f", &[prin], prin, OpAttrs::defined())
            .unwrap();
        let a = store.constant(intruder);
        let fa = store.app(f, &[a]).unwrap();
        assert!(store.is_constructor_headed(a));
        assert!(!store.is_constructor_headed(fa));
    }
}
