//! First-order matching.
//!
//! Rewriting applies equations left-to-right: to rewrite a subject `t` with
//! a rule `l → r`, we look for a substitution `σ` with `σ(l) = t`. Because
//! the subjects reduced in proofs are ground (plus fresh constants), plain
//! matching — not unification — suffices, exactly as in the CafeOBJ `red`
//! command.

use crate::subst::Subst;
use crate::term::{Term, TermId, TermStore};

/// The result of a matching attempt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MatchOutcome {
    /// The pattern matches with the contained substitution.
    Matched(Subst),
    /// The pattern does not match.
    Failed,
}

impl MatchOutcome {
    /// Extract the substitution, if any.
    pub fn into_subst(self) -> Option<Subst> {
        match self {
            MatchOutcome::Matched(s) => Some(s),
            MatchOutcome::Failed => None,
        }
    }
}

/// Match `pattern` against `subject`, returning bindings for the pattern's
/// variables.
///
/// Non-linear patterns (a variable occurring twice) are supported: repeated
/// occurrences must bind to the *identical* term, which hash-consing makes a
/// single `TermId` comparison.
pub fn match_term(store: &TermStore, pattern: TermId, subject: TermId) -> MatchOutcome {
    let mut subst = Subst::new();
    if match_into(store, pattern, subject, &mut subst) {
        MatchOutcome::Matched(subst)
    } else {
        MatchOutcome::Failed
    }
}

fn match_into(store: &TermStore, pattern: TermId, subject: TermId, subst: &mut Subst) -> bool {
    match store.node(pattern) {
        Term::Var(v) => {
            // Sort discipline: a variable only matches subjects of its sort.
            if store.var_decl(*v).sort != store.sort_of(subject) {
                return false;
            }
            match subst.get(*v) {
                Some(bound) => bound == subject,
                None => {
                    subst.bind(*v, subject);
                    true
                }
            }
        }
        Term::App { op, args } => match store.node(subject) {
            Term::App {
                op: sop,
                args: sargs,
            } => {
                if op != sop || args.len() != sargs.len() {
                    return false;
                }
                let pairs: Vec<(TermId, TermId)> =
                    args.iter().copied().zip(sargs.iter().copied()).collect();
                pairs
                    .into_iter()
                    .all(|(p, s)| match_into(store, p, s, subst))
            }
            Term::Var(_) => false,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{OpAttrs, OpId};
    use crate::signature::Signature;
    use crate::sort::SortId;

    struct World {
        store: TermStore,
        s: SortId,
        c: OpId,
        d: OpId,
        f: OpId,
        g: OpId,
    }

    fn world() -> World {
        let mut sig = Signature::new();
        let s = sig.add_visible_sort("S").unwrap();
        let c = sig.add_constant("c", s, OpAttrs::constructor()).unwrap();
        let d = sig.add_constant("d", s, OpAttrs::constructor()).unwrap();
        let f = sig.add_op("f", &[s, s], s, OpAttrs::constructor()).unwrap();
        let g = sig.add_op("g", &[s], s, OpAttrs::constructor()).unwrap();
        World {
            store: TermStore::new(sig),
            s,
            c,
            d,
            f,
            g,
        }
    }

    #[test]
    fn variable_matches_anything_of_its_sort() {
        let mut w = world();
        let x = w.store.declare_var("X", w.s).unwrap();
        let xt = w.store.var(x);
        let cv = w.store.constant(w.c);
        let gc = w.store.app(w.g, &[cv]).unwrap();
        match match_term(&w.store, xt, gc) {
            MatchOutcome::Matched(sub) => assert_eq!(sub.get(x), Some(gc)),
            MatchOutcome::Failed => panic!("variable should match"),
        }
    }

    #[test]
    fn nonlinear_pattern_requires_identical_subterms() {
        let mut w = world();
        let x = w.store.declare_var("X", w.s).unwrap();
        let xt = w.store.var(x);
        let pattern = w.store.app(w.f, &[xt, xt]).unwrap();
        let cv = w.store.constant(w.c);
        let dv = w.store.constant(w.d);
        let same = w.store.app(w.f, &[cv, cv]).unwrap();
        let diff = w.store.app(w.f, &[cv, dv]).unwrap();
        assert!(matches!(
            match_term(&w.store, pattern, same),
            MatchOutcome::Matched(_)
        ));
        assert_eq!(match_term(&w.store, pattern, diff), MatchOutcome::Failed);
    }

    #[test]
    fn head_symbol_mismatch_fails() {
        let mut w = world();
        let cv = w.store.constant(w.c);
        let gc = w.store.app(w.g, &[cv]).unwrap();
        let fc = w.store.app(w.f, &[cv, cv]).unwrap();
        assert_eq!(match_term(&w.store, gc, fc), MatchOutcome::Failed);
        assert_eq!(match_term(&w.store, cv, gc), MatchOutcome::Failed);
    }

    #[test]
    fn matching_then_substituting_reproduces_subject() {
        let mut w = world();
        let x = w.store.declare_var("X", w.s).unwrap();
        let y = w.store.declare_var("Y", w.s).unwrap();
        let xt = w.store.var(x);
        let yt = w.store.var(y);
        let pattern = w.store.app(w.f, &[xt, yt]).unwrap();
        let cv = w.store.constant(w.c);
        let dv = w.store.constant(w.d);
        let gd = w.store.app(w.g, &[dv]).unwrap();
        let subject = w.store.app(w.f, &[cv, gd]).unwrap();
        let sub = match_term(&w.store, pattern, subject)
            .into_subst()
            .expect("must match");
        assert_eq!(sub.apply(&mut w.store, pattern), subject);
    }

    #[test]
    fn identical_terms_match_with_empty_subst() {
        let mut w = world();
        let cv = w.store.constant(w.c);
        let gc = w.store.app(w.g, &[cv]).unwrap();
        match match_term(&w.store, gc, gc) {
            MatchOutcome::Matched(sub) => assert!(sub.is_empty()),
            MatchOutcome::Failed => panic!("identical terms must match"),
        }
    }
}
