//! CafeOBJ-flavoured term printing.
//!
//! Operators whose names use CafeOBJ mixfix underscores (`_and_`, `_\in_`,
//! `if_then_else_fi`) are printed in mixfix form when the number of
//! underscores equals the arity; everything else prints as
//! `name(arg1,…,argN)`. Printing exists for diagnostics, proof-score
//! rendering, and examples — terms are never re-parsed from this output.

use crate::term::{Term, TermId, TermStore};
use std::fmt;

/// A [`fmt::Display`] wrapper produced by [`TermStore::display`].
#[derive(Debug)]
pub struct DisplayTerm<'a> {
    pub(crate) store: &'a TermStore,
    pub(crate) term: TermId,
}

impl fmt::Display for DisplayTerm<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write_term(self.store, self.term, f, false)
    }
}

fn is_mixfix(name: &str, arity: usize) -> bool {
    arity > 0 && name.matches('_').count() == arity
}

fn write_term(
    store: &TermStore,
    t: TermId,
    f: &mut fmt::Formatter<'_>,
    parenthesize: bool,
) -> fmt::Result {
    match store.node(t) {
        Term::Var(v) => {
            let decl = store.var_decl(*v);
            write!(
                f,
                "{}:{}",
                decl.name,
                store.signature().sort(decl.sort).name
            )
        }
        Term::App { op, args } => {
            let decl = store.signature().op(*op);
            if args.is_empty() {
                return write!(f, "{}", decl.name);
            }
            if is_mixfix(&decl.name, args.len()) {
                if parenthesize {
                    write!(f, "(")?;
                }
                let segments: Vec<&str> = decl.name.split('_').collect();
                let mut arg_iter = args.iter();
                let mut first = true;
                for (i, seg) in segments.iter().enumerate() {
                    if !seg.is_empty() {
                        if !first {
                            write!(f, " ")?;
                        }
                        write!(f, "{}", seg)?;
                        first = false;
                    }
                    if i < segments.len() - 1 {
                        let arg = *arg_iter.next().expect("arity checked");
                        if !first {
                            write!(f, " ")?;
                        }
                        write_term(store, arg, f, true)?;
                        first = false;
                    }
                }
                if parenthesize {
                    write!(f, ")")?;
                }
                Ok(())
            } else {
                write!(f, "{}(", decl.name)?;
                for (i, &arg) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write_term(store, arg, f, false)?;
                }
                write!(f, ")")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::op::OpAttrs;
    use crate::signature::Signature;
    use crate::term::TermStore;

    #[test]
    fn prefix_and_mixfix_printing() {
        let mut sig = Signature::new();
        let b = sig.add_visible_sort("Bool").unwrap();
        let tt = sig.add_constant("true", b, OpAttrs::constructor()).unwrap();
        let ff = sig
            .add_constant("false", b, OpAttrs::constructor())
            .unwrap();
        let and = sig.add_op("_and_", &[b, b], b, OpAttrs::defined()).unwrap();
        let not = sig.add_op("not_", &[b], b, OpAttrs::defined()).unwrap();
        let ite = sig
            .add_op("if_then_else_fi", &[b, b, b], b, OpAttrs::defined())
            .unwrap();
        let mut store = TermStore::new(sig);
        let t = store.constant(tt);
        let fv = store.constant(ff);
        let a = store.app(and, &[t, fv]).unwrap();
        assert_eq!(store.display(a).to_string(), "true and false");
        let n = store.app(not, &[a]).unwrap();
        assert_eq!(store.display(n).to_string(), "not (true and false)");
        let c = store.app(ite, &[t, fv, t]).unwrap();
        assert_eq!(
            store.display(c).to_string(),
            "if true then false else true fi"
        );
    }

    #[test]
    fn variables_print_with_sort() {
        let mut sig = Signature::new();
        let s = sig.add_visible_sort("Principal").unwrap();
        let mut store = TermStore::new(sig);
        let v = store.declare_var("A", s).unwrap();
        let vt = store.var(v);
        assert_eq!(store.display(vt).to_string(), "A:Principal");
    }

    #[test]
    fn nested_applications_print_with_commas() {
        let mut sig = Signature::new();
        let s = sig.add_visible_sort("S").unwrap();
        let c = sig.add_constant("c", s, OpAttrs::constructor()).unwrap();
        let f = sig.add_op("f", &[s, s], s, OpAttrs::constructor()).unwrap();
        let mut store = TermStore::new(sig);
        let cv = store.constant(c);
        let inner = store.app(f, &[cv, cv]).unwrap();
        let outer = store.app(f, &[inner, cv]).unwrap();
        assert_eq!(store.display(outer).to_string(), "f(f(c,c),c)");
    }
}
