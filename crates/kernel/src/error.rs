//! Error type shared by all kernel operations.

use std::fmt;

/// An error raised while building signatures or terms.
///
/// Every fallible kernel API returns `Result<_, KernelError>`. The variants
/// carry enough context (names, sorts, arities) to diagnose a malformed
/// specification without a debugger.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KernelError {
    /// A sort with this name was already declared.
    DuplicateSort(String),
    /// An operator with this name and arity was already declared.
    DuplicateOp(String),
    /// The named sort is not declared in the signature.
    UnknownSort(String),
    /// The named operator is not declared in the signature.
    UnknownOp(String),
    /// An operator was applied to the wrong number of arguments.
    ArityMismatch {
        /// Operator name.
        op: String,
        /// Declared arity.
        expected: usize,
        /// Number of arguments supplied.
        got: usize,
    },
    /// An argument term has the wrong sort.
    SortMismatch {
        /// Operator name.
        op: String,
        /// Zero-based argument position.
        position: usize,
        /// Name of the expected sort.
        expected: String,
        /// Name of the sort actually supplied.
        got: String,
    },
    /// A variable was used with a sort different from its declaration.
    VariableSortClash {
        /// Variable name.
        var: String,
        /// Previously declared sort name.
        declared: String,
        /// Conflicting sort name.
        requested: String,
    },
}

impl fmt::Display for KernelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KernelError::DuplicateSort(name) => write!(f, "duplicate sort `{name}`"),
            KernelError::DuplicateOp(name) => write!(f, "duplicate operator `{name}`"),
            KernelError::UnknownSort(name) => write!(f, "unknown sort `{name}`"),
            KernelError::UnknownOp(name) => write!(f, "unknown operator `{name}`"),
            KernelError::ArityMismatch { op, expected, got } => {
                write!(f, "operator `{op}` expects {expected} arguments, got {got}")
            }
            KernelError::SortMismatch {
                op,
                position,
                expected,
                got,
            } => write!(
                f,
                "operator `{op}` argument {position} expects sort `{expected}`, got `{got}`"
            ),
            KernelError::VariableSortClash {
                var,
                declared,
                requested,
            } => write!(
                f,
                "variable `{var}` declared with sort `{declared}` but used with sort `{requested}`"
            ),
        }
    }
}

impl std::error::Error for KernelError {}
