//! Property-based tests for the term kernel: hash-consing, matching, and
//! substitution laws over randomly generated terms.

use equitls_kernel::prelude::*;
use proptest::prelude::*;

/// A tiny serializable term AST for generation.
#[derive(Debug, Clone)]
enum T {
    C0,
    C1,
    F(Box<T>),
    G(Box<T>, Box<T>),
}

fn term_strategy() -> impl Strategy<Value = T> {
    let leaf = prop_oneof![Just(T::C0), Just(T::C1)];
    leaf.prop_recursive(6, 64, 2, |inner| {
        prop_oneof![
            inner.clone().prop_map(|t| T::F(Box::new(t))),
            (inner.clone(), inner).prop_map(|(a, b)| T::G(Box::new(a), Box::new(b))),
        ]
    })
}

struct World {
    store: TermStore,
    c0: OpId,
    c1: OpId,
    f: OpId,
    g: OpId,
    sort: SortId,
}

fn world() -> World {
    let mut sig = Signature::new();
    let sort = sig.add_visible_sort("S").unwrap();
    let c0 = sig.add_constant("c0", sort, OpAttrs::constructor()).unwrap();
    let c1 = sig.add_constant("c1", sort, OpAttrs::constructor()).unwrap();
    let f = sig.add_op("f", &[sort], sort, OpAttrs::constructor()).unwrap();
    let g = sig
        .add_op("g", &[sort, sort], sort, OpAttrs::constructor())
        .unwrap();
    World {
        store: TermStore::new(sig),
        c0,
        c1,
        f,
        g,
        sort,
    }
}

fn build(w: &mut World, t: &T) -> TermId {
    match t {
        T::C0 => w.store.constant(w.c0),
        T::C1 => w.store.constant(w.c1),
        T::F(a) => {
            let at = build(w, a);
            w.store.app(w.f, &[at]).unwrap()
        }
        T::G(a, b) => {
            let at = build(w, a);
            let bt = build(w, b);
            w.store.app(w.g, &[at, bt]).unwrap()
        }
    }
}

proptest! {
    /// Building the same tree twice interns to the same id; structurally
    /// different trees get different ids.
    #[test]
    fn hash_consing_is_injective(a in term_strategy(), b in term_strategy()) {
        let mut w = world();
        let ta1 = build(&mut w, &a);
        let ta2 = build(&mut w, &a);
        prop_assert_eq!(ta1, ta2, "same tree interns once");
        let tb = build(&mut w, &b);
        let structurally_equal = format!("{a:?}") == format!("{b:?}");
        prop_assert_eq!(ta1 == tb, structurally_equal);
    }

    /// size/depth behave like the tree metrics.
    #[test]
    fn size_and_depth_are_tree_metrics(a in term_strategy()) {
        fn size(t: &T) -> usize {
            match t {
                T::C0 | T::C1 => 1,
                T::F(x) => 1 + size(x),
                T::G(x, y) => 1 + size(x) + size(y),
            }
        }
        fn depth(t: &T) -> usize {
            match t {
                T::C0 | T::C1 => 1,
                T::F(x) => 1 + depth(x),
                T::G(x, y) => 1 + depth(x).max(depth(y)),
            }
        }
        let mut w = world();
        let ta = build(&mut w, &a);
        prop_assert_eq!(w.store.size(ta), size(&a));
        prop_assert_eq!(w.store.depth(ta), depth(&a));
        // subterm count never exceeds size (sharing only shrinks it)
        prop_assert!(w.store.subterms(ta).len() <= size(&a));
    }

    /// A pattern with a fresh variable always matches, and applying the
    /// returned substitution to the pattern reproduces the subject.
    #[test]
    fn match_then_substitute_roundtrips(subject in term_strategy(), shape in term_strategy()) {
        let mut w = world();
        let subject_t = build(&mut w, &subject);
        // Pattern: g(X, <shape>) matched against g(subject, <shape>).
        let x = w.store.declare_var("X", w.sort).unwrap();
        let xt = w.store.var(x);
        let shape_t = build(&mut w, &shape);
        let pattern = w.store.app(w.g, &[xt, shape_t]).unwrap();
        let full = w.store.app(w.g, &[subject_t, shape_t]).unwrap();
        match match_term(&w.store, pattern, full) {
            MatchOutcome::Matched(sub) => {
                prop_assert_eq!(sub.get(x), Some(subject_t));
                let rebuilt = sub.apply(&mut w.store, pattern);
                prop_assert_eq!(rebuilt, full);
            }
            MatchOutcome::Failed => prop_assert!(false, "pattern must match"),
        }
    }

    /// Ground terms never match a strictly larger pattern.
    #[test]
    fn no_spurious_ground_matches(a in term_strategy()) {
        let mut w = world();
        let ta = build(&mut w, &a);
        let wrapped = w.store.app(w.f, &[ta]).unwrap();
        // f(a) as a pattern cannot match a itself unless a = f(a) (impossible).
        prop_assert_eq!(match_term(&w.store, wrapped, ta), MatchOutcome::Failed);
        prop_assert!(w.store.is_ground(ta));
    }
}
