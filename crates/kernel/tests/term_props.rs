//! Property-style tests for the term kernel: hash-consing, matching, and
//! substitution laws over randomly generated terms.
//!
//! The offline build cannot depend on proptest, so generation is driven
//! by a seeded SplitMix64 stream — deterministic, so failures reproduce.

use equitls_kernel::prelude::*;
use equitls_obs::rng::SplitMix64;

/// A tiny term AST for generation.
#[derive(Debug, Clone)]
enum T {
    C0,
    C1,
    F(Box<T>),
    G(Box<T>, Box<T>),
}

fn gen_term(rng: &mut SplitMix64, depth: usize) -> T {
    if depth == 0 || rng.next_below(4) == 0 {
        if rng.next_bool() {
            T::C0
        } else {
            T::C1
        }
    } else if rng.next_bool() {
        T::F(Box::new(gen_term(rng, depth - 1)))
    } else {
        T::G(
            Box::new(gen_term(rng, depth - 1)),
            Box::new(gen_term(rng, depth - 1)),
        )
    }
}

struct World {
    store: TermStore,
    c0: OpId,
    c1: OpId,
    f: OpId,
    g: OpId,
    sort: SortId,
}

fn world() -> World {
    let mut sig = Signature::new();
    let sort = sig.add_visible_sort("S").unwrap();
    let c0 = sig
        .add_constant("c0", sort, OpAttrs::constructor())
        .unwrap();
    let c1 = sig
        .add_constant("c1", sort, OpAttrs::constructor())
        .unwrap();
    let f = sig
        .add_op("f", &[sort], sort, OpAttrs::constructor())
        .unwrap();
    let g = sig
        .add_op("g", &[sort, sort], sort, OpAttrs::constructor())
        .unwrap();
    World {
        store: TermStore::new(sig),
        c0,
        c1,
        f,
        g,
        sort,
    }
}

fn build(w: &mut World, t: &T) -> TermId {
    match t {
        T::C0 => w.store.constant(w.c0),
        T::C1 => w.store.constant(w.c1),
        T::F(a) => {
            let at = build(w, a);
            w.store.app(w.f, &[at]).unwrap()
        }
        T::G(a, b) => {
            let at = build(w, a);
            let bt = build(w, b);
            w.store.app(w.g, &[at, bt]).unwrap()
        }
    }
}

/// Building the same tree twice interns to the same id; structurally
/// different trees get different ids.
#[test]
fn hash_consing_is_injective() {
    let mut rng = SplitMix64::new(0xC0FFEE);
    for case in 0..200 {
        let a = gen_term(&mut rng, 6);
        let b = gen_term(&mut rng, 6);
        let mut w = world();
        let ta1 = build(&mut w, &a);
        let ta2 = build(&mut w, &a);
        assert_eq!(ta1, ta2, "case {case}: same tree interns once");
        let tb = build(&mut w, &b);
        let structurally_equal = format!("{a:?}") == format!("{b:?}");
        assert_eq!(ta1 == tb, structurally_equal, "case {case}");
    }
}

/// size/depth behave like the tree metrics.
#[test]
fn size_and_depth_are_tree_metrics() {
    fn size(t: &T) -> usize {
        match t {
            T::C0 | T::C1 => 1,
            T::F(x) => 1 + size(x),
            T::G(x, y) => 1 + size(x) + size(y),
        }
    }
    fn depth(t: &T) -> usize {
        match t {
            T::C0 | T::C1 => 1,
            T::F(x) => 1 + depth(x),
            T::G(x, y) => 1 + depth(x).max(depth(y)),
        }
    }
    let mut rng = SplitMix64::new(0xBEEF);
    for case in 0..200 {
        let a = gen_term(&mut rng, 6);
        let mut w = world();
        let ta = build(&mut w, &a);
        assert_eq!(w.store.size(ta), size(&a), "case {case}");
        assert_eq!(w.store.depth(ta), depth(&a), "case {case}");
        // subterm count never exceeds size (sharing only shrinks it)
        assert!(w.store.subterms(ta).len() <= size(&a), "case {case}");
    }
}

/// A pattern with a fresh variable always matches, and applying the
/// returned substitution to the pattern reproduces the subject.
#[test]
fn match_then_substitute_roundtrips() {
    let mut rng = SplitMix64::new(0xDADA);
    for case in 0..200 {
        let subject = gen_term(&mut rng, 5);
        let shape = gen_term(&mut rng, 5);
        let mut w = world();
        let subject_t = build(&mut w, &subject);
        // Pattern: g(X, <shape>) matched against g(subject, <shape>).
        let x = w.store.declare_var("X", w.sort).unwrap();
        let xt = w.store.var(x);
        let shape_t = build(&mut w, &shape);
        let pattern = w.store.app(w.g, &[xt, shape_t]).unwrap();
        let full = w.store.app(w.g, &[subject_t, shape_t]).unwrap();
        match match_term(&w.store, pattern, full) {
            MatchOutcome::Matched(sub) => {
                assert_eq!(sub.get(x), Some(subject_t), "case {case}");
                let rebuilt = sub.apply(&mut w.store, pattern);
                assert_eq!(rebuilt, full, "case {case}");
            }
            MatchOutcome::Failed => panic!("case {case}: pattern must match"),
        }
    }
}

/// Ground terms never match a strictly larger pattern.
#[test]
fn no_spurious_ground_matches() {
    let mut rng = SplitMix64::new(0xFEED);
    for case in 0..200 {
        let a = gen_term(&mut rng, 6);
        let mut w = world();
        let ta = build(&mut w, &a);
        let wrapped = w.store.app(w.f, &[ta]).unwrap();
        // f(a) as a pattern cannot match a itself unless a = f(a) (impossible).
        assert_eq!(
            match_term(&w.store, wrapped, ta),
            MatchOutcome::Failed,
            "case {case}"
        );
        assert!(w.store.is_ground(ta), "case {case}");
    }
}
