//! Snapshot files: a validated header wrapping an opaque payload.
//!
//! Writing is atomic: the bytes go to a temp file in the same directory,
//! the temp file is fsync'd, then renamed over the target. A crash at any
//! point leaves either the old snapshot or the new one — never a torn mix.
//!
//! Reading validates, in order: magic bytes, format version, snapshot
//! kind, payload length against the actual file size, and the payload's
//! CRC32 — and only then hands the payload to the caller's decoder.

use crate::crc32::crc32;
use crate::error::PersistError;
use equitls_obs::sink::Obs;
use std::fs;
use std::io::Write as _;
use std::path::Path;
use std::time::{SystemTime, UNIX_EPOCH};

/// First four bytes of every snapshot file.
pub const MAGIC: [u8; 4] = *b"EQTP";

/// Format version this build writes and reads.
pub const VERSION: u32 = 1;

/// Header length in bytes: magic + version + kind + created + len + crc.
const HEADER_LEN: usize = 4 + 4 + 1 + 8 + 8 + 4;

/// What a snapshot holds. The tag is stored in the header so a file can
/// never be decoded as the wrong kind of state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnapshotKind {
    /// The mc explorer's BFS progress (states, frontier, tallies).
    Explorer,
    /// The prover's per-obligation outcome ledger.
    ProverLedger,
    /// The lint analyzer's incremental pass cache: per-(target, pass)
    /// input fingerprints and stored diagnostics.
    LintCache,
    /// The serve daemon's job journal: accepted jobs in admission order
    /// with their completed responses, replayed on restart so a killed
    /// daemon resumes its queue.
    JobJournal,
    /// One shard of the explorer's spilled visited set: the shard's
    /// encoded states in slot order, length-prefixed, written when the
    /// shard is evicted to disk under memory pressure (Murφ-style).
    VisitedShard,
}

impl SnapshotKind {
    /// The on-disk tag byte.
    pub fn tag(self) -> u8 {
        match self {
            SnapshotKind::Explorer => 1,
            SnapshotKind::ProverLedger => 2,
            SnapshotKind::LintCache => 3,
            SnapshotKind::JobJournal => 4,
            SnapshotKind::VisitedShard => 5,
        }
    }

    fn from_tag(tag: u8) -> Option<Self> {
        match tag {
            1 => Some(SnapshotKind::Explorer),
            2 => Some(SnapshotKind::ProverLedger),
            3 => Some(SnapshotKind::LintCache),
            4 => Some(SnapshotKind::JobJournal),
            5 => Some(SnapshotKind::VisitedShard),
            _ => None,
        }
    }
}

/// Header fields of a snapshot, available without decoding the payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnapshotMeta {
    /// Format version found in the file.
    pub version: u32,
    /// What the snapshot holds.
    pub kind: SnapshotKind,
    /// Unix timestamp (seconds) when the snapshot was written.
    pub created_unix_secs: u64,
    /// Payload size in bytes.
    pub payload_len: u64,
}

impl SnapshotMeta {
    /// Seconds elapsed since the snapshot was written (0 if the clock has
    /// gone backwards).
    pub fn age_secs(&self) -> u64 {
        now_unix_secs().saturating_sub(self.created_unix_secs)
    }
}

fn now_unix_secs() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}

fn encode_header(kind: SnapshotKind, payload: &[u8]) -> [u8; HEADER_LEN] {
    let mut header = [0u8; HEADER_LEN];
    header[0..4].copy_from_slice(&MAGIC);
    header[4..8].copy_from_slice(&VERSION.to_le_bytes());
    header[8] = kind.tag();
    header[9..17].copy_from_slice(&now_unix_secs().to_le_bytes());
    header[17..25].copy_from_slice(&(payload.len() as u64).to_le_bytes());
    header[25..29].copy_from_slice(&crc32(payload).to_le_bytes());
    header
}

/// Parse and validate everything that can be checked from the header
/// alone. `expected_kind` is `None` when any kind is acceptable (peek).
fn parse_header(
    bytes: &[u8],
    expected_kind: Option<SnapshotKind>,
) -> Result<(SnapshotMeta, u32), PersistError> {
    if bytes.len() < 8 || bytes[0..4] != MAGIC {
        // Distinguish "not a snapshot" from "snapshot cut off mid-header":
        // a file shorter than the magic cannot prove it ever was one.
        if bytes.len() >= 4 && bytes[0..4] == MAGIC {
            return Err(PersistError::Truncated {
                expected: HEADER_LEN as u64,
                found: bytes.len() as u64,
            });
        }
        return Err(PersistError::BadMagic);
    }
    let version = u32::from_le_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]);
    if version != VERSION {
        return Err(PersistError::UnsupportedVersion {
            found: version,
            expected: VERSION,
        });
    }
    if bytes.len() < HEADER_LEN {
        return Err(PersistError::Truncated {
            expected: HEADER_LEN as u64,
            found: bytes.len() as u64,
        });
    }
    let kind_tag = bytes[8];
    let kind = SnapshotKind::from_tag(kind_tag).ok_or(PersistError::Malformed(format!(
        "unknown snapshot kind tag {kind_tag}"
    )))?;
    if let Some(expected) = expected_kind {
        if kind != expected {
            return Err(PersistError::WrongKind {
                found: kind_tag,
                expected: expected.tag(),
            });
        }
    }
    let created = u64::from_le_bytes([
        bytes[9], bytes[10], bytes[11], bytes[12], bytes[13], bytes[14], bytes[15], bytes[16],
    ]);
    let payload_len = u64::from_le_bytes([
        bytes[17], bytes[18], bytes[19], bytes[20], bytes[21], bytes[22], bytes[23], bytes[24],
    ]);
    let crc = u32::from_le_bytes([bytes[25], bytes[26], bytes[27], bytes[28]]);
    Ok((
        SnapshotMeta {
            version,
            kind,
            created_unix_secs: created,
            payload_len,
        },
        crc,
    ))
}

/// Atomically write `payload` as a snapshot of `kind` at `path`.
///
/// Returns the total bytes written. Emits a `persist.write` span and the
/// `persist.snapshot_written` / `persist.bytes` counters.
pub fn write_snapshot(
    path: &Path,
    kind: SnapshotKind,
    payload: &[u8],
    obs: &Obs,
) -> Result<u64, PersistError> {
    let _span = obs.span("persist.write");
    let header = encode_header(kind, payload);
    let total = (header.len() + payload.len()) as u64;

    let dir = path.parent().filter(|p| !p.as_os_str().is_empty());
    let file_name = path.file_name().ok_or_else(|| {
        PersistError::Io(format!(
            "checkpoint path {} has no file name",
            path.display()
        ))
    })?;
    let mut tmp = std::ffi::OsString::from(".");
    tmp.push(file_name);
    tmp.push(format!(".tmp.{}", std::process::id()));
    let tmp_path = match dir {
        Some(d) => d.join(&tmp),
        None => std::path::PathBuf::from(&tmp),
    };

    let result = (|| {
        let mut f =
            fs::File::create(&tmp_path).map_err(|e| PersistError::io("create", &tmp_path, &e))?;
        f.write_all(&header)
            .map_err(|e| PersistError::io("write", &tmp_path, &e))?;
        f.write_all(payload)
            .map_err(|e| PersistError::io("write", &tmp_path, &e))?;
        f.sync_all()
            .map_err(|e| PersistError::io("fsync", &tmp_path, &e))?;
        drop(f);
        fs::rename(&tmp_path, path).map_err(|e| PersistError::io("rename", path, &e))?;
        // Best-effort directory fsync so the rename itself is durable;
        // not all platforms/filesystems support it, so failures are ignored.
        if let Some(d) = dir {
            if let Ok(dirf) = fs::File::open(d) {
                let _ = dirf.sync_all();
            }
        }
        Ok(total)
    })();

    match &result {
        Ok(total) => {
            obs.counter("persist.snapshot_written", 1);
            obs.counter("persist.bytes", *total);
        }
        Err(_) => {
            let _ = fs::remove_file(&tmp_path);
        }
    }
    result
}

/// Read the header of the snapshot at `path` without validating or
/// decoding the payload. Cheap; used for the "resumed from checkpoint
/// (age …)" report line.
pub fn peek_meta(path: &Path) -> Result<SnapshotMeta, PersistError> {
    let bytes = fs::read(path).map_err(|e| PersistError::io("read", path, &e))?;
    let (meta, _) = parse_header(&bytes, None)?;
    Ok(meta)
}

/// Read and fully validate the snapshot at `path`, returning its header
/// and payload. Emits a `persist.load` span.
pub fn read_snapshot(
    path: &Path,
    kind: SnapshotKind,
    obs: &Obs,
) -> Result<(SnapshotMeta, Vec<u8>), PersistError> {
    let _span = obs.span("persist.load");
    let bytes = fs::read(path).map_err(|e| PersistError::io("read", path, &e))?;
    let (meta, crc) = parse_header(&bytes, Some(kind))?;
    let body = &bytes[HEADER_LEN..];
    if (body.len() as u64) < meta.payload_len {
        return Err(PersistError::Truncated {
            expected: meta.payload_len,
            found: body.len() as u64,
        });
    }
    let payload = &body[..meta.payload_len as usize];
    if crc32(payload) != crc {
        return Err(PersistError::ChecksumMismatch);
    }
    Ok((meta, payload.to_vec()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmp_file(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("equitls_persist_{}_{name}", std::process::id()))
    }

    #[test]
    fn write_then_read_roundtrips() {
        let path = tmp_file("roundtrip.snap");
        let payload = b"frontier: 12 states".to_vec();
        let obs = Obs::noop();
        let written = write_snapshot(&path, SnapshotKind::Explorer, &payload, &obs).unwrap();
        assert_eq!(written, (HEADER_LEN + payload.len()) as u64);
        let (meta, back) = read_snapshot(&path, SnapshotKind::Explorer, &obs).unwrap();
        assert_eq!(back, payload);
        assert_eq!(meta.version, VERSION);
        assert_eq!(meta.kind, SnapshotKind::Explorer);
        assert_eq!(meta.payload_len, payload.len() as u64);
        let peeked = peek_meta(&path).unwrap();
        assert_eq!(peeked, meta);
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn flipped_payload_byte_is_a_checksum_mismatch() {
        let path = tmp_file("bitflip.snap");
        let obs = Obs::noop();
        write_snapshot(&path, SnapshotKind::ProverLedger, b"0123456789", &obs).unwrap();
        let mut bytes = fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40;
        fs::write(&path, &bytes).unwrap();
        assert_eq!(
            read_snapshot(&path, SnapshotKind::ProverLedger, &obs),
            Err(PersistError::ChecksumMismatch)
        );
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn truncated_file_is_a_truncation_error() {
        let path = tmp_file("trunc.snap");
        let obs = Obs::noop();
        write_snapshot(&path, SnapshotKind::Explorer, &[9u8; 64], &obs).unwrap();
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..HEADER_LEN + 10]).unwrap();
        assert!(matches!(
            read_snapshot(&path, SnapshotKind::Explorer, &obs),
            Err(PersistError::Truncated { .. })
        ));
        // Cut inside the header as well.
        fs::write(&path, &bytes[..12]).unwrap();
        assert!(matches!(
            read_snapshot(&path, SnapshotKind::Explorer, &obs),
            Err(PersistError::Truncated { .. })
        ));
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn wrong_version_and_wrong_kind_are_typed() {
        let path = tmp_file("version.snap");
        let obs = Obs::noop();
        write_snapshot(&path, SnapshotKind::Explorer, b"x", &obs).unwrap();
        let mut bytes = fs::read(&path).unwrap();
        bytes[4..8].copy_from_slice(&99u32.to_le_bytes());
        fs::write(&path, &bytes).unwrap();
        assert_eq!(
            read_snapshot(&path, SnapshotKind::Explorer, &obs),
            Err(PersistError::UnsupportedVersion {
                found: 99,
                expected: VERSION
            })
        );
        write_snapshot(&path, SnapshotKind::Explorer, b"x", &obs).unwrap();
        assert_eq!(
            read_snapshot(&path, SnapshotKind::ProverLedger, &obs),
            Err(PersistError::WrongKind {
                found: SnapshotKind::Explorer.tag(),
                expected: SnapshotKind::ProverLedger.tag(),
            })
        );
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn garbage_file_is_bad_magic() {
        let path = tmp_file("garbage.snap");
        fs::write(&path, b"definitely not a snapshot").unwrap();
        assert_eq!(
            read_snapshot(&path, SnapshotKind::Explorer, &Obs::noop()),
            Err(PersistError::BadMagic)
        );
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn missing_file_is_an_io_error() {
        let path = tmp_file("missing.snap");
        let _ = fs::remove_file(&path);
        assert!(matches!(
            read_snapshot(&path, SnapshotKind::Explorer, &Obs::noop()),
            Err(PersistError::Io(_))
        ));
    }
}
