//! A tiny little-endian binary codec: fixed-width integers, booleans, and
//! length-prefixed strings/byte blocks. Every read is bounds-checked and
//! returns a typed [`PersistError`] on short input — the reader never
//! panics, no matter what bytes it is fed.

use crate::error::PersistError;

/// Append-only byte buffer with typed write helpers.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Start an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Consume the writer and return the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Append one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `usize` as a `u64` (snapshots are portable across widths).
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Append a boolean as one byte (0 or 1).
    pub fn bool(&mut self, v: bool) {
        self.u8(v as u8);
    }

    /// Append a length-prefixed byte block.
    pub fn bytes(&mut self, v: &[u8]) {
        self.usize(v.len());
        self.buf.extend_from_slice(v);
    }

    /// Append a length-prefixed UTF-8 string.
    pub fn str(&mut self, v: &str) {
        self.bytes(v.as_bytes());
    }
}

/// Bounds-checked cursor over an encoded byte slice.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Start reading at the beginning of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True when every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], PersistError> {
        if self.remaining() < n {
            return Err(PersistError::Malformed(format!(
                "need {n} more bytes at offset {}, only {} left",
                self.pos,
                self.remaining()
            )));
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Read one byte.
    pub fn u8(&mut self) -> Result<u8, PersistError> {
        Ok(self.take(1)?[0])
    }

    /// Read a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, PersistError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Read a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, PersistError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Read a `u64` and narrow it to `usize`, rejecting values that do not
    /// fit (or that exceed the remaining input, which catches absurd
    /// length prefixes early).
    pub fn usize(&mut self) -> Result<usize, PersistError> {
        let v = self.u64()?;
        usize::try_from(v)
            .map_err(|_| PersistError::Malformed(format!("length {v} exceeds address space")))
    }

    /// Read a boolean byte, rejecting anything other than 0 or 1.
    pub fn bool(&mut self) -> Result<bool, PersistError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(PersistError::Malformed(format!("invalid boolean byte {b}"))),
        }
    }

    /// Read a length-prefixed byte block.
    pub fn bytes(&mut self) -> Result<&'a [u8], PersistError> {
        let n = self.usize()?;
        self.take(n)
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, PersistError> {
        let b = self.bytes()?;
        String::from_utf8(b.to_vec())
            .map_err(|_| PersistError::Malformed("invalid UTF-8 in string".into()))
    }

    /// Read a length prefix for a collection, guarding against prefixes
    /// that could not possibly fit in the remaining input (each element
    /// occupies at least `min_elem_bytes`).
    pub fn seq_len(&mut self, min_elem_bytes: usize) -> Result<usize, PersistError> {
        let n = self.usize()?;
        let floor = n.saturating_mul(min_elem_bytes.max(1));
        if floor > self.remaining() {
            return Err(PersistError::Malformed(format!(
                "sequence of {n} elements cannot fit in {} remaining bytes",
                self.remaining()
            )));
        }
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_types() {
        let mut w = Writer::new();
        w.u8(7);
        w.u32(0xDEAD_BEEF);
        w.u64(u64::MAX);
        w.usize(42);
        w.bool(true);
        w.bool(false);
        w.str("obligation:kexch");
        w.bytes(&[1, 2, 3]);
        let buf = w.into_bytes();

        let mut r = Reader::new(&buf);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX);
        assert_eq!(r.usize().unwrap(), 42);
        assert!(r.bool().unwrap());
        assert!(!r.bool().unwrap());
        assert_eq!(r.str().unwrap(), "obligation:kexch");
        assert_eq!(r.bytes().unwrap(), &[1, 2, 3]);
        assert!(r.is_empty());
    }

    #[test]
    fn short_reads_are_typed_errors() {
        let mut r = Reader::new(&[1, 2]);
        assert!(matches!(r.u64(), Err(PersistError::Malformed(_))));
        // A length prefix pointing past the end of the buffer.
        let mut w = Writer::new();
        w.usize(1_000_000);
        let buf = w.into_bytes();
        let mut r = Reader::new(&buf);
        assert!(matches!(r.bytes(), Err(PersistError::Malformed(_))));
    }

    #[test]
    fn absurd_sequence_lengths_are_rejected_up_front() {
        let mut w = Writer::new();
        w.usize(u32::MAX as usize);
        let buf = w.into_bytes();
        let mut r = Reader::new(&buf);
        assert!(matches!(r.seq_len(8), Err(PersistError::Malformed(_))));
    }

    #[test]
    fn invalid_boolean_is_rejected() {
        let mut r = Reader::new(&[2]);
        assert!(matches!(r.bool(), Err(PersistError::Malformed(_))));
    }
}
