//! Cooperative SIGINT/SIGTERM handling for drain-then-exit shutdown.
//!
//! Long-running campaigns (the `equitls-serve` daemon, `tls-prove`, the
//! model-check example) want the classic Unix contract: a termination
//! signal stops *accepting* work immediately, in-flight work drains to a
//! final checkpoint, and the process exits with code 130. The only thing
//! a signal handler can safely do is flip a flag — everything here is a
//! pair of atomics plus an async-signal-safe handler that stores into
//! them; the drain logic itself runs on ordinary threads that poll
//! [`term_requested`] (or observe a tripped `CancelToken` wired by the
//! caller).
//!
//! This module is the workspace's single point of `unsafe`: registering
//! a process signal handler requires calling libc's `signal(2)` through
//! an `extern "C"` declaration (std links libc on every Unix target, so
//! no external crate is needed). The handler body touches nothing but
//! `AtomicBool`/`AtomicUsize` stores, which are async-signal-safe. On
//! non-Unix targets the module compiles to inert stubs: installation
//! reports `false` and the flag never fires.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// `SIGINT`'s portable Unix signal number (terminal interrupt, Ctrl-C).
pub const SIGINT: i32 = 2;
/// `SIGTERM`'s portable Unix signal number (polite kill).
pub const SIGTERM: i32 = 15;

/// Conventional exit code for "terminated by SIGINT" (128 + 2). The
/// drain paths use it for SIGTERM too: the observable contract is "a
/// termination signal produced a final checkpoint and this code", and
/// one code keeps the CLI tests and scripts signal-agnostic.
pub const TERM_EXIT_CODE: i32 = 130;

/// Set by the handler; read by [`term_requested`].
static TERM_REQUESTED: AtomicBool = AtomicBool::new(false);
/// The number of the last termination signal received (0 = none).
static LAST_SIGNAL: AtomicUsize = AtomicUsize::new(0);
/// Guards double installation (reinstalling is harmless but noisy).
static INSTALLED: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
mod imp {
    use super::{LAST_SIGNAL, SIGINT, SIGTERM, TERM_REQUESTED};
    use std::sync::atomic::Ordering;

    /// The handler: async-signal-safe by construction — two relaxed
    /// atomic stores, no allocation, no locks, no I/O.
    extern "C" fn on_term_signal(signum: i32) {
        LAST_SIGNAL.store(signum as usize, Ordering::Relaxed);
        TERM_REQUESTED.store(true, Ordering::Release);
    }

    // The workspace's only unsafe: declaring and calling libc
    // `signal(2)`. The handler address travels as a plain machine word
    // (`usize`), matching libc's `sighandler_t` on every Unix ABI Rust
    // supports.
    #[allow(unsafe_code)]
    mod ffi {
        extern "C" {
            pub fn signal(signum: i32, handler: usize) -> usize;
        }
    }

    #[allow(unsafe_code)]
    pub fn install() -> bool {
        let handler = on_term_signal as extern "C" fn(i32) as usize;
        // SAFETY: `signal(2)` with a valid signal number and a function
        // pointer of the correct `extern "C" fn(c_int)` shape is always
        // sound to call; the registered handler performs only
        // async-signal-safe atomic stores.
        unsafe {
            ffi::signal(SIGINT, handler);
            ffi::signal(SIGTERM, handler);
        }
        true
    }

    /// Re-raise `signum` at the current process (used by tests to
    /// exercise the handler deterministically without a second process).
    #[allow(unsafe_code)]
    pub fn raise(signum: i32) {
        extern "C" {
            fn raise(signum: i32) -> i32;
        }
        // SAFETY: libc `raise(3)` is safe to call with any signal
        // number; our handler (installed first by every caller) only
        // flips atomics.
        unsafe {
            raise(signum);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    pub fn install() -> bool {
        false
    }

    pub fn raise(_signum: i32) {}
}

/// Install the shared SIGINT/SIGTERM flag handler. Idempotent: the first
/// call registers, later calls are no-ops. Returns `false` on targets
/// without Unix signals (the flag then simply never fires — callers need
/// no platform branches).
pub fn install_term_flag() -> bool {
    if INSTALLED.swap(true, Ordering::SeqCst) {
        return cfg!(unix);
    }
    imp::install()
}

/// Whether a termination signal has arrived since
/// [`install_term_flag`]. Sticky: once set it stays set for the life of
/// the process (a drain is not cancellable by a second signal — the
/// second signal's default disposition was already replaced, keeping the
/// final checkpoint write safe from re-entry).
pub fn term_requested() -> bool {
    TERM_REQUESTED.load(Ordering::Acquire)
}

/// The name of the termination signal received, if any.
pub fn term_signal_name() -> Option<&'static str> {
    match LAST_SIGNAL.load(Ordering::Relaxed) as i32 {
        s if s == SIGINT => Some("SIGINT"),
        s if s == SIGTERM => Some("SIGTERM"),
        0 => None,
        _ => Some("signal"),
    }
}

/// Deliver `signum` to the current process (test helper; no-op on
/// non-Unix targets). Callers must have installed the flag handler
/// first, or the process's default disposition applies.
pub fn raise_for_test(signum: i32) {
    imp::raise(signum);
}

#[cfg(all(test, unix))]
mod tests {
    use super::*;

    // One test exercises the whole lifecycle: ordering within a single
    // process matters (the flag is sticky), so splitting these into
    // separate #[test]s would make them racy under the parallel harness.
    #[test]
    fn install_flag_and_raise_sets_sticky_flag() {
        assert!(!term_requested());
        assert_eq!(term_signal_name(), None);
        assert!(install_term_flag());
        assert!(install_term_flag(), "reinstall is an idempotent no-op");
        assert!(!term_requested(), "installing must not set the flag");
        raise_for_test(SIGINT);
        assert!(term_requested());
        assert_eq!(term_signal_name(), Some("SIGINT"));
        raise_for_test(SIGTERM);
        assert!(term_requested(), "the flag is sticky");
        assert_eq!(term_signal_name(), Some("SIGTERM"));
    }
}
