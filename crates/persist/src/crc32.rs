//! IEEE CRC32 (the polynomial used by gzip, PNG, and zlib), hand-rolled
//! because the workspace is dependency-free. Table-driven, one table built
//! lazily at first use.

use std::sync::OnceLock;

const POLY: u32 = 0xEDB8_8320;

fn table() -> &'static [u32; 256] {
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, slot) in t.iter_mut().enumerate() {
            let mut crc = i as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ POLY
                } else {
                    crc >> 1
                };
            }
            *slot = crc;
        }
        t
    })
}

/// CRC32 of `data` (IEEE reflected, init `0xFFFF_FFFF`, final xor).
pub fn crc32(data: &[u8]) -> u32 {
    let t = table();
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc = (crc >> 8) ^ t[((crc ^ b as u32) & 0xFF) as usize];
    }
    crc ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The canonical IEEE check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn sensitive_to_single_bit_flips() {
        let mut data = b"the prover's obligation ledger".to_vec();
        let clean = crc32(&data);
        data[7] ^= 0x01;
        assert_ne!(crc32(&data), clean);
    }
}
