//! Typed errors for snapshot I/O and decoding.
//!
//! Every way a snapshot can be unusable has its own variant, so callers
//! (and users reading a CLI message) can tell a missing file from a
//! truncated one from a bit-flip. The type is `Clone + PartialEq + Eq`
//! so it can ride inside `CoreError` and be asserted on in tests; I/O
//! errors are therefore carried as rendered strings rather than as
//! `std::io::Error` values.

use std::fmt;

/// Why a snapshot could not be written, read, or decoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PersistError {
    /// An operating-system I/O failure (open, read, write, fsync, rename),
    /// rendered as `"<operation> <path>: <os error>"`.
    Io(String),
    /// The file does not start with the snapshot magic bytes — it is not a
    /// snapshot at all.
    BadMagic,
    /// The snapshot was written by an incompatible format version.
    UnsupportedVersion {
        /// Version number found in the file header.
        found: u32,
        /// Version number this build understands.
        expected: u32,
    },
    /// The snapshot holds a different kind of state than the caller asked
    /// for (e.g. a prover ledger offered to the explorer).
    WrongKind {
        /// Kind tag found in the file header.
        found: u8,
        /// Kind tag the caller expected.
        expected: u8,
    },
    /// The file is shorter than its header claims — an interrupted write
    /// or an external truncation.
    Truncated {
        /// Bytes the header promised.
        expected: u64,
        /// Bytes actually present.
        found: u64,
    },
    /// The payload's CRC32 does not match the header — the file was
    /// corrupted after it was written.
    ChecksumMismatch,
    /// The payload passed the checksum but does not decode to a valid
    /// snapshot of the expected shape (internal inconsistency).
    Malformed(String),
    /// A resume was requested but no checkpoint path was configured.
    MissingPath,
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io(msg) => write!(f, "snapshot i/o error: {msg}"),
            PersistError::BadMagic => {
                write!(f, "not a snapshot file (missing magic bytes)")
            }
            PersistError::UnsupportedVersion { found, expected } => write!(
                f,
                "unsupported snapshot version {found} (this build reads version {expected})"
            ),
            PersistError::WrongKind { found, expected } => {
                write!(f, "snapshot holds kind {found}, expected kind {expected}")
            }
            PersistError::Truncated { expected, found } => write!(
                f,
                "snapshot truncated: header promises {expected} payload bytes, file has {found}"
            ),
            PersistError::ChecksumMismatch => {
                write!(f, "snapshot checksum mismatch (file corrupted)")
            }
            PersistError::Malformed(msg) => write!(f, "malformed snapshot payload: {msg}"),
            PersistError::MissingPath => {
                write!(f, "resume requested but no checkpoint path configured")
            }
        }
    }
}

impl std::error::Error for PersistError {}

impl PersistError {
    /// Wrap an OS error with the operation and path that produced it.
    pub fn io(op: &str, path: &std::path::Path, err: &std::io::Error) -> Self {
        PersistError::Io(format!("{op} {}: {err}", path.display()))
    }
}
