//! # equitls-persist
//!
//! Crash-safe persistence for long-running EquiTLS jobs: the bounded model
//! checker's BFS progress and the prover's obligation ledger are written as
//! **snapshots** — small binary files that are versioned, length-prefixed,
//! CRC32-checksummed, and replaced atomically (temp file + fsync + rename).
//!
//! The design constraints mirror what a production checkpointer needs:
//!
//! * **No partial states on disk.** A crash during a write leaves either
//!   the previous complete snapshot or (at worst) an orphaned temp file —
//!   never a half-written snapshot under the real name.
//! * **Corruption is a typed error, not garbage.** Every load validates the
//!   magic bytes, the format version, the snapshot kind, the payload
//!   length, and an IEEE CRC32 of the payload before a single payload byte
//!   is decoded. A flipped bit or a truncated file yields a
//!   [`PersistError`], never a panic or a silently wrong resume.
//! * **Zero dependencies.** Like the rest of the workspace, the codec is
//!   hand-rolled: little-endian fixed-width integers and length-prefixed
//!   byte strings, the CRC32 table computed at first use.
//!
//! The on-disk layout is:
//!
//! ```text
//! magic "EQTP" | version u32 | kind u8 | created_unix_secs u64
//!   | payload_len u64 | crc32(payload) u32 | payload bytes
//! ```
//!
//! Writers and readers emit obs counters (`persist.snapshot_written`,
//! `persist.bytes`) and spans (`persist.write`, `persist.load`) so
//! checkpoint traffic shows up in `--metrics` next to prover and explorer
//! activity.
//!
//! The crate also hosts [`signal`]: the shared SIGINT/SIGTERM
//! flag-handler used by every drain-to-checkpoint exit path (daemon,
//! `tls-prove`, model-check). It lives here because graceful shutdown is
//! a crash-safety concern, and because this layer sits below every
//! binary that needs it.

// `deny` rather than the workspace's usual `forbid`: the [`signal`]
// module registers SIGINT/SIGTERM flag handlers through libc's
// `signal(2)`, the workspace's single, documented `unsafe` site (scoped
// `#[allow(unsafe_code)]` there; everything else in the crate still
// refuses unsafe).
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod crc32;
pub mod error;
pub mod signal;
pub mod snapshot;

pub use error::PersistError;
pub use snapshot::{peek_meta, read_snapshot, write_snapshot, SnapshotKind, SnapshotMeta};

/// Convenient re-exports of the persistence layer's most used items.
pub mod prelude {
    pub use crate::codec::{Reader, Writer};
    pub use crate::error::PersistError;
    pub use crate::snapshot::{
        peek_meta, read_snapshot, write_snapshot, SnapshotKind, SnapshotMeta,
    };
}
