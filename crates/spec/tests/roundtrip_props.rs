//! Property-based parser/renderer round-trip: any module AST the renderer
//! can print must re-parse to the identical AST.

use equitls_spec::ast::{BinOp, EqAst, ModuleAst, OpAst, TermAst};
use equitls_spec::parser::{parse_module, parse_term_ast};
use equitls_spec::render::{render_module, render_term};
use proptest::prelude::*;

fn ident_strategy() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9]{0,5}"
}

fn sort_strategy() -> impl Strategy<Value = String> {
    "[A-Z][a-z]{0,4}"
}

fn binop_strategy() -> impl Strategy<Value = BinOp> {
    prop_oneof![
        Just(BinOp::And),
        Just(BinOp::Or),
        Just(BinOp::Xor),
        Just(BinOp::Implies),
        Just(BinOp::Iff),
        Just(BinOp::Eq),
        Just(BinOp::In),
        Just(BinOp::BagCons),
    ]
}

fn term_strategy() -> impl Strategy<Value = TermAst> {
    let leaf = ident_strategy().prop_map(TermAst::Ident);
    leaf.prop_recursive(4, 32, 3, |inner| {
        prop_oneof![
            (ident_strategy(), proptest::collection::vec(inner.clone(), 1..3))
                .prop_map(|(f, args)| TermAst::App(f, args)),
            inner.clone().prop_map(|t| TermAst::Not(Box::new(t))),
            (inner.clone(), inner.clone(), binop_strategy())
                .prop_map(|(a, b, op)| TermAst::Bin(op, Box::new(a), Box::new(b))),
        ]
    })
}

fn op_strategy() -> impl Strategy<Value = OpAst> {
    (
        ident_strategy(),
        proptest::collection::vec(sort_strategy(), 0..3),
        sort_strategy(),
        any::<bool>(),
        any::<bool>(),
    )
        .prop_map(|(name, args, result, behavioural, constructor)| OpAst {
            behavioural,
            name,
            args,
            result,
            // {constr} marks plain constructors; bops are never
            // constructors in the rendered grammar.
            constructor: constructor && !behavioural,
        })
}

fn eq_strategy() -> impl Strategy<Value = EqAst> {
    (
        proptest::option::of("[a-z][a-z0-9-]{0,6}"),
        term_strategy(),
        term_strategy(),
        proptest::option::of(term_strategy()),
    )
        .prop_map(|(label, lhs, rhs, cond)| {
            // Equation left-hand sides parse at comparison level without a
            // top-level `=`/`\in`/bare-binop: wrap anything else.
            let lhs = match lhs {
                TermAst::Bin(op, a, b) => {
                    TermAst::App("w".into(), vec![TermAst::Bin(op, a, b)])
                }
                TermAst::Not(t) => TermAst::App("w".into(), vec![TermAst::Not(t)]),
                other => other,
            };
            EqAst {
                label,
                lhs,
                rhs,
                cond,
            }
        })
}

fn module_strategy() -> impl Strategy<Value = ModuleAst> {
    (
        "[A-Z]{2,6}",
        proptest::collection::vec("[A-Z]{2,5}", 0..2),
        proptest::collection::btree_set(sort_strategy(), 0..3),
        proptest::collection::btree_set(sort_strategy(), 0..2),
        proptest::collection::vec(op_strategy(), 0..4),
        proptest::collection::vec(
            (
                proptest::collection::btree_set(ident_strategy(), 1..3),
                sort_strategy(),
            ),
            0..2,
        ),
        proptest::collection::vec(eq_strategy(), 0..3),
    )
        .prop_map(|(name, imports, visible, hidden, ops, vars, eqs)| ModuleAst {
            name,
            imports,
            visible_sorts: visible.into_iter().collect(),
            hidden_sorts: hidden.into_iter().collect(),
            ops,
            vars: vars
                .into_iter()
                .map(|(names, sort)| (names.into_iter().collect(), sort))
                .collect(),
            eqs,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn terms_round_trip(ast in term_strategy()) {
        let rendered = render_term(&ast);
        let reparsed = parse_term_ast(&rendered)
            .unwrap_or_else(|e| panic!("`{rendered}` does not reparse: {e}"));
        prop_assert_eq!(ast, reparsed);
    }

    #[test]
    fn modules_round_trip(ast in module_strategy()) {
        let rendered = render_module(&ast);
        let reparsed = parse_module(&rendered)
            .unwrap_or_else(|e| panic!("module does not reparse: {e}\n{rendered}"));
        prop_assert_eq!(ast, reparsed);
    }
}
