//! Randomized parser/renderer round-trip: any module AST the renderer
//! can print must re-parse to the identical AST.
//!
//! Generation is SplitMix64-seeded (the offline build cannot depend on
//! proptest), so every run covers the same reproducible case set.

use equitls_obs::rng::SplitMix64;
use equitls_spec::ast::{BinOp, EqAst, ModuleAst, OpAst, TermAst};
use equitls_spec::parser::{parse_module, parse_term_ast};
use equitls_spec::render::{render_module, render_term};
use std::collections::BTreeSet;

const CASES: usize = 128;

fn gen_ident(rng: &mut SplitMix64) -> String {
    // [a-z][a-z0-9]{0,5}
    let mut s = String::new();
    s.push((b'a' + rng.next_below(26) as u8) as char);
    for _ in 0..rng.next_below(6) {
        let c = rng.next_below(36) as u8;
        s.push(if c < 26 {
            (b'a' + c) as char
        } else {
            (b'0' + c - 26) as char
        });
    }
    s
}

fn gen_sort(rng: &mut SplitMix64) -> String {
    // [A-Z][a-z]{0,4}
    let mut s = String::new();
    s.push((b'A' + rng.next_below(26) as u8) as char);
    for _ in 0..rng.next_below(5) {
        s.push((b'a' + rng.next_below(26) as u8) as char);
    }
    s
}

fn gen_upper(rng: &mut SplitMix64, min: u64, max: u64) -> String {
    // [A-Z]{min,max}
    let len = min + rng.next_below(max - min + 1);
    (0..len)
        .map(|_| (b'A' + rng.next_below(26) as u8) as char)
        .collect()
}

fn gen_label(rng: &mut SplitMix64) -> String {
    // [a-z][a-z0-9-]{0,6}
    let mut s = String::new();
    s.push((b'a' + rng.next_below(26) as u8) as char);
    for _ in 0..rng.next_below(7) {
        let c = rng.next_below(37) as u8;
        s.push(match c {
            0..=25 => (b'a' + c) as char,
            26..=35 => (b'0' + c - 26) as char,
            _ => '-',
        });
    }
    s
}

fn gen_binop(rng: &mut SplitMix64) -> BinOp {
    match rng.next_below(8) {
        0 => BinOp::And,
        1 => BinOp::Or,
        2 => BinOp::Xor,
        3 => BinOp::Implies,
        4 => BinOp::Iff,
        5 => BinOp::Eq,
        6 => BinOp::In,
        _ => BinOp::BagCons,
    }
}

fn gen_term(rng: &mut SplitMix64, depth: usize) -> TermAst {
    if depth == 0 || rng.next_below(3) == 0 {
        return TermAst::Ident(gen_ident(rng));
    }
    match rng.next_below(3) {
        0 => {
            let f = gen_ident(rng);
            let n = 1 + rng.next_index(2);
            let args = (0..n).map(|_| gen_term(rng, depth - 1)).collect();
            TermAst::App(f, args)
        }
        1 => TermAst::Not(Box::new(gen_term(rng, depth - 1))),
        _ => TermAst::Bin(
            gen_binop(rng),
            Box::new(gen_term(rng, depth - 1)),
            Box::new(gen_term(rng, depth - 1)),
        ),
    }
}

fn gen_op(rng: &mut SplitMix64) -> OpAst {
    let behavioural = rng.next_bool();
    let constructor = rng.next_bool();
    OpAst {
        behavioural,
        name: gen_ident(rng),
        args: (0..rng.next_below(3)).map(|_| gen_sort(rng)).collect(),
        result: gen_sort(rng),
        // {constr} marks plain constructors; bops are never constructors
        // in the rendered grammar.
        constructor: constructor && !behavioural,
        root: rng.next_bool(),
    }
}

fn gen_eq(rng: &mut SplitMix64) -> EqAst {
    let label = rng.next_bool().then(|| gen_label(rng));
    let lhs = gen_term(rng, 4);
    let rhs = gen_term(rng, 4);
    let cond = rng.next_bool().then(|| gen_term(rng, 3));
    // Equation left-hand sides parse at comparison level without a
    // top-level `=`/`\in`/bare-binop: wrap anything else.
    let lhs = match lhs {
        TermAst::Bin(op, a, b) => TermAst::App("w".into(), vec![TermAst::Bin(op, a, b)]),
        TermAst::Not(t) => TermAst::App("w".into(), vec![TermAst::Not(t)]),
        other => other,
    };
    EqAst {
        label,
        lhs,
        rhs,
        cond,
        span: None,
    }
}

fn gen_module(rng: &mut SplitMix64) -> ModuleAst {
    let name = gen_upper(rng, 2, 6);
    let imports = (0..rng.next_below(2))
        .map(|_| gen_upper(rng, 2, 5))
        .collect();
    let visible: BTreeSet<String> = (0..rng.next_below(3)).map(|_| gen_sort(rng)).collect();
    let hidden: BTreeSet<String> = (0..rng.next_below(2)).map(|_| gen_sort(rng)).collect();
    let ops = (0..rng.next_below(4)).map(|_| gen_op(rng)).collect();
    let vars = (0..rng.next_below(2))
        .map(|_| {
            let names: BTreeSet<String> =
                (0..1 + rng.next_below(2)).map(|_| gen_ident(rng)).collect();
            (names.into_iter().collect(), gen_sort(rng))
        })
        .collect();
    let eqs = (0..rng.next_below(3)).map(|_| gen_eq(rng)).collect();
    ModuleAst {
        name,
        imports,
        visible_sorts: visible.into_iter().collect(),
        hidden_sorts: hidden.into_iter().collect(),
        ops,
        vars,
        eqs,
    }
}

#[test]
fn terms_round_trip() {
    let mut rng = SplitMix64::new(0x5EC1);
    for case in 0..CASES {
        let ast = gen_term(&mut rng, 4);
        let rendered = render_term(&ast);
        let reparsed = parse_term_ast(&rendered)
            .unwrap_or_else(|e| panic!("case {case}: `{rendered}` does not reparse: {e}"));
        assert_eq!(ast, reparsed, "case {case}: `{rendered}`");
    }
}

#[test]
fn modules_round_trip() {
    let mut rng = SplitMix64::new(0x5EC2);
    for case in 0..CASES {
        let ast = gen_module(&mut rng);
        let rendered = render_module(&ast);
        let mut reparsed = parse_module(&rendered)
            .unwrap_or_else(|e| panic!("case {case}: module does not reparse: {e}\n{rendered}"));
        // Spans are positional metadata, not syntax: strip before comparing
        // against the span-free generated AST.
        for eq in &mut reparsed.eqs {
            assert!(eq.span.is_some(), "case {case}: parsed equation lacks span");
            eq.span = None;
        }
        assert_eq!(ast, reparsed, "case {case}:\n{rendered}");
    }
}
