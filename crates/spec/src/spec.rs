//! The [`Spec`] container: a term store, the `BOOL` built-in, equations,
//! and module bookkeeping.
//!
//! A `Spec` plays the role of a loaded CafeOBJ session: modules declare
//! sorts, operators, variables and equations; the accumulated equations
//! form the rewrite system handed to [`Normalizer`]s; proof passages
//! (`open … close`, see [`crate::passage`]) run on top.

use crate::ast::SourceSpan;
use crate::error::SpecError;
use equitls_kernel::prelude::*;
use equitls_rewrite::prelude::*;
use std::collections::HashMap;

/// Metadata about one declared module (for listing and rendering).
#[derive(Debug, Clone, Default)]
pub struct ModuleInfo {
    /// Module name, e.g. `"NETWORK"`.
    pub name: String,
    /// Imported module names (`pr(...)`).
    pub imports: Vec<String>,
    /// Names of sorts declared here.
    pub sorts: Vec<String>,
    /// Operators declared here.
    pub ops: Vec<OpId>,
    /// Names of variables declared here (`var X : S`), in declaration
    /// order. Lint's variable-discipline pass reports declared-but-unused
    /// variables from this list.
    pub vars: Vec<String>,
    /// Labels of equations declared here.
    pub equations: Vec<String>,
}

/// An equation that failed rule validation and was set aside instead of
/// installed.
///
/// The DSL elaborator quarantines equations whose [`RuleDefect`] makes
/// them unusable as rewrite rules (unbound right-hand-side variables,
/// sort-incoherent sides, …) so the rest of the module still loads and
/// static analysis can report every defect with its source position. The
/// typed builder ([`Spec::eq`]/[`Spec::ceq`]) keeps failing eagerly.
#[derive(Debug, Clone)]
pub struct QuarantinedEquation {
    /// The equation's label.
    pub label: String,
    /// The module the equation was declared in.
    pub module: String,
    /// Why the equation cannot be a rewrite rule.
    pub defect: RuleDefect,
    /// Source position of the declaration, when parsed from DSL text.
    pub span: Option<SourceSpan>,
    /// Rendering of the equation (`lhs = rhs [if cond]`) for reports.
    pub rendered: String,
}

/// A specification under construction: signature + store + rules + modules.
///
/// # Example
///
/// ```
/// use equitls_spec::prelude::*;
///
/// let mut spec = Spec::new()?;
/// spec.begin_module("PAIR");
/// spec.visible_sort("Elt")?;
/// spec.constructor("a", &[], "Elt")?;
/// spec.constructor("b", &[], "Elt")?;
/// spec.defined_op("swap", &["Elt"], "Elt")?;
/// let a = spec.parse_term("a")?;
/// let b = spec.parse_term("b")?;
/// let swap_a = spec.parse_term("swap(a)")?;
/// let swap_b = spec.parse_term("swap(b)")?;
/// spec.eq("swap-a", swap_a, b)?;
/// spec.eq("swap-b", swap_b, a)?;
/// let mut norm = spec.normalizer();
/// let (store, goal) = (spec.store_mut(), swap_a);
/// assert_eq!(norm.normalize(store, goal)?, b);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct Spec {
    store: TermStore,
    alg: BoolAlg,
    rules: RuleSet,
    modules: Vec<ModuleInfo>,
    equation_spans: HashMap<String, SourceSpan>,
    quarantined: Vec<QuarantinedEquation>,
    roots: Vec<OpId>,
}

impl Spec {
    /// A fresh specification with `BOOL` installed.
    ///
    /// # Errors
    ///
    /// Propagates kernel errors (cannot occur on a fresh signature).
    pub fn new() -> Result<Self, SpecError> {
        let mut sig = Signature::new();
        let alg = BoolAlg::install(&mut sig)?;
        let store = TermStore::new(sig);
        let bool_module = ModuleInfo {
            name: "BOOL".to_string(),
            imports: Vec::new(),
            sorts: vec!["Bool".to_string()],
            ops: Vec::new(),
            vars: Vec::new(),
            equations: Vec::new(),
        };
        Ok(Spec {
            store,
            alg,
            rules: RuleSet::new(),
            modules: vec![bool_module],
            equation_spans: HashMap::new(),
            quarantined: Vec::new(),
            roots: Vec::new(),
        })
    }

    /// The term store.
    pub fn store(&self) -> &TermStore {
        &self.store
    }

    /// Mutable access to the term store.
    pub fn store_mut(&mut self) -> &mut TermStore {
        &mut self.store
    }

    /// The Boolean vocabulary.
    pub fn alg(&self) -> &BoolAlg {
        &self.alg
    }

    /// Mutable access to the Boolean vocabulary (per-sort `_=_` creation).
    pub fn alg_mut(&mut self) -> &mut BoolAlg {
        &mut self.alg
    }

    /// The accumulated rewrite rules.
    pub fn rules(&self) -> &RuleSet {
        &self.rules
    }

    /// The declared modules, `BOOL` first.
    pub fn modules(&self) -> &[ModuleInfo] {
        &self.modules
    }

    /// Start a new module; subsequent declarations are recorded under it.
    pub fn begin_module(&mut self, name: &str) -> &mut ModuleInfo {
        self.modules.push(ModuleInfo {
            name: name.to_string(),
            ..ModuleInfo::default()
        });
        self.modules.last_mut().expect("just pushed")
    }

    fn current_module(&mut self) -> &mut ModuleInfo {
        if self.modules.len() == 1 {
            // Implicit scratch module when the user never began one.
            self.begin_module("SCRATCH");
        }
        self.modules.last_mut().expect("non-empty")
    }

    /// Record an import on the current module (metadata only — all
    /// declarations share one global signature, as the paper's flat
    /// specification does).
    pub fn import(&mut self, name: &str) {
        let name = name.to_string();
        let m = self.current_module();
        if !m.imports.contains(&name) {
            m.imports.push(name);
        }
    }

    /// Declare a visible sort in the current module.
    ///
    /// The equality operator `_=_ : S S -> Bool` is declared eagerly so
    /// that every normalizer cloned from this specification recognizes
    /// equalities at the new sort.
    ///
    /// # Errors
    ///
    /// [`SpecError::Kernel`] on duplicates.
    pub fn visible_sort(&mut self, name: &str) -> Result<SortId, SpecError> {
        let id = self.store.signature_mut().add_visible_sort(name)?;
        self.alg.ensure_eq(self.store.signature_mut(), id)?;
        self.current_module().sorts.push(name.to_string());
        Ok(id)
    }

    /// Declare a hidden sort in the current module.
    ///
    /// # Errors
    ///
    /// [`SpecError::Kernel`] on duplicates.
    pub fn hidden_sort(&mut self, name: &str) -> Result<SortId, SpecError> {
        let id = self.store.signature_mut().add_hidden_sort(name)?;
        self.current_module().sorts.push(name.to_string());
        Ok(id)
    }

    /// Look up a sort by name.
    ///
    /// # Errors
    ///
    /// [`SpecError::UnknownSort`] when absent.
    pub fn sort_id(&self, name: &str) -> Result<SortId, SpecError> {
        self.store
            .signature()
            .sort_by_name(name)
            .ok_or_else(|| SpecError::UnknownSort(name.to_string()))
    }

    fn sort_ids(&self, names: &[&str]) -> Result<Vec<SortId>, SpecError> {
        names.iter().map(|n| self.sort_id(n)).collect()
    }

    /// Declare an operator with explicit attributes.
    ///
    /// # Errors
    ///
    /// Unknown sorts or duplicate declarations.
    pub fn op(
        &mut self,
        name: &str,
        args: &[&str],
        result: &str,
        attrs: OpAttrs,
    ) -> Result<OpId, SpecError> {
        let arg_ids = self.sort_ids(args)?;
        let result_id = self.sort_id(result)?;
        let id = self
            .store
            .signature_mut()
            .add_op(name, &arg_ids, result_id, attrs)?;
        self.current_module().ops.push(id);
        Ok(id)
    }

    /// Declare a free constructor.
    ///
    /// # Errors
    ///
    /// Unknown sorts or duplicate declarations.
    pub fn constructor(
        &mut self,
        name: &str,
        args: &[&str],
        result: &str,
    ) -> Result<OpId, SpecError> {
        self.op(name, args, result, OpAttrs::constructor())
    }

    /// Declare a defined (equation-given) operator.
    ///
    /// # Errors
    ///
    /// Unknown sorts or duplicate declarations.
    pub fn defined_op(
        &mut self,
        name: &str,
        args: &[&str],
        result: &str,
    ) -> Result<OpId, SpecError> {
        self.op(name, args, result, OpAttrs::defined())
    }

    /// Declare an observation operator (`bop` returning a visible sort).
    ///
    /// # Errors
    ///
    /// Unknown sorts or duplicate declarations.
    pub fn observer(&mut self, name: &str, args: &[&str], result: &str) -> Result<OpId, SpecError> {
        self.op(name, args, result, OpAttrs::observer())
    }

    /// Declare an action operator (`bop` returning the hidden sort).
    ///
    /// # Errors
    ///
    /// Unknown sorts or duplicate declarations.
    pub fn action(&mut self, name: &str, args: &[&str], result: &str) -> Result<OpId, SpecError> {
        self.op(name, args, result, OpAttrs::action())
    }

    /// Declare a variable usable in subsequent equations.
    ///
    /// # Errors
    ///
    /// Unknown sort or sort clash with an existing variable of that name.
    pub fn var(&mut self, name: &str, sort: &str) -> Result<TermId, SpecError> {
        let sort_id = self.sort_id(sort)?;
        let v = self.store.declare_var(name, sort_id)?;
        let name = name.to_string();
        let m = self.current_module();
        if !m.vars.contains(&name) {
            m.vars.push(name);
        }
        Ok(self.store.var(v))
    }

    /// Intern a constant term by operator name.
    ///
    /// # Errors
    ///
    /// [`SpecError::UnknownOp`] when no nullary operator has this name.
    pub fn const_term(&mut self, name: &str) -> Result<TermId, SpecError> {
        let op = self
            .store
            .signature()
            .ops_by_name(name)
            .iter()
            .copied()
            .find(|&id| self.store.signature().op(id).is_constant())
            .ok_or_else(|| SpecError::UnknownOp {
                name: name.to_string(),
                args: Some(String::new()),
            })?;
        Ok(self.store.constant(op))
    }

    /// Build an application, resolving overloads by the argument sorts.
    ///
    /// # Errors
    ///
    /// [`SpecError::UnknownOp`] when resolution fails.
    pub fn app(&mut self, name: &str, args: &[TermId]) -> Result<TermId, SpecError> {
        let arg_sorts: Vec<SortId> = args.iter().map(|&a| self.store.sort_of(a)).collect();
        let op = match self.store.signature().resolve_op(name, &arg_sorts) {
            Some(op) => op,
            None => {
                // Fall back to a unique same-arity candidate for better
                // error messages on near misses.
                let cands: Vec<OpId> = self
                    .store
                    .signature()
                    .ops_by_name(name)
                    .iter()
                    .copied()
                    .filter(|&id| self.store.signature().op(id).arity() == args.len())
                    .collect();
                if cands.len() == 1 {
                    cands[0]
                } else {
                    let rendered = arg_sorts
                        .iter()
                        .map(|&s| self.store.signature().sort(s).name.clone())
                        .collect::<Vec<_>>()
                        .join(", ");
                    return Err(SpecError::UnknownOp {
                        name: name.to_string(),
                        args: Some(rendered),
                    });
                }
            }
        };
        Ok(self.store.app(op, args)?)
    }

    /// Build the equality term `a = b`.
    ///
    /// # Errors
    ///
    /// Kernel errors when the sides' sorts differ.
    pub fn eq_term(&mut self, a: TermId, b: TermId) -> Result<TermId, SpecError> {
        Ok(self.alg.eq(&mut self.store, a, b)?)
    }

    /// Add an unconditional equation `lhs = rhs` as a rewrite rule.
    ///
    /// # Errors
    ///
    /// [`SpecError::Rewrite`] for malformed rules.
    pub fn eq(&mut self, label: &str, lhs: TermId, rhs: TermId) -> Result<(), SpecError> {
        let bool_sort = self.alg.sort();
        self.rules
            .add(&self.store, label, lhs, rhs, None, Some(bool_sort))?;
        self.current_module().equations.push(label.to_string());
        Ok(())
    }

    /// Add a conditional equation `lhs = rhs if cond`.
    ///
    /// # Errors
    ///
    /// [`SpecError::Rewrite`] for malformed rules.
    pub fn ceq(
        &mut self,
        label: &str,
        lhs: TermId,
        rhs: TermId,
        cond: TermId,
    ) -> Result<(), SpecError> {
        let bool_sort = self.alg.sort();
        self.rules
            .add(&self.store, label, lhs, rhs, Some(cond), Some(bool_sort))?;
        self.current_module().equations.push(label.to_string());
        Ok(())
    }

    /// Mark an operator as an analysis **root**: a symbol external
    /// consumers (invariants, observers, the `{root}` DSL attribute) call
    /// into. Lint's dependency pass computes reachability from the roots;
    /// rules on operators no root can reach are dead code.
    pub fn mark_root(&mut self, op: OpId) {
        if !self.roots.contains(&op) {
            self.roots.push(op);
        }
    }

    /// The explicitly marked analysis roots, in marking order.
    pub fn root_ops(&self) -> &[OpId] {
        &self.roots
    }

    /// Set aside an equation that failed rule validation.
    ///
    /// Used by the DSL elaborator so one defective equation does not abort
    /// the whole module load; lint's variable-discipline pass turns each
    /// quarantined equation into a deny-level diagnostic.
    pub fn quarantine_equation(&mut self, mut q: QuarantinedEquation) {
        if q.span.is_none() {
            q.span = self.equation_span(&q.label);
        }
        self.quarantined.push(q);
    }

    /// Equations set aside by [`Spec::quarantine_equation`], in load order.
    pub fn quarantined(&self) -> &[QuarantinedEquation] {
        &self.quarantined
    }

    /// Record where equation `label` was declared in DSL source text.
    ///
    /// Called by the elaborator for parsed modules; equations built through
    /// the typed builder have no span.
    pub fn record_equation_span(&mut self, label: &str, span: SourceSpan) {
        self.equation_spans.insert(label.to_string(), span);
    }

    /// The source position of equation `label`, when it came from parsed
    /// DSL text. Lint diagnostics use this to point at the declaration.
    pub fn equation_span(&self, label: &str) -> Option<SourceSpan> {
        self.equation_spans.get(label).copied()
    }

    /// A fresh normalizer over this specification's rules.
    pub fn normalizer(&self) -> Normalizer {
        Normalizer::new(self.alg.clone(), self.rules.clone())
    }

    /// Reduce a term to normal form with a throwaway normalizer — the
    /// CafeOBJ `red` command at the top level.
    ///
    /// # Errors
    ///
    /// Rewriting errors (fuel).
    pub fn red(&mut self, t: TermId) -> Result<TermId, SpecError> {
        let mut norm = Normalizer::new(self.alg.clone(), self.rules.clone());
        let result = norm.normalize(&mut self.store, t)?;
        Ok(result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_spec_has_bool_installed() {
        let spec = Spec::new().unwrap();
        assert_eq!(spec.modules()[0].name, "BOOL");
        assert!(spec.store().signature().sort_by_name("Bool").is_some());
    }

    #[test]
    fn builder_declares_and_rewrites() {
        let mut spec = Spec::new().unwrap();
        spec.begin_module("M");
        spec.visible_sort("S").unwrap();
        spec.constructor("c", &[], "S").unwrap();
        spec.constructor("d", &[], "S").unwrap();
        spec.defined_op("f", &["S"], "S").unwrap();
        let c = spec.const_term("c").unwrap();
        let d = spec.const_term("d").unwrap();
        let fc = spec.app("f", &[c]).unwrap();
        spec.eq("f-c", fc, d).unwrap();
        assert_eq!(spec.red(fc).unwrap(), d);
        assert_eq!(spec.modules().last().unwrap().equations, vec!["f-c"]);
    }

    #[test]
    fn conditional_equations_respect_conditions() {
        let mut spec = Spec::new().unwrap();
        spec.begin_module("M");
        spec.visible_sort("S").unwrap();
        spec.constructor("c", &[], "S").unwrap();
        spec.constructor("d", &[], "S").unwrap();
        spec.defined_op("g", &["S", "S"], "S").unwrap();
        let x = spec.var("X", "S").unwrap();
        let y = spec.var("Y", "S").unwrap();
        let gxy = spec.app("g", &[x, y]).unwrap();
        let cond = spec.eq_term(x, y).unwrap();
        let c = spec.const_term("c").unwrap();
        spec.ceq("g-diag", gxy, c, cond).unwrap();
        let d = spec.const_term("d").unwrap();
        let gcc = spec.app("g", &[c, c]).unwrap();
        let gcd = spec.app("g", &[c, d]).unwrap();
        assert_eq!(spec.red(gcc).unwrap(), c);
        assert_eq!(spec.red(gcd).unwrap(), gcd);
    }

    #[test]
    fn unknown_names_error_cleanly() {
        let mut spec = Spec::new().unwrap();
        assert!(matches!(
            spec.sort_id("Nope"),
            Err(SpecError::UnknownSort(_))
        ));
        assert!(matches!(
            spec.const_term("nope"),
            Err(SpecError::UnknownOp { .. })
        ));
        spec.begin_module("M");
        spec.visible_sort("S").unwrap();
        let e = spec.op("f", &["S", "Nope"], "S", OpAttrs::defined());
        assert!(matches!(e, Err(SpecError::UnknownSort(_))));
    }

    #[test]
    fn overload_resolution_uses_argument_sorts() {
        let mut spec = Spec::new().unwrap();
        spec.begin_module("M");
        spec.visible_sort("A").unwrap();
        spec.visible_sort("B").unwrap();
        spec.constructor("a0", &[], "A").unwrap();
        spec.constructor("b0", &[], "B").unwrap();
        spec.constructor("wrapA", &["A"], "A").unwrap();
        spec.defined_op("size", &["A"], "A").unwrap();
        spec.defined_op("size", &["B"], "B").unwrap();
        let a0 = spec.const_term("a0").unwrap();
        let b0 = spec.const_term("b0").unwrap();
        let sa = spec.app("size", &[a0]).unwrap();
        let sb = spec.app("size", &[b0]).unwrap();
        assert_eq!(spec.store().sort_of(sa), spec.sort_id("A").unwrap());
        assert_eq!(spec.store().sort_of(sb), spec.sort_id("B").unwrap());
    }

    #[test]
    fn import_records_metadata() {
        let mut spec = Spec::new().unwrap();
        spec.begin_module("N");
        spec.import("BOOL");
        spec.import("BOOL");
        assert_eq!(spec.modules().last().unwrap().imports, vec!["BOOL"]);
    }
}
