//! # equitls-spec
//!
//! CafeOBJ-style specification layer for the EquiTLS reproduction of
//! *Equational Approach to Formal Analysis of TLS* (Ogata & Futatsugi,
//! ICDCS 2005).
//!
//! The paper writes its protocol model and proofs in CafeOBJ modules. This
//! crate provides the corresponding machinery:
//!
//! * [`spec::Spec`] — a loaded specification: term store, `BOOL` built-in,
//!   accumulated equations, module metadata, plus a typed builder API;
//! * [`passage::ProofPassage`] — the paper's `open … close` proof passages
//!   with arbitrary objects, assumption equations, and `red`;
//! * [`lexer`] / [`parser`] / [`ast`] — a CafeOBJ-flavoured surface DSL so
//!   specifications can also be written as text (used by tests, examples,
//!   and the quickstart).
//!
//! The TLS model itself lives in `equitls-tls` and is built through the
//! typed builder for robustness; a DSL rendering is kept in tests to
//! exercise the parser against the same semantics.
//!
//! # Example
//!
//! ```
//! use equitls_spec::prelude::*;
//!
//! let src = r#"
//!     mod! NAT2 {
//!       [ N ]
//!       op z : -> N {constr} .
//!       op s : N -> N {constr} .
//!       op add : N N -> N .
//!       vars X Y : N .
//!       eq add(z, Y) = Y .
//!       eq add(s(X), Y) = s(add(X, Y)) .
//!     }
//! "#;
//! let mut spec = Spec::new()?;
//! let ast = parse_module(src)?;
//! elaborate_module(&mut spec, &ast)?;
//! let two_plus_one = spec.parse_term("add(s(s(z)), s(z))")?;
//! let three = spec.parse_term("s(s(s(z)))")?;
//! assert_eq!(spec.red(two_plus_one)?, three);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod error;
pub mod lexer;
pub mod parser;
pub mod passage;
pub mod render;
pub mod spec;

pub use error::SpecError;

impl spec::Spec {
    /// Parse and elaborate a term written in the surface DSL (constants
    /// are resolved against this specification).
    ///
    /// # Errors
    ///
    /// Parse errors or resolution failures.
    pub fn parse_term(&mut self, input: &str) -> Result<equitls_kernel::term::TermId, SpecError> {
        let ast = parser::parse_term_ast(input)?;
        let scope = parser::ElabScope::new();
        parser::elaborate_term(self, &scope, &ast)
    }

    /// Parse and install a `mod! … { … }` module written in the DSL.
    ///
    /// # Errors
    ///
    /// Parse errors or resolution failures.
    pub fn load_module(&mut self, input: &str) -> Result<(), SpecError> {
        let ast = parser::parse_module(input)?;
        parser::elaborate_module(self, &ast)
    }
}

/// Convenient re-exports.
pub mod prelude {
    pub use crate::ast::{BinOp, EqAst, ModuleAst, OpAst, SourceSpan, TermAst};
    pub use crate::error::SpecError;
    pub use crate::parser::{
        elaborate_module, elaborate_term, parse_module, parse_term_ast, ElabScope,
    };
    pub use crate::passage::ProofPassage;
    pub use crate::render::{render_module, render_spec_module, render_term};
    pub use crate::spec::{ModuleInfo, QuarantinedEquation, Spec};
}
