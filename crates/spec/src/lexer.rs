//! Lexer for the CafeOBJ-flavoured surface DSL.
//!
//! Comments run from `--` to end of line. Identifiers may contain letters,
//! digits, `-`, `?`, `'`, `#` and `!` (so `mod!`, `ch?`, `c-cert` lex as
//! single tokens). `\in` is its own token.

use crate::error::SpecError;
use std::fmt;

/// A lexical token with its source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The token kind/payload.
    pub kind: TokenKind,
    /// 1-based source line.
    pub line: usize,
    /// 1-based source column.
    pub column: usize,
}

/// The kinds of token the DSL understands.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`mod!`, `op`, `eq`, names, …).
    Ident(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `*[`
    StarLBracket,
    /// `]*`
    RBracketStar,
    /// `:`
    Colon,
    /// `->`
    Arrow,
    /// `.`
    Period,
    /// `,`
    Comma,
    /// `=`
    Equals,
    /// `\in`
    In,
    /// End of input.
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "`{s}`"),
            TokenKind::LParen => write!(f, "`(`"),
            TokenKind::RParen => write!(f, "`)`"),
            TokenKind::LBrace => write!(f, "`{{`"),
            TokenKind::RBrace => write!(f, "`}}`"),
            TokenKind::LBracket => write!(f, "`[`"),
            TokenKind::RBracket => write!(f, "`]`"),
            TokenKind::StarLBracket => write!(f, "`*[`"),
            TokenKind::RBracketStar => write!(f, "`]*`"),
            TokenKind::Colon => write!(f, "`:`"),
            TokenKind::Arrow => write!(f, "`->`"),
            TokenKind::Period => write!(f, "`.`"),
            TokenKind::Comma => write!(f, "`,`"),
            TokenKind::Equals => write!(f, "`=`"),
            TokenKind::In => write!(f, "`\\in`"),
            TokenKind::Eof => write!(f, "end of input"),
        }
    }
}

fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || matches!(c, '-' | '?' | '\'' | '#' | '!' | '_' | '"')
}

/// Tokenize `input`.
///
/// # Errors
///
/// [`SpecError::Parse`] on unexpected characters.
pub fn lex(input: &str) -> Result<Vec<Token>, SpecError> {
    let mut tokens = Vec::new();
    let chars: Vec<char> = input.chars().collect();
    let mut i = 0;
    let mut line = 1;
    let mut column = 1;
    let push = |tokens: &mut Vec<Token>, kind: TokenKind, line: usize, column: usize| {
        tokens.push(Token { kind, line, column });
    };
    while i < chars.len() {
        let c = chars[i];
        let (l, col) = (line, column);
        let advance = |i: &mut usize, line: &mut usize, column: &mut usize, n: usize| {
            for k in 0..n {
                if chars[*i + k] == '\n' {
                    *line += 1;
                    *column = 1;
                } else {
                    *column += 1;
                }
            }
            *i += n;
        };
        match c {
            ' ' | '\t' | '\r' | '\n' => advance(&mut i, &mut line, &mut column, 1),
            '-' if i + 1 < chars.len() && chars[i + 1] == '-' => {
                // comment to end of line
                while i < chars.len() && chars[i] != '\n' {
                    advance(&mut i, &mut line, &mut column, 1);
                }
            }
            '-' if i + 1 < chars.len() && chars[i + 1] == '>' => {
                push(&mut tokens, TokenKind::Arrow, l, col);
                advance(&mut i, &mut line, &mut column, 2);
            }
            '(' => {
                push(&mut tokens, TokenKind::LParen, l, col);
                advance(&mut i, &mut line, &mut column, 1);
            }
            ')' => {
                push(&mut tokens, TokenKind::RParen, l, col);
                advance(&mut i, &mut line, &mut column, 1);
            }
            '{' => {
                push(&mut tokens, TokenKind::LBrace, l, col);
                advance(&mut i, &mut line, &mut column, 1);
            }
            '}' => {
                push(&mut tokens, TokenKind::RBrace, l, col);
                advance(&mut i, &mut line, &mut column, 1);
            }
            '*' if i + 1 < chars.len() && chars[i + 1] == '[' => {
                push(&mut tokens, TokenKind::StarLBracket, l, col);
                advance(&mut i, &mut line, &mut column, 2);
            }
            '[' => {
                push(&mut tokens, TokenKind::LBracket, l, col);
                advance(&mut i, &mut line, &mut column, 1);
            }
            ']' if i + 1 < chars.len() && chars[i + 1] == '*' => {
                push(&mut tokens, TokenKind::RBracketStar, l, col);
                advance(&mut i, &mut line, &mut column, 2);
            }
            ']' => {
                push(&mut tokens, TokenKind::RBracket, l, col);
                advance(&mut i, &mut line, &mut column, 1);
            }
            ':' => {
                push(&mut tokens, TokenKind::Colon, l, col);
                advance(&mut i, &mut line, &mut column, 1);
            }
            '.' => {
                push(&mut tokens, TokenKind::Period, l, col);
                advance(&mut i, &mut line, &mut column, 1);
            }
            ',' => {
                push(&mut tokens, TokenKind::Comma, l, col);
                advance(&mut i, &mut line, &mut column, 1);
            }
            '=' => {
                push(&mut tokens, TokenKind::Equals, l, col);
                advance(&mut i, &mut line, &mut column, 1);
            }
            '\\' => {
                // expect `\in`
                if i + 2 < chars.len() && chars[i + 1] == 'i' && chars[i + 2] == 'n' {
                    push(&mut tokens, TokenKind::In, l, col);
                    advance(&mut i, &mut line, &mut column, 3);
                } else {
                    return Err(SpecError::Parse {
                        line: l,
                        column: col,
                        message: "expected `\\in` after backslash".to_string(),
                    });
                }
            }
            c if is_ident_char(c) => {
                let start = i;
                while i < chars.len() && is_ident_char(chars[i]) {
                    advance(&mut i, &mut line, &mut column, 1);
                }
                let word: String = chars[start..i].iter().collect();
                push(&mut tokens, TokenKind::Ident(word), l, col);
            }
            other => {
                return Err(SpecError::Parse {
                    line: l,
                    column: col,
                    message: format!("unexpected character `{other}`"),
                })
            }
        }
    }
    tokens.push(Token {
        kind: TokenKind::Eof,
        line,
        column,
    });
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(input: &str) -> Vec<TokenKind> {
        lex(input).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_declarations() {
        let ks = kinds("op pms : Prin Prin Secret -> Pms .");
        assert_eq!(
            ks,
            vec![
                TokenKind::Ident("op".into()),
                TokenKind::Ident("pms".into()),
                TokenKind::Colon,
                TokenKind::Ident("Prin".into()),
                TokenKind::Ident("Prin".into()),
                TokenKind::Ident("Secret".into()),
                TokenKind::Arrow,
                TokenKind::Ident("Pms".into()),
                TokenKind::Period,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn lexes_membership_and_bags() {
        let ks = kinds(r"PMS \in cpms(M , NW)");
        assert!(ks.contains(&TokenKind::In));
        assert!(ks.contains(&TokenKind::Comma));
    }

    #[test]
    fn comments_are_skipped() {
        let ks = kinds("a -- this is a comment\nb");
        assert_eq!(
            ks,
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Ident("b".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn hidden_sort_brackets() {
        let ks = kinds("*[ Protocol ]*");
        assert_eq!(
            ks,
            vec![
                TokenKind::StarLBracket,
                TokenKind::Ident("Protocol".into()),
                TokenKind::RBracketStar,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn funky_identifier_characters() {
        let ks = kinds("mod! ch? c-cert r10");
        assert_eq!(
            ks,
            vec![
                TokenKind::Ident("mod!".into()),
                TokenKind::Ident("ch?".into()),
                TokenKind::Ident("c-cert".into()),
                TokenKind::Ident("r10".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn positions_are_tracked() {
        let toks = lex("a\n  b").unwrap();
        assert_eq!((toks[0].line, toks[0].column), (1, 1));
        assert_eq!((toks[1].line, toks[1].column), (2, 3));
    }

    #[test]
    fn bad_character_errors() {
        assert!(matches!(lex("a @ b"), Err(SpecError::Parse { .. })));
        assert!(matches!(lex(r"\on"), Err(SpecError::Parse { .. })));
    }
}
