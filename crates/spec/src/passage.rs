//! Proof passages: the paper's `open … close` blocks.
//!
//! A proof passage (§2.4, §5.2) temporarily extends a specification with
//! *arbitrary objects* (fresh constants) and *assumption equations*, then
//! reduces a goal with `red`. Dropping the [`ProofPassage`] discards the
//! assumptions, like CafeOBJ's `close`.
//!
//! ```
//! use equitls_spec::prelude::*;
//!
//! let mut spec = Spec::new()?;
//! spec.begin_module("M");
//! spec.visible_sort("Prin")?;
//! spec.constructor("intruder", &[], "Prin")?;
//!
//! let mut passage = ProofPassage::open(&mut spec);
//! let b1 = passage.declare("b1", "Prin")?;          // op b1 : -> Prin .
//! let intruder = passage.spec().const_term("intruder")?;
//! passage.assume_equal(b1, intruder)?;              // eq b1 = intruder .
//! let goal = passage.spec().eq_term(b1, intruder)?;
//! assert!(passage.proves(goal)?);                   // red b1 = intruder .
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use crate::error::SpecError;
use crate::spec::Spec;
use equitls_kernel::prelude::*;
use equitls_rewrite::assumption::orient_equation;
use equitls_rewrite::prelude::*;

/// An open proof passage over a specification.
pub struct ProofPassage<'a> {
    spec: &'a mut Spec,
    norm: Normalizer,
    assumption_count: usize,
}

impl<'a> ProofPassage<'a> {
    /// Open a passage: clone the specification's rule base into a fresh
    /// normalizer.
    pub fn open(spec: &'a mut Spec) -> Self {
        let norm = spec.normalizer();
        ProofPassage {
            spec,
            norm,
            assumption_count: 0,
        }
    }

    /// Access the underlying specification (to build terms).
    pub fn spec(&mut self) -> &mut Spec {
        self.spec
    }

    /// Declare an arbitrary constant (`op b10 : -> Prin .`).
    ///
    /// If a constant of that name and sort already exists (a previous
    /// passage declared it), it is reused.
    ///
    /// # Errors
    ///
    /// Unknown sort, or the name exists with a different sort.
    pub fn declare(&mut self, name: &str, sort: &str) -> Result<TermId, SpecError> {
        let sort_id = self.spec.sort_id(sort)?;
        // Reuse an existing arbitrary constant of the right sort.
        let existing = self
            .spec
            .store()
            .signature()
            .ops_by_name(name)
            .iter()
            .copied()
            .find(|&id| {
                let decl = self.spec.store().signature().op(id);
                decl.is_constant() && decl.result == sort_id
            });
        if let Some(op) = existing {
            return Ok(self.spec.store_mut().constant(op));
        }
        Ok(self.spec.store_mut().arbitrary_constant(name, sort_id)?)
    }

    /// Assume `lhs = rhs` (true), decomposing it into oriented equations —
    /// the paper's "nine equations" treatment of `sfin1 = sfin2`.
    ///
    /// # Errors
    ///
    /// Kernel/rewrite errors from orientation or rule installation.
    pub fn assume_equal(&mut self, lhs: TermId, rhs: TermId) -> Result<(), SpecError> {
        let mut alg = self.spec.alg().clone();
        let oriented = orient_equation(self.spec.store_mut(), &mut alg, lhs, rhs)?;
        *self.spec.alg_mut() = alg;
        for (l, r) in oriented {
            self.assumption_count += 1;
            let label = format!("assume#{}", self.assumption_count);
            self.norm.assume(self.spec.store(), label, l, r)?;
        }
        Ok(())
    }

    /// Assume a Bool-sorted term is **false**
    /// (`eq (b = intruder) = false .`).
    ///
    /// The term is normalized first so that the installed rule targets the
    /// canonical atom.
    ///
    /// # Errors
    ///
    /// Kernel/rewrite errors; also an error when the term normalizes to
    /// `true` (contradictory assumption).
    pub fn assume_false(&mut self, t: TermId) -> Result<(), SpecError> {
        let n = self.norm.normalize(self.spec.store_mut(), t)?;
        let alg = self.spec.alg().clone();
        match alg.as_constant(self.spec.store(), n) {
            Some(false) => Ok(()),
            Some(true) => Err(SpecError::Rewrite(RewriteError::InvalidRule {
                label: "assume_false".into(),
                reason: "assumption contradicts the specification (term is true)".into(),
            })),
            None => {
                let ff = alg.ff(self.spec.store_mut());
                self.assumption_count += 1;
                let label = format!("assume#{}", self.assumption_count);
                self.norm.assume(self.spec.store(), label, n, ff)?;
                Ok(())
            }
        }
    }

    /// Assume a Bool-sorted term is **true**.
    ///
    /// Equality terms route through [`ProofPassage::assume_equal`] so they
    /// orient into substitutions where possible.
    ///
    /// # Errors
    ///
    /// Kernel/rewrite errors; also an error when the term normalizes to
    /// `false`.
    pub fn assume_true(&mut self, t: TermId) -> Result<(), SpecError> {
        let n = self.norm.normalize(self.spec.store_mut(), t)?;
        let alg = self.spec.alg().clone();
        match alg.as_constant(self.spec.store(), n) {
            Some(true) => Ok(()),
            Some(false) => Err(SpecError::Rewrite(RewriteError::InvalidRule {
                label: "assume_true".into(),
                reason: "assumption contradicts the specification (term is false)".into(),
            })),
            None => {
                if let Some(op) = self.spec.store().op_of(n) {
                    if alg.is_eq_op(op) {
                        let args: Vec<TermId> = self.spec.store().args(n).to_vec();
                        return self.assume_equal(args[0], args[1]);
                    }
                }
                let tt = alg.tt(self.spec.store_mut());
                self.assumption_count += 1;
                let label = format!("assume#{}", self.assumption_count);
                self.norm.assume(self.spec.store(), label, n, tt)?;
                Ok(())
            }
        }
    }

    /// Reduce a term under the passage's assumptions — `red t .`.
    ///
    /// # Errors
    ///
    /// Rewriting errors (fuel).
    pub fn red(&mut self, t: TermId) -> Result<TermId, SpecError> {
        Ok(self.norm.normalize(self.spec.store_mut(), t)?)
    }

    /// Reduce and test for `true`.
    ///
    /// # Errors
    ///
    /// Rewriting errors (fuel).
    pub fn proves(&mut self, t: TermId) -> Result<bool, SpecError> {
        Ok(self.norm.proves(self.spec.store_mut(), t)?)
    }

    /// Rewriting statistics accumulated in this passage.
    pub fn stats(&self) -> RewriteStats {
        self.norm.stats()
    }

    /// Conditions that blocked conditional rules during reductions.
    pub fn take_blocked(&mut self) -> Vec<TermId> {
        self.norm.take_blocked()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tls_fragment() -> Spec {
        let mut spec = Spec::new().unwrap();
        spec.begin_module("FRAG");
        spec.visible_sort("Prin").unwrap();
        spec.visible_sort("Secret").unwrap();
        spec.visible_sort("Pms").unwrap();
        spec.constructor("intruder", &[], "Prin").unwrap();
        spec.constructor("ca", &[], "Prin").unwrap();
        spec.constructor("pms", &["Prin", "Prin", "Secret"], "Pms")
            .unwrap();
        spec.defined_op("client", &["Pms"], "Prin").unwrap();
        let a = spec.var("A", "Prin").unwrap();
        let b = spec.var("B", "Prin").unwrap();
        let s = spec.var("S", "Secret").unwrap();
        let pmsv = spec.app("pms", &[a, b, s]).unwrap();
        let client = spec.app("client", &[pmsv]).unwrap();
        spec.eq("client-proj", client, a).unwrap();
        spec
    }

    #[test]
    fn passage_declares_and_reuses_constants() {
        let mut spec = tls_fragment();
        let mut p = ProofPassage::open(&mut spec);
        let b10 = p.declare("b10", "Prin").unwrap();
        let again = p.declare("b10", "Prin").unwrap();
        assert_eq!(b10, again);
        assert!(p.declare("b10", "Secret").is_err());
    }

    #[test]
    fn assumptions_drive_projection_rewrites() {
        let mut spec = tls_fragment();
        let mut p = ProofPassage::open(&mut spec);
        let a10 = p.declare("a10", "Prin").unwrap();
        let s10 = p.declare("s10", "Secret").unwrap();
        let intruder = p.spec().const_term("intruder").unwrap();
        let pmsv = p.spec().app("pms", &[a10, intruder, s10]).unwrap();
        let client = p.spec().app("client", &[pmsv]).unwrap();
        // client(pms(a10, intruder, s10)) reduces to a10 by the projection.
        assert_eq!(p.red(client).unwrap(), a10);
        // Assuming a10 = intruder rewrites it further.
        p.assume_equal(a10, intruder).unwrap();
        assert_eq!(p.red(client).unwrap(), intruder);
    }

    #[test]
    fn assume_false_kills_an_equality_atom() {
        let mut spec = tls_fragment();
        let mut p = ProofPassage::open(&mut spec);
        let a10 = p.declare("a10", "Prin").unwrap();
        let intruder = p.spec().const_term("intruder").unwrap();
        let atom = p.spec().eq_term(a10, intruder).unwrap();
        p.assume_false(atom).unwrap();
        let alg = p.spec().alg().clone();
        let n = p.red(atom).unwrap();
        assert_eq!(alg.as_constant(p.spec().store(), n), Some(false));
    }

    #[test]
    fn contradictory_assumptions_are_rejected() {
        let mut spec = tls_fragment();
        let mut p = ProofPassage::open(&mut spec);
        let intruder = p.spec().const_term("intruder").unwrap();
        let ca = p.spec().const_term("ca").unwrap();
        let atom = p.spec().eq_term(intruder, ca).unwrap();
        // intruder = ca is decidably false; assuming it true must fail.
        assert!(p.assume_true(atom).is_err());
        let refl = p.spec().eq_term(ca, ca).unwrap();
        assert!(p.assume_false(refl).is_err());
    }

    #[test]
    fn closing_a_passage_discards_assumptions() {
        let mut spec = tls_fragment();
        let intruder = spec.const_term("intruder").unwrap();
        let a10 = {
            let mut p = ProofPassage::open(&mut spec);
            let a10 = p.declare("a10", "Prin").unwrap();
            p.assume_equal(a10, intruder).unwrap();
            let n = p.red(a10).unwrap();
            assert_eq!(n, intruder);
            a10
        };
        // After close, a fresh passage no longer rewrites a10.
        let mut p2 = ProofPassage::open(&mut spec);
        assert_eq!(p2.red(a10).unwrap(), a10);
    }

    #[test]
    fn assume_true_on_non_equality_installs_atom_rule() {
        let mut spec = tls_fragment();
        spec.defined_op("good?", &["Prin"], "Bool").unwrap();
        let mut p = ProofPassage::open(&mut spec);
        let a10 = p.declare("a10", "Prin").unwrap();
        let atom = p.spec().app("good?", &[a10]).unwrap();
        p.assume_true(atom).unwrap();
        assert!(p.proves(atom).unwrap());
    }
}
