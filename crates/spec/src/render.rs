//! Rendering specifications back to the surface DSL.
//!
//! The inverse of [`crate::parser`]: a [`ModuleAst`] (or a term AST)
//! pretty-prints to text that re-parses to the same AST — checked by a
//! round-trip property test. [`render_spec_module`] additionally renders a
//! *live* module of a [`crate::spec::Spec`] (one that was installed via
//! the builder or the parser) so the whole TLS specification can be
//! exported as a CafeOBJ-style file.

use crate::ast::{BinOp, EqAst, ModuleAst, OpAst, TermAst};
use crate::spec::Spec;
use equitls_kernel::op::OpKind;
use equitls_kernel::sort::SortKind;
use std::fmt::Write as _;

/// Precedence levels, loosest first (mirrors the parser's grammar).
fn precedence(op: BinOp) -> u8 {
    match op {
        BinOp::Implies => 1,
        BinOp::Iff => 2,
        BinOp::Xor => 3,
        BinOp::Or => 4,
        BinOp::And => 5,
        BinOp::Eq | BinOp::In => 6,
        BinOp::BagCons => 8,
    }
}

/// Render a term AST, parenthesizing exactly where the parser needs it.
pub fn render_term(ast: &TermAst) -> String {
    render_at(ast, 0)
}

fn render_at(ast: &TermAst, min_prec: u8) -> String {
    match ast {
        TermAst::Ident(name) => name.clone(),
        TermAst::App(name, args) => {
            let rendered: Vec<String> = args.iter().map(|a| render_at(a, 0)).collect();
            format!("{name}({})", rendered.join(", "))
        }
        TermAst::Not(inner) => format!("not {}", render_at(inner, 7)),
        TermAst::Bin(BinOp::BagCons, lhs, rhs) => {
            format!("({} , {})", render_at(lhs, 0), render_at(rhs, 0))
        }
        TermAst::Bin(op, lhs, rhs) => {
            let prec = precedence(*op);
            let symbol = match op {
                BinOp::Implies => "implies",
                BinOp::Iff => "iff",
                BinOp::Xor => "xor",
                BinOp::Or => "or",
                BinOp::And => "and",
                BinOp::Eq => "=",
                BinOp::In => "\\in",
                BinOp::BagCons => unreachable!("handled above"),
            };
            // `implies` is right-associative; the chain operators are
            // left-associative; comparisons do not chain.
            let (lmin, rmin) = match op {
                BinOp::Implies => (prec + 1, prec),
                BinOp::Eq | BinOp::In => (prec + 1, prec + 1),
                _ => (prec, prec + 1),
            };
            let text = format!("{} {symbol} {}", render_at(lhs, lmin), render_at(rhs, rmin));
            if prec < min_prec {
                format!("({text})")
            } else {
                text
            }
        }
    }
}

/// Render a module AST as DSL text (re-parses to the same AST).
pub fn render_module(m: &ModuleAst) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "mod! {} {{", m.name);
    for import in &m.imports {
        let _ = writeln!(out, "  pr({import})");
    }
    if !m.visible_sorts.is_empty() {
        let _ = writeln!(out, "  [ {} ]", m.visible_sorts.join(" "));
    }
    if !m.hidden_sorts.is_empty() {
        let _ = writeln!(out, "  *[ {} ]*", m.hidden_sorts.join(" "));
    }
    for op in &m.ops {
        let _ = writeln!(out, "  {}", render_op(op));
    }
    for (names, sort) in &m.vars {
        let keyword = if names.len() > 1 { "vars" } else { "var" };
        let _ = writeln!(out, "  {keyword} {} : {sort} .", names.join(" "));
    }
    for eq in &m.eqs {
        let _ = writeln!(out, "  {}", render_eq(eq));
    }
    out.push('}');
    out
}

fn render_op(op: &OpAst) -> String {
    let keyword = if op.behavioural { "bop" } else { "op" };
    let attrs = match (op.constructor, op.root) {
        (true, true) => " {constr root}",
        (true, false) => " {constr}",
        (false, true) => " {root}",
        (false, false) => "",
    };
    format!(
        "{keyword} {} : {} -> {}{attrs} .",
        op.name,
        op.args.join(" "),
        op.result
    )
}

fn render_eq(eq: &EqAst) -> String {
    let label = eq
        .label
        .as_ref()
        .map(|l| format!("[{l}] : "))
        .unwrap_or_default();
    match &eq.cond {
        None => format!(
            "eq {label}{} = {} .",
            render_term(&eq.lhs),
            render_term(&eq.rhs)
        ),
        Some(c) => format!(
            "ceq {label}{} = {} if {} .",
            render_term(&eq.lhs),
            render_term(&eq.rhs),
            render_term(c)
        ),
    }
}

/// Render a live module of `spec` (declarations only — the equations of a
/// built spec are rule terms, rendered through the kernel printer).
pub fn render_spec_module(spec: &Spec, module_name: &str) -> Option<String> {
    let info = spec.modules().iter().find(|m| m.name == module_name)?;
    let mut out = String::new();
    let _ = writeln!(out, "mod! {} {{", info.name);
    for import in &info.imports {
        let _ = writeln!(out, "  pr({import})");
    }
    let sig = spec.store().signature();
    let visible: Vec<&str> = info
        .sorts
        .iter()
        .filter(|s| {
            sig.sort_by_name(s)
                .is_some_and(|id| sig.sort(id).kind == SortKind::Visible)
        })
        .map(String::as_str)
        .collect();
    let hidden: Vec<&str> = info
        .sorts
        .iter()
        .filter(|s| {
            sig.sort_by_name(s)
                .is_some_and(|id| sig.sort(id).kind == SortKind::Hidden)
        })
        .map(String::as_str)
        .collect();
    if !visible.is_empty() {
        let _ = writeln!(out, "  [ {} ]", visible.join(" "));
    }
    if !hidden.is_empty() {
        let _ = writeln!(out, "  *[ {} ]*", hidden.join(" "));
    }
    for &op_id in &info.ops {
        let decl = sig.op(op_id);
        let keyword = match decl.attrs.kind {
            OpKind::Observer | OpKind::Action => "bop",
            _ => "op",
        };
        let attrs = if decl.attrs.kind == OpKind::Constructor {
            " {constr}"
        } else {
            ""
        };
        let args: Vec<&str> = decl
            .args
            .iter()
            .map(|&s| sig.sort(s).name.as_str())
            .collect();
        let _ = writeln!(
            out,
            "  {keyword} {} : {} -> {}{attrs} .",
            decl.name,
            args.join(" "),
            sig.sort(decl.result).name
        );
    }
    let _ = writeln!(out, "  -- {} equation(s) installed", info.equations.len());
    out.push('}');
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_module, parse_term_ast};

    #[test]
    fn simple_terms_round_trip() {
        for src in [
            "a",
            "f(a, b)",
            "not a",
            "a and b or c",
            "a implies b implies c",
            "(a , nw(p))",
            r"x \in cpms(nw(p))",
            "client(pm) = intruder or server(pm) = intruder",
        ] {
            let ast = parse_term_ast(src).unwrap();
            let rendered = render_term(&ast);
            let reparsed = parse_term_ast(&rendered)
                .unwrap_or_else(|e| panic!("`{rendered}` does not reparse: {e}"));
            assert_eq!(ast, reparsed, "src `{src}` → `{rendered}`");
        }
    }

    #[test]
    fn precedence_is_preserved_not_flattened() {
        // (a or b) and c must keep its parentheses.
        let src = "(a or b) and c";
        let ast = parse_term_ast(src).unwrap();
        let rendered = render_term(&ast);
        let reparsed = parse_term_ast(&rendered).unwrap();
        assert_eq!(ast, reparsed);
        assert!(rendered.contains('('), "needs parens: {rendered}");
    }

    #[test]
    fn modules_round_trip() {
        let src = r#"
            mod! BAG {
              pr(BOOL)
              [ Elt Bag ]
              op void : -> Bag {constr} .
              op _,_ : Elt Bag -> Bag {constr} .
              op _\in_ : Elt Bag -> Bool .
              vars E E2 : Elt .
              var B : Bag .
              eq E \in void = false .
              eq E \in (E2 , B) = (E = E2) or (E \in B) .
              ceq [guarded] : E \in void = true if E = E2 .
            }
        "#;
        let mut ast = parse_module(src).unwrap();
        let rendered = render_module(&ast);
        let mut reparsed = parse_module(&rendered)
            .unwrap_or_else(|e| panic!("rendered module does not reparse: {e}\n{rendered}"));
        // Rendering moves declarations to new positions; spans are
        // positional metadata, not syntax, so compare without them.
        for eq in ast.eqs.iter_mut().chain(reparsed.eqs.iter_mut()) {
            eq.span = None;
        }
        assert_eq!(ast, reparsed);
    }

    #[test]
    fn live_tls_module_renders() {
        let mut spec = Spec::new().unwrap();
        spec.load_module(
            r#"
            mod! M {
              [ S ]
              *[ H ]*
              op c : -> S {constr} .
              bop obs : H -> S .
              bop act : H -> H .
              var X : S .
              eq [self] : c = c .
            }
            "#,
        )
        .unwrap();
        let text = render_spec_module(&spec, "M").unwrap();
        assert!(text.contains("[ S ]"));
        assert!(text.contains("*[ H ]*"));
        assert!(text.contains("op c : "));
        assert!(text.contains("bop obs : H -> S ."));
        assert!(text.contains("1 equation(s)"));
        assert!(render_spec_module(&spec, "NOPE").is_none());
    }
}
