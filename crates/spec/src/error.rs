//! Errors raised while building or parsing specifications.

use equitls_kernel::KernelError;
use equitls_rewrite::RewriteError;
use std::fmt;

/// An error raised by the specification layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpecError {
    /// A named sort is not declared.
    UnknownSort(String),
    /// A named operator is not declared (with the sorts tried, if any).
    UnknownOp {
        /// Operator name.
        name: String,
        /// Rendered argument sorts tried during resolution, if known.
        args: Option<String>,
    },
    /// An identifier could not be resolved to a variable or constant.
    UnresolvedIdent(String),
    /// The DSL text failed to lex/parse.
    Parse {
        /// 1-based line of the offending token.
        line: usize,
        /// 1-based column of the offending token.
        column: usize,
        /// Human-readable message.
        message: String,
    },
    /// A kernel error (sorts, arities).
    Kernel(KernelError),
    /// A rewriting error (rule validation, fuel).
    Rewrite(RewriteError),
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::UnknownSort(name) => write!(f, "unknown sort `{name}`"),
            SpecError::UnknownOp { name, args } => match args {
                Some(a) => write!(f, "unknown operator `{name}` for argument sorts ({a})"),
                None => write!(f, "unknown operator `{name}`"),
            },
            SpecError::UnresolvedIdent(name) => {
                write!(
                    f,
                    "identifier `{name}` is neither a variable nor a constant"
                )
            }
            SpecError::Parse {
                line,
                column,
                message,
            } => write!(f, "parse error at {line}:{column}: {message}"),
            SpecError::Kernel(e) => write!(f, "{e}"),
            SpecError::Rewrite(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for SpecError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SpecError::Kernel(e) => Some(e),
            SpecError::Rewrite(e) => Some(e),
            _ => None,
        }
    }
}

impl From<KernelError> for SpecError {
    fn from(e: KernelError) -> Self {
        SpecError::Kernel(e)
    }
}

impl From<RewriteError> for SpecError {
    fn from(e: RewriteError) -> Self {
        SpecError::Rewrite(e)
    }
}
