//! Parser and elaborator for the CafeOBJ-flavoured DSL.
//!
//! The grammar (terminals quoted, every declaration ends with `.` — a small
//! regularization of CafeOBJ syntax, noted in DESIGN.md):
//!
//! ```text
//! module   := 'mod!' IDENT '{' item* '}'
//! item     := 'pr' '(' IDENT ')'
//!           | '[' IDENT+ ']'                          -- visible sorts
//!           | '*[' IDENT+ ']*'                        -- hidden sorts
//!           | ('op'|'bop') NAME ':' IDENT* '->' IDENT attrs? '.'
//!           | ('var'|'vars') IDENT+ ':' IDENT '.'
//!           | 'eq' term '=' term '.'
//!           | 'ceq' term '=' term 'if' term '.'
//! attrs    := '{' ('constr' | 'root')+ '}'
//! term     := implies
//! implies  := iff ('implies' implies)?                -- right assoc
//! iff      := xor ('iff' xor)*
//! xor      := or ('xor' or)*
//! or       := and ('or' and)*
//! and      := cmp ('and' cmp)*
//! cmp      := unary (('=' | '\in') unary)?
//! unary    := 'not' unary | primary
//! primary  := '(' term (',' term)? ')'                -- comma = bag cons
//!           | IDENT ('(' term (',' term)* ')')?
//! ```
//!
//! Equation left-hand sides are parsed at `cmp` precedence without the `=`
//! production, so the top-level `=` always separates the equation's sides.

// Library code in this module must degrade through `SpecError`, never
// panic: the parser sits on every user-input path. (Tests opt back in
// below.) `scripts/check.sh` runs clippy with `-D warnings`, making
// these denials.
#![warn(clippy::unwrap_used, clippy::expect_used)]

use crate::ast::{BinOp, EqAst, ModuleAst, OpAst, TermAst};
use crate::error::SpecError;
use crate::lexer::{lex, Token, TokenKind};
use crate::spec::{QuarantinedEquation, Spec};
use equitls_kernel::prelude::*;
use equitls_rewrite::rule::validate_rule;
use std::collections::HashMap;

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos]
    }

    fn next(&mut self) -> Token {
        let t = self.tokens[self.pos].clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn error<T>(&self, message: impl Into<String>) -> Result<T, SpecError> {
        let t = self.peek();
        Err(SpecError::Parse {
            line: t.line,
            column: t.column,
            message: message.into(),
        })
    }

    fn expect(&mut self, kind: &TokenKind) -> Result<(), SpecError> {
        if &self.peek().kind == kind {
            self.next();
            Ok(())
        } else {
            self.error(format!("expected {kind}, found {}", self.peek().kind))
        }
    }

    fn expect_ident(&mut self) -> Result<String, SpecError> {
        match self.peek().kind.clone() {
            TokenKind::Ident(s) => {
                self.next();
                Ok(s)
            }
            other => self.error(format!("expected identifier, found {other}")),
        }
    }

    /// Assemble a (possibly mixfix) operator name up to the `:` of its
    /// declaration: `_,_`, `_\in_`, `_=_`, `ch?`, `c-cert`, ….
    fn op_name(&mut self) -> Result<String, SpecError> {
        let mut name = String::new();
        loop {
            match self.peek().kind.clone() {
                TokenKind::Colon => break,
                TokenKind::Ident(s) => {
                    name.push_str(&s);
                    self.next();
                }
                TokenKind::Comma => {
                    name.push(',');
                    self.next();
                }
                TokenKind::In => {
                    name.push_str("\\in");
                    self.next();
                }
                TokenKind::Equals => {
                    name.push('=');
                    self.next();
                }
                other => {
                    return self.error(format!("unexpected {other} in operator name"));
                }
            }
        }
        if name.is_empty() {
            return self.error("empty operator name");
        }
        Ok(name)
    }

    fn at_keyword(&self, kw: &str) -> bool {
        matches!(&self.peek().kind, TokenKind::Ident(s) if s == kw)
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.at_keyword(kw) {
            self.next();
            true
        } else {
            false
        }
    }

    // ---- terms -----------------------------------------------------------

    fn term(&mut self) -> Result<TermAst, SpecError> {
        self.implies_level()
    }

    fn implies_level(&mut self) -> Result<TermAst, SpecError> {
        let lhs = self.iff_level()?;
        if self.eat_keyword("implies") {
            let rhs = self.implies_level()?;
            return Ok(TermAst::Bin(BinOp::Implies, Box::new(lhs), Box::new(rhs)));
        }
        Ok(lhs)
    }

    fn iff_level(&mut self) -> Result<TermAst, SpecError> {
        let mut lhs = self.xor_level()?;
        while self.eat_keyword("iff") {
            let rhs = self.xor_level()?;
            lhs = TermAst::Bin(BinOp::Iff, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn xor_level(&mut self) -> Result<TermAst, SpecError> {
        let mut lhs = self.or_level()?;
        while self.eat_keyword("xor") {
            let rhs = self.or_level()?;
            lhs = TermAst::Bin(BinOp::Xor, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn or_level(&mut self) -> Result<TermAst, SpecError> {
        let mut lhs = self.and_level()?;
        while self.eat_keyword("or") {
            let rhs = self.and_level()?;
            lhs = TermAst::Bin(BinOp::Or, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn and_level(&mut self) -> Result<TermAst, SpecError> {
        let mut lhs = self.cmp_level(true)?;
        while self.eat_keyword("and") {
            let rhs = self.cmp_level(true)?;
            lhs = TermAst::Bin(BinOp::And, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn cmp_level(&mut self, allow_eq: bool) -> Result<TermAst, SpecError> {
        let lhs = self.unary()?;
        match self.peek().kind {
            TokenKind::Equals if allow_eq => {
                self.next();
                let rhs = self.unary()?;
                Ok(TermAst::Bin(BinOp::Eq, Box::new(lhs), Box::new(rhs)))
            }
            TokenKind::In => {
                self.next();
                let rhs = self.unary()?;
                Ok(TermAst::Bin(BinOp::In, Box::new(lhs), Box::new(rhs)))
            }
            _ => Ok(lhs),
        }
    }

    fn unary(&mut self) -> Result<TermAst, SpecError> {
        if self.eat_keyword("not") {
            let inner = self.unary()?;
            return Ok(TermAst::Not(Box::new(inner)));
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<TermAst, SpecError> {
        match self.peek().kind.clone() {
            TokenKind::LParen => {
                self.next();
                let first = self.term()?;
                if self.peek().kind == TokenKind::Comma {
                    self.next();
                    let second = self.term()?;
                    self.expect(&TokenKind::RParen)?;
                    return Ok(TermAst::Bin(
                        BinOp::BagCons,
                        Box::new(first),
                        Box::new(second),
                    ));
                }
                self.expect(&TokenKind::RParen)?;
                Ok(first)
            }
            TokenKind::Ident(name) => {
                self.next();
                if self.peek().kind == TokenKind::LParen {
                    self.next();
                    let mut args = vec![self.term()?];
                    while self.peek().kind == TokenKind::Comma {
                        self.next();
                        args.push(self.term()?);
                    }
                    self.expect(&TokenKind::RParen)?;
                    Ok(TermAst::App(name, args))
                } else {
                    Ok(TermAst::Ident(name))
                }
            }
            other => self.error(format!("expected a term, found {other}")),
        }
    }

    // ---- declarations ----------------------------------------------------

    fn module(&mut self) -> Result<ModuleAst, SpecError> {
        if !self.eat_keyword("mod!") {
            return self.error("expected `mod!`");
        }
        let name = self.expect_ident()?;
        self.expect(&TokenKind::LBrace)?;
        let mut m = ModuleAst {
            name,
            ..ModuleAst::default()
        };
        loop {
            match self.peek().kind.clone() {
                TokenKind::RBrace => {
                    self.next();
                    break;
                }
                TokenKind::LBracket => {
                    self.next();
                    while let TokenKind::Ident(s) = self.peek().kind.clone() {
                        m.visible_sorts.push(s);
                        self.next();
                    }
                    self.expect(&TokenKind::RBracket)?;
                }
                TokenKind::StarLBracket => {
                    self.next();
                    while let TokenKind::Ident(s) = self.peek().kind.clone() {
                        m.hidden_sorts.push(s);
                        self.next();
                    }
                    self.expect(&TokenKind::RBracketStar)?;
                }
                TokenKind::Ident(kw) if kw == "pr" => {
                    self.next();
                    self.expect(&TokenKind::LParen)?;
                    m.imports.push(self.expect_ident()?);
                    self.expect(&TokenKind::RParen)?;
                }
                TokenKind::Ident(kw) if kw == "op" || kw == "bop" => {
                    self.next();
                    let behavioural = kw == "bop";
                    let name = self.op_name()?;
                    self.expect(&TokenKind::Colon)?;
                    let mut args = Vec::new();
                    while let TokenKind::Ident(s) = self.peek().kind.clone() {
                        args.push(s);
                        self.next();
                    }
                    self.expect(&TokenKind::Arrow)?;
                    let result = self.expect_ident()?;
                    let mut constructor = false;
                    let mut root = false;
                    if self.peek().kind == TokenKind::LBrace {
                        self.next();
                        while self.peek().kind != TokenKind::RBrace {
                            if self.eat_keyword("constr") {
                                constructor = true;
                            } else if self.eat_keyword("root") {
                                root = true;
                            } else {
                                return self.error("expected `constr` or `root` attribute");
                            }
                        }
                        self.expect(&TokenKind::RBrace)?;
                    }
                    self.expect(&TokenKind::Period)?;
                    m.ops.push(OpAst {
                        behavioural,
                        name,
                        args,
                        result,
                        constructor,
                        root,
                    });
                }
                TokenKind::Ident(kw) if kw == "var" || kw == "vars" => {
                    self.next();
                    let mut names = vec![self.expect_ident()?];
                    while let TokenKind::Ident(s) = self.peek().kind.clone() {
                        names.push(s);
                        self.next();
                    }
                    // Last "name" before `:` is consumed above; the sort
                    // follows the colon.
                    self.expect(&TokenKind::Colon)?;
                    let sort = self.expect_ident()?;
                    self.expect(&TokenKind::Period)?;
                    m.vars.push((names, sort));
                }
                TokenKind::Ident(kw) if kw == "eq" || kw == "ceq" => {
                    let kw_token = self.next();
                    let span = crate::ast::SourceSpan {
                        line: kw_token.line,
                        column: kw_token.column,
                    };
                    let conditional = kw == "ceq";
                    let mut label = None;
                    if self.peek().kind == TokenKind::LBracket {
                        self.next();
                        label = Some(self.expect_ident()?);
                        self.expect(&TokenKind::RBracket)?;
                        self.expect(&TokenKind::Colon)?;
                    }
                    let lhs = self.cmp_level(false)?;
                    self.expect(&TokenKind::Equals)?;
                    let rhs = self.term()?;
                    let cond = if conditional {
                        if !self.eat_keyword("if") {
                            return self.error("expected `if` in ceq");
                        }
                        Some(self.term()?)
                    } else {
                        None
                    };
                    self.expect(&TokenKind::Period)?;
                    m.eqs.push(EqAst {
                        label,
                        lhs,
                        rhs,
                        cond,
                        span: Some(span),
                    });
                }
                other => return self.error(format!("unexpected {other} in module body")),
            }
        }
        Ok(m)
    }
}

/// Parse the text of one `mod! … { … }` module.
///
/// # Errors
///
/// [`SpecError::Parse`] with position information.
pub fn parse_module(input: &str) -> Result<ModuleAst, SpecError> {
    let tokens = lex(input)?;
    let mut p = Parser { tokens, pos: 0 };
    let m = p.module()?;
    if p.peek().kind != TokenKind::Eof {
        return p.error("trailing input after module");
    }
    Ok(m)
}

/// Parse a standalone term.
///
/// # Errors
///
/// [`SpecError::Parse`] with position information.
pub fn parse_term_ast(input: &str) -> Result<TermAst, SpecError> {
    let tokens = lex(input)?;
    let mut p = Parser { tokens, pos: 0 };
    let t = p.term()?;
    if p.peek().kind != TokenKind::Eof {
        return p.error("trailing input after term");
    }
    Ok(t)
}

// ---- elaboration ----------------------------------------------------------

/// Scope used while elaborating term ASTs: module variables by name.
#[derive(Debug, Default)]
pub struct ElabScope {
    vars: HashMap<String, TermId>,
}

impl ElabScope {
    /// Empty scope (constants only).
    pub fn new() -> Self {
        ElabScope::default()
    }

    /// Bind a variable name to its occurrence term.
    pub fn bind(&mut self, name: &str, occurrence: TermId) {
        self.vars.insert(name.to_string(), occurrence);
    }
}

/// Elaborate a term AST against a specification.
///
/// # Errors
///
/// Resolution failures ([`SpecError::UnresolvedIdent`],
/// [`SpecError::UnknownOp`]) and kernel sort errors.
pub fn elaborate_term(
    spec: &mut Spec,
    scope: &ElabScope,
    ast: &TermAst,
) -> Result<TermId, SpecError> {
    match ast {
        TermAst::Ident(name) => {
            if let Some(&t) = scope.vars.get(name) {
                return Ok(t);
            }
            spec.const_term(name)
        }
        TermAst::App(name, args) => {
            let mut arg_terms = Vec::with_capacity(args.len());
            for a in args {
                arg_terms.push(elaborate_term(spec, scope, a)?);
            }
            match spec.app(name, &arg_terms) {
                Ok(t) => Ok(t),
                Err(first_err) => {
                    // `cpms(M , NW)` parses as a two-argument call, but the
                    // comma may be the bag constructor `_,_`: retry with the
                    // arguments folded right-associatively.
                    if let Some((&last, init @ [_, ..])) = arg_terms.split_last() {
                        let mut folded = last;
                        for &a in init.iter().rev() {
                            match spec.app("_,_", &[a, folded]) {
                                Ok(t) => folded = t,
                                Err(_) => return Err(first_err),
                            }
                        }
                        if let Ok(t) = spec.app(name, &[folded]) {
                            return Ok(t);
                        }
                    }
                    Err(first_err)
                }
            }
        }
        TermAst::Not(inner) => {
            let t = elaborate_term(spec, scope, inner)?;
            let alg = spec.alg().clone();
            Ok(alg.not(spec.store_mut(), t)?)
        }
        TermAst::Bin(op, lhs, rhs) => {
            let l = elaborate_term(spec, scope, lhs)?;
            let r = elaborate_term(spec, scope, rhs)?;
            let alg = spec.alg().clone();
            match op {
                BinOp::And => Ok(alg.and(spec.store_mut(), l, r)?),
                BinOp::Or => Ok(alg.or(spec.store_mut(), l, r)?),
                BinOp::Xor => Ok(alg.xor(spec.store_mut(), l, r)?),
                BinOp::Implies => Ok(alg.implies(spec.store_mut(), l, r)?),
                BinOp::Iff => Ok(alg.iff(spec.store_mut(), l, r)?),
                BinOp::Eq => spec.eq_term(l, r),
                BinOp::In => spec.app("_\\in_", &[l, r]),
                BinOp::BagCons => spec.app("_,_", &[l, r]),
            }
        }
    }
}

/// Elaborate a whole module AST into the specification.
///
/// Declarations are installed in order: imports, sorts, operators,
/// variables, then equations. Equation labels default to
/// `<module>-eq<index>`.
///
/// # Errors
///
/// Any resolution or validation failure, with the module partially
/// installed (callers usually abort on error).
pub fn elaborate_module(spec: &mut Spec, ast: &ModuleAst) -> Result<(), SpecError> {
    spec.begin_module(&ast.name);
    for import in &ast.imports {
        spec.import(import);
    }
    for s in &ast.visible_sorts {
        spec.visible_sort(s)?;
    }
    for s in &ast.hidden_sorts {
        spec.hidden_sort(s)?;
    }
    for op in &ast.ops {
        let args: Vec<&str> = op.args.iter().map(String::as_str).collect();
        let attrs = if op.constructor {
            OpAttrs::constructor()
        } else if op.behavioural {
            let hidden = spec
                .sort_id(&op.result)
                .map(|s| spec.store().signature().sort(s).kind.is_hidden())
                .unwrap_or(false);
            if hidden {
                OpAttrs::action()
            } else {
                OpAttrs::observer()
            }
        } else {
            OpAttrs::defined()
        };
        let id = spec.op(&op.name, &args, &op.result, attrs)?;
        if op.root {
            spec.mark_root(id);
        }
    }
    let mut scope = ElabScope::new();
    for (names, sort) in &ast.vars {
        for name in names {
            let occurrence = spec.var(name, sort)?;
            scope.bind(name, occurrence);
        }
    }
    for (i, eq) in ast.eqs.iter().enumerate() {
        let label = eq
            .label
            .clone()
            .unwrap_or_else(|| format!("{}-eq{}", ast.name, i + 1));
        let lhs = elaborate_term(spec, &scope, &eq.lhs)?;
        let rhs = elaborate_term(spec, &scope, &eq.rhs)?;
        let cond = match &eq.cond {
            None => None,
            Some(c) => Some(elaborate_term(spec, &scope, c)?),
        };
        if let Some(span) = eq.span {
            spec.record_equation_span(&label, span);
        }
        // Validate before installing: an equation that cannot be a rewrite
        // rule (unbound RHS variable, sort-incoherent sides, …) is
        // quarantined with its typed defect instead of aborting the load,
        // so lint can report every defective equation at its source span.
        let bool_sort = spec.alg().sort();
        match validate_rule(spec.store(), lhs, rhs, cond, Some(bool_sort)) {
            Ok(_) => match cond {
                None => spec.eq(&label, lhs, rhs)?,
                Some(c) => spec.ceq(&label, lhs, rhs, c)?,
            },
            Err(defect) => {
                let store = spec.store();
                let mut rendered = format!("{} = {}", store.display(lhs), store.display(rhs));
                if let Some(c) = cond {
                    use std::fmt::Write as _;
                    let _ = write!(rendered, " if {}", store.display(c));
                }
                spec.quarantine_equation(QuarantinedEquation {
                    label,
                    module: ast.name.clone(),
                    defect,
                    span: eq.span,
                    rendered,
                });
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;

    #[test]
    fn parses_a_full_module() {
        let src = r#"
            mod! BAG {
              pr(BOOL)
              [ Elt Bag ]
              op void : -> Bag {constr} .
              op _,_ : Elt Bag -> Bag {constr} .
              op _\in_ : Elt Bag -> Bool .
              vars E E2 : Elt .
              var B : Bag .
              eq E \in void = false .
              eq E \in (E2 , B) = (E = E2) or (E \in B) .
            }
        "#;
        let m = parse_module(src).unwrap();
        assert_eq!(m.name, "BAG");
        assert_eq!(m.imports, vec!["BOOL"]);
        assert_eq!(m.visible_sorts, vec!["Elt", "Bag"]);
        assert_eq!(m.ops.len(), 3);
        assert!(m.ops[0].constructor);
        assert_eq!(m.eqs.len(), 2);
    }

    #[test]
    fn elaborated_bag_membership_rewrites() {
        let src = r#"
            mod! BAG {
              [ Elt Bag ]
              op a : -> Elt {constr} .
              op b : -> Elt {constr} .
              op c : -> Elt {constr} .
              op void : -> Bag {constr} .
              op _,_ : Elt Bag -> Bag {constr} .
              op _\in_ : Elt Bag -> Bool .
              vars E E2 : Elt .
              var B : Bag .
              eq E \in void = false .
              eq E \in (E2 , B) = (E = E2) or (E \in B) .
            }
        "#;
        let mut spec = Spec::new().unwrap();
        let ast = parse_module(src).unwrap();
        elaborate_module(&mut spec, &ast).unwrap();
        // a \in (b , (a , void))  ->  true
        let t = {
            let scope = ElabScope::new();
            let ast = parse_term_ast(r"a \in (b , (a , void))").unwrap();
            elaborate_term(&mut spec, &scope, &ast).unwrap()
        };
        let alg = spec.alg().clone();
        let n = spec.red(t).unwrap();
        assert_eq!(alg.as_constant(spec.store(), n), Some(true));
        // c \in (b , (a , void))  ->  false
        let t2 = {
            let scope = ElabScope::new();
            let ast = parse_term_ast(r"c \in (b , (a , void))").unwrap();
            elaborate_term(&mut spec, &scope, &ast).unwrap()
        };
        let n2 = spec.red(t2).unwrap();
        assert_eq!(alg.as_constant(spec.store(), n2), Some(false));
    }

    #[test]
    fn parses_hidden_sorts_and_bops() {
        let src = r#"
            mod! MACHINE {
              [ Data ]
              *[ Sys ]*
              op d0 : -> Data {constr} .
              bop val : Sys -> Data .
              bop step : Sys -> Sys .
            }
        "#;
        let m = parse_module(src).unwrap();
        assert_eq!(m.hidden_sorts, vec!["Sys"]);
        let mut spec = Spec::new().unwrap();
        elaborate_module(&mut spec, &m).unwrap();
        let val = spec.store().signature().op_by_name("val").unwrap();
        let step = spec.store().signature().op_by_name("step").unwrap();
        assert_eq!(
            spec.store().signature().op(val).attrs.kind,
            equitls_kernel::op::OpKind::Observer
        );
        assert_eq!(
            spec.store().signature().op(step).attrs.kind,
            equitls_kernel::op::OpKind::Action
        );
    }

    #[test]
    fn conditional_equations_parse_and_fire() {
        let src = r#"
            mod! COND {
              [ S ]
              op c : -> S {constr} .
              op d : -> S {constr} .
              op pick : S S -> S .
              vars X Y : S .
              ceq pick(X, Y) = X if X = Y .
            }
        "#;
        let mut spec = Spec::new().unwrap();
        let ast = parse_module(src).unwrap();
        elaborate_module(&mut spec, &ast).unwrap();
        let scope = ElabScope::new();
        let same = parse_term_ast("pick(c, c)").unwrap();
        let same = elaborate_term(&mut spec, &scope, &same).unwrap();
        let diff = parse_term_ast("pick(c, d)").unwrap();
        let diff = elaborate_term(&mut spec, &scope, &diff).unwrap();
        let c = spec.const_term("c").unwrap();
        assert_eq!(spec.red(same).unwrap(), c);
        assert_eq!(spec.red(diff).unwrap(), diff);
    }

    #[test]
    fn labeled_equations_keep_their_labels() {
        let src = r#"
            mod! L {
              [ S ]
              op c : -> S {constr} .
              op f : S -> S .
              var X : S .
              eq [f-is-id] : f(X) = X .
            }
        "#;
        let mut spec = Spec::new().unwrap();
        let ast = parse_module(src).unwrap();
        elaborate_module(&mut spec, &ast).unwrap();
        assert_eq!(
            spec.modules().last().unwrap().equations,
            vec!["f-is-id".to_string()]
        );
    }

    #[test]
    fn elaboration_records_equation_spans() {
        let src = "mod! L {\n  [ S ]\n  op c : -> S {constr} .\n  op f : S -> S .\n  var X : S .\n  eq [f-is-id] : f(X) = X .\n  eq f(c) = c .\n}";
        let mut spec = Spec::new().unwrap();
        let ast = parse_module(src).unwrap();
        elaborate_module(&mut spec, &ast).unwrap();
        let labeled = spec.equation_span("f-is-id").unwrap();
        assert_eq!((labeled.line, labeled.column), (6, 3));
        // Unlabeled equations get the generated `<module>-eq<index>` label.
        let generated = spec.equation_span("L-eq2").unwrap();
        assert_eq!((generated.line, generated.column), (7, 3));
        assert!(spec.equation_span("missing").is_none());
    }

    #[test]
    fn operator_precedence_binds_as_documented() {
        // `a and b or c` parses as `(a and b) or c`;
        // `p implies q implies r` is right-associative.
        let t = parse_term_ast("a and b or c").unwrap();
        match t {
            TermAst::Bin(BinOp::Or, lhs, _) => {
                assert!(matches!(*lhs, TermAst::Bin(BinOp::And, _, _)));
            }
            other => panic!("unexpected parse: {other:?}"),
        }
        let t = parse_term_ast("p implies q implies r").unwrap();
        match t {
            TermAst::Bin(BinOp::Implies, _, rhs) => {
                assert!(matches!(*rhs, TermAst::Bin(BinOp::Implies, _, _)));
            }
            other => panic!("unexpected parse: {other:?}"),
        }
    }

    #[test]
    fn parse_errors_carry_positions() {
        let err = parse_module("mod! X { op f : -> }").unwrap_err();
        match err {
            SpecError::Parse { line, column, .. } => {
                assert_eq!(line, 1);
                assert!(column > 1);
            }
            other => panic!("expected parse error, got {other:?}"),
        }
    }
}
