//! Abstract syntax for the surface DSL.

/// A parsed term.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TermAst {
    /// Bare identifier: variable or constant.
    Ident(String),
    /// Prefix application `f(a, b)`.
    App(String, Vec<TermAst>),
    /// `not t`.
    Not(Box<TermAst>),
    /// Binary operation.
    Bin(BinOp, Box<TermAst>, Box<TermAst>),
}

/// Binary term-level operators, loosest-binding first.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `implies` (right-associative, loosest).
    Implies,
    /// `iff`.
    Iff,
    /// `xor`.
    Xor,
    /// `or`.
    Or,
    /// `and`.
    And,
    /// `=` (sort-resolved equality).
    Eq,
    /// `\in` (membership).
    In,
    /// `( a , b )` — bag/collection cons, always parenthesized.
    BagCons,
}

/// A parsed operator declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpAst {
    /// Declared with `bop` (observation/action operator).
    pub behavioural: bool,
    /// Operator name.
    pub name: String,
    /// Argument sort names.
    pub args: Vec<String>,
    /// Result sort name.
    pub result: String,
    /// `{constr}` attribute.
    pub constructor: bool,
    /// `{root}` attribute: an analysis root for dependency/reachability
    /// lint passes (an entry point external consumers call into).
    pub root: bool,
}

/// A position in the surface-DSL source text (1-based).
///
/// Carried from the parser through elaboration so diagnostics — parse
/// errors and `equitls-lint` findings alike — can point back at the
/// offending declaration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SourceSpan {
    /// 1-based line of the declaration's first token.
    pub line: usize,
    /// 1-based column of the declaration's first token.
    pub column: usize,
}

impl std::fmt::Display for SourceSpan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}", self.line, self.column)
    }
}

/// A parsed equation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EqAst {
    /// Optional label (`eq [label] : l = r .`).
    pub label: Option<String>,
    /// Left-hand side.
    pub lhs: TermAst,
    /// Right-hand side.
    pub rhs: TermAst,
    /// `if` condition for `ceq`.
    pub cond: Option<TermAst>,
    /// Position of the `eq`/`ceq` keyword; `None` for hand-built ASTs.
    pub span: Option<SourceSpan>,
}

/// A parsed module.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ModuleAst {
    /// Module name.
    pub name: String,
    /// `pr(NAME)` imports.
    pub imports: Vec<String>,
    /// Visible sorts (`[ A B ]`).
    pub visible_sorts: Vec<String>,
    /// Hidden sorts (`*[ H ]*`).
    pub hidden_sorts: Vec<String>,
    /// Operator declarations.
    pub ops: Vec<OpAst>,
    /// Variable declarations, `(names, sort)` per `var`/`vars` line.
    pub vars: Vec<(Vec<String>, String)>,
    /// Equations in declaration order.
    pub eqs: Vec<EqAst>,
}
