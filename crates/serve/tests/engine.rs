//! Engine-level robustness tests: the degradation ladder, panic
//! containment, worker supervision, and journal resume.

use std::path::PathBuf;

use equitls_obs::sink::Obs;
use equitls_serve::engine::{Admission, ServeConfig, ServeEngine};
use equitls_serve::proto::{JobKind, JobRequest};

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("equitls_engine_{}_{name}.snap", std::process::id()))
}

fn check(id: &str) -> JobRequest {
    JobRequest::new(id, JobKind::Check)
}

fn lint(id: &str) -> JobRequest {
    let mut req = JobRequest::new(id, JobKind::Lint);
    req.target = "standard".to_string();
    req
}

fn accepted(admission: Admission) -> u64 {
    match admission {
        Admission::Accepted { seq } => seq,
        other => panic!("expected acceptance, got {other:?}"),
    }
}

/// Manual mode (`workers: 0`) leaves admitted jobs queued, which lets
/// the test walk the load ladder level by level.
#[test]
fn backpressure_ladder_is_observable_and_bounded() {
    let config = ServeConfig {
        workers: 0,
        queue_cap: 8,
        ..ServeConfig::default()
    };
    let engine = ServeEngine::start(config, Obs::noop()).expect("engine starts");

    // Below 50% load everything is admitted as requested.
    for i in 0..3 {
        accepted(engine.submit(check(&format!("c{i}"))));
    }
    accepted(engine.submit(lint("l-low")));

    // At ≥ 50% load (4/8 queued) lint is shed with a typed response.
    let Admission::Shed { line } = engine.submit(lint("l-shed")) else {
        panic!("lint at half load must be shed");
    };
    assert!(line.contains("\"shed\""), "typed shed response: {line}");
    assert!(line.contains("shed-lint"), "degradation disclosed: {line}");

    // Fill to ≥ 75%: check scopes are shrunk, disclosed, and the
    // *effective* (journaled) request carries the shrunk limits — a
    // crash-replay re-runs the degraded job, not the original.
    for i in 3..6 {
        accepted(engine.submit(check(&format!("c{i}"))));
    }
    let seq = accepted(engine.submit(check("c-shrunk")));
    let entry = engine.journal_entry(seq).expect("journaled");
    assert_eq!(entry.degradation, vec!["scope-shrunk"]);
    assert_eq!(entry.request.max_states, Some(20_000));
    assert_eq!(entry.request.max_depth, Some(2));

    // c-shrunk was the 8th admission: the queue is now at the cap, so
    // the next submit gets a typed busy with a retry hint — the queue
    // never grows past the cap.
    let Admission::Busy { line } = engine.submit(check("c-over")) else {
        panic!("a full queue must answer busy");
    };
    assert!(line.contains("\"busy\""), "typed busy response: {line}");
    assert!(line.contains("\"retry_after_ms\":200"), "hint: {line}");
    assert!(
        line.contains("\"queue_depth\":8"),
        "depth disclosed: {line}"
    );

    // Invalid requests are rejected without being journaled.
    let mut bad = JobRequest::new("p-bad", JobKind::Prove);
    bad.property = "no-such-invariant".to_string();
    let Admission::Rejected { line } = engine.submit(bad) else {
        panic!("unknown property must be rejected");
    };
    assert!(line.contains("unknown-property"), "typed error: {line}");
    assert!(
        engine.journal_entry(8).is_none(),
        "rejects are not journaled"
    );
}

/// A poisoned job becomes a typed `worker-fault` response; the engine
/// keeps serving.
#[test]
fn panic_job_is_contained_as_a_typed_error() {
    let config = ServeConfig {
        workers: 0,
        allow_test_jobs: true,
        ..ServeConfig::default()
    };
    let engine = ServeEngine::start(config, Obs::noop()).expect("engine starts");
    let bomb = accepted(engine.submit(JobRequest::new("boom", JobKind::Panic)));
    let after = accepted(engine.submit(lint("after")));
    assert!(engine.run_next_job());
    assert!(engine.run_next_job());
    assert!(!engine.run_next_job(), "queue drained");

    let fault = engine.stable_response(bomb).expect("fault job completed");
    assert!(fault.contains("worker-fault"), "typed fault: {fault}");
    assert!(
        fault.contains("injected test panic (job boom)"),
        "panic message surfaced: {fault}"
    );
    let ok = engine.stable_response(after).expect("next job completed");
    assert!(
        ok.contains("\"status\":\"ok\""),
        "engine kept serving: {ok}"
    );
}

/// A `kill_worker` job takes its worker thread down *after* completing;
/// the supervisor respawns the worker and the queue keeps moving.
#[test]
fn supervisor_restarts_a_dead_worker() {
    let config = ServeConfig {
        workers: 1,
        allow_test_jobs: true,
        ..ServeConfig::default()
    };
    let engine = ServeEngine::start(config, Obs::noop()).expect("engine starts");
    let mut kill = JobRequest::new("kill", JobKind::Panic);
    kill.kill_worker = true;
    let kill_seq = accepted(engine.submit(kill));
    let after_seq = accepted(engine.submit(lint("survivor")));

    // `wait_response` returning at all proves the respawned worker ran
    // the follow-up job: the only original worker died on `kill`.
    let fault = engine.wait_response(kill_seq);
    assert!(fault.contains("worker-fault"), "typed fault: {fault}");
    let ok = engine.wait_response(after_seq);
    assert!(
        ok.contains("\"status\":\"ok\""),
        "served after restart: {ok}"
    );
    assert!(
        engine.worker_restarts() >= 1,
        "supervisor counted the restart"
    );
    engine.shutdown();
}

/// Kill-and-restart: completing part of a journaled queue, dropping the
/// engine (the `kill -9` stand-in), and resuming re-enqueues exactly the
/// unfinished suffix and produces the same results file byte-for-byte.
#[test]
fn resumed_journal_replays_the_unfinished_suffix() {
    let journal = tmp("resume");
    let straight = tmp("resume_straight");
    let resumed = tmp("resume_resumed");
    std::fs::remove_file(&journal).ok();

    let submit_all = |engine: &ServeEngine| {
        accepted(engine.submit(lint("j0")));
        accepted(engine.submit(check("j1")));
        accepted(engine.submit(lint("j2")));
    };

    // Interrupted run: complete 1 of 3, then "crash" (drop mid-queue).
    {
        let config = ServeConfig {
            workers: 0,
            journal_path: Some(journal.clone()),
            ..ServeConfig::default()
        };
        let engine = ServeEngine::start(config, Obs::noop()).expect("engine starts");
        submit_all(&engine);
        assert!(engine.run_next_job());
    }

    // Restart with --resume: the journal re-enqueues j1 and j2 only.
    {
        let config = ServeConfig {
            workers: 0,
            journal_path: Some(journal.clone()),
            resume: true,
            ..ServeConfig::default()
        };
        let engine = ServeEngine::start(config, Obs::noop()).expect("journal resumes");
        assert!(
            engine.journal_entry(0).unwrap().response.is_some(),
            "completed work survives the crash"
        );
        while engine.run_next_job() {}
        engine.write_results(&resumed).expect("results written");
    }

    // Straight-through run of the same jobs, no crash, no journal.
    {
        let config = ServeConfig {
            workers: 0,
            ..ServeConfig::default()
        };
        let engine = ServeEngine::start(config, Obs::noop()).expect("engine starts");
        submit_all(&engine);
        while engine.run_next_job() {}
        engine.write_results(&straight).expect("results written");
    }

    let a = std::fs::read(&resumed).expect("resumed results");
    let b = std::fs::read(&straight).expect("straight results");
    assert!(!a.is_empty());
    assert_eq!(
        a, b,
        "resumed results are byte-identical to straight-through"
    );
    for p in [&journal, &straight, &resumed] {
        std::fs::remove_file(p).ok();
    }
}
