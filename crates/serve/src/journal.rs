//! The crash-resumable job journal.
//!
//! Every accepted job is recorded *before* it runs; every completed
//! job's stable response is recorded when it finishes. The journal is a
//! single [`SnapshotKind::JobJournal`] snapshot rewritten atomically at
//! each transition (accept / complete), so a `kill -9` at any instant
//! leaves a journal describing exactly which jobs were admitted, in what
//! order, with which effective (post-degradation) parameters, and which
//! already finished. A restarted daemon re-enqueues the unfinished
//! suffix and re-executes it; since every job is a deterministic pure
//! function of its effective request, the replayed responses are
//! byte-identical to the ones the uninterrupted run would have produced
//! — the PR 5 determinism contract lifted to the service tier.
//!
//! Journal write failures (real or injected at
//! `FaultSite::PersistWrite`, scope `"journal"`) degrade crash-safety
//! only: the daemon keeps serving and counts
//! `persist.snapshot_failed`, matching the ledger and explorer writers.

use std::path::{Path, PathBuf};

use equitls_obs::json::{self, JsonValue};
use equitls_obs::sink::Obs;
use equitls_persist::prelude::*;
use equitls_rewrite::budget::FaultPlan;

use crate::proto::JobRequest;

/// One admitted job: its sequence number (admission order), effective
/// request, disclosed degradation steps, and — once finished — the
/// rendered stable response line.
#[derive(Debug, Clone)]
pub struct JournalEntry {
    /// Admission order, dense from 0.
    pub seq: u64,
    /// The effective request (degradation already applied).
    pub request: JobRequest,
    /// Degradation steps applied at admission (e.g. `"scope-shrunk"`),
    /// disclosed in the response.
    pub degradation: Vec<String>,
    /// The stable response line, once the job completed.
    pub response: Option<String>,
}

/// The journal: in-memory entries mirrored to an atomic snapshot.
#[derive(Debug)]
pub struct JobJournal {
    path: Option<PathBuf>,
    entries: Vec<JournalEntry>,
    fault_plan: Option<FaultPlan>,
    writes: u64,
}

impl JobJournal {
    /// An empty journal persisting to `path` (`None` = in-memory only,
    /// for tests and ephemeral daemons).
    pub fn new(path: Option<PathBuf>, fault_plan: Option<FaultPlan>) -> Self {
        JobJournal {
            path,
            entries: Vec::new(),
            fault_plan,
            writes: 0,
        }
    }

    /// Load a journal snapshot from `path`. The entries come back in
    /// admission order with their completion state intact.
    pub fn load(
        path: &Path,
        fault_plan: Option<FaultPlan>,
        obs: &Obs,
    ) -> Result<Self, PersistError> {
        let (_meta, payload) = read_snapshot(path, SnapshotKind::JobJournal, obs)?;
        let mut r = Reader::new(&payload);
        let n = r.seq_len(10)?;
        let mut entries = Vec::with_capacity(n);
        for _ in 0..n {
            let seq = r.u64()?;
            let request_line = r.str()?;
            let request = JobRequest::from_line(&request_line).map_err(|e| {
                PersistError::Malformed(format!("journal entry {seq}: bad request ({e})"))
            })?;
            let n_deg = r.seq_len(1)?;
            let mut degradation = Vec::with_capacity(n_deg);
            for _ in 0..n_deg {
                degradation.push(r.str()?);
            }
            let response = if r.bool()? { Some(r.str()?) } else { None };
            entries.push(JournalEntry {
                seq,
                request,
                degradation,
                response,
            });
        }
        if !r.is_empty() {
            return Err(PersistError::Malformed(
                "trailing bytes after journal entries".to_string(),
            ));
        }
        Ok(JobJournal {
            path: Some(path.to_path_buf()),
            entries,
            fault_plan,
            writes: 0,
        })
    }

    /// The entries, in admission order.
    pub fn entries(&self) -> &[JournalEntry] {
        &self.entries
    }

    /// The next sequence number to assign.
    pub fn next_seq(&self) -> u64 {
        self.entries.len() as u64
    }

    /// Record an admitted job and persist the transition.
    pub fn record_accept(
        &mut self,
        request: JobRequest,
        degradation: Vec<String>,
        obs: &Obs,
    ) -> u64 {
        let seq = self.next_seq();
        self.entries.push(JournalEntry {
            seq,
            request,
            degradation,
            response: None,
        });
        self.save(obs);
        seq
    }

    /// Record a completed job's stable response line and persist.
    pub fn record_done(&mut self, seq: u64, response_line: String, obs: &Obs) {
        if let Some(entry) = self.entries.get_mut(seq as usize) {
            entry.response = Some(response_line);
        }
        self.save(obs);
    }

    /// The completed responses, one line per job, in admission order.
    /// This is the byte-comparable "results" artifact: it contains only
    /// stable payloads, so an interrupted-then-resumed queue renders
    /// identically to a straight-through one.
    pub fn results_lines(&self) -> Vec<&str> {
        self.entries
            .iter()
            .filter_map(|e| e.response.as_deref())
            .collect()
    }

    /// Render the journal as a JSON summary (for `stats` responses).
    pub fn summary_json(&self) -> JsonValue {
        let done = self.entries.iter().filter(|e| e.response.is_some()).count();
        JsonValue::Object(vec![
            (
                "accepted".to_string(),
                JsonValue::Number(self.entries.len() as f64),
            ),
            ("completed".to_string(), JsonValue::Number(done as f64)),
        ])
    }

    /// Atomically rewrite the snapshot (warn-and-continue on failure;
    /// see the module docs). In-memory journals are a no-op.
    fn save(&mut self, obs: &Obs) {
        let Some(path) = self.path.clone() else {
            return;
        };
        let n = self.writes;
        self.writes += 1;
        let injected = self
            .fault_plan
            .as_ref()
            .is_some_and(|plan| plan.persist_write_fails("journal", n));
        if injected {
            obs.counter("persist.fault_injected", 1);
            obs.counter("persist.snapshot_failed", 1);
            return;
        }
        let mut w = Writer::new();
        w.usize(self.entries.len());
        for entry in &self.entries {
            w.u64(entry.seq);
            w.str(&entry.request.to_json().to_string());
            w.usize(entry.degradation.len());
            for d in &entry.degradation {
                w.str(d);
            }
            match &entry.response {
                Some(line) => {
                    w.bool(true);
                    w.str(line);
                }
                None => w.bool(false),
            }
        }
        if write_snapshot(&path, SnapshotKind::JobJournal, &w.into_bytes(), obs).is_err() {
            obs.counter("persist.snapshot_failed", 1);
        }
    }
}

/// Extract the canonical `degradation` array from a stable response
/// line, for clients that want to inspect disclosures.
pub fn response_degradation(line: &str) -> Vec<String> {
    let Ok(value) = json::parse(line) else {
        return Vec::new();
    };
    match value.get("degradation") {
        Some(JsonValue::Array(items)) => items
            .iter()
            .filter_map(|v| v.as_str().map(str::to_string))
            .collect(),
        _ => Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::JobKind;
    use equitls_rewrite::budget::{Fault, FaultKind, FaultSite};

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "equitls_journal_{}_{name}.snap",
            std::process::id()
        ))
    }

    #[test]
    fn journal_roundtrips_through_the_snapshot_layer() {
        let path = tmp("roundtrip");
        let obs = Obs::noop();
        let mut journal = JobJournal::new(Some(path.clone()), None);
        let mut req = JobRequest::new("a-1", JobKind::Prove);
        req.property = "inv1".to_string();
        let seq = journal.record_accept(req.clone(), vec!["scope-shrunk".to_string()], &obs);
        journal.record_done(seq, r#"{"id":"a-1","status":"ok"}"#.to_string(), &obs);
        let mut req2 = JobRequest::new("a-2", JobKind::Lint);
        req2.target = "standard".to_string();
        journal.record_accept(req2.clone(), Vec::new(), &obs);

        let back = JobJournal::load(&path, None, &obs).expect("journal loads");
        assert_eq!(back.entries().len(), 2);
        assert_eq!(back.entries()[0].request, req);
        assert_eq!(back.entries()[0].degradation, vec!["scope-shrunk"]);
        assert_eq!(
            back.entries()[0].response.as_deref(),
            Some(r#"{"id":"a-1","status":"ok"}"#)
        );
        assert_eq!(back.entries()[1].request, req2);
        assert!(back.entries()[1].response.is_none());
        assert_eq!(back.results_lines(), vec![r#"{"id":"a-1","status":"ok"}"#]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn injected_write_fault_degrades_without_losing_prior_snapshot() {
        let path = tmp("fault");
        let obs = Obs::noop();
        // Fail the second write (index 1): the first accept lands, the
        // completion transition does not — exactly a crash between the
        // two, which resume already handles.
        let plan = FaultPlan::new().with_fault(
            Fault::new(FaultSite::PersistWrite, FaultKind::IoError, 1).in_scope("journal"),
        );
        let mut journal = JobJournal::new(Some(path.clone()), Some(plan));
        let req = JobRequest::new("a-1", JobKind::Lint);
        let seq = journal.record_accept(req, Vec::new(), &obs);
        journal.record_done(seq, "{}".to_string(), &obs);

        let back = JobJournal::load(&path, None, &obs).expect("prior snapshot intact");
        assert_eq!(back.entries().len(), 1);
        assert!(
            back.entries()[0].response.is_none(),
            "the faulted write must not have landed"
        );
        std::fs::remove_file(&path).ok();
    }
}
