//! The serve engine: admission control, worker pool, supervision.
//!
//! The engine is the daemon's core, built as a library so tests and
//! benches can drive it in-process (deterministically, without sockets).
//! Responsibilities, in request order:
//!
//! 1. **Admission** ([`ServeEngine::submit`]): validate, then apply the
//!    backpressure ladder against the bounded queue. The queue *never*
//!    grows past `queue_cap` — overload is answered, not buffered.
//! 2. **Journaling**: every admitted job is recorded (with its effective,
//!    post-degradation parameters) before it can run, so a `kill -9`
//!    replays the queue bit-identically on restart.
//! 3. **Execution**: workers pop jobs in admission order and run them
//!    under `catch_unwind`; a poisoned job becomes a typed
//!    `worker-fault` response, never a dead daemon.
//! 4. **Supervision**: a supervisor thread respawns any worker that
//!    dies anyway (counted in `serve.worker_restart`).
//!
//! ## The degradation ladder
//!
//! Load is `queued + in-flight` against `queue_cap`:
//!
//! | load    | behaviour                                                |
//! |---------|----------------------------------------------------------|
//! | < 50%   | everything admitted as requested                         |
//! | ≥ 50%   | `lint` jobs shed with a typed `shed` response            |
//! | ≥ 75%   | `check` default scopes shrunk (disclosed `scope-shrunk`) |
//! | = 100%  | typed `busy` + `retry_after_ms` (client backs off)       |
//!
//! Every step is disclosed: shed/busy are typed responses, scope
//! shrinking lands in the response's `degradation` array *and* in the
//! journal (so a replayed queue re-runs the degraded job, not the
//! original — admission decisions are part of the recorded history).

use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

use equitls_obs::json::JsonValue;
use equitls_obs::sink::Obs;
use equitls_persist::PersistError;
use equitls_rewrite::budget::{panic_message, FaultPlan};

use crate::job;
use crate::journal::JobJournal;
use crate::proto::{self, JobKind, JobRequest};
use crate::warm::WarmState;

/// Worker stack size: prover obligations recurse deeply (case-split
/// trees), and with `jobs: 1` the obligation runs on the worker thread
/// itself — same sizing as `tls-prove`'s main thread.
const WORKER_STACK_BYTES: usize = 512 * 1024 * 1024;

/// Scope caps applied at degradation level 2 (load ≥ 75%).
const DEGRADED_MAX_STATES: usize = 20_000;
const DEGRADED_MAX_DEPTH: usize = 2;

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads. `0` = manual mode: no threads are spawned and a
    /// test drives execution with [`ServeEngine::run_next_job`] —
    /// deterministic interleaving control for the kill-and-restart
    /// tests.
    pub workers: usize,
    /// Bound on `queued + in-flight` jobs; admission above it answers
    /// `busy`.
    pub queue_cap: usize,
    /// Journal snapshot path (`None` = in-memory journal: admission
    /// history kept, crash-resumability off).
    pub journal_path: Option<PathBuf>,
    /// Re-enqueue the journal's unfinished jobs on startup.
    pub resume: bool,
    /// Daemon default for prove requests that do not set
    /// `shared_cache` themselves. **On** under the daemon — the resident
    /// cache is the warm path — while one-shot CLI runs keep the PR 8
    /// off-by-default contract.
    pub shared_cache: bool,
    /// The hint sent with `busy` responses.
    pub retry_after_ms: u64,
    /// Deterministic fault injection for the persist writers.
    pub fault_plan: Option<FaultPlan>,
    /// Admit test-only `panic` jobs.
    pub allow_test_jobs: bool,
    /// When set, `check` jobs spill cold visited-set shards under this
    /// directory (one `job<seq>` subdirectory per job) instead of
    /// truncating at a memory ceiling. See
    /// [`equitls_mc::explorer::ExploreConfig::spill_dir`].
    pub spill_dir: Option<PathBuf>,
    /// Resident-shard cap for spilling `check` jobs (`0` = pressure-only
    /// spilling).
    pub max_resident_shards: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 2,
            queue_cap: 32,
            journal_path: None,
            resume: false,
            shared_cache: true,
            retry_after_ms: 200,
            fault_plan: None,
            allow_test_jobs: false,
            spill_dir: None,
            max_resident_shards: 0,
        }
    }
}

/// The admission verdict for one submitted request.
#[derive(Debug, Clone)]
pub enum Admission {
    /// Journaled and queued; the response arrives via
    /// [`ServeEngine::wait_response`] or the results file.
    Accepted {
        /// The job's admission sequence number.
        seq: u64,
    },
    /// Queue full — the rendered `busy` response line.
    Busy {
        /// The stable `busy` response line.
        line: String,
    },
    /// Shed under overload — the rendered `shed` response line.
    Shed {
        /// The stable `shed` response line.
        line: String,
    },
    /// Invalid request — the rendered typed error line.
    Rejected {
        /// The stable error response line.
        line: String,
    },
}

struct EngineState {
    journal: JobJournal,
    queue: VecDeque<u64>,
    volatile: HashMap<u64, JsonValue>,
    in_flight: usize,
    draining: bool,
}

struct EngineInner {
    config: ServeConfig,
    warm: WarmState,
    obs: Obs,
    state: Mutex<EngineState>,
    work_cv: Condvar,
    done_cv: Condvar,
    restarts: AtomicU64,
}

/// The serve engine. Cheap to clone-share via [`Arc`]; the daemon holds
/// one and every connection thread submits through it.
pub struct ServeEngine {
    inner: Arc<EngineInner>,
    threads: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

/// Recover from a poisoned lock: engine state is only mutated through
/// short, panic-free critical sections, and after a contained worker
/// panic the state is still consistent — refusing to serve would turn
/// one poisoned job into a dead daemon.
fn lock_state(inner: &EngineInner) -> MutexGuard<'_, EngineState> {
    inner.state.lock().unwrap_or_else(PoisonError::into_inner)
}

impl ServeEngine {
    /// Build an engine (loading or resuming the journal as configured)
    /// and spawn its workers and supervisor.
    ///
    /// # Errors
    ///
    /// A `resume` without a readable, valid journal snapshot — a typed
    /// error, never a silent fresh start (mirroring the prover ledger).
    pub fn start(config: ServeConfig, obs: Obs) -> Result<Arc<Self>, PersistError> {
        let journal = match (&config.journal_path, config.resume) {
            (Some(path), true) => JobJournal::load(path, config.fault_plan.clone(), &obs)?,
            (path, _) => JobJournal::new(path.clone(), config.fault_plan.clone()),
        };
        // Re-enqueue the unfinished suffix in admission order.
        let queue: VecDeque<u64> = journal
            .entries()
            .iter()
            .filter(|e| e.response.is_none())
            .map(|e| e.seq)
            .collect();
        let inner = Arc::new(EngineInner {
            config,
            warm: WarmState::new(),
            obs,
            state: Mutex::new(EngineState {
                journal,
                queue,
                volatile: HashMap::new(),
                in_flight: 0,
                draining: false,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
            restarts: AtomicU64::new(0),
        });
        let engine = Arc::new(ServeEngine {
            inner: Arc::clone(&inner),
            threads: Mutex::new(Vec::new()),
        });
        if inner.config.workers > 0 {
            let mut threads = Vec::with_capacity(inner.config.workers + 1);
            let workers: Vec<_> = (0..inner.config.workers)
                .map(|i| spawn_worker(&inner, i))
                .collect();
            threads.push(spawn_supervisor(&inner, workers));
            *engine
                .threads
                .lock()
                .unwrap_or_else(PoisonError::into_inner) = threads;
        }
        Ok(engine)
    }

    /// Submit one request: validate, apply the backpressure ladder,
    /// journal, queue. Never blocks on job execution.
    pub fn submit(&self, request: JobRequest) -> Admission {
        let inner = &self.inner;
        if let Err((code, message)) = job::validate(&request, inner.config.allow_test_jobs) {
            inner.obs.counter("serve.rejected", 1);
            return Admission::Rejected {
                line: proto::error_response(&request.id, &code, &message).to_string(),
            };
        }
        let mut state = lock_state(inner);
        let cap = inner.config.queue_cap.max(1);
        let depth = state.queue.len() + state.in_flight;
        if state.draining || depth >= cap {
            inner.obs.counter("serve.busy", 1);
            return Admission::Busy {
                line: proto::busy_response(&request.id, inner.config.retry_after_ms, depth, cap)
                    .to_string(),
            };
        }
        // Level 1 (load ≥ 50%): shed lint jobs — they are advisory
        // analyses, the cheapest work to refuse outright.
        if request.kind == JobKind::Lint && depth * 2 >= cap {
            inner.obs.counter("serve.shed", 1);
            return Admission::Shed {
                line: proto::shed_response(
                    &request.id,
                    &format!("lint shed under overload ({depth}/{cap} slots in use)"),
                )
                .to_string(),
            };
        }
        // Level 2 (load ≥ 75%): shrink check scopes. The *effective*
        // request is journaled, so a crash-replay re-runs the degraded
        // job — admission decisions are part of the recorded history.
        let mut effective = request;
        let mut degradation = Vec::new();
        if effective.kind == JobKind::Check && depth * 4 >= cap * 3 {
            let states = effective.max_states.unwrap_or(usize::MAX);
            let depth_limit = effective.max_depth.unwrap_or(usize::MAX);
            if states > DEGRADED_MAX_STATES || depth_limit > DEGRADED_MAX_DEPTH {
                effective.max_states = Some(states.min(DEGRADED_MAX_STATES));
                effective.max_depth = Some(depth_limit.min(DEGRADED_MAX_DEPTH));
                degradation.push("scope-shrunk".to_string());
                inner.obs.counter("serve.degraded", 1);
            }
        }
        let seq = state
            .journal
            .record_accept(effective, degradation, &inner.obs);
        state.queue.push_back(seq);
        inner.obs.counter("serve.accepted", 1);
        inner.obs.gauge(
            "serve.queue_depth",
            (state.queue.len() + state.in_flight) as f64,
        );
        drop(state);
        inner.work_cv.notify_one();
        Admission::Accepted { seq }
    }

    /// Block until job `seq` completes and return its wire response:
    /// the stable line with the volatile section (`stats`, `warm`,
    /// optional `events`) appended.
    pub fn wait_response(&self, seq: u64) -> String {
        let inner = &self.inner;
        let mut state = lock_state(inner);
        loop {
            let done = state
                .journal
                .entries()
                .get(seq as usize)
                .and_then(|e| e.response.clone());
            if let Some(line) = done {
                let volatile = state.volatile.get(&seq).cloned();
                return render_wire(&line, volatile);
            }
            state = inner
                .done_cv
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// The stable response line for `seq`, if completed (journal form,
    /// no volatile section) — what the results file contains.
    pub fn stable_response(&self, seq: u64) -> Option<String> {
        let state = lock_state(&self.inner);
        state
            .journal
            .entries()
            .get(seq as usize)
            .and_then(|e| e.response.clone())
    }

    /// The journal entry for `seq`, if admitted — the *effective*
    /// request (post-degradation) plus its completion state.
    pub fn journal_entry(&self, seq: u64) -> Option<crate::journal::JournalEntry> {
        let state = lock_state(&self.inner);
        state.journal.entries().get(seq as usize).cloned()
    }

    /// Manual mode: pop and execute one queued job on the calling
    /// thread. Returns `false` when the queue is empty. Panics inside
    /// the job are contained exactly as in worker threads.
    pub fn run_next_job(&self) -> bool {
        run_one(&self.inner).is_some()
    }

    /// Stop admitting, wait for the queue and in-flight jobs to finish,
    /// and release the workers. Idempotent.
    pub fn drain(&self) {
        let inner = &self.inner;
        {
            let mut state = lock_state(inner);
            state.draining = true;
        }
        inner.work_cv.notify_all();
        let mut state = lock_state(inner);
        while !state.queue.is_empty() || state.in_flight > 0 {
            state = inner
                .done_cv
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
        drop(state);
        inner.work_cv.notify_all();
    }

    /// [`drain`](Self::drain), then join every engine thread.
    pub fn shutdown(&self) {
        self.drain();
        let threads =
            std::mem::take(&mut *self.threads.lock().unwrap_or_else(PoisonError::into_inner));
        for handle in threads {
            let _ = handle.join();
        }
    }

    /// Write the results file: every completed job's stable response,
    /// one line per job, in admission order. Byte-identical between an
    /// interrupted-then-resumed queue and a straight-through one.
    ///
    /// # Errors
    ///
    /// Filesystem errors from the underlying write.
    pub fn write_results(&self, path: &Path) -> std::io::Result<()> {
        let state = lock_state(&self.inner);
        let mut out = String::new();
        for line in state.journal.results_lines() {
            out.push_str(line);
            out.push('\n');
        }
        std::fs::write(path, out)
    }

    /// Engine statistics as a stable-ordered JSON object (the `stats`
    /// control response).
    pub fn stats_json(&self) -> JsonValue {
        let inner = &self.inner;
        let state = lock_state(inner);
        let warm = inner.warm.stats();
        let nf = inner.warm.nf_cache(false).stats();
        JsonValue::Object(vec![
            ("queue".to_string(), state.journal.summary_json()),
            (
                "queue_depth".to_string(),
                JsonValue::Number((state.queue.len() + state.in_flight) as f64),
            ),
            (
                "queue_cap".to_string(),
                JsonValue::Number(inner.config.queue_cap as f64),
            ),
            ("draining".to_string(), JsonValue::Bool(state.draining)),
            (
                "model_builds".to_string(),
                JsonValue::Number(warm.model_builds as f64),
            ),
            (
                "model_reuses".to_string(),
                JsonValue::Number(warm.model_reuses as f64),
            ),
            (
                "shared_nf_hits".to_string(),
                JsonValue::Number(nf.hits as f64),
            ),
            (
                "shared_nf_published".to_string(),
                JsonValue::Number(nf.published as f64),
            ),
            (
                "worker_restarts".to_string(),
                JsonValue::Number(inner.restarts.load(Ordering::Relaxed) as f64),
            ),
        ])
    }

    /// Worker restarts performed by the supervisor.
    pub fn worker_restarts(&self) -> u64 {
        self.inner.restarts.load(Ordering::Relaxed)
    }

    /// The warm state (for benches measuring cold vs. warm).
    pub fn warm(&self) -> &WarmState {
        &self.inner.warm
    }

    /// Whether a drain was requested.
    pub fn draining(&self) -> bool {
        lock_state(&self.inner).draining
    }
}

/// Append the volatile section to a stable response line for the wire.
fn render_wire(stable_line: &str, volatile: Option<JsonValue>) -> String {
    let Some(volatile) = volatile else {
        return stable_line.to_string();
    };
    match equitls_obs::json::parse(stable_line) {
        Ok(JsonValue::Object(mut fields)) => {
            fields.push(("volatile".to_string(), volatile));
            JsonValue::Object(fields).to_string()
        }
        _ => stable_line.to_string(),
    }
}

/// Pop one job and execute it. Returns the seq it ran and whether the
/// job asked to take its worker down (`kill_worker`), or `None` when the
/// queue was empty. Shared by worker threads and manual mode.
fn run_one(inner: &EngineInner) -> Option<(u64, bool)> {
    let (seq, entry) = {
        let mut state = lock_state(inner);
        let seq = state.queue.pop_front()?;
        let entry = state.journal.entries()[seq as usize].clone();
        state.in_flight += 1;
        (seq, entry)
    };
    let kills_worker = entry.request.kind == JobKind::Panic && entry.request.kill_worker;
    let was_warm = inner.warm.is_warm(entry.request.variant);
    let started = Instant::now();
    let trace_sink = entry
        .request
        .trace
        .then(|| Arc::new(equitls_obs::sink::RecordingSink::new()));
    let job_obs = match &trace_sink {
        Some(sink) => Obs::new(Arc::clone(sink) as Arc<dyn equitls_obs::sink::EventSink>),
        None => inner.obs.clone(),
    };
    let stable = match catch_unwind(AssertUnwindSafe(|| {
        job::execute(
            seq,
            &entry.request,
            &entry.degradation,
            &inner.warm,
            inner.config.shared_cache,
            &job::SpillOptions {
                dir: inner.config.spill_dir.clone(),
                max_resident_shards: inner.config.max_resident_shards,
            },
            &job_obs,
        )
    })) {
        Ok(response) => response,
        Err(payload) => {
            inner.obs.counter("serve.worker_fault", 1);
            proto::error_response(
                &entry.request.id,
                "worker-fault",
                &format!("job panicked: {}", panic_message(&*payload)),
            )
        }
    };
    let mut volatile_fields = vec![
        (
            "duration_ms".to_string(),
            JsonValue::Number(started.elapsed().as_secs_f64() * 1e3),
        ),
        ("warm".to_string(), JsonValue::Bool(was_warm)),
    ];
    if let Some(sink) = &trace_sink {
        let events: Vec<JsonValue> = sink.timed_events().iter().map(|t| t.to_json()).collect();
        volatile_fields.push(("events".to_string(), JsonValue::Array(events)));
    }
    {
        let mut state = lock_state(inner);
        state
            .journal
            .record_done(seq, stable.to_string(), &inner.obs);
        state
            .volatile
            .insert(seq, JsonValue::Object(volatile_fields));
        state.in_flight -= 1;
        inner.obs.counter("serve.completed", 1);
    }
    inner.done_cv.notify_all();
    Some((seq, kills_worker))
}

fn spawn_worker(inner: &Arc<EngineInner>, index: usize) -> std::thread::JoinHandle<()> {
    let inner = Arc::clone(inner);
    std::thread::Builder::new()
        .name(format!("serve-worker-{index}"))
        .stack_size(WORKER_STACK_BYTES)
        .spawn(move || worker_loop(&inner))
        .expect("spawn serve worker")
}

fn worker_loop(inner: &EngineInner) {
    loop {
        {
            let mut state = lock_state(inner);
            while state.queue.is_empty() {
                if state.draining {
                    return;
                }
                state = inner
                    .work_cv
                    .wait(state)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }
        // Test hook: a `panic` job with `kill_worker` completes with a
        // typed error, then takes its worker thread down — exercising
        // the supervisor's restart path end to end.
        if let Some((_, kills_worker)) = run_one(inner) {
            if kills_worker {
                return;
            }
        }
    }
}

fn spawn_supervisor(
    inner: &Arc<EngineInner>,
    workers: Vec<std::thread::JoinHandle<()>>,
) -> std::thread::JoinHandle<()> {
    let inner = Arc::clone(inner);
    std::thread::Builder::new()
        .name("serve-supervisor".to_string())
        .spawn(move || {
            let mut workers = workers;
            loop {
                std::thread::sleep(Duration::from_millis(25));
                let draining = lock_state(&inner).draining;
                if draining {
                    // Drain: let workers exit, join them, and stop.
                    inner.work_cv.notify_all();
                    for handle in workers {
                        let _ = handle.join();
                    }
                    return;
                }
                for (i, handle) in workers.iter_mut().enumerate() {
                    if handle.is_finished() {
                        inner.obs.counter("serve.worker_restart", 1);
                        inner.restarts.fetch_add(1, Ordering::Relaxed);
                        let fresh = spawn_worker(&inner, i);
                        let dead = std::mem::replace(handle, fresh);
                        let _ = dead.join();
                    }
                }
            }
        })
        .expect("spawn serve supervisor")
}
