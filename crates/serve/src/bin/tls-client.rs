//! `tls-client`: submit verification jobs to a running `equitls-serve`.
//!
//! ```text
//! tls-client --socket /tmp/equitls.sock prove inv1
//! tls-client --socket s.sock check --max-depth 2
//! tls-client --socket s.sock lint --target standard
//! tls-client --socket s.sock ping | stats | drain | shutdown
//! tls-client --socket s.sock --stdin < jobs.jsonl
//! ```
//!
//! On a `busy` reply the client retries with capped exponential backoff
//! and seeded jitter (`--backoff-seed`, deterministic under test),
//! floored by the daemon's `retry_after_ms` hint. `--ack` submits
//! asynchronously (the daemon answers `accepted` immediately and the
//! result lands in the journal/results file).
//!
//! Exit codes: **0** every reply `ok`/`accepted`/control, **1** a typed
//! error or shed reply, **2** usage or connection error, **3** still
//! busy after `--max-retries`.

use std::io::{BufRead, BufReader, Read, Write};
use std::path::PathBuf;

use equitls_obs::json::{self, JsonValue};
use equitls_serve::backoff::Backoff;

struct Options {
    socket: Option<PathBuf>,
    tcp: Option<String>,
    max_retries: u32,
    backoff_seed: u64,
    backoff_base_ms: u64,
    backoff_cap_ms: u64,
    stdin: bool,
    /// The request built from the positional command, if any.
    request: Vec<(String, JsonValue)>,
}

fn numeric_flag(args: &mut impl Iterator<Item = String>, flag: &str, hint: &str) -> u64 {
    args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
        eprintln!("{flag} needs {hint}");
        std::process::exit(2);
    })
}

fn parse_args() -> Options {
    let mut opts = Options {
        socket: None,
        tcp: None,
        max_retries: 5,
        backoff_seed: 0,
        backoff_base_ms: 50,
        backoff_cap_ms: 2_000,
        stdin: false,
        request: Vec::new(),
    };
    let mut fields: Vec<(String, JsonValue)> = Vec::new();
    let mut id = String::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--socket" => {
                opts.socket = args.next().map(PathBuf::from);
                if opts.socket.is_none() {
                    eprintln!("--socket needs a path");
                    std::process::exit(2);
                }
            }
            "--tcp" => {
                opts.tcp = args.next();
                if opts.tcp.is_none() {
                    eprintln!("--tcp needs an address (e.g. --tcp 127.0.0.1:7878)");
                    std::process::exit(2);
                }
            }
            "--max-retries" => {
                opts.max_retries =
                    numeric_flag(&mut args, "--max-retries", "a count (e.g. --max-retries 5)")
                        as u32;
            }
            "--backoff-seed" => {
                opts.backoff_seed = numeric_flag(
                    &mut args,
                    "--backoff-seed",
                    "a seed (e.g. --backoff-seed 7)",
                );
            }
            "--backoff-base-ms" => {
                opts.backoff_base_ms = numeric_flag(
                    &mut args,
                    "--backoff-base-ms",
                    "milliseconds (e.g. --backoff-base-ms 50)",
                );
            }
            "--backoff-cap-ms" => {
                opts.backoff_cap_ms = numeric_flag(
                    &mut args,
                    "--backoff-cap-ms",
                    "milliseconds (e.g. --backoff-cap-ms 2000)",
                );
            }
            "--stdin" => opts.stdin = true,
            "--id" => {
                id = args.next().unwrap_or_else(|| {
                    eprintln!("--id needs a request id");
                    std::process::exit(2);
                });
            }
            "--variant" => fields.push(("variant".into(), JsonValue::Bool(true))),
            "--ack" => fields.push(("ack".into(), JsonValue::Bool(true))),
            "--trace-events" => fields.push(("trace".into(), JsonValue::Bool(true))),
            "--shared-cache" => fields.push(("shared_cache".into(), JsonValue::Bool(true))),
            "--no-shared-cache" => fields.push(("shared_cache".into(), JsonValue::Bool(false))),
            "--jobs" => {
                let n = numeric_flag(&mut args, "--jobs", "a thread count (e.g. --jobs 2)");
                fields.push(("jobs".into(), JsonValue::Number(n as f64)));
            }
            "--deadline-ms" => {
                let n = numeric_flag(&mut args, "--deadline-ms", "milliseconds");
                fields.push(("deadline_ms".into(), JsonValue::Number(n as f64)));
            }
            "--fuel" => {
                let n = numeric_flag(&mut args, "--fuel", "a rewrite-step budget");
                fields.push(("fuel".into(), JsonValue::Number(n as f64)));
            }
            "--max-messages" => {
                let n = numeric_flag(&mut args, "--max-messages", "a message bound");
                fields.push(("max_messages".into(), JsonValue::Number(n as f64)));
            }
            "--max-depth" => {
                let n = numeric_flag(&mut args, "--max-depth", "a depth bound");
                fields.push(("max_depth".into(), JsonValue::Number(n as f64)));
            }
            "--max-states" => {
                let n = numeric_flag(&mut args, "--max-states", "a state bound");
                fields.push(("max_states".into(), JsonValue::Number(n as f64)));
            }
            "--target" => {
                let t = args.next().unwrap_or_else(|| {
                    eprintln!("--target needs standard|variant");
                    std::process::exit(2);
                });
                fields.push(("target".into(), JsonValue::String(t)));
            }
            "prove" => {
                let property = args.next().unwrap_or_else(|| {
                    eprintln!("prove needs a property name (e.g. prove inv1)");
                    std::process::exit(2);
                });
                fields.insert(0, ("kind".into(), JsonValue::String("prove".into())));
                fields.push(("property".into(), JsonValue::String(property)));
            }
            cmd @ ("check" | "lint" | "ping" | "stats" | "drain" | "shutdown") => {
                fields.insert(0, ("kind".into(), JsonValue::String(cmd.into())));
            }
            other => {
                eprintln!("unknown argument {other}");
                std::process::exit(2);
            }
        }
    }
    if opts.socket.is_none() && opts.tcp.is_none() {
        eprintln!("need a daemon address: --socket <path> or --tcp <addr>");
        std::process::exit(2);
    }
    if !opts.stdin {
        if fields.iter().all(|(k, _)| k != "kind") {
            eprintln!("need a command (prove|check|lint|ping|stats|drain|shutdown) or --stdin");
            std::process::exit(2);
        }
        if id.is_empty() {
            id = "cli".to_string();
        }
        fields.insert(0, ("id".into(), JsonValue::String(id)));
    }
    opts.request = fields;
    opts
}

fn main() {
    let opts = parse_args();
    let lines: Vec<String> = if opts.stdin {
        let mut input = String::new();
        if std::io::stdin().read_to_string(&mut input).is_err() {
            eprintln!("tls-client: cannot read stdin");
            std::process::exit(2);
        }
        input
            .lines()
            .map(str::trim)
            .filter(|l| !l.is_empty())
            .map(str::to_string)
            .collect()
    } else {
        vec![JsonValue::Object(opts.request.clone()).to_string()]
    };

    let mut backoff = Backoff::new(opts.backoff_seed, opts.backoff_base_ms, opts.backoff_cap_ms);
    let mut worst = 0;
    for line in &lines {
        let code = submit_with_retry(&opts, line, &mut backoff);
        worst = worst.max(code);
    }
    std::process::exit(worst);
}

/// Send one request line, retrying through `busy` replies. Prints every
/// reply (including the intermediate `busy` ones) to stdout.
fn submit_with_retry(opts: &Options, line: &str, backoff: &mut Backoff) -> i32 {
    for attempt in 0..=opts.max_retries {
        let reply = match exchange(opts, line) {
            Ok(reply) => reply,
            Err(e) => {
                eprintln!("tls-client: connection failed: {e}");
                return 2;
            }
        };
        println!("{reply}");
        let status = json::parse(&reply)
            .ok()
            .and_then(|v| v.get("status").and_then(|s| s.as_str()).map(str::to_string))
            .unwrap_or_default();
        match status.as_str() {
            "busy" => {
                let hint = json::parse(&reply)
                    .ok()
                    .and_then(|v| match v.get("retry_after_ms") {
                        Some(JsonValue::Number(n)) => Some(*n as u64),
                        _ => None,
                    })
                    .unwrap_or(0);
                let delay = backoff.delay_with_hint_ms(attempt, hint);
                eprintln!("tls-client: busy, retrying in {delay} ms (attempt {attempt})");
                std::thread::sleep(std::time::Duration::from_millis(delay));
            }
            "ok" | "accepted" => return 0,
            _ => return 1,
        }
    }
    eprintln!("tls-client: still busy after {} retries", opts.max_retries);
    3
}

/// One connect / send / receive round trip.
fn exchange(opts: &Options, line: &str) -> std::io::Result<String> {
    match (&opts.socket, &opts.tcp) {
        (Some(path), _) => {
            let stream = std::os::unix::net::UnixStream::connect(path)?;
            roundtrip(stream, line)
        }
        (None, Some(addr)) => {
            let stream = std::net::TcpStream::connect(addr)?;
            roundtrip(stream, line)
        }
        (None, None) => unreachable!("parse_args requires an address"),
    }
}

fn roundtrip<S: Read + Write + Clone2>(stream: S, line: &str) -> std::io::Result<String> {
    let mut writer = stream.clone2()?;
    writeln!(writer, "{line}")?;
    writer.flush()?;
    let mut reply = String::new();
    BufReader::new(stream).read_line(&mut reply)?;
    if reply.is_empty() {
        return Err(std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            "daemon closed the connection without replying",
        ));
    }
    Ok(reply.trim_end().to_string())
}

/// `try_clone` unified across `UnixStream` and `TcpStream`.
trait Clone2: Sized {
    fn clone2(&self) -> std::io::Result<Self>;
}

impl Clone2 for std::os::unix::net::UnixStream {
    fn clone2(&self) -> std::io::Result<Self> {
        self.try_clone()
    }
}

impl Clone2 for std::net::TcpStream {
    fn clone2(&self) -> std::io::Result<Self> {
        self.try_clone()
    }
}
