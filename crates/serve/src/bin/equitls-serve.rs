//! `equitls-serve`: the always-warm verification daemon.
//!
//! ```text
//! equitls-serve --socket /tmp/equitls.sock --journal queue.snap
//! equitls-serve --socket s.sock --journal queue.snap --resume --results out.jsonl
//! equitls-serve --tcp 127.0.0.1:7878 --workers 4
//! ```
//!
//! Speaks newline-delimited JSON over a Unix socket (`--socket`) or,
//! optionally, TCP (`--tcp`). Each line is one request; each reply is one
//! line. Job kinds `prove` / `check` / `lint` run on the supervised
//! worker pool; control kinds `ping` / `stats` / `drain` / `shutdown`
//! are answered inline.
//!
//! Robustness behaviour:
//!
//! * a full queue answers `busy` with `retry_after_ms` (never blocks,
//!   never buffers unboundedly);
//! * under load the daemon degrades gracefully — lint shed at ≥ 50%,
//!   check scopes shrunk at ≥ 75% — and every degradation is disclosed
//!   in the affected response;
//! * a panicking job becomes a typed `worker-fault` response and the
//!   supervisor restarts the worker; the daemon survives;
//! * SIGTERM/SIGINT drain the queue, checkpoint the journal, write the
//!   results file, and exit **130**;
//! * `kill -9` loses nothing that was admitted: restart with `--resume`
//!   and the journal replays the unfinished suffix bit-identically.
//!
//! Exit codes: **0** clean shutdown (drain or `shutdown` request),
//! **130** signal-initiated drain, **2** usage or startup error.

use std::io::{BufRead, BufReader, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use equitls_obs::json::JsonValue;
use equitls_obs::sink::{EventSink, JsonlSink, Obs};
use equitls_persist::signal;
use equitls_serve::engine::{Admission, ServeConfig, ServeEngine};
use equitls_serve::proto::{self, JobRequest};

struct Options {
    socket: Option<PathBuf>,
    tcp: Option<String>,
    workers: usize,
    queue_cap: usize,
    journal: Option<PathBuf>,
    resume: bool,
    results: Option<PathBuf>,
    retry_after_ms: u64,
    shared_cache: bool,
    allow_test_jobs: bool,
    trace: Option<PathBuf>,
    spill_dir: Option<PathBuf>,
    max_resident_shards: usize,
}

fn numeric_flag(args: &mut impl Iterator<Item = String>, flag: &str, hint: &str) -> u64 {
    args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
        eprintln!("{flag} needs {hint}");
        std::process::exit(2);
    })
}

fn path_flag(args: &mut impl Iterator<Item = String>, flag: &str, hint: &str) -> PathBuf {
    args.next().map(PathBuf::from).unwrap_or_else(|| {
        eprintln!("{flag} needs {hint}");
        std::process::exit(2);
    })
}

fn parse_args() -> Options {
    let mut opts = Options {
        socket: None,
        tcp: None,
        workers: 2,
        queue_cap: 32,
        journal: None,
        resume: false,
        results: None,
        retry_after_ms: 200,
        // Under the daemon the resident NF cache is the warm path:
        // shared-cache defaults ON (one-shot CLIs keep it opt-in).
        shared_cache: true,
        allow_test_jobs: false,
        trace: None,
        spill_dir: None,
        max_resident_shards: 0,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--socket" => {
                opts.socket = Some(path_flag(
                    &mut args,
                    "--socket",
                    "a path (e.g. --socket /tmp/equitls.sock)",
                ));
            }
            "--tcp" => {
                opts.tcp = args.next();
                if opts.tcp.is_none() {
                    eprintln!("--tcp needs an address (e.g. --tcp 127.0.0.1:7878)");
                    std::process::exit(2);
                }
            }
            "--workers" => {
                opts.workers = numeric_flag(
                    &mut args,
                    "--workers",
                    "a worker-thread count (e.g. --workers 4)",
                ) as usize;
                if opts.workers == 0 {
                    eprintln!("--workers must be at least 1 (manual mode is library-only)");
                    std::process::exit(2);
                }
            }
            "--queue-cap" => {
                opts.queue_cap = numeric_flag(
                    &mut args,
                    "--queue-cap",
                    "a queue bound (e.g. --queue-cap 32)",
                ) as usize;
            }
            "--journal" => {
                opts.journal = Some(path_flag(
                    &mut args,
                    "--journal",
                    "a snapshot path (e.g. --journal queue.snap)",
                ));
            }
            "--resume" => opts.resume = true,
            "--results" => {
                opts.results = Some(path_flag(
                    &mut args,
                    "--results",
                    "an output path (e.g. --results out.jsonl)",
                ));
            }
            "--retry-after-ms" => {
                opts.retry_after_ms = numeric_flag(
                    &mut args,
                    "--retry-after-ms",
                    "a backoff hint in milliseconds (e.g. --retry-after-ms 200)",
                );
            }
            "--no-shared-cache" => opts.shared_cache = false,
            "--allow-test-jobs" => opts.allow_test_jobs = true,
            "--spill-dir" => {
                opts.spill_dir = Some(path_flag(
                    &mut args,
                    "--spill-dir",
                    "a directory for visited-set spill files (e.g. --spill-dir /tmp/equitls-spill)",
                ));
            }
            "--max-resident-shards" => {
                opts.max_resident_shards = numeric_flag(
                    &mut args,
                    "--max-resident-shards",
                    "a shard cap (e.g. --max-resident-shards 8)",
                ) as usize;
            }
            "--trace" => {
                opts.trace = Some(path_flag(
                    &mut args,
                    "--trace",
                    "a file path (e.g. --trace serve.jsonl)",
                ));
            }
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
    }
    if opts.socket.is_none() && opts.tcp.is_none() {
        eprintln!("need a listener: --socket <path> or --tcp <addr>");
        std::process::exit(2);
    }
    if opts.resume && opts.journal.is_none() {
        eprintln!("--resume needs --journal <path> (the queue snapshot to replay)");
        std::process::exit(2);
    }
    opts
}

/// A `shutdown`/`drain` request arrived over a connection.
static STOP_REQUESTED: AtomicBool = AtomicBool::new(false);

fn main() {
    let opts = parse_args();
    let obs = match &opts.trace {
        Some(path) => match JsonlSink::create(path) {
            Ok(sink) => Obs::new(Arc::new(sink) as Arc<dyn EventSink>),
            Err(e) => {
                eprintln!("cannot open trace file {}: {e}", path.display());
                std::process::exit(2);
            }
        },
        None => Obs::noop(),
    };
    signal::install_term_flag();

    let config = ServeConfig {
        workers: opts.workers,
        queue_cap: opts.queue_cap,
        journal_path: opts.journal.clone(),
        resume: opts.resume,
        shared_cache: opts.shared_cache,
        retry_after_ms: opts.retry_after_ms,
        fault_plan: None,
        allow_test_jobs: opts.allow_test_jobs,
        spill_dir: opts.spill_dir.clone(),
        max_resident_shards: opts.max_resident_shards,
    };
    let engine = match ServeEngine::start(config, obs) {
        Ok(engine) => engine,
        Err(e) => {
            eprintln!("equitls-serve: cannot start: {e}");
            std::process::exit(2);
        }
    };

    serve_connections(&opts, &engine);

    // Drain: stop admitting, finish the queue, checkpoint, report.
    engine.drain();
    if let Some(path) = &opts.results {
        if let Err(e) = engine.write_results(path) {
            eprintln!(
                "equitls-serve: warning: cannot write results {} ({e})",
                path.display()
            );
        }
    }
    engine.shutdown();
    if let Some(path) = &opts.socket {
        std::fs::remove_file(path).ok();
    }
    if signal::term_requested() {
        eprintln!(
            "equitls-serve: drained after {}; journal checkpointed",
            signal::term_signal_name().unwrap_or("signal")
        );
        std::process::exit(signal::TERM_EXIT_CODE);
    }
}

/// Accept connections until a signal or a `drain`/`shutdown` request.
fn serve_connections(opts: &Options, engine: &Arc<ServeEngine>) {
    let stop = || signal::term_requested() || STOP_REQUESTED.load(Ordering::SeqCst);
    match (&opts.socket, &opts.tcp) {
        (Some(path), _) => {
            std::fs::remove_file(path).ok(); // stale socket from a kill -9
            let listener = std::os::unix::net::UnixListener::bind(path).unwrap_or_else(|e| {
                eprintln!("equitls-serve: cannot bind {}: {e}", path.display());
                std::process::exit(2);
            });
            listener
                .set_nonblocking(true)
                .expect("nonblocking listener");
            eprintln!("equitls-serve: listening on {}", path.display());
            while !stop() {
                match listener.accept() {
                    Ok((stream, _)) => {
                        stream.set_nonblocking(false).ok();
                        let engine = Arc::clone(engine);
                        std::thread::spawn(move || {
                            let reader = match stream.try_clone() {
                                Ok(clone) => BufReader::new(clone),
                                Err(_) => return,
                            };
                            handle_connection(reader, stream, &engine);
                        });
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(50));
                    }
                    Err(e) => {
                        eprintln!("equitls-serve: accept failed: {e}");
                        std::thread::sleep(Duration::from_millis(50));
                    }
                }
            }
        }
        (None, Some(addr)) => {
            let listener = std::net::TcpListener::bind(addr).unwrap_or_else(|e| {
                eprintln!("equitls-serve: cannot bind {addr}: {e}");
                std::process::exit(2);
            });
            listener
                .set_nonblocking(true)
                .expect("nonblocking listener");
            eprintln!("equitls-serve: listening on {addr}");
            while !stop() {
                match listener.accept() {
                    Ok((stream, _)) => {
                        stream.set_nonblocking(false).ok();
                        let engine = Arc::clone(engine);
                        std::thread::spawn(move || {
                            let reader = match stream.try_clone() {
                                Ok(clone) => BufReader::new(clone),
                                Err(_) => return,
                            };
                            handle_connection(reader, stream, &engine);
                        });
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(50));
                    }
                    Err(e) => {
                        eprintln!("equitls-serve: accept failed: {e}");
                        std::thread::sleep(Duration::from_millis(50));
                    }
                }
            }
        }
        (None, None) => unreachable!("parse_args requires a listener"),
    }
}

/// One connection: a line in, a line out, until EOF.
fn handle_connection<R: BufRead, W: Write>(reader: R, mut writer: W, engine: &ServeEngine) {
    for line in reader.lines() {
        let Ok(line) = line else { return };
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let reply = dispatch_line(line, engine);
        if writeln!(writer, "{reply}").is_err() || writer.flush().is_err() {
            return;
        }
        if STOP_REQUESTED.load(Ordering::SeqCst) {
            return;
        }
    }
}

/// Route one request line: control kinds inline, job kinds through
/// admission.
fn dispatch_line(line: &str, engine: &ServeEngine) -> String {
    let id = equitls_obs::json::parse(line)
        .ok()
        .and_then(|v| v.get("id").and_then(|v| v.as_str()).map(str::to_string))
        .unwrap_or_default();
    let kind = equitls_obs::json::parse(line)
        .ok()
        .and_then(|v| v.get("kind").and_then(|v| v.as_str()).map(str::to_string))
        .unwrap_or_default();
    match kind.as_str() {
        "ping" => control_response(&id, "ping", None),
        "stats" => control_response(&id, "stats", Some(engine.stats_json())),
        "drain" | "shutdown" => {
            STOP_REQUESTED.store(true, Ordering::SeqCst);
            control_response(&id, &kind, None)
        }
        _ => match JobRequest::from_line(line) {
            Ok(request) => {
                let ack = request.ack;
                match engine.submit(request) {
                    Admission::Accepted { seq } => {
                        if ack {
                            JsonValue::Object(vec![
                                ("id".to_string(), JsonValue::String(id)),
                                (
                                    "status".to_string(),
                                    JsonValue::String("accepted".to_string()),
                                ),
                                ("seq".to_string(), JsonValue::Number(seq as f64)),
                            ])
                            .to_string()
                        } else {
                            engine.wait_response(seq)
                        }
                    }
                    Admission::Busy { line }
                    | Admission::Shed { line }
                    | Admission::Rejected { line } => line,
                }
            }
            Err(e) => proto::error_response(&id, "bad-request", &e).to_string(),
        },
    }
}

fn control_response(id: &str, kind: &str, payload: Option<JsonValue>) -> String {
    let mut fields = vec![
        ("id".to_string(), JsonValue::String(id.to_string())),
        ("status".to_string(), JsonValue::String("ok".to_string())),
        ("kind".to_string(), JsonValue::String(kind.to_string())),
    ];
    if let Some(payload) = payload {
        fields.push(("stats".to_string(), payload));
    }
    JsonValue::Object(fields).to_string()
}
