//! Job execution: one effective request in, one **stable** response out.
//!
//! Every field of the stable payload is a jobs-invariant, replay-
//! invariant fact: verdicts, obligation outcomes, state counts, traces,
//! lint findings. Two classes of fact are deliberately excluded and
//! travel only in the wire-level volatile section (see
//! [`crate::engine`]):
//!
//! * **wall-clock durations** — different on every run by definition;
//! * **rewrite tallies** — under the daemon's resident
//!   [`SharedNfCache`](equitls_rewrite::shared::SharedNfCache) a hit
//!   replays a cached derivation and *shrinks* the `rewrites` counter,
//!   so the tally depends on which requests ran before this one. The
//!   PR 8 contract (hits change rewrites only, never verdicts, counts,
//!   or scores) is exactly what makes the rest of the report safe to
//!   pin byte-for-byte.
//!
//! A request that sets its own `deadline_ms` opts out of replay
//! stability for its *outcome* (a budget can trip at a different point
//! on a faster or slower run); the kill-safety contract is pinned over
//! undeadlined jobs.

use std::time::Duration;

use equitls_core::prelude::*;
use equitls_lint::{analyze_spec, AnalysisOptions, LintConfig, Severity};
use equitls_mc::check::check_scope_config_obs;
use equitls_mc::explorer::{ExploreConfig, Limits};
use equitls_obs::json::JsonValue;
use equitls_obs::sink::Obs;
use equitls_rewrite::budget::Budget;
use equitls_tls::concrete::Scope;
use equitls_tls::verify::{self, VerifyOptions};

use crate::proto::{error_response, JobKind, JobRequest};
use crate::warm::WarmState;

/// Validate a request before admission: errors found here are answered
/// immediately (and never journaled — there is no work to replay).
pub fn validate(request: &JobRequest, allow_test_jobs: bool) -> Result<(), (String, String)> {
    match request.kind {
        JobKind::Prove => {
            if verify::plan(&request.property).is_none() {
                return Err((
                    "unknown-property".to_string(),
                    format!(
                        "unknown property `{}` (want one of the {} campaign plans)",
                        request.property,
                        verify::PLANS.len()
                    ),
                ));
            }
        }
        JobKind::Check => {}
        JobKind::Lint => {
            if !matches!(request.target.as_str(), "" | "standard" | "variant") {
                return Err((
                    "bad-request".to_string(),
                    format!(
                        "unknown lint target `{}` (want standard|variant)",
                        request.target
                    ),
                ));
            }
        }
        JobKind::Panic => {
            if !allow_test_jobs {
                return Err((
                    "bad-request".to_string(),
                    "`panic` jobs need a daemon started with --allow-test-jobs".to_string(),
                ));
            }
        }
    }
    Ok(())
}

/// Visited-set spill settings for `check` jobs, from the daemon config.
pub struct SpillOptions {
    /// Spill root; each job spills under its own `job<seq>` subdirectory
    /// so concurrent workers never share shard files. `None` disables
    /// spilling (the search truncates at a memory ceiling instead).
    pub dir: Option<std::path::PathBuf>,
    /// See [`ExploreConfig::max_resident_shards`].
    pub max_resident_shards: usize,
}

/// Execute one admitted job and build its stable response. The caller
/// (the worker loop) wraps this in `catch_unwind`; a panic escaping here
/// becomes a typed `worker-fault` error response.
pub fn execute(
    seq: u64,
    request: &JobRequest,
    degradation: &[String],
    warm: &WarmState,
    shared_cache_default: bool,
    spill: &SpillOptions,
    obs: &Obs,
) -> JsonValue {
    let result = match request.kind {
        JobKind::Prove => run_prove(request, warm, shared_cache_default, obs),
        JobKind::Check => Ok(run_check(seq, request, spill, obs)),
        JobKind::Lint => Ok(run_lint(request, warm)),
        JobKind::Panic => panic!("injected test panic (job {})", request.id),
    };
    match result {
        Ok(result) => ok_response(seq, request, degradation, result),
        Err((code, message)) => error_response(&request.id, &code, &message),
    }
}

/// Assemble the stable `ok` envelope.
fn ok_response(
    seq: u64,
    request: &JobRequest,
    degradation: &[String],
    result: JsonValue,
) -> JsonValue {
    let mut fields = vec![
        ("id".to_string(), JsonValue::String(request.id.clone())),
        ("seq".to_string(), JsonValue::Number(seq as f64)),
        ("status".to_string(), JsonValue::String("ok".to_string())),
        (
            "kind".to_string(),
            JsonValue::String(request.kind.name().to_string()),
        ),
    ];
    if !degradation.is_empty() {
        fields.push((
            "degradation".to_string(),
            JsonValue::Array(
                degradation
                    .iter()
                    .map(|d| JsonValue::String(d.clone()))
                    .collect(),
            ),
        ));
    }
    fields.push(("result".to_string(), result));
    JsonValue::Object(fields)
}

/// The per-request budget: unlimited unless the request asked for a
/// deadline.
fn budget_for(request: &JobRequest) -> Budget {
    match request.deadline_ms {
        Some(ms) => Budget::unlimited().with_deadline(Duration::from_millis(ms)),
        None => Budget::unlimited(),
    }
}

fn run_prove(
    request: &JobRequest,
    warm: &WarmState,
    shared_cache_default: bool,
    obs: &Obs,
) -> Result<JsonValue, (String, String)> {
    let pristine = warm.model(request.variant);
    // Clone the warm pristine model: the clone shares the pre-built
    // rule index, and (below) the resident NF cache.
    let mut model = (*pristine).clone();
    let shared = request.shared_cache.unwrap_or(shared_cache_default);
    let opts = VerifyOptions {
        budget: budget_for(request),
        fuel: request.fuel,
        jobs: request.jobs.max(1),
        shared_nf_cache: shared,
        shared_nf_handle: shared.then(|| warm.nf_cache(request.variant)),
        ..VerifyOptions::default()
    };
    let report = verify::verify_property_opts(&mut model, &request.property, &opts, obs)
        .map_err(|e| ("prove-failed".to_string(), e.to_string()))?;
    Ok(prove_result_json(&report, request.variant))
}

/// The stable rendering of a [`ProofReport`]: verdict and per-obligation
/// outcome facts, no durations, no rewrite tallies.
pub fn prove_result_json(report: &ProofReport, variant: bool) -> JsonValue {
    let mut obligations = Vec::with_capacity(report.steps.len() + 1);
    obligations.push(step_json(&report.base));
    obligations.extend(report.steps.iter().map(step_json));
    JsonValue::Object(vec![
        (
            "property".to_string(),
            JsonValue::String(report.invariant.clone()),
        ),
        ("variant".to_string(), JsonValue::Bool(variant)),
        ("proved".to_string(), JsonValue::Bool(report.is_proved())),
        ("obligations".to_string(), JsonValue::Array(obligations)),
    ])
}

fn step_json(step: &StepReport) -> JsonValue {
    let m = &step.metrics;
    let mut fields = vec![
        ("action".to_string(), JsonValue::String(step.action.clone())),
        (
            "outcome".to_string(),
            JsonValue::String(
                match &step.outcome {
                    CaseOutcome::Proved => "proved",
                    CaseOutcome::Open(_) => "open",
                    CaseOutcome::Fault(_) => "fault",
                }
                .to_string(),
            ),
        ),
        ("passages".to_string(), JsonValue::Number(m.passages as f64)),
        ("splits".to_string(), JsonValue::Number(m.splits as f64)),
        ("proved".to_string(), JsonValue::Number(m.proved as f64)),
        ("vacuous".to_string(), JsonValue::Number(m.vacuous as f64)),
        ("open".to_string(), JsonValue::Number(m.open as f64)),
        (
            "max_depth".to_string(),
            JsonValue::Number(m.max_depth as f64),
        ),
    ];
    match &step.outcome {
        CaseOutcome::Open(cases) => {
            let rendered = cases
                .iter()
                .map(|c| {
                    JsonValue::Object(vec![
                        (
                            "decisions".to_string(),
                            JsonValue::Array(
                                c.decisions
                                    .iter()
                                    .map(|d| JsonValue::String(d.clone()))
                                    .collect(),
                            ),
                        ),
                        (
                            "residual".to_string(),
                            JsonValue::String(c.residual.clone()),
                        ),
                    ])
                })
                .collect();
            fields.push(("open_cases".to_string(), JsonValue::Array(rendered)));
        }
        CaseOutcome::Fault(fault) => {
            fields.push((
                "fault".to_string(),
                JsonValue::Object(vec![
                    ("site".to_string(), JsonValue::String(fault.site.clone())),
                    (
                        "message".to_string(),
                        JsonValue::String(fault.message.clone()),
                    ),
                ]),
            ));
        }
        CaseOutcome::Proved => {}
    }
    JsonValue::Object(fields)
}

fn run_check(seq: u64, request: &JobRequest, spill: &SpillOptions, obs: &Obs) -> JsonValue {
    let mut scope = Scope::counterexample();
    if let Some(n) = request.max_messages {
        scope.max_messages = n;
    }
    let limits = Limits {
        max_states: request.max_states.unwrap_or(100_000),
        max_depth: request.max_depth.unwrap_or(3),
    };
    let config = ExploreConfig {
        budget: budget_for(request),
        spill_dir: spill.dir.as_ref().map(|d| d.join(format!("job{seq}"))),
        max_resident_shards: spill.max_resident_shards,
        ..ExploreConfig::default()
    };
    let exploration = check_scope_config_obs(&scope, &limits, request.jobs.max(1), &config, obs);
    let violations = exploration
        .violations
        .iter()
        .map(|v| {
            JsonValue::Object(vec![
                (
                    "property".to_string(),
                    JsonValue::String(v.property.clone()),
                ),
                ("depth".to_string(), JsonValue::Number(v.depth as f64)),
                (
                    "trace".to_string(),
                    JsonValue::Array(
                        v.trace
                            .iter()
                            .map(|(label, _)| JsonValue::String(label.clone()))
                            .collect(),
                    ),
                ),
            ])
        })
        .collect();
    JsonValue::Object(vec![
        (
            "scope".to_string(),
            JsonValue::Object(vec![
                (
                    "max_messages".to_string(),
                    JsonValue::Number(scope.max_messages as f64),
                ),
                (
                    "max_depth".to_string(),
                    JsonValue::Number(limits.max_depth as f64),
                ),
                (
                    "max_states".to_string(),
                    JsonValue::Number(limits.max_states as f64),
                ),
            ]),
        ),
        (
            "states".to_string(),
            JsonValue::Number(exploration.states as f64),
        ),
        (
            "depth_reached".to_string(),
            JsonValue::Number(exploration.depth_reached as f64),
        ),
        (
            "complete".to_string(),
            JsonValue::Bool(exploration.complete),
        ),
        (
            "stop_reason".to_string(),
            match &exploration.stop_reason {
                Some(reason) => JsonValue::String(reason.to_string()),
                None => JsonValue::Null,
            },
        ),
        (
            "states_per_depth".to_string(),
            JsonValue::Array(
                exploration
                    .states_per_depth
                    .iter()
                    .map(|&n| JsonValue::Number(n as f64))
                    .collect(),
            ),
        ),
        (
            "dedup_hits".to_string(),
            JsonValue::Number(exploration.dedup_hits as f64),
        ),
        // Truncation disclosure: states enqueued but never expanded when
        // the search stopped (0 on a complete run), and any degradation
        // ladder steps the search took (e.g. "visited-spilled").
        (
            "unexpanded".to_string(),
            JsonValue::Number(exploration.unexpanded as f64),
        ),
        (
            "degradation".to_string(),
            JsonValue::Array(
                exploration
                    .degradation
                    .iter()
                    .map(|d| JsonValue::String(d.clone()))
                    .collect(),
            ),
        ),
        ("violations".to_string(), JsonValue::Array(violations)),
    ])
}

fn run_lint(request: &JobRequest, warm: &WarmState) -> JsonValue {
    let variant = request.target == "variant" || request.variant;
    let pristine = warm.model(variant);
    let target = if variant {
        "TLS handshake (variant)"
    } else {
        "TLS handshake"
    };
    let options = AnalysisOptions {
        jobs: request.jobs.max(1),
        ..AnalysisOptions::default()
    };
    let outcome = analyze_spec(&pristine.spec, target, &LintConfig::new(), &options, None);
    let report = outcome.report;
    let findings = report
        .diagnostics
        .iter()
        .map(|d| {
            let mut fields = vec![
                (
                    "code".to_string(),
                    JsonValue::String(d.code.name().to_string()),
                ),
                (
                    "severity".to_string(),
                    JsonValue::String(d.severity.name().to_string()),
                ),
                ("message".to_string(), JsonValue::String(d.message.clone())),
            ];
            if let Some(rule) = &d.rule {
                fields.push(("rule".to_string(), JsonValue::String(rule.clone())));
            }
            JsonValue::Object(fields)
        })
        .collect();
    JsonValue::Object(vec![
        ("target".to_string(), JsonValue::String(target.to_string())),
        (
            "deny".to_string(),
            JsonValue::Number(report.count(Severity::Deny) as f64),
        ),
        (
            "warn".to_string(),
            JsonValue::Number(report.count(Severity::Warn) as f64),
        ),
        ("findings".to_string(), JsonValue::Array(findings)),
    ])
}
