//! The daemon's warm state: compiled specs and resident caches.
//!
//! A one-shot CLI run pays three cold-start costs per campaign: parsing
//! and compiling the TLS spec (term interning, rule compilation, LPO
//! precedence), building the PR 8 discrimination-tree `PathIndex`, and
//! warming the normal-form memo from nothing. The daemon pays each cost
//! once per model family and then serves every subsequent request from
//! the warm copies:
//!
//! * the **pristine models** (standard and §5.3 variant) are built
//!   lazily, held in `Arc`s, and *cloned* per request — a `Spec` clone
//!   shares the already-built `PathIndex` through its `OnceLock<Arc<_>>`
//!   (the spec-compilation-is-`Arc`-shareable refactor), so request
//!   clones skip both the parse and the index build;
//! * one **[`SharedNfCache`] per model family** stays resident across
//!   requests. Entries are keyed by structural fingerprint and published
//!   only at assumption-free top level, so they are a pure function of
//!   the rule set — safe to share across every request against the same
//!   pristine spec, never shared between standard and variant.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use equitls_rewrite::shared::SharedNfCache;
use equitls_tls::symbolic::TlsModel;

/// Warm-path hit counters, exposed through `stats` responses and the
/// serve bench.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WarmStats {
    /// Models built from scratch (cold starts; at most 2 per daemon).
    pub model_builds: u64,
    /// Requests served from an already-warm model.
    pub model_reuses: u64,
}

/// The resident state. One per engine; freely shared across workers.
#[derive(Debug, Default)]
pub struct WarmState {
    standard: OnceLock<Arc<TlsModel>>,
    variant: OnceLock<Arc<TlsModel>>,
    nf_standard: OnceLock<Arc<SharedNfCache>>,
    nf_variant: OnceLock<Arc<SharedNfCache>>,
    builds: AtomicU64,
    reuses: AtomicU64,
}

impl WarmState {
    /// A fresh, entirely cold state.
    pub fn new() -> Self {
        WarmState::default()
    }

    /// The pristine model for the family, building (and pre-indexing)
    /// it on first use. Callers clone the returned model per request;
    /// the clone shares the pre-built rule index.
    pub fn model(&self, variant: bool) -> Arc<TlsModel> {
        let slot = if variant {
            &self.variant
        } else {
            &self.standard
        };
        let mut built = false;
        let model = slot.get_or_init(|| {
            built = true;
            let model = if variant {
                TlsModel::variant()
            } else {
                TlsModel::standard()
            }
            .expect("the built-in TLS spec compiles");
            // Build the discrimination-tree index once on the pristine
            // rule set; every request clone then shares it by `Arc`.
            model.spec.rules().path_index(model.spec.store());
            Arc::new(model)
        });
        if built {
            self.builds.fetch_add(1, Ordering::Relaxed);
        } else {
            self.reuses.fetch_add(1, Ordering::Relaxed);
        }
        Arc::clone(model)
    }

    /// The resident shared NF cache for the family.
    pub fn nf_cache(&self, variant: bool) -> Arc<SharedNfCache> {
        let slot = if variant {
            &self.nf_variant
        } else {
            &self.nf_standard
        };
        Arc::clone(slot.get_or_init(|| Arc::new(SharedNfCache::new())))
    }

    /// Whether the family's model is already warm (without building it).
    pub fn is_warm(&self, variant: bool) -> bool {
        if variant {
            self.variant.get().is_some()
        } else {
            self.standard.get().is_some()
        }
    }

    /// The hit counters.
    pub fn stats(&self) -> WarmStats {
        WarmStats {
            model_builds: self.builds.load(Ordering::Relaxed),
            model_reuses: self.reuses.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_is_built_once_and_reused() {
        let warm = WarmState::new();
        assert!(!warm.is_warm(false));
        let a = warm.model(false);
        assert!(warm.is_warm(false));
        let b = warm.model(false);
        assert!(Arc::ptr_eq(&a, &b), "second request reuses the warm model");
        let stats = warm.stats();
        assert_eq!(stats.model_builds, 1);
        assert_eq!(stats.model_reuses, 1);
        // The caches are per-family singletons.
        assert!(Arc::ptr_eq(&warm.nf_cache(false), &warm.nf_cache(false)));
        assert!(!Arc::ptr_eq(&warm.nf_cache(false), &warm.nf_cache(true)));
    }
}
