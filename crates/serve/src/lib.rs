//! `equitls-serve`: a supervised, always-warm verification service.
//!
//! A one-shot `tls-prove` run pays the full cold-start cost on every
//! invocation: compile the TLS spec, build the LPO precedence and the
//! discrimination-tree rule index, warm the normal-form memo from
//! nothing. This crate amortises all of it across requests by keeping a
//! daemon resident:
//!
//! * [`warm`] holds the compiled pristine models and one resident
//!   [`SharedNfCache`](equitls_rewrite::shared::SharedNfCache) per model
//!   family; request clones share the pre-built index by `Arc`.
//! * [`proto`] defines the JSONL request/response protocol spoken over a
//!   Unix socket (byte-stable canonical rendering, so responses are
//!   replay-comparable).
//! * [`engine`] multiplexes concurrent prove / model-check / lint jobs
//!   onto a supervised worker pool behind a bounded admission queue with
//!   a disclosed degradation ladder (shed lint → shrink scopes → busy).
//! * [`journal`] records every admitted job in an atomic
//!   `equitls-persist` snapshot before it runs, so a `kill -9`'d daemon
//!   replays its queue bit-identically on restart.
//! * [`backoff`] gives clients a capped exponential retry schedule with
//!   seeded (deterministic-under-test) jitter.
//!
//! The robustness contract, in one line: **overload is answered, faults
//! are contained, crashes are replayed** — and every degradation is
//! disclosed in the response that experienced it.

pub mod backoff;
pub mod engine;
pub mod job;
pub mod journal;
pub mod proto;
pub mod warm;

pub use engine::{Admission, ServeConfig, ServeEngine};
pub use proto::{JobKind, JobRequest};
