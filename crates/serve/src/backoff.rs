//! Capped exponential backoff with seeded jitter for `Busy` retries.
//!
//! The client's retry schedule must be **deterministic under test** (the
//! backpressure suite pins exact delay sequences) while still spreading
//! real clients apart. Both come from the same construction: delays are
//! a pure function of `(seed, attempt)` via SplitMix64 — "decorrelated"
//! across clients by seed, reproducible for a fixed seed.

use equitls_obs::rng::SplitMix64;

/// Deterministic backoff schedule: attempt `k` waits
/// `min(cap, base·2^k)/2 + jitter`, with `jitter` drawn uniformly from
/// `[0, min(cap, base·2^k)/2]` — the classic "equal jitter" variant,
/// which never collapses to zero (a zero delay would hot-loop on a busy
/// daemon) and never exceeds the cap.
#[derive(Debug, Clone)]
pub struct Backoff {
    base_ms: u64,
    cap_ms: u64,
    rng: SplitMix64,
}

impl Backoff {
    /// A schedule starting at `base_ms`, capped at `cap_ms`, jittered by
    /// the stream seeded with `seed`.
    pub fn new(seed: u64, base_ms: u64, cap_ms: u64) -> Self {
        Backoff {
            base_ms: base_ms.max(1),
            cap_ms: cap_ms.max(1),
            rng: SplitMix64::new(seed),
        }
    }

    /// The delay before retry number `attempt` (0-based). Consumes one
    /// draw from the jitter stream, so calling in attempt order yields
    /// the reproducible sequence the tests pin.
    pub fn delay_ms(&mut self, attempt: u32) -> u64 {
        let exp = self
            .base_ms
            .saturating_mul(1u64.checked_shl(attempt.min(32)).unwrap_or(u64::MAX))
            .min(self.cap_ms);
        let half = exp / 2;
        half + self.rng.next_below(half + 1)
    }

    /// The delay for `attempt`, floored by a server-provided
    /// `retry_after_ms` hint: the daemon's hint wins when it asks for
    /// *more* patience than the schedule would give.
    pub fn delay_with_hint_ms(&mut self, attempt: u32, retry_after_ms: u64) -> u64 {
        self.delay_ms(attempt).max(retry_after_ms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_is_deterministic_per_seed() {
        let seq = |seed: u64| -> Vec<u64> {
            let mut b = Backoff::new(seed, 10, 400);
            (0..8).map(|k| b.delay_ms(k)).collect()
        };
        assert_eq!(seq(7), seq(7), "equal seeds yield equal schedules");
        assert_ne!(seq(7), seq(8), "different seeds decorrelate");
    }

    #[test]
    fn delays_grow_and_cap() {
        let mut b = Backoff::new(42, 10, 400);
        let delays: Vec<u64> = (0..12).map(|k| b.delay_ms(k)).collect();
        for (k, &d) in delays.iter().enumerate() {
            let exp = (10u64 << k.min(32)).min(400);
            assert!(
                d >= exp / 2,
                "attempt {k}: {d} below half-floor {}",
                exp / 2
            );
            assert!(d <= exp, "attempt {k}: {d} above cap {exp}");
            assert!(d > 0, "a zero delay would hot-loop");
        }
        // Far tail is fully capped.
        assert!(delays[10] <= 400 && delays[10] >= 200);
    }

    #[test]
    fn server_hint_floors_the_delay() {
        let mut a = Backoff::new(1, 10, 400);
        let mut b = Backoff::new(1, 10, 400);
        let plain = a.delay_ms(0);
        assert_eq!(b.delay_with_hint_ms(0, 1000), 1000.max(plain));
    }
}
