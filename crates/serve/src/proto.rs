//! The wire protocol: JSONL requests and responses.
//!
//! One request is one JSON object on one line; one response is one JSON
//! object on one line. The codec is the workspace's hand-rolled
//! [`JsonValue`] — insertion-ordered objects with deterministic
//! rendering — which gives the protocol a crucial property for free:
//! a [`JobRequest`]'s canonical rendering is byte-stable, so the journal
//! can store requests as their wire form and replay them bit-identically.
//!
//! ## Requests
//!
//! ```text
//! {"id":"c1-1","kind":"prove","property":"lem-src-honest","jobs":2}
//! {"id":"c1-2","kind":"check","max_messages":2,"max_depth":3,"max_states":100000}
//! {"id":"c1-3","kind":"lint","target":"standard"}
//! {"id":"c1-4","kind":"ping"}
//! {"id":"c1-5","kind":"stats"}
//! {"id":"c1-6","kind":"drain"}
//! {"id":"c1-7","kind":"shutdown"}
//! ```
//!
//! `prove`/`check`/`lint` are **jobs**: they pass admission control, are
//! journaled, and run on the worker pool. `ping`/`stats`/`drain`/
//! `shutdown` are **control** requests answered inline by the connection
//! thread. A job request may set `"ack": true` to get an immediate
//! `accepted` response instead of blocking until completion (the result
//! then lands in the journal / results file only) — this is what lets a
//! client fill the queue, and what the kill -9 smoke uses.
//!
//! ## Responses
//!
//! Completed jobs answer with the **stable payload**: status, kind,
//! degradation disclosures, and a `result` object containing only
//! jobs-invariant, replay-invariant facts (verdicts, counts, traces —
//! never wall-clock durations or warm-cache-dependent rewrite tallies).
//! The volatile extras (`stats`, `warm`, `events`) ride in a separate
//! top-level `volatile` object appended on the wire but excluded from
//! the journal and the results file, so byte-comparing a resumed run
//! against a straight-through run compares exactly the stable facts.

use equitls_obs::json::{self, JsonValue};

/// The job kinds that pass admission control and run on workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobKind {
    /// A proof campaign for one property (`verify_property_opts`).
    Prove,
    /// A bounded model check of the concrete machine.
    Check,
    /// A whole-spec lint analysis.
    Lint,
    /// Test-only: a job that panics inside the worker (contained) or
    /// kills the worker thread (exercising the supervisor). Admitted
    /// only when the engine was configured with `allow_test_jobs`.
    Panic,
}

impl JobKind {
    /// The wire name.
    pub fn name(self) -> &'static str {
        match self {
            JobKind::Prove => "prove",
            JobKind::Check => "check",
            JobKind::Lint => "lint",
            JobKind::Panic => "panic",
        }
    }

    /// Parse a wire name.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "prove" => Some(JobKind::Prove),
            "check" => Some(JobKind::Check),
            "lint" => Some(JobKind::Lint),
            "panic" => Some(JobKind::Panic),
            _ => None,
        }
    }
}

/// A validated job request. Fields not meaningful for a kind stay at
/// their defaults and are omitted from the canonical rendering, so the
/// canonical form is minimal and byte-stable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobRequest {
    /// Client-chosen identifier, echoed in every response.
    pub id: String,
    /// What to run.
    pub kind: JobKind,
    /// Property name for `prove` (a `verify::PLANS` entry).
    pub property: String,
    /// Run against the §5.3 swapped-Finished variant model.
    pub variant: bool,
    /// Worker threads *within* the job (prover obligations / explorer
    /// frontier / lint passes). `0` = the job runner's default (1).
    pub jobs: usize,
    /// Wall-clock deadline for the job's `Budget`.
    pub deadline_ms: Option<u64>,
    /// Rewriting fuel override for `prove`.
    pub fuel: Option<u64>,
    /// Shared NF cache override for `prove`: `None` = daemon default
    /// (on — the warm path), `Some(false)` opts a request out.
    pub shared_cache: Option<bool>,
    /// `check`: network-size bound (scope cutoff).
    pub max_messages: Option<usize>,
    /// `check`: BFS depth bound.
    pub max_depth: Option<usize>,
    /// `check`: state-count bound.
    pub max_states: Option<usize>,
    /// `lint`: analysis target (`"standard"` or `"variant"`).
    pub target: String,
    /// Answer with `accepted` immediately instead of blocking until the
    /// job completes (result goes to the journal / results file).
    pub ack: bool,
    /// Stream the job's obs events back in the volatile section.
    pub trace: bool,
    /// Test-only (`kind: panic`): kill the worker thread instead of
    /// panicking inside the contained job.
    pub kill_worker: bool,
}

impl JobRequest {
    /// A request of `kind` with every optional field at its default.
    pub fn new(id: impl Into<String>, kind: JobKind) -> Self {
        JobRequest {
            id: id.into(),
            kind,
            property: String::new(),
            variant: false,
            jobs: 0,
            deadline_ms: None,
            fuel: None,
            shared_cache: None,
            max_messages: None,
            max_depth: None,
            max_states: None,
            target: String::new(),
            ack: false,
            trace: false,
            kill_worker: false,
        }
    }

    /// The canonical JSON object: only non-default fields, in a fixed
    /// order. `to_json(parse(x)) == to_json(parse(to_json(parse(x))))`,
    /// which is what the journal's byte-stability rests on.
    pub fn to_json(&self) -> JsonValue {
        let mut fields = vec![
            ("id".to_string(), JsonValue::String(self.id.clone())),
            (
                "kind".to_string(),
                JsonValue::String(self.kind.name().to_string()),
            ),
        ];
        if !self.property.is_empty() {
            fields.push((
                "property".to_string(),
                JsonValue::String(self.property.clone()),
            ));
        }
        if self.variant {
            fields.push(("variant".to_string(), JsonValue::Bool(true)));
        }
        if self.jobs != 0 {
            fields.push(("jobs".to_string(), JsonValue::Number(self.jobs as f64)));
        }
        if let Some(ms) = self.deadline_ms {
            fields.push(("deadline_ms".to_string(), JsonValue::Number(ms as f64)));
        }
        if let Some(fuel) = self.fuel {
            fields.push(("fuel".to_string(), JsonValue::Number(fuel as f64)));
        }
        if let Some(on) = self.shared_cache {
            fields.push(("shared_cache".to_string(), JsonValue::Bool(on)));
        }
        if let Some(n) = self.max_messages {
            fields.push(("max_messages".to_string(), JsonValue::Number(n as f64)));
        }
        if let Some(n) = self.max_depth {
            fields.push(("max_depth".to_string(), JsonValue::Number(n as f64)));
        }
        if let Some(n) = self.max_states {
            fields.push(("max_states".to_string(), JsonValue::Number(n as f64)));
        }
        if !self.target.is_empty() {
            fields.push(("target".to_string(), JsonValue::String(self.target.clone())));
        }
        if self.ack {
            fields.push(("ack".to_string(), JsonValue::Bool(true)));
        }
        if self.trace {
            fields.push(("trace".to_string(), JsonValue::Bool(true)));
        }
        if self.kill_worker {
            fields.push(("kill_worker".to_string(), JsonValue::Bool(true)));
        }
        JsonValue::Object(fields)
    }

    /// Parse a request object. Unknown fields are rejected (a typo'd
    /// field silently ignored would mean a job silently ran with defaults
    /// — worse than an error).
    pub fn from_json(value: &JsonValue) -> Result<Self, String> {
        let JsonValue::Object(fields) = value else {
            return Err("request must be a JSON object".to_string());
        };
        let kind_str = value
            .get("kind")
            .and_then(JsonValue::as_str)
            .ok_or("missing string field `kind`")?;
        let kind = JobKind::parse(kind_str)
            .ok_or_else(|| format!("unknown job kind `{kind_str}` (want prove|check|lint)"))?;
        let id = value
            .get("id")
            .and_then(JsonValue::as_str)
            .ok_or("missing string field `id`")?
            .to_string();
        let mut req = JobRequest::new(id, kind);
        for (name, field) in fields {
            match name.as_str() {
                "id" | "kind" => {}
                "property" => req.property = expect_str(name, field)?.to_string(),
                "variant" => req.variant = expect_bool(name, field)?,
                "jobs" => req.jobs = expect_usize(name, field)?,
                "deadline_ms" => req.deadline_ms = Some(expect_u64(name, field)?),
                "fuel" => req.fuel = Some(expect_u64(name, field)?),
                "shared_cache" => req.shared_cache = Some(expect_bool(name, field)?),
                "max_messages" => req.max_messages = Some(expect_usize(name, field)?),
                "max_depth" => req.max_depth = Some(expect_usize(name, field)?),
                "max_states" => req.max_states = Some(expect_usize(name, field)?),
                "target" => req.target = expect_str(name, field)?.to_string(),
                "ack" => req.ack = expect_bool(name, field)?,
                "trace" => req.trace = expect_bool(name, field)?,
                "kill_worker" => req.kill_worker = expect_bool(name, field)?,
                other => return Err(format!("unknown request field `{other}`")),
            }
        }
        Ok(req)
    }

    /// Parse one wire line.
    pub fn from_line(line: &str) -> Result<Self, String> {
        let value = json::parse(line).map_err(|e| format!("malformed JSON: {e}"))?;
        Self::from_json(&value)
    }
}

fn expect_str<'v>(name: &str, v: &'v JsonValue) -> Result<&'v str, String> {
    v.as_str()
        .ok_or_else(|| format!("field `{name}` must be a string"))
}

fn expect_bool(name: &str, v: &JsonValue) -> Result<bool, String> {
    match v {
        JsonValue::Bool(b) => Ok(*b),
        _ => Err(format!("field `{name}` must be a boolean")),
    }
}

fn expect_u64(name: &str, v: &JsonValue) -> Result<u64, String> {
    match v.as_f64() {
        Some(n) if n >= 0.0 && n.fract() == 0.0 => Ok(n as u64),
        _ => Err(format!("field `{name}` must be a non-negative integer")),
    }
}

fn expect_usize(name: &str, v: &JsonValue) -> Result<usize, String> {
    expect_u64(name, v).map(|n| n as usize)
}

/// Build the stable `busy` response (admission queue full).
pub fn busy_response(id: &str, retry_after_ms: u64, depth: usize, cap: usize) -> JsonValue {
    JsonValue::Object(vec![
        ("id".to_string(), JsonValue::String(id.to_string())),
        ("status".to_string(), JsonValue::String("busy".to_string())),
        (
            "retry_after_ms".to_string(),
            JsonValue::Number(retry_after_ms as f64),
        ),
        ("queue_depth".to_string(), JsonValue::Number(depth as f64)),
        ("queue_cap".to_string(), JsonValue::Number(cap as f64)),
    ])
}

/// Build the stable `shed` response (graceful degradation dropped the
/// job rather than queueing it).
pub fn shed_response(id: &str, reason: &str) -> JsonValue {
    JsonValue::Object(vec![
        ("id".to_string(), JsonValue::String(id.to_string())),
        ("status".to_string(), JsonValue::String("shed".to_string())),
        ("reason".to_string(), JsonValue::String(reason.to_string())),
        (
            "degradation".to_string(),
            JsonValue::Array(vec![JsonValue::String("shed-lint".to_string())]),
        ),
    ])
}

/// Build a typed error response (bad request, unknown property, worker
/// fault, …).
pub fn error_response(id: &str, code: &str, message: &str) -> JsonValue {
    JsonValue::Object(vec![
        ("id".to_string(), JsonValue::String(id.to_string())),
        ("status".to_string(), JsonValue::String("error".to_string())),
        (
            "error".to_string(),
            JsonValue::Object(vec![
                ("code".to_string(), JsonValue::String(code.to_string())),
                (
                    "message".to_string(),
                    JsonValue::String(message.to_string()),
                ),
            ]),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrip_is_byte_stable() {
        let line = r#"{"id":"a-1","kind":"prove","property":"inv1","jobs":2,"deadline_ms":500}"#;
        let req = JobRequest::from_line(line).unwrap();
        let canon = req.to_json().to_string();
        let again = JobRequest::from_line(&canon).unwrap();
        assert_eq!(req, again);
        assert_eq!(canon, again.to_json().to_string());
    }

    #[test]
    fn unknown_fields_and_kinds_are_rejected() {
        assert!(JobRequest::from_line(r#"{"id":"x","kind":"frobnicate"}"#).is_err());
        assert!(JobRequest::from_line(r#"{"id":"x","kind":"prove","porperty":"inv1"}"#).is_err());
        assert!(JobRequest::from_line("not json").is_err());
        assert!(JobRequest::from_line(r#"{"kind":"prove"}"#).is_err());
    }

    #[test]
    fn typed_responses_render_deterministically() {
        assert_eq!(
            busy_response("j", 200, 32, 32).to_string(),
            r#"{"id":"j","status":"busy","retry_after_ms":200,"queue_depth":32,"queue_cap":32}"#
        );
        assert!(shed_response("j", "overload")
            .to_string()
            .contains("shed-lint"));
        assert!(error_response("j", "bad-request", "nope")
            .to_string()
            .contains("bad-request"));
    }
}
