//! Acceptance regressions for the static analyzer, pinned to the
//! properties `tls-lint` gates on:
//!
//! * the HD `BOOL` system is proved terminating (LPO-orientable) and
//!   locally confluent (every critical pair joins) — positive control;
//! * a two-rule non-confluent system is denied with the unjoinable pair
//!   as a counterexample equation — negative control;
//! * a looping rule is denied outright — negative control.
//!
//! The unit tests inside the crate cover each pass in isolation; these
//! integration tests run the passes the way the binary composes them.

use equitls_kernel::signature::Signature;
use equitls_kernel::term::TermStore;
use equitls_lint::confluence::{check_confluence, critical_pairs};
use equitls_lint::termination::orient_rules;
use equitls_lint::{lint_system, LintCode, LintConfig, LintReport, Severity};
use equitls_rewrite::bool_alg::BoolAlg;
use equitls_rewrite::bool_rules::hd_bool_rules;
use equitls_rewrite::rule::RuleSet;

fn bool_world() -> (TermStore, BoolAlg) {
    let mut sig = Signature::new();
    let alg = BoolAlg::install(&mut sig).expect("fresh signature");
    (TermStore::new(sig), alg)
}

#[test]
fn hd_bool_is_terminating_and_locally_confluent() {
    let (mut store, alg) = bool_world();
    let rules = hd_bool_rules(&mut store, &alg).expect("HD BOOL builds");

    // Termination: an orienting LPO precedence exists and is reported.
    let orientation = orient_rules(&store, &rules);
    assert!(
        orientation.all_oriented(),
        "every HD BOOL rule must be LPO-orientable"
    );
    let edges = orientation.edge_names(&store);
    assert!(!edges.is_empty(), "the precedence must be non-trivial");
    // The discovered order puts the defined connectives above the ring
    // operators they expand into.
    assert!(
        edges.iter().any(|(f, g)| f == "not_" && g == "_xor_"),
        "expected not > xor among {edges:?}"
    );

    // Local confluence: critical pairs exist and every one joins.
    let pairs = critical_pairs(&mut store, &rules);
    assert!(
        !pairs.is_empty(),
        "HD BOOL has overlaps (e.g. and-zero vs and-idempotent)"
    );
    let config = LintConfig::new();
    let mut report = LintReport::new("BOOL");
    let outcome = check_confluence(&mut store, &alg, &rules, &config, &mut report);
    assert_eq!(outcome.unjoinable, 0, "{report}");
    assert_eq!(outcome.undecided, 0, "{report}");
    assert_eq!(outcome.joinable + outcome.pruned, outcome.pairs);
    assert!(
        report
            .with_code(LintCode::UnjoinableCriticalPair)
            .is_empty(),
        "{report}"
    );

    // And the composed lint agrees: nothing at warn level or above.
    let report = lint_system(&mut store, &alg, &rules, "BOOL", &config);
    assert!(!report.has_deny(), "{report}");
    assert_eq!(report.count(Severity::Warn), 0, "{report}");
}

#[test]
fn a_non_confluent_pair_is_denied_with_its_counterexample() {
    let (mut store, alg) = bool_world();
    let p = store.declare_var("ACCP", alg.sort()).expect("fresh var");
    let pv = store.var(p);
    let not_p = store.app(alg.not_op(), &[pv]).expect("well-sorted");
    let tt = alg.tt(&mut store);
    let ff = alg.ff(&mut store);
    let mut rules = RuleSet::new();
    rules.add(&store, "to-true", not_p, tt, None, None).unwrap();
    rules
        .add(&store, "to-false", not_p, ff, None, None)
        .unwrap();

    let config = LintConfig::new();
    let report = lint_system(&mut store, &alg, &rules, "ambiguous", &config);
    assert!(report.has_deny(), "{report}");
    let denies = report.with_code(LintCode::UnjoinableCriticalPair);
    assert!(
        denies.iter().any(|d| d.severity == Severity::Deny),
        "{report}"
    );
    // The counterexample equation names both normal forms.
    assert!(
        denies
            .iter()
            .any(|d| d.message.contains("true") && d.message.contains("false")),
        "counterexample should mention the two normal forms: {report}"
    );
}

#[test]
fn a_looping_rule_is_denied() {
    let (mut store, alg) = bool_world();
    let tt = alg.tt(&mut store);
    let not_t = store.app(alg.not_op(), &[tt]).expect("well-sorted");
    let mut rules = RuleSet::new();
    // true → not(true) re-fires inside its own result.
    rules.add(&store, "diverge", tt, not_t, None, None).unwrap();

    let config = LintConfig::new();
    let report = lint_system(&mut store, &alg, &rules, "looping", &config);
    assert!(report.has_deny(), "{report}");
    let denies = report.with_code(LintCode::TerminationLoop);
    assert_eq!(denies.len(), 1, "{report}");
    assert_eq!(denies[0].severity, Severity::Deny);
    assert_eq!(denies[0].rule.as_deref(), Some("diverge"));
}

#[test]
fn severity_overrides_are_recorded_not_silenced() {
    // Downgrading a deny to allow keeps the finding visible, carries the
    // justification, and flips the gate.
    let (mut store, alg) = bool_world();
    let tt = alg.tt(&mut store);
    let not_t = store.app(alg.not_op(), &[tt]).expect("well-sorted");
    let mut rules = RuleSet::new();
    rules.add(&store, "diverge", tt, not_t, None, None).unwrap();

    let mut config = LintConfig::new();
    config.allow(LintCode::TerminationLoop, "exercised as a fixture");
    let report = lint_system(&mut store, &alg, &rules, "looping", &config);
    assert!(!report.has_deny(), "{report}");
    let hits = report.with_code(LintCode::TerminationLoop);
    assert_eq!(hits.len(), 1);
    assert_eq!(hits[0].severity, Severity::Allow);
    assert_eq!(
        hits[0].justification.as_deref(),
        Some("exercised as a fixture")
    );
}
