//! Acceptance regressions for the static analyzer, pinned to the
//! properties `tls-lint` gates on:
//!
//! * the HD `BOOL` system is proved terminating (LPO-orientable) and
//!   locally confluent (every critical pair joins) — positive control;
//! * a two-rule non-confluent system is denied with the unjoinable pair
//!   as a counterexample equation — negative control;
//! * a looping rule is denied outright — negative control.
//!
//! * the incremental cache round-trips through disk: cold analyzes, warm
//!   replays every pass with an identical report;
//! * SARIF output of a spec report survives a parse round-trip with its
//!   spans and stable rule ids.
//!
//! The unit tests inside the crate cover each pass in isolation; these
//! integration tests run the passes the way the binary composes them.

use equitls_kernel::signature::Signature;
use equitls_kernel::term::TermStore;
use equitls_lint::cache::LintCache;
use equitls_lint::confluence::{check_confluence, critical_pairs};
use equitls_lint::termination::orient_rules;
use equitls_lint::{
    analyze_spec, lint_system, sarif, AnalysisOptions, LintCode, LintConfig, LintReport, Severity,
    PASSES,
};
use equitls_obs::json::{parse, JsonValue};
use equitls_obs::sink::Obs;
use equitls_rewrite::bool_alg::BoolAlg;
use equitls_rewrite::bool_rules::hd_bool_rules;
use equitls_rewrite::rule::RuleSet;
use equitls_spec::spec::Spec;

fn bool_world() -> (TermStore, BoolAlg) {
    let mut sig = Signature::new();
    let alg = BoolAlg::install(&mut sig).expect("fresh signature");
    (TermStore::new(sig), alg)
}

#[test]
fn hd_bool_is_terminating_and_locally_confluent() {
    let (mut store, alg) = bool_world();
    let rules = hd_bool_rules(&mut store, &alg).expect("HD BOOL builds");

    // Termination: an orienting LPO precedence exists and is reported.
    let orientation = orient_rules(&store, &rules);
    assert!(
        orientation.all_oriented(),
        "every HD BOOL rule must be LPO-orientable"
    );
    let edges = orientation.edge_names(&store);
    assert!(!edges.is_empty(), "the precedence must be non-trivial");
    // The discovered order puts the defined connectives above the ring
    // operators they expand into.
    assert!(
        edges.iter().any(|(f, g)| f == "not_" && g == "_xor_"),
        "expected not > xor among {edges:?}"
    );

    // Local confluence: critical pairs exist and every one joins.
    let pairs = critical_pairs(&mut store, &rules);
    assert!(
        !pairs.is_empty(),
        "HD BOOL has overlaps (e.g. and-zero vs and-idempotent)"
    );
    let config = LintConfig::new();
    let mut report = LintReport::new("BOOL");
    let outcome = check_confluence(&mut store, &alg, &rules, &config, &mut report);
    assert_eq!(outcome.unjoinable, 0, "{report}");
    assert_eq!(outcome.undecided, 0, "{report}");
    assert_eq!(outcome.joinable + outcome.pruned, outcome.pairs);
    assert!(
        report
            .with_code(LintCode::UnjoinableCriticalPair)
            .is_empty(),
        "{report}"
    );

    // And the composed lint agrees: nothing at warn level or above.
    let report = lint_system(&store, &alg, &rules, "BOOL", &config);
    assert!(!report.has_deny(), "{report}");
    assert_eq!(report.count(Severity::Warn), 0, "{report}");
}

#[test]
fn a_non_confluent_pair_is_denied_with_its_counterexample() {
    let (mut store, alg) = bool_world();
    let p = store.declare_var("ACCP", alg.sort()).expect("fresh var");
    let pv = store.var(p);
    let not_p = store.app(alg.not_op(), &[pv]).expect("well-sorted");
    let tt = alg.tt(&mut store);
    let ff = alg.ff(&mut store);
    let mut rules = RuleSet::new();
    rules.add(&store, "to-true", not_p, tt, None, None).unwrap();
    rules
        .add(&store, "to-false", not_p, ff, None, None)
        .unwrap();

    let config = LintConfig::new();
    let report = lint_system(&store, &alg, &rules, "ambiguous", &config);
    assert!(report.has_deny(), "{report}");
    let denies = report.with_code(LintCode::UnjoinableCriticalPair);
    assert!(
        denies.iter().any(|d| d.severity == Severity::Deny),
        "{report}"
    );
    // The counterexample equation names both normal forms.
    assert!(
        denies
            .iter()
            .any(|d| d.message.contains("true") && d.message.contains("false")),
        "counterexample should mention the two normal forms: {report}"
    );
}

#[test]
fn a_looping_rule_is_denied() {
    let (mut store, alg) = bool_world();
    let tt = alg.tt(&mut store);
    let not_t = store.app(alg.not_op(), &[tt]).expect("well-sorted");
    let mut rules = RuleSet::new();
    // true → not(true) re-fires inside its own result.
    rules.add(&store, "diverge", tt, not_t, None, None).unwrap();

    let config = LintConfig::new();
    let report = lint_system(&store, &alg, &rules, "looping", &config);
    assert!(report.has_deny(), "{report}");
    let denies = report.with_code(LintCode::TerminationLoop);
    assert_eq!(denies.len(), 1, "{report}");
    assert_eq!(denies[0].severity, Severity::Deny);
    assert_eq!(denies[0].rule.as_deref(), Some("diverge"));
}

#[test]
fn severity_overrides_are_recorded_not_silenced() {
    // Downgrading a deny to allow keeps the finding visible, carries the
    // justification, and flips the gate.
    let (mut store, alg) = bool_world();
    let tt = alg.tt(&mut store);
    let not_t = store.app(alg.not_op(), &[tt]).expect("well-sorted");
    let mut rules = RuleSet::new();
    rules.add(&store, "diverge", tt, not_t, None, None).unwrap();

    let mut config = LintConfig::new();
    config.allow(LintCode::TerminationLoop, "exercised as a fixture");
    let report = lint_system(&store, &alg, &rules, "looping", &config);
    assert!(!report.has_deny(), "{report}");
    let hits = report.with_code(LintCode::TerminationLoop);
    assert_eq!(hits.len(), 1);
    assert_eq!(hits[0].severity, Severity::Allow);
    assert_eq!(
        hits[0].justification.as_deref(),
        Some("exercised as a fixture")
    );
}

const NAT_MODULE: &str = r#"
mod! NATDUP {
  [ N ]
  op z : -> N {constr} .
  op s : N -> N {constr} .
  op dup : N -> N .
  var X : N .
  eq [dup-z] : dup(z) = z .
  eq [dup-s] : dup(s(X)) = s(s(dup(X))) .
  eq [dup-s-copy] : dup(s(X)) = s(s(dup(X))) .
}
"#;

#[test]
fn incremental_cache_survives_disk_and_replays_identically() {
    let mut spec = Spec::new().unwrap();
    spec.load_module(NAT_MODULE).unwrap();
    let config = LintConfig::new();
    let options = AnalysisOptions::default();
    let obs = Obs::noop();
    let path = std::env::temp_dir().join(format!(
        "equitls_lint_acceptance_{}.snap",
        std::process::id()
    ));

    let mut cache = LintCache::new();
    let cold = analyze_spec(&spec, "NATDUP", &config, &options, Some(&mut cache));
    assert_eq!(cold.passes_analyzed, PASSES.len());
    cache.save(&path, &obs).unwrap();

    // A separate process would start here: load the snapshot, analyze the
    // unchanged spec, and replay everything — spans included.
    let mut reloaded = LintCache::load(&path, &obs).unwrap();
    let warm = analyze_spec(&spec, "NATDUP", &config, &options, Some(&mut reloaded));
    assert_eq!(warm.passes_reused, PASSES.len());
    assert_eq!(warm.passes_analyzed, 0);
    assert_eq!(format!("{}", cold.report), format!("{}", warm.report));
    let dups = warm.report.with_code(LintCode::DuplicateRule);
    assert_eq!(dups.len(), 1, "{}", warm.report);
    assert!(dups[0].span.is_some(), "spans replay from the cache");

    // Changing the rule set invalidates the rule-dependent passes.
    let mut changed = Spec::new().unwrap();
    changed
        .load_module(&NAT_MODULE.replace("  eq [dup-s-copy] : dup(s(X)) = s(s(dup(X))) .\n", ""))
        .unwrap();
    let edited = analyze_spec(&changed, "NATDUP", &config, &options, Some(&mut reloaded));
    assert_eq!(edited.passes_reused, 0, "every pass hashes the rule set");
    assert!(edited.report.with_code(LintCode::DuplicateRule).is_empty());

    let _ = std::fs::remove_file(&path);
}

#[test]
fn sarif_round_trip_keeps_spans_and_stable_rule_ids() {
    let mut spec = Spec::new().unwrap();
    spec.load_module(NAT_MODULE).unwrap();
    let config = LintConfig::new();
    let report = equitls_lint::lint_spec(&spec, "NATDUP", &config);
    let dup_span = report.with_code(LintCode::DuplicateRule)[0]
        .span
        .expect("parsed equation has a span");

    let log = sarif::to_sarif(&[&report]).to_string();
    let back = parse(&log).expect("SARIF is valid JSON");
    let runs = match back.get("runs") {
        Some(JsonValue::Array(runs)) => runs,
        other => panic!("runs must be an array: {other:?}"),
    };
    let results = match runs[0].get("results") {
        Some(JsonValue::Array(results)) => results,
        other => panic!("results must be an array: {other:?}"),
    };
    let dup = results
        .iter()
        .find(|r| r.get("ruleId").and_then(|v| v.as_str()) == Some("duplicate-rule"))
        .expect("the duplicate-rule finding is in the log");
    let region = dup
        .get("locations")
        .and_then(|l| match l {
            JsonValue::Array(items) => items.first(),
            _ => None,
        })
        .and_then(|l| l.get("physicalLocation"))
        .and_then(|p| p.get("region"))
        .expect("parsed-equation findings carry regions");
    assert_eq!(
        region.get("startLine").and_then(|v| v.as_f64()),
        Some(dup_span.line as f64)
    );
    assert_eq!(
        region.get("startColumn").and_then(|v| v.as_f64()),
        Some(dup_span.column as f64)
    );
    // Every stable code is declared as a reporting descriptor.
    let rules = match runs[0]
        .get("tool")
        .and_then(|t| t.get("driver"))
        .and_then(|d| d.get("rules"))
    {
        Some(JsonValue::Array(rules)) => rules,
        other => panic!("rules must be an array: {other:?}"),
    };
    for code in LintCode::ALL {
        assert!(
            rules
                .iter()
                .any(|r| r.get("id").and_then(|v| v.as_str()) == Some(code.name())),
            "missing descriptor for {code}"
        );
    }
}
