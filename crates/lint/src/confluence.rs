//! Local confluence via critical pairs.
//!
//! A terminating system is confluent iff it is locally confluent, and
//! local confluence reduces to joinability of the finitely many *critical
//! pairs* (Knuth–Bendix): for rules `l1 → r1` and `l2 → r2` (renamed
//! apart), every unifier `σ` of `l2` with a non-variable subterm of `l1`
//! at position `p` yields the peak `σ(l1)`, which rewrites both to
//! `σ(l1[p ← r2])` and to `σ(r1)`. The pair joins when both sides
//! normalize to the same term under the full rule set.
//!
//! Joinability is decided by the workspace's own engine, so it is checked
//! *modulo* the engine's built-in Boolean-ring canonicalization — which is
//! exactly the equality the `red` command decides, and therefore the
//! property the paper's proof scores rely on.
//!
//! Conditional rules contribute *conditional* critical pairs. Two
//! refinements keep those from drowning the report: a pair whose
//! instantiated conditions are mutually exclusive (their GF(2) product is
//! the zero polynomial) is unreachable and pruned, and a conditional pair
//! that fails to join is a warning rather than an error (the conditions
//! may be jointly unsatisfiable in ways the polynomial ring cannot see).

use crate::diagnostics::{Diagnostic, LintCode, LintConfig, LintReport, Severity};
use equitls_kernel::subst::Subst;
use equitls_kernel::term::{TermId, TermStore};
use equitls_kernel::unify::{apply_to_fixpoint, function_positions, replace_at, unify};
use equitls_rewrite::bool_alg::BoolAlg;
use equitls_rewrite::engine::Normalizer;
use equitls_rewrite::rule::{Rule, RuleSet};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Stack size for joinability workers: normalization recurses over term
/// structure, and TLS protocol states nest deeply.
const WORKER_STACK_BYTES: usize = 512 * 1024 * 1024;

/// Fuel per critical-pair normalization: generous for honest systems,
/// small enough that a diverging mutant fails fast into "undecided".
const CP_FUEL: u64 = 50_000;

/// One critical pair, before joinability is decided.
#[derive(Debug, Clone)]
pub struct CriticalPair {
    /// Label of the outer rule (rewrites the peak at the root).
    pub outer: String,
    /// Label of the inner rule (rewrites the peak at `position`).
    pub inner: String,
    /// Where the inner rule's left-hand side overlaps the outer's.
    pub position: Vec<usize>,
    /// The peak `σ(l1)` both sides rewrite from.
    pub peak: TermId,
    /// `σ(l1[p ← r2])` — the inner rewrite.
    pub left: TermId,
    /// `σ(r1)` — the outer rewrite.
    pub right: TermId,
    /// Instantiated conditions of the two rules, when conditional.
    pub conditions: (Option<TermId>, Option<TermId>),
}

impl CriticalPair {
    /// `true` when either contributing rule was conditional.
    pub fn is_conditional(&self) -> bool {
        self.conditions.0.is_some() || self.conditions.1.is_some()
    }
}

/// How one critical pair fared.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Joinability {
    /// Both sides reached the same normal form.
    Joinable,
    /// Distinct normal forms: a genuine counterexample to local confluence.
    Unjoinable,
    /// Normalization failed (out of fuel / depth) — typically because the
    /// system also fails termination.
    Undecided,
    /// The instantiated conditions are mutually exclusive; the peak is
    /// unreachable.
    Pruned,
}

/// Rename `rule`'s variables apart (suffix `#cp`), returning the renamed
/// `(lhs, rhs, cond)`.
///
/// Variable names are globally unique per store, so the deterministic
/// suffix cannot collide across sorts, and re-renaming the same rule is
/// idempotent (the store reuses same-name-same-sort variables).
fn rename_apart(store: &mut TermStore, rule: &Rule) -> (TermId, TermId, Option<TermId>) {
    let mut subst = Subst::new();
    for v in store.vars_of(rule.lhs) {
        let (name, sort) = {
            let decl = store.var_decl(v);
            (format!("{}#cp", decl.name), decl.sort)
        };
        let fresh = store
            .declare_var(&name, sort)
            .expect("renamed variable names are unique per sort");
        let fresh_term = store.var(fresh);
        subst.bind(v, fresh_term);
    }
    let lhs = subst.apply(store, rule.lhs);
    let rhs = subst.apply(store, rule.rhs);
    let cond = rule.cond.map(|c| subst.apply(store, c));
    (lhs, rhs, cond)
}

/// Compute every critical pair of `rules`.
///
/// The trivial self-overlap of a rule with itself at the root is skipped
/// (it always joins by reflexivity), as are overlaps whose two sides are
/// already syntactically equal.
pub fn critical_pairs(store: &mut TermStore, rules: &RuleSet) -> Vec<CriticalPair> {
    let mut out = Vec::new();
    for (i, outer) in rules.iter().enumerate() {
        let positions = function_positions(store, outer.lhs);
        for (j, inner) in rules.iter().enumerate() {
            let (inner_lhs, inner_rhs, inner_cond) = rename_apart(store, inner);
            for (position, subterm) in &positions {
                if position.is_empty() && i == j {
                    continue;
                }
                let Some(sigma) = unify(store, *subterm, inner_lhs).into_subst() else {
                    continue;
                };
                let patched = replace_at(store, outer.lhs, position, inner_rhs);
                let left = apply_to_fixpoint(store, &sigma, patched);
                let right = apply_to_fixpoint(store, &sigma, outer.rhs);
                if left == right {
                    continue;
                }
                let peak = apply_to_fixpoint(store, &sigma, outer.lhs);
                let c1 = outer.cond.map(|c| apply_to_fixpoint(store, &sigma, c));
                let c2 = inner_cond.map(|c| apply_to_fixpoint(store, &sigma, c));
                out.push(CriticalPair {
                    outer: outer.label.clone(),
                    inner: inner.label.clone(),
                    position: position.clone(),
                    peak,
                    left,
                    right,
                    conditions: (c1, c2),
                });
            }
        }
    }
    out
}

/// Aggregate outcome of the confluence pass.
#[derive(Debug, Default)]
pub struct ConfluenceOutcome {
    /// Critical pairs examined (after the trivial ones were dropped).
    pub pairs: usize,
    /// Pairs that joined.
    pub joinable: usize,
    /// Pairs with distinct normal forms.
    pub unjoinable: usize,
    /// Pairs whose normalization ran out of fuel.
    pub undecided: usize,
    /// Conditional pairs pruned as mutually exclusive.
    pub pruned: usize,
}

/// Decide joinability of one pair.
///
/// Each pair is judged with **fresh** normalizers. A shared normalizer's
/// memo cache would make fuel-exhaustion verdicts depend on which pairs
/// were judged before this one — warm caches stretch the fuel — and
/// therefore on scheduling once pairs are judged concurrently. Fresh
/// normalizers make every verdict a pure function of the pair and the
/// rule set, so the report is identical at any `--jobs` level by
/// construction.
fn judge(store: &mut TermStore, alg: &BoolAlg, rules: &RuleSet, cp: &CriticalPair) -> Joinability {
    let mut norm = Normalizer::new(alg.clone(), rules.clone());
    norm.set_fuel_limit(CP_FUEL);
    // Conditions are judged against the built-in ring semantics alone so a
    // broken rule set cannot veto its own critical pairs.
    let mut poly_norm = Normalizer::new(alg.clone(), RuleSet::new());
    poly_norm.set_fuel_limit(CP_FUEL);
    // Mutually exclusive conditions: σ(c1) ∧ σ(c2) ≡ false in GF(2).
    if let (Some(c1), Some(c2)) = cp.conditions {
        let polys = (
            poly_norm.normalize_to_poly(store, c1),
            poly_norm.normalize_to_poly(store, c2),
        );
        if let (Ok(p1), Ok(p2)) = polys {
            if p1.mul(&p2).is_false() {
                return Joinability::Pruned;
            }
        }
    }
    match (
        norm.normalize(store, cp.left),
        norm.normalize(store, cp.right),
    ) {
        (Ok(a), Ok(b)) if a == b => Joinability::Joinable,
        (Ok(_), Ok(_)) => Joinability::Unjoinable,
        _ => Joinability::Undecided,
    }
}

/// Run the local-confluence pass, reporting into `report`.
pub fn check_confluence(
    store: &mut TermStore,
    alg: &BoolAlg,
    rules: &RuleSet,
    config: &LintConfig,
    report: &mut LintReport,
) -> ConfluenceOutcome {
    check_confluence_jobs(store, alg, rules, config, report, 1)
}

/// [`check_confluence`] with an explicit worker count.
///
/// Pairs are enumerated on the caller's store; with `jobs > 1` each worker
/// clones the store (a clone shares no state, and every `TermId` in a pair
/// stays valid in the clone since interning is deterministic) and pulls
/// pair indices off a shared atomic counter. Verdicts land in per-pair
/// slots and diagnostics are emitted on the calling thread in pair order,
/// so the report is byte-identical at every jobs level.
pub fn check_confluence_jobs(
    store: &mut TermStore,
    alg: &BoolAlg,
    rules: &RuleSet,
    config: &LintConfig,
    report: &mut LintReport,
    jobs: usize,
) -> ConfluenceOutcome {
    let cps = critical_pairs(store, rules);
    let jobs = jobs.max(1).min(cps.len().max(1));
    let verdicts: Vec<Joinability> = if jobs <= 1 {
        cps.iter().map(|cp| judge(store, alg, rules, cp)).collect()
    } else {
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<Joinability>>> = cps.iter().map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for w in 0..jobs {
                let worker_store = store.clone();
                let (next, slots, cps) = (&next, &slots, &cps);
                std::thread::Builder::new()
                    .name(format!("lint-cp-{w}"))
                    .stack_size(WORKER_STACK_BYTES)
                    .spawn_scoped(scope, move || {
                        let mut store = worker_store;
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= cps.len() {
                                break;
                            }
                            let verdict = judge(&mut store, alg, rules, &cps[i]);
                            *slots[i].lock().expect("verdict slot poisoned") = Some(verdict);
                        }
                    })
                    .expect("spawning a lint worker thread");
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("verdict slot poisoned")
                    .expect("every pair was judged")
            })
            .collect()
    };

    let mut outcome = ConfluenceOutcome {
        pairs: cps.len(),
        ..ConfluenceOutcome::default()
    };
    for (cp, verdict) in cps.iter().zip(verdicts) {
        match verdict {
            Joinability::Joinable => outcome.joinable += 1,
            Joinability::Pruned => outcome.pruned += 1,
            Joinability::Undecided => {
                outcome.undecided += 1;
                report.push(
                    config,
                    Diagnostic {
                        code: LintCode::UnjoinableCriticalPair,
                        severity: Severity::Warn,
                        message: format!(
                            "joinability of the critical pair of `{}` and `{}` at position {:?} \
                             is undecided: normalization ran out of fuel (is the system \
                             terminating?)",
                            cp.outer, cp.inner, cp.position,
                        ),
                        rule: Some(cp.outer.clone()),
                        span: None,
                        justification: None,
                    },
                );
            }
            Joinability::Unjoinable => {
                outcome.unjoinable += 1;
                let severity = if cp.is_conditional() {
                    Severity::Warn
                } else {
                    LintCode::UnjoinableCriticalPair.default_severity()
                };
                let qualifier = if cp.is_conditional() {
                    " (conditional: the instantiated conditions may be jointly unsatisfiable)"
                } else {
                    ""
                };
                report.push(
                    config,
                    Diagnostic {
                        code: LintCode::UnjoinableCriticalPair,
                        severity,
                        message: format!(
                            "rules `{}` and `{}` overlap at position {:?} of {}: the \
                             counterexample equation {} = {} does not join{qualifier}",
                            cp.outer,
                            cp.inner,
                            cp.position,
                            store.display(cp.peak),
                            store.display(cp.left),
                            store.display(cp.right),
                        ),
                        rule: Some(cp.outer.clone()),
                        span: None,
                        justification: None,
                    },
                );
            }
        }
    }
    if outcome.unjoinable == 0 && outcome.undecided == 0 {
        report.note(format!(
            "local confluence proved: {} critical pairs, {} joinable, {} pruned \
             (mutually exclusive conditions)",
            outcome.pairs, outcome.joinable, outcome.pruned,
        ));
    }
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use equitls_kernel::signature::Signature;
    use equitls_rewrite::bool_rules::hd_bool_rules;

    fn bool_world() -> (TermStore, BoolAlg) {
        let mut sig = Signature::new();
        let alg = BoolAlg::install(&mut sig).unwrap();
        (TermStore::new(sig), alg)
    }

    #[test]
    fn hd_bool_critical_pairs_all_join() {
        let (mut store, alg) = bool_world();
        let rules = hd_bool_rules(&mut store, &alg).unwrap();
        let config = LintConfig::new();
        let mut report = LintReport::new("BOOL");
        let outcome = check_confluence(&mut store, &alg, &rules, &config, &mut report);
        assert!(outcome.pairs > 0, "the HD system has overlaps");
        assert_eq!(outcome.unjoinable, 0, "{report}");
        assert_eq!(outcome.undecided, 0, "{report}");
        assert_eq!(outcome.joinable + outcome.pruned, outcome.pairs);
        assert!(report.diagnostics.is_empty());
        assert_eq!(report.notes.len(), 1);
    }

    #[test]
    fn root_overlap_of_contradictory_rules_is_denied() {
        let (mut store, alg) = bool_world();
        let p = store.declare_var("CFP", alg.sort()).unwrap();
        let pv = store.var(p);
        let not_p = store.app(alg.not_op(), &[pv]).unwrap();
        let tt = alg.tt(&mut store);
        let ff = alg.ff(&mut store);
        let mut rules = RuleSet::new();
        rules.add(&store, "to-true", not_p, tt, None, None).unwrap();
        rules
            .add(&store, "to-false", not_p, ff, None, None)
            .unwrap();
        let config = LintConfig::new();
        let mut report = LintReport::new("bad");
        let outcome = check_confluence(&mut store, &alg, &rules, &config, &mut report);
        // Both orderings of the root overlap yield (true, false).
        assert_eq!(outcome.unjoinable, 2, "{report}");
        assert!(report.has_deny());
        let diags = report.with_code(LintCode::UnjoinableCriticalPair);
        assert!(diags[0].message.contains("does not join"));
    }

    #[test]
    fn mutually_exclusive_conditions_are_pruned() {
        let (mut store, alg) = bool_world();
        let p = store.declare_var("CFQ", alg.sort()).unwrap();
        let pv = store.var(p);
        let not_p = store.app(alg.not_op(), &[pv]).unwrap();
        let tt = alg.tt(&mut store);
        let ff = alg.ff(&mut store);
        let bs = Some(alg.sort());
        let mut rules = RuleSet::new();
        // ceq not P = true if P .  /  ceq not P = false if not P .
        // The guards cannot hold together: P · (P ⊕ 1) = 0 in GF(2).
        rules.add(&store, "if-p", not_p, tt, Some(pv), bs).unwrap();
        rules
            .add(&store, "if-not-p", not_p, ff, Some(not_p), bs)
            .unwrap();
        let config = LintConfig::new();
        let mut report = LintReport::new("guarded");
        let outcome = check_confluence(&mut store, &alg, &rules, &config, &mut report);
        assert_eq!(outcome.unjoinable, 0, "{report}");
        assert_eq!(outcome.pruned, 2, "{report}");
        assert!(!report.has_deny());
    }
}
