//! The incremental lint cache: content-addressed pass results persisted
//! through `equitls-persist`.
//!
//! Every pass's *input* — the canonical rendering of every rule, the
//! signature, the effective configuration, and (per pass) the roots,
//! quarantined equations, and declared variables — is folded into a
//! 64-bit FNV-1a fingerprint. The fingerprint hashes **renderings**
//! (operator, sort, and variable *names*), never `TermId`s or other
//! store-internal indices, so it is stable across processes and across
//! unrelated store growth. A cache entry stores the fingerprint together
//! with the pass's diagnostics and notes; when a later run computes the
//! same fingerprint for the same `(target, pass)` key, the stored results
//! are replayed verbatim and the pass is skipped.
//!
//! On disk the cache is a [`SnapshotKind::LintCache`] snapshot: magic,
//! version, CRC32, atomic replace — a flipped byte fails the load with a
//! typed [`PersistError`], and the caller falls back to a cold analysis.

use crate::diagnostics::{Diagnostic, LintCode, LintConfig, LintReport, Severity};
use equitls_kernel::prelude::OpId;
use equitls_kernel::term::TermStore;
use equitls_obs::sink::Obs;
use equitls_persist::codec::{Reader, Writer};
use equitls_persist::{read_snapshot, write_snapshot, PersistError, SnapshotKind};
use equitls_rewrite::rule::RuleSet;
use equitls_spec::ast::SourceSpan;
use equitls_spec::spec::QuarantinedEquation;
use std::collections::BTreeMap;
use std::path::Path;

/// 64-bit FNV-1a, hand-rolled (the workspace has no hasher dependency and
/// `DefaultHasher` is not stable across releases).
#[derive(Debug, Clone, Copy)]
pub struct Fnv(u64);

impl Fnv {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Self {
        Fnv(Self::OFFSET)
    }

    /// Fold raw bytes.
    pub fn bytes(&mut self, bytes: &[u8]) -> &mut Self {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
        self
    }

    /// Fold a string, length-prefixed so `("ab","c")` ≠ `("a","bc")`.
    pub fn str(&mut self, s: &str) -> &mut Self {
        self.u64(s.len() as u64);
        self.bytes(s.as_bytes())
    }

    /// Fold a little-endian u64.
    pub fn u64(&mut self, v: u64) -> &mut Self {
        self.bytes(&v.to_le_bytes())
    }

    /// The accumulated hash.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv {
    fn default() -> Self {
        Fnv::new()
    }
}

/// Fingerprint of the rule set: every rule's label, rendered sides, and
/// rendered condition, in declaration order.
pub fn fingerprint_rules(store: &TermStore, rules: &RuleSet) -> u64 {
    let mut h = Fnv::new();
    h.u64(rules.len() as u64);
    for rule in rules.iter() {
        h.str(&rule.label);
        h.str(&store.display(rule.lhs).to_string());
        h.str(&store.display(rule.rhs).to_string());
        match rule.cond {
            None => h.u64(0),
            Some(c) => h.u64(1).str(&store.display(c).to_string()),
        };
    }
    h.finish()
}

/// Fingerprint of the signature: sorts and operators by name, argument
/// and result sorts, and operator kind.
pub fn fingerprint_signature(store: &TermStore) -> u64 {
    let sig = store.signature();
    let mut h = Fnv::new();
    h.u64(sig.sort_count() as u64);
    for (_, decl) in sig.sorts() {
        h.str(&decl.name);
        h.u64(u64::from(decl.kind.is_hidden()));
    }
    h.u64(sig.op_count() as u64);
    for (_, decl) in sig.ops() {
        h.str(&decl.name);
        h.u64(decl.args.len() as u64);
        for &a in &decl.args {
            h.str(&sig.sort(a).name);
        }
        h.str(&sig.sort(decl.result).name);
        h.str(&format!("{:?}", decl.attrs.kind));
    }
    h.finish()
}

/// Fingerprint of the effective configuration: every code's effective
/// severity and override justification.
pub fn fingerprint_config(config: &LintConfig) -> u64 {
    let mut h = Fnv::new();
    for code in LintCode::ALL {
        let (severity, justification) = config.severity(code, code.default_severity());
        h.str(code.name());
        h.str(severity.name());
        h.str(justification.unwrap_or(""));
    }
    h.finish()
}

/// Fingerprint of the analysis roots, by operator name (order-insensitive:
/// names are sorted first).
pub fn fingerprint_roots(store: &TermStore, roots: &[OpId]) -> u64 {
    let mut names: Vec<&str> = roots
        .iter()
        .map(|&op| store.signature().op(op).name.as_str())
        .collect();
    names.sort_unstable();
    let mut h = Fnv::new();
    h.u64(names.len() as u64);
    for name in names {
        h.str(name);
    }
    h.finish()
}

/// Fingerprint of the spec-level `vars`-pass inputs: quarantined
/// equations and declared module variables.
pub fn fingerprint_vars_input(
    quarantined: &[QuarantinedEquation],
    module_vars: &[(&str, &[String])],
) -> u64 {
    let mut h = Fnv::new();
    h.u64(quarantined.len() as u64);
    for q in quarantined {
        h.str(&q.label);
        h.str(&q.module);
        h.str(&q.defect.to_string());
        h.str(&q.rendered);
    }
    h.u64(module_vars.len() as u64);
    for (module, vars) in module_vars {
        h.str(module);
        h.u64(vars.len() as u64);
        for v in vars.iter() {
            h.str(v);
        }
    }
    h.finish()
}

/// Combine a pass name with its input-component hashes into the final
/// per-`(target, pass)` fingerprint.
pub fn pass_input_hash(pass: &str, components: &[u64]) -> u64 {
    let mut h = Fnv::new();
    h.str(pass);
    for &c in components {
        h.u64(c);
    }
    h.finish()
}

/// One cached pass result.
#[derive(Debug, Clone)]
pub struct CacheEntry {
    /// Fingerprint of the pass inputs that produced these results.
    pub input_hash: u64,
    /// The diagnostics the pass emitted (post-configuration, with spans).
    pub diagnostics: Vec<Diagnostic>,
    /// The notes the pass emitted.
    pub notes: Vec<String>,
}

/// The whole cache: `(target/pass)` key → stored result.
#[derive(Debug, Clone, Default)]
pub struct LintCache {
    entries: BTreeMap<String, CacheEntry>,
}

fn severity_tag(s: Severity) -> u8 {
    match s {
        Severity::Allow => 0,
        Severity::Warn => 1,
        Severity::Deny => 2,
    }
}

fn severity_from_tag(tag: u8) -> Result<Severity, PersistError> {
    match tag {
        0 => Ok(Severity::Allow),
        1 => Ok(Severity::Warn),
        2 => Ok(Severity::Deny),
        _ => Err(PersistError::Malformed(format!(
            "unknown severity tag {tag}"
        ))),
    }
}

impl LintCache {
    /// An empty cache.
    pub fn new() -> Self {
        LintCache::default()
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The stored result for `key`, but only when its fingerprint matches
    /// `input_hash` — a stale entry is as good as no entry.
    pub fn lookup(&self, key: &str, input_hash: u64) -> Option<&CacheEntry> {
        self.entries.get(key).filter(|e| e.input_hash == input_hash)
    }

    /// Store (or replace) the result for `key`.
    pub fn insert(&mut self, key: impl Into<String>, entry: CacheEntry) {
        self.entries.insert(key.into(), entry);
    }

    /// Load a cache snapshot from `path`.
    ///
    /// # Errors
    ///
    /// [`PersistError`] for missing/corrupt/truncated/wrong-kind files —
    /// callers treat any error as "run cold" (optionally after warning).
    pub fn load(path: &Path, obs: &Obs) -> Result<Self, PersistError> {
        let (_meta, payload) = read_snapshot(path, SnapshotKind::LintCache, obs)?;
        let mut r = Reader::new(&payload);
        let n = r.seq_len(10)?;
        let mut entries = BTreeMap::new();
        for _ in 0..n {
            let key = r.str()?;
            let input_hash = r.u64()?;
            let n_diags = r.seq_len(4)?;
            let mut diagnostics = Vec::with_capacity(n_diags);
            for _ in 0..n_diags {
                let code_name = r.str()?;
                let code = LintCode::by_name(&code_name).ok_or_else(|| {
                    PersistError::Malformed(format!("unknown lint code `{code_name}`"))
                })?;
                let severity = severity_from_tag(r.u8()?)?;
                let message = r.str()?;
                let rule = if r.bool()? { Some(r.str()?) } else { None };
                let span = if r.bool()? {
                    let line = r.usize()?;
                    let column = r.usize()?;
                    Some(SourceSpan { line, column })
                } else {
                    None
                };
                let justification = if r.bool()? { Some(r.str()?) } else { None };
                diagnostics.push(Diagnostic {
                    code,
                    severity,
                    message,
                    rule,
                    span,
                    justification,
                });
            }
            let n_notes = r.seq_len(1)?;
            let mut notes = Vec::with_capacity(n_notes);
            for _ in 0..n_notes {
                notes.push(r.str()?);
            }
            entries.insert(
                key,
                CacheEntry {
                    input_hash,
                    diagnostics,
                    notes,
                },
            );
        }
        Ok(LintCache { entries })
    }

    /// Atomically write the cache snapshot to `path`.
    ///
    /// # Errors
    ///
    /// [`PersistError::Io`] on filesystem failures.
    pub fn save(&self, path: &Path, obs: &Obs) -> Result<u64, PersistError> {
        let mut w = Writer::new();
        w.usize(self.entries.len());
        for (key, entry) in &self.entries {
            w.str(key);
            w.u64(entry.input_hash);
            w.usize(entry.diagnostics.len());
            for d in &entry.diagnostics {
                w.str(d.code.name());
                w.u8(severity_tag(d.severity));
                w.str(&d.message);
                w.bool(d.rule.is_some());
                if let Some(rule) = &d.rule {
                    w.str(rule);
                }
                w.bool(d.span.is_some());
                if let Some(span) = &d.span {
                    w.usize(span.line);
                    w.usize(span.column);
                }
                w.bool(d.justification.is_some());
                if let Some(why) = &d.justification {
                    w.str(why);
                }
            }
            w.usize(entry.notes.len());
            for note in &entry.notes {
                w.str(note);
            }
        }
        write_snapshot(path, SnapshotKind::LintCache, &w.into_bytes(), obs)
    }

    /// Replay a stored entry into `report` (diagnostics are stored
    /// post-configuration, so they are appended verbatim).
    pub fn replay(entry: &CacheEntry, report: &mut LintReport) {
        report.diagnostics.extend(entry.diagnostics.iter().cloned());
        report.notes.extend(entry.notes.iter().cloned());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_file(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("equitls_lint_cache_{}_{name}", std::process::id()))
    }

    fn sample_entry() -> CacheEntry {
        CacheEntry {
            input_hash: 0xdead_beef_cafe_f00d,
            diagnostics: vec![Diagnostic {
                code: LintCode::DeadRule,
                severity: Severity::Warn,
                message: "rule `stale` can never fire".into(),
                rule: Some("stale".into()),
                span: Some(SourceSpan { line: 7, column: 3 }),
                justification: None,
            }],
            notes: vec!["dependency graph: 3 operators".into()],
        }
    }

    #[test]
    fn cache_roundtrips_through_disk() {
        let path = tmp_file("roundtrip.snap");
        let obs = Obs::noop();
        let mut cache = LintCache::new();
        cache.insert("standard/deps", sample_entry());
        cache.save(&path, &obs).unwrap();
        let back = LintCache::load(&path, &obs).unwrap();
        assert_eq!(back.len(), 1);
        let entry = back
            .lookup("standard/deps", 0xdead_beef_cafe_f00d)
            .expect("matching fingerprint");
        assert_eq!(entry.diagnostics.len(), 1);
        let d = &entry.diagnostics[0];
        assert_eq!(d.code, LintCode::DeadRule);
        assert_eq!(d.severity, Severity::Warn);
        assert_eq!(d.span, Some(SourceSpan { line: 7, column: 3 }));
        assert_eq!(entry.notes.len(), 1);
        // A stale fingerprint is a miss, not a wrong answer.
        assert!(back.lookup("standard/deps", 1).is_none());
        assert!(back.lookup("other/deps", 0xdead_beef_cafe_f00d).is_none());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn flipped_byte_fails_with_a_typed_error() {
        let path = tmp_file("bitflip.snap");
        let obs = Obs::noop();
        let mut cache = LintCache::new();
        cache.insert("t/p", sample_entry());
        cache.save(&path, &obs).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            LintCache::load(&path, &obs),
            Err(PersistError::ChecksumMismatch)
        ));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn fingerprints_are_stable_and_input_sensitive() {
        let a = pass_input_hash("deps", &[1, 2, 3]);
        let b = pass_input_hash("deps", &[1, 2, 3]);
        let c = pass_input_hash("deps", &[1, 2, 4]);
        let d = pass_input_hash("vars", &[1, 2, 3]);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d);
        // Known FNV-1a test vector: empty input hashes to the offset basis.
        assert_eq!(Fnv::new().finish(), 0xcbf2_9ce4_8422_2325);
    }
}
