//! Termination analysis: direct-loop detection and LPO orientation.
//!
//! Two checks, cheapest first:
//!
//! 1. **Direct loops** — a rule whose left-hand side matches a subterm of
//!    its own right-hand side re-fires inside its own result forever
//!    (`c → f(c)`, or a commutativity equation used as a rule). For
//!    unconditional rules this is a certain divergence (`deny`); for
//!    conditional rules the condition may break the loop, so it is only a
//!    warning.
//! 2. **Lexicographic path order** — a greedy search for an operator
//!    precedence under which every rule's left-hand side is LPO-greater
//!    than its right-hand side. LPO-orientability proves termination of
//!    the whole system; the orienting precedence is reported as a note.
//!    Because LPO is an incomplete criterion, failure is a warning
//!    (`termination-order`), not an error.
//!
//! The precedence search commits comparisons greedily: whenever the
//! comparison `f > g` is needed and neither `f > g` nor `g > f` is
//! already decided, the edge is added tentatively; if the enclosing rule
//! orientation fails, an undo log rolls the tentative edges back. Rules
//! are retried in passes until a fixpoint, so an edge committed for a
//! later rule can unblock an earlier one.

use crate::diagnostics::{Diagnostic, LintCode, LintConfig, LintReport};
use equitls_kernel::matching::{match_term, MatchOutcome};
use equitls_kernel::op::OpId;
use equitls_kernel::term::{Term, TermId, TermStore};
use equitls_rewrite::rule::RuleSet;
use std::collections::{HashMap, HashSet};

/// A strict partial order on operators, maintained as an acyclic edge set
/// with an undo log for tentative additions.
#[derive(Debug, Default)]
pub struct Precedence {
    greater: HashMap<OpId, HashSet<OpId>>,
    log: Vec<(OpId, OpId)>,
}

impl Precedence {
    /// `true` when `f > g` is already derivable (transitively).
    pub fn gt(&self, f: OpId, g: OpId) -> bool {
        if f == g {
            return false;
        }
        let mut stack = vec![f];
        let mut seen = HashSet::new();
        while let Some(x) = stack.pop() {
            if let Some(nexts) = self.greater.get(&x) {
                for &y in nexts {
                    if y == g {
                        return true;
                    }
                    if seen.insert(y) {
                        stack.push(y);
                    }
                }
            }
        }
        false
    }

    /// Commit `f > g` if consistent (no cycle); returns whether `f > g`
    /// holds afterwards.
    fn require_gt(&mut self, f: OpId, g: OpId) -> bool {
        if f == g || self.gt(g, f) {
            return false;
        }
        if self.gt(f, g) {
            return true;
        }
        self.greater.entry(f).or_default().insert(g);
        self.log.push((f, g));
        true
    }

    /// Position in the undo log, for later [`Precedence::rollback`].
    fn snapshot(&self) -> usize {
        self.log.len()
    }

    /// Remove every edge added after `mark`.
    fn rollback(&mut self, mark: usize) {
        while self.log.len() > mark {
            let (f, g) = self.log.pop().expect("log length checked");
            if let Some(set) = self.greater.get_mut(&f) {
                set.remove(&g);
            }
        }
    }

    /// The committed edges, in commit order.
    pub fn edges(&self) -> &[(OpId, OpId)] {
        &self.log
    }
}

/// Strict LPO comparison `s > t`, greedily committing precedence edges.
///
/// The subterm route is tried first because it needs no precedence
/// commitment; the precedence and lexicographic routes snapshot and roll
/// back on failure so unrelated tentative edges never leak.
fn lpo_gt(store: &TermStore, prec: &mut Precedence, s: TermId, t: TermId) -> bool {
    if s == t {
        return false;
    }
    let (f, ss) = match store.node(s) {
        Term::Var(_) => return false,
        Term::App { op, args } => (*op, args.clone()),
    };
    if let Term::Var(v) = store.node(t) {
        return store.vars_of(s).contains(v);
    }
    // Subterm route: some si ⪰ t. No precedence needed when si == t.
    if ss.contains(&t) || ss.iter().any(|&si| lpo_gt(store, prec, si, t)) {
        return true;
    }
    let (g, ts) = match store.node(t) {
        Term::Var(_) => unreachable!("variable case handled above"),
        Term::App { op, args } => (*op, args.clone()),
    };
    if f == g && ss.len() == ts.len() {
        // Lexicographic route: equal prefix, first differing argument
        // decreases, remaining right arguments dominated by s.
        let mark = prec.snapshot();
        if let Some(i) = (0..ss.len()).find(|&i| ss[i] != ts[i]) {
            if lpo_gt(store, prec, ss[i], ts[i])
                && ts[i + 1..].iter().all(|&tj| lpo_gt(store, prec, s, tj))
            {
                return true;
            }
        }
        prec.rollback(mark);
        false
    } else {
        // Precedence route: f > g and s dominates every argument of t.
        let mark = prec.snapshot();
        if prec.require_gt(f, g) && ts.iter().all(|&tj| lpo_gt(store, prec, s, tj)) {
            return true;
        }
        prec.rollback(mark);
        false
    }
}

/// Result of the precedence search: which rules oriented, and the
/// precedence that did it.
#[derive(Debug)]
pub struct OrientationResult {
    /// Per-rule: did `lhs >lpo rhs` succeed under the final precedence?
    pub oriented: Vec<bool>,
    /// The discovered precedence.
    pub precedence: Precedence,
}

impl OrientationResult {
    /// `true` when every rule oriented.
    pub fn all_oriented(&self) -> bool {
        self.oriented.iter().all(|&b| b)
    }

    /// The committed precedence edges as `(greater, lesser)` op names.
    pub fn edge_names(&self, store: &TermStore) -> Vec<(String, String)> {
        let sig = store.signature();
        self.precedence
            .edges()
            .iter()
            .map(|&(f, g)| (sig.op(f).name.clone(), sig.op(g).name.clone()))
            .collect()
    }
}

/// Search for an LPO precedence orienting every rule, in passes until a
/// fixpoint.
pub fn orient_rules(store: &TermStore, rules: &RuleSet) -> OrientationResult {
    let mut prec = Precedence::default();
    let mut oriented = vec![false; rules.len()];
    loop {
        let mut progressed = false;
        for (i, rule) in rules.iter().enumerate() {
            if oriented[i] {
                continue;
            }
            let mark = prec.snapshot();
            if lpo_gt(store, &mut prec, rule.lhs, rule.rhs) {
                oriented[i] = true;
                progressed = true;
            } else {
                prec.rollback(mark);
            }
        }
        if !progressed {
            break;
        }
    }
    OrientationResult {
        oriented,
        precedence: prec,
    }
}

/// Run both termination checks, reporting into `report`.
///
/// Returns the orientation result so callers (and tests) can inspect the
/// discovered precedence.
pub fn check_termination(
    store: &TermStore,
    rules: &RuleSet,
    config: &LintConfig,
    report: &mut LintReport,
) -> OrientationResult {
    // Direct loops first: an LPO failure on a looping rule is redundant
    // noise next to the certain divergence.
    let mut looping = vec![false; rules.len()];
    for (i, rule) in rules.iter().enumerate() {
        let fires_in_own_result = store
            .subterms(rule.rhs)
            .into_iter()
            .any(|sub| matches!(match_term(store, rule.lhs, sub), MatchOutcome::Matched(_)));
        if fires_in_own_result {
            looping[i] = true;
            let (severity, qualifier) = if rule.cond.is_some() {
                // The condition may fail on the re-fired instance.
                (
                    crate::Severity::Warn,
                    " unless its condition breaks the cycle",
                )
            } else {
                (LintCode::TerminationLoop.default_severity(), "")
            };
            report.push(
                config,
                Diagnostic {
                    code: LintCode::TerminationLoop,
                    severity,
                    message: format!(
                        "left-hand side {} matches a subterm of its own right-hand side {}; \
                         the rule re-fires inside its own result{qualifier}",
                        store.display(rule.lhs),
                        store.display(rule.rhs),
                    ),
                    rule: Some(rule.label.clone()),
                    span: None,
                    justification: None,
                },
            );
        }
    }

    let result = orient_rules(store, rules);
    for (i, rule) in rules.iter().enumerate() {
        if !result.oriented[i] && !looping[i] {
            report.push(
                config,
                Diagnostic {
                    code: LintCode::TerminationOrder,
                    severity: LintCode::TerminationOrder.default_severity(),
                    message: format!(
                        "no lexicographic path order orients {} -> {}; \
                         termination is unproven (LPO is an incomplete criterion)",
                        store.display(rule.lhs),
                        store.display(rule.rhs),
                    ),
                    rule: Some(rule.label.clone()),
                    span: None,
                    justification: None,
                },
            );
        }
    }
    if result.all_oriented() && !rules.is_empty() {
        let edges: Vec<String> = result
            .edge_names(store)
            .into_iter()
            .map(|(f, g)| format!("{f} > {g}"))
            .collect();
        // Spelling out hundreds of edges drowns the report on the full
        // protocol models; past a screenful, the count carries the proof.
        let precedence = if edges.len() <= 24 {
            format!("with precedence {{{}}}", edges.join(", "))
        } else {
            format!("({} precedence edges)", edges.len())
        };
        report.note(format!(
            "termination proved: all {} rules oriented by LPO {precedence}",
            rules.len(),
        ));
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use equitls_kernel::signature::Signature;
    use equitls_rewrite::bool_alg::BoolAlg;
    use equitls_rewrite::bool_rules::hd_bool_rules;
    use equitls_rewrite::rule::RuleSet;

    fn bool_world() -> (TermStore, BoolAlg) {
        let mut sig = Signature::new();
        let alg = BoolAlg::install(&mut sig).unwrap();
        (TermStore::new(sig), alg)
    }

    fn fresh_report() -> (LintConfig, LintReport) {
        (LintConfig::new(), LintReport::new("test"))
    }

    #[test]
    fn hd_bool_system_is_lpo_orientable() {
        let (mut store, alg) = bool_world();
        let rules = hd_bool_rules(&mut store, &alg).unwrap();
        let (config, mut report) = fresh_report();
        let result = check_termination(&store, &rules, &config, &mut report);
        assert!(result.all_oriented(), "HD BOOL must orient: {report}");
        assert!(report.diagnostics.is_empty(), "unexpected: {report}");
        assert_eq!(report.notes.len(), 1);
        assert!(report.notes[0].contains("termination proved"));
        assert!(!result.edge_names(&store).is_empty());
    }

    #[test]
    fn direct_loop_is_denied() {
        let (mut store, alg) = bool_world();
        // true → not(true): the lhs (a constant pattern) matches inside
        // the rhs argument, so the rule re-fires forever.
        let t = alg.tt(&mut store);
        let looped = store.app(alg.not_op(), &[t]).unwrap();
        let mut rules = RuleSet::new();
        rules
            .add(&store, "loop", t, looped, None, None)
            .expect("rule is well-formed");
        let (config, mut report) = fresh_report();
        check_termination(&store, &rules, &config, &mut report);
        let loops = report.with_code(LintCode::TerminationLoop);
        assert_eq!(loops.len(), 1, "{report}");
        assert_eq!(loops[0].severity, crate::Severity::Deny);
        assert_eq!(loops[0].rule.as_deref(), Some("loop"));
        // The loop diagnostic replaces (not duplicates) the LPO warning.
        assert!(report.with_code(LintCode::TerminationOrder).is_empty());
    }

    #[test]
    fn two_rule_cycle_defeats_lpo() {
        let (mut store, alg) = bool_world();
        let p = store.declare_var("LPOP", alg.sort()).unwrap();
        let pv = store.var(p);
        let not_p = store.app(alg.not_op(), &[pv]).unwrap();
        let t = alg.tt(&mut store);
        let p_xor_t = store.app(alg.xor_op(), &[pv, t]).unwrap();
        let mut rules = RuleSet::new();
        // A two-step cycle: `not p → p xor true` needs not > xor, then
        // `p xor true → not p` needs xor > not. Neither rule matches
        // inside its own result, so only the LPO search can object.
        rules
            .add(&store, "fwd", not_p, p_xor_t, None, None)
            .unwrap();
        rules
            .add(&store, "back", p_xor_t, not_p, None, None)
            .unwrap();
        let (config, mut report) = fresh_report();
        let result = check_termination(&store, &rules, &config, &mut report);
        assert!(!result.all_oriented());
        assert_eq!(report.with_code(LintCode::TerminationOrder).len(), 1);
        assert!(report.notes.is_empty());
    }

    #[test]
    fn conditional_loop_is_only_a_warning() {
        let (mut store, alg) = bool_world();
        let t = alg.tt(&mut store);
        let f = alg.ff(&mut store);
        let looped = store.app(alg.not_op(), &[t]).unwrap();
        let mut rules = RuleSet::new();
        rules
            .add(&store, "cloop", t, looped, Some(f), Some(alg.sort()))
            .unwrap();
        let (config, mut report) = fresh_report();
        check_termination(&store, &rules, &config, &mut report);
        let loops = report.with_code(LintCode::TerminationLoop);
        assert_eq!(loops.len(), 1);
        assert_eq!(loops[0].severity, crate::Severity::Warn);
    }
}
