//! `equitls-lint` — whole-spec static analysis of rewrite systems.
//!
//! The OTS/CafeOBJ method reads equations as left-to-right rewrite rules
//! and trusts `red` to decide equality. That trust rests on properties of
//! the rule set that the prover itself never checks: **termination** (every
//! reduction halts), **local confluence** (the normal form does not depend
//! on rule order), and **sufficient completeness** (defined operators
//! reduce on every constructor input). This crate checks them statically —
//! along with whole-spec semantic properties — and reports findings as
//! structured diagnostics:
//!
//! * [`termination`] — direct-loop detection plus a searched
//!   lexicographic-path-order precedence that orients every rule;
//! * [`confluence`] — Knuth–Bendix critical pairs, joined through the
//!   workspace's own rewrite engine, with mutually-exclusive conditional
//!   pairs pruned through the GF(2) ring; joinability parallelizes across
//!   worker threads with a jobs-invariant report;
//! * [`coverage`] — Maranget-style pattern-matrix completeness of each
//!   rule-defined operator over its constructor generators;
//! * [`style`] — duplicate and shadowed rules, non-linear left-hand
//!   sides, unused declarations, trivially true/false conditions;
//! * [`deps`] — the operator/rule dependency graph: SCC condensation,
//!   stratification layers, and dead rules unreachable from the analysis
//!   roots (observers, actions, `{root}`-marked operators), exportable as
//!   Graphviz DOT;
//! * [`vars`] — variable and sort discipline: quarantined non-executable
//!   equations, collapsing rules, unused declared variables.
//!
//! Findings carry stable [`LintCode`]s and [`Severity`] levels
//! (`deny`/`warn`/`allow`), overridable per code — with a recorded
//! justification — through [`LintConfig`], and render to SARIF 2.1.0
//! through [`sarif`]. Analyses never mutate the caller's store: the
//! drivers clone it into a scratch arena first.
//!
//! The pass drivers are **incremental**: with a [`cache::LintCache`]
//! attached, each pass's inputs are fingerprinted (content hashes of the
//! canonical rule and signature renderings, never store indices) and
//! passes whose inputs are bit-identical to a cached run replay their
//! stored results instead of re-analyzing. [`analyze_system`] covers a
//! raw signature-plus-rules pair; [`analyze_spec`] covers a loaded
//! specification, attaching source spans before results are cached so
//! replays are byte-identical. [`lint_system`] / [`lint_spec`] are the
//! uncached convenience forms. The `tls-lint` binary (in `equitls-tls`)
//! drives everything over every shipped equation set.

pub mod cache;
pub mod confluence;
pub mod coverage;
pub mod deps;
pub mod diagnostics;
pub mod sarif;
pub mod style;
pub mod termination;
pub mod vars;

pub use crate::diagnostics::{Diagnostic, LintCode, LintConfig, LintReport, Severity};

use crate::cache::{
    fingerprint_config, fingerprint_roots, fingerprint_rules, fingerprint_signature,
    fingerprint_vars_input, pass_input_hash, CacheEntry, LintCache,
};
use crate::vars::VarsInput;
use equitls_kernel::prelude::OpId;
use equitls_kernel::term::TermStore;
use equitls_rewrite::bool_alg::BoolAlg;
use equitls_rewrite::rule::RuleSet;
use equitls_spec::spec::Spec;

/// The analysis passes, in the order they run and report.
pub const PASSES: [&str; 6] = [
    "termination",
    "confluence",
    "coverage",
    "style",
    "deps",
    "vars",
];

/// Knobs for the pass drivers.
#[derive(Debug, Clone)]
pub struct AnalysisOptions {
    /// Worker threads for critical-pair joinability (the report is
    /// identical at every level; see [`confluence::check_confluence_jobs`]).
    pub jobs: usize,
    /// Additional dependency-analysis roots, merged with the spec's
    /// `{root}`-marked operators.
    pub roots: Vec<OpId>,
}

impl Default for AnalysisOptions {
    fn default() -> Self {
        AnalysisOptions {
            jobs: 1,
            roots: Vec::new(),
        }
    }
}

/// What a driver run did: the report plus the cold/warm split.
#[derive(Debug)]
pub struct AnalysisOutcome {
    /// The merged report of every pass.
    pub report: LintReport,
    /// Passes that actually ran.
    pub passes_analyzed: usize,
    /// Passes replayed from the cache.
    pub passes_reused: usize,
}

/// The shared pass loop. `scratch` is already a private clone; `spans`
/// carries the spec whose source spans get attached to findings *before*
/// they are cached, so cache replays are byte-identical to cold runs.
#[allow(clippy::too_many_arguments)]
fn run_analysis(
    scratch: &mut TermStore,
    alg: &BoolAlg,
    rules: &RuleSet,
    target: &str,
    config: &LintConfig,
    jobs: usize,
    roots: &[OpId],
    vars_input: &VarsInput<'_>,
    spans: Option<&Spec>,
    mut cache: Option<&mut LintCache>,
) -> AnalysisOutcome {
    let rules_h = fingerprint_rules(scratch, rules);
    let sig_h = fingerprint_signature(scratch);
    let config_h = fingerprint_config(config);
    let roots_h = fingerprint_roots(scratch, roots);
    let vars_h = fingerprint_vars_input(vars_input.quarantined, &vars_input.module_vars);

    let mut report = LintReport::new(target);
    let mut analyzed = 0usize;
    let mut reused = 0usize;
    for pass in PASSES {
        // `jobs` is deliberately absent from every fingerprint: the
        // determinism contract makes the report jobs-invariant.
        let components: &[u64] = match pass {
            "deps" => &[rules_h, sig_h, config_h, roots_h],
            "vars" => &[rules_h, sig_h, config_h, vars_h],
            _ => &[rules_h, sig_h, config_h],
        };
        let input_hash = pass_input_hash(pass, components);
        let key = format!("{target}/{pass}");
        if let Some(entry) = cache.as_deref().and_then(|c| c.lookup(&key, input_hash)) {
            LintCache::replay(entry, &mut report);
            reused += 1;
            continue;
        }
        let mut sub = LintReport::new(target);
        match pass {
            "termination" => {
                termination::check_termination(scratch, rules, config, &mut sub);
            }
            "confluence" => {
                confluence::check_confluence_jobs(scratch, alg, rules, config, &mut sub, jobs);
            }
            "coverage" => {
                coverage::check_coverage(scratch, rules, config, &mut sub);
            }
            "style" => {
                style::check_style(scratch, alg, rules, config, &mut sub);
            }
            "deps" => {
                deps::check_deps(scratch, rules, roots, config, &mut sub);
            }
            "vars" => vars::check_vars(scratch, rules, vars_input, config, &mut sub),
            _ => unreachable!("pass list is exhaustive"),
        }
        if let Some(spec) = spans {
            for d in &mut sub.diagnostics {
                if d.span.is_none() {
                    if let Some(label) = &d.rule {
                        d.span = spec.equation_span(label);
                    }
                }
            }
        }
        if let Some(c) = cache.as_deref_mut() {
            c.insert(
                key,
                CacheEntry {
                    input_hash,
                    diagnostics: sub.diagnostics.clone(),
                    notes: sub.notes.clone(),
                },
            );
        }
        report.diagnostics.extend(sub.diagnostics);
        report.notes.extend(sub.notes);
        analyzed += 1;
    }
    AnalysisOutcome {
        report,
        passes_analyzed: analyzed,
        passes_reused: reused,
    }
}

/// Run every analysis pass over `rules` in `store`, labeling the report
/// with `target`. The caller's store is cloned, never mutated.
pub fn analyze_system(
    store: &TermStore,
    alg: &BoolAlg,
    rules: &RuleSet,
    target: &str,
    config: &LintConfig,
    options: &AnalysisOptions,
    cache: Option<&mut LintCache>,
) -> AnalysisOutcome {
    let mut scratch = store.clone();
    run_analysis(
        &mut scratch,
        alg,
        rules,
        target,
        config,
        options.jobs,
        &options.roots,
        &VarsInput::default(),
        None,
        cache,
    )
}

/// Analyze a loaded specification: every installed equation plus the
/// loader's quarantine, with source spans attached to findings about
/// parsed equations. The spec's `{root}`-marked operators join
/// `options.roots` as dependency-analysis roots.
pub fn analyze_spec(
    spec: &Spec,
    target: &str,
    config: &LintConfig,
    options: &AnalysisOptions,
    cache: Option<&mut LintCache>,
) -> AnalysisOutcome {
    let mut scratch = spec.store().clone();
    let mut roots = options.roots.clone();
    for &r in spec.root_ops() {
        if !roots.contains(&r) {
            roots.push(r);
        }
    }
    let module_vars: Vec<(&str, &[String])> = spec
        .modules()
        .iter()
        .map(|m| (m.name.as_str(), m.vars.as_slice()))
        .collect();
    let vars_input = VarsInput {
        quarantined: spec.quarantined(),
        module_vars,
    };
    run_analysis(
        &mut scratch,
        &spec.alg().clone(),
        spec.rules(),
        target,
        config,
        options.jobs,
        &roots,
        &vars_input,
        Some(spec),
        cache,
    )
}

/// Uncached [`analyze_system`], returning just the report.
pub fn lint_system(
    store: &TermStore,
    alg: &BoolAlg,
    rules: &RuleSet,
    target: &str,
    config: &LintConfig,
) -> LintReport {
    analyze_system(
        store,
        alg,
        rules,
        target,
        config,
        &AnalysisOptions::default(),
        None,
    )
    .report
}

/// Uncached [`analyze_spec`], returning just the report.
pub fn lint_spec(spec: &Spec, target: &str, config: &LintConfig) -> LintReport {
    analyze_spec(spec, target, config, &AnalysisOptions::default(), None).report
}

#[cfg(test)]
mod tests {
    use super::*;
    use equitls_kernel::signature::Signature;
    use equitls_rewrite::bool_rules::hd_bool_rules;

    #[test]
    fn full_lint_of_hd_bool_has_no_warnings_or_errors() {
        let mut sig = Signature::new();
        let alg = BoolAlg::install(&mut sig).unwrap();
        let mut store = TermStore::new(sig);
        let rules = hd_bool_rules(&mut store, &alg).unwrap();
        let config = LintConfig::new();
        let report = lint_system(&store, &alg, &rules, "BOOL", &config);
        assert_eq!(report.count(Severity::Deny), 0, "{report}");
        assert_eq!(report.count(Severity::Warn), 0, "{report}");
        // Termination, confluence, coverage, deps, and vars each leave a
        // proof/census note.
        assert_eq!(report.notes.len(), 5, "{report}");
        assert!(!report.has_deny());
        let json = report.to_json();
        assert_eq!(json.get("deny").and_then(|v| v.as_f64()), Some(0.0));
    }

    #[test]
    fn analysis_never_mutates_the_callers_store() {
        let mut sig = Signature::new();
        let alg = BoolAlg::install(&mut sig).unwrap();
        let mut store = TermStore::new(sig);
        let rules = hd_bool_rules(&mut store, &alg).unwrap();
        let before = store.term_count();
        let config = LintConfig::new();
        let _ = lint_system(&store, &alg, &rules, "BOOL", &config);
        assert_eq!(
            store.term_count(),
            before,
            "lint must work on a scratch clone, not the caller's arena"
        );

        let mut spec = Spec::new().unwrap();
        spec.load_module(
            r#"
            mod! FROZEN {
              [ F ]
              op z : -> F {constr} .
              op s : F -> F {constr} .
              op dbl : F -> F .
              var X : F .
              eq [dbl-z] : dbl(z) = z .
              eq [dbl-s] : dbl(s(X)) = s(s(dbl(X))) .
            }
            "#,
        )
        .unwrap();
        let before = spec.store().term_count();
        let _ = lint_spec(&spec, "FROZEN", &config);
        assert_eq!(spec.store().term_count(), before);
    }

    #[test]
    fn warm_cache_reuses_every_pass_with_an_identical_report() {
        let mut sig = Signature::new();
        let alg = BoolAlg::install(&mut sig).unwrap();
        let mut store = TermStore::new(sig);
        let rules = hd_bool_rules(&mut store, &alg).unwrap();
        let config = LintConfig::new();
        let options = AnalysisOptions::default();
        let mut cache = LintCache::new();
        let cold = analyze_system(
            &store,
            &alg,
            &rules,
            "BOOL",
            &config,
            &options,
            Some(&mut cache),
        );
        assert_eq!(cold.passes_analyzed, PASSES.len());
        assert_eq!(cold.passes_reused, 0);
        assert_eq!(cache.len(), PASSES.len());
        let warm = analyze_system(
            &store,
            &alg,
            &rules,
            "BOOL",
            &config,
            &options,
            Some(&mut cache),
        );
        assert_eq!(warm.passes_analyzed, 0);
        assert_eq!(warm.passes_reused, PASSES.len());
        assert_eq!(format!("{}", cold.report), format!("{}", warm.report));
        // Touching the configuration invalidates every pass.
        let mut strict = LintConfig::new();
        strict.set_severity(LintCode::CollapsingRule, Severity::Warn, "audit");
        let cold2 = analyze_system(
            &store,
            &alg,
            &rules,
            "BOOL",
            &strict,
            &options,
            Some(&mut cache),
        );
        assert_eq!(cold2.passes_reused, 0);
    }

    #[test]
    fn config_overrides_downgrade_and_record_justification() {
        let mut sig = Signature::new();
        let alg = BoolAlg::install(&mut sig).unwrap();
        let mut store = TermStore::new(sig);
        let tt = alg.tt(&mut store);
        let looped = store.app(alg.not_op(), &[tt]).unwrap();
        let mut rules = RuleSet::new();
        rules.add(&store, "loop", tt, looped, None, None).unwrap();
        let mut config = LintConfig::new();
        config.allow(LintCode::TerminationLoop, "fixture exercises the loop lint");
        let report = lint_system(&store, &alg, &rules, "fixture", &config);
        let loops = report.with_code(LintCode::TerminationLoop);
        assert!(!loops.is_empty());
        assert!(loops.iter().all(|d| d.severity == Severity::Allow));
        assert!(loops[0]
            .justification
            .as_deref()
            .is_some_and(|j| j.contains("fixture")));
        assert!(!report.has_deny());
    }

    #[test]
    fn lint_spec_attaches_source_spans() {
        let mut spec = Spec::new().unwrap();
        spec.load_module(
            r#"
            mod! SPANT {
              [ S ]
              op a : -> S {constr} .
              op b : -> S {constr} .
              op f : S -> S .
              var X : S .
              eq [first] : f(X) = a .
              eq [copy] : f(X) = a .
            }
            "#,
        )
        .unwrap();
        let config = LintConfig::new();
        let report = lint_spec(&spec, "SPANT", &config);
        let dups = report.with_code(LintCode::DuplicateRule);
        assert_eq!(dups.len(), 1, "{report}");
        assert_eq!(dups[0].rule.as_deref(), Some("copy"));
        let span = dups[0].span.expect("parsed equations carry spans");
        assert!(span.line > 0 && span.column > 0);
        // The span must survive into the JSON rendering.
        let json = report.to_json();
        assert!(json.to_string().contains("\"span\""));
    }

    #[test]
    fn cached_spec_findings_replay_with_their_spans() {
        let mut spec = Spec::new().unwrap();
        spec.load_module(
            r#"
            mod! SPANC {
              [ S ]
              op a : -> S {constr} .
              op f : S -> S .
              var X : S .
              eq [first] : f(X) = a .
              eq [copy] : f(X) = a .
            }
            "#,
        )
        .unwrap();
        let config = LintConfig::new();
        let options = AnalysisOptions::default();
        let mut cache = LintCache::new();
        let cold = analyze_spec(&spec, "SPANC", &config, &options, Some(&mut cache));
        let warm = analyze_spec(&spec, "SPANC", &config, &options, Some(&mut cache));
        assert_eq!(warm.passes_reused, PASSES.len());
        let warm_dups = warm.report.with_code(LintCode::DuplicateRule);
        assert!(warm_dups[0].span.is_some(), "spans survive the cache");
        assert_eq!(format!("{}", cold.report), format!("{}", warm.report));
    }
}
