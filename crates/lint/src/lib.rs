//! `equitls-lint` — static analysis of rewrite systems.
//!
//! The OTS/CafeOBJ method reads equations as left-to-right rewrite rules
//! and trusts `red` to decide equality. That trust rests on properties of
//! the rule set that the prover itself never checks: **termination** (every
//! reduction halts), **local confluence** (the normal form does not depend
//! on rule order), and **sufficient completeness** (defined operators
//! reduce on every constructor input). This crate checks them statically
//! and reports findings as structured diagnostics:
//!
//! * [`termination`] — direct-loop detection plus a searched
//!   lexicographic-path-order precedence that orients every rule;
//! * [`confluence`] — Knuth–Bendix critical pairs, joined through the
//!   workspace's own rewrite engine, with mutually-exclusive conditional
//!   pairs pruned through the GF(2) ring;
//! * [`coverage`] — Maranget-style pattern-matrix completeness of each
//!   rule-defined operator over its constructor generators;
//! * [`style`] — duplicate and shadowed rules, non-linear left-hand
//!   sides, unused declarations, trivially true/false conditions.
//!
//! Findings carry stable [`LintCode`]s and [`Severity`] levels
//! (`deny`/`warn`/`allow`), overridable per code — with a recorded
//! justification — through [`LintConfig`]. [`lint_system`] analyzes a raw
//! signature-plus-rules pair; [`lint_spec`] analyzes a loaded
//! specification and attaches source spans to findings about parsed
//! equations. The `tls-lint` binary (in `equitls-tls`) drives both over
//! every shipped equation set.

pub mod confluence;
pub mod coverage;
pub mod diagnostics;
pub mod style;
pub mod termination;

pub use crate::diagnostics::{Diagnostic, LintCode, LintConfig, LintReport, Severity};

use equitls_kernel::term::TermStore;
use equitls_rewrite::bool_alg::BoolAlg;
use equitls_rewrite::rule::RuleSet;
use equitls_spec::spec::Spec;

/// Run every analysis pass over `rules` in `store`, labeling the report
/// with `target`.
pub fn lint_system(
    store: &mut TermStore,
    alg: &BoolAlg,
    rules: &RuleSet,
    target: &str,
    config: &LintConfig,
) -> LintReport {
    let mut report = LintReport::new(target);
    termination::check_termination(store, rules, config, &mut report);
    confluence::check_confluence(store, alg, rules, config, &mut report);
    coverage::check_coverage(store, rules, config, &mut report);
    style::check_style(store, alg, rules, config, &mut report);
    report
}

/// Lint a loaded specification: every installed equation, with source
/// spans attached to findings about equations that came from parsed DSL
/// text.
pub fn lint_spec(spec: &mut Spec, target: &str, config: &LintConfig) -> LintReport {
    let alg = spec.alg().clone();
    let rules = spec.rules().clone();
    let mut report = lint_system(spec.store_mut(), &alg, &rules, target, config);
    for d in &mut report.diagnostics {
        if d.span.is_none() {
            if let Some(label) = &d.rule {
                d.span = spec.equation_span(label);
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use equitls_kernel::signature::Signature;
    use equitls_rewrite::bool_rules::hd_bool_rules;

    #[test]
    fn full_lint_of_hd_bool_has_no_warnings_or_errors() {
        let mut sig = Signature::new();
        let alg = BoolAlg::install(&mut sig).unwrap();
        let mut store = TermStore::new(sig);
        let rules = hd_bool_rules(&mut store, &alg).unwrap();
        let config = LintConfig::new();
        let report = lint_system(&mut store, &alg, &rules, "BOOL", &config);
        assert_eq!(report.count(Severity::Deny), 0, "{report}");
        assert_eq!(report.count(Severity::Warn), 0, "{report}");
        // Termination, confluence, and coverage each leave a proof note.
        assert_eq!(report.notes.len(), 3, "{report}");
        assert!(!report.has_deny());
        let json = report.to_json();
        assert_eq!(json.get("deny").and_then(|v| v.as_f64()), Some(0.0));
    }

    #[test]
    fn config_overrides_downgrade_and_record_justification() {
        let mut sig = Signature::new();
        let alg = BoolAlg::install(&mut sig).unwrap();
        let mut store = TermStore::new(sig);
        let tt = alg.tt(&mut store);
        let looped = store.app(alg.not_op(), &[tt]).unwrap();
        let mut rules = RuleSet::new();
        rules.add(&store, "loop", tt, looped, None, None).unwrap();
        let mut config = LintConfig::new();
        config.allow(LintCode::TerminationLoop, "fixture exercises the loop lint");
        let report = lint_system(&mut store, &alg, &rules, "fixture", &config);
        let loops = report.with_code(LintCode::TerminationLoop);
        assert!(!loops.is_empty());
        assert!(loops.iter().all(|d| d.severity == Severity::Allow));
        assert!(loops[0]
            .justification
            .as_deref()
            .is_some_and(|j| j.contains("fixture")));
        assert!(!report.has_deny());
    }

    #[test]
    fn lint_spec_attaches_source_spans() {
        let mut spec = Spec::new().unwrap();
        spec.load_module(
            r#"
            mod! SPANT {
              [ S ]
              op a : -> S {constr} .
              op b : -> S {constr} .
              op f : S -> S .
              var X : S .
              eq [first] : f(X) = a .
              eq [copy] : f(X) = a .
            }
            "#,
        )
        .unwrap();
        let config = LintConfig::new();
        let report = lint_spec(&mut spec, "SPANT", &config);
        let dups = report.with_code(LintCode::DuplicateRule);
        assert_eq!(dups.len(), 1, "{report}");
        assert_eq!(dups[0].rule.as_deref(), Some("copy"));
        let span = dups[0].span.expect("parsed equations carry spans");
        assert!(span.line > 0 && span.column > 0);
        // The span must survive into the JSON rendering.
        let json = report.to_json();
        assert!(json.to_string().contains("\"span\""));
    }
}
