//! SARIF 2.1.0 rendering of lint reports.
//!
//! SARIF (Static Analysis Results Interchange Format) is the OASIS
//! standard CI systems ingest for static-analysis findings. The log is
//! hand-rolled through `equitls-obs`'s [`JsonValue`] — the workspace has
//! no serialization dependency — as a single `run` of the `tls-lint`
//! driver: one reporting descriptor per stable [`LintCode`], one result
//! per diagnostic, with the diagnostic's source span carried as the
//! `region` of a `physicalLocation` and the severity mapped onto SARIF
//! levels (`deny` → `error`, `warn` → `warning`, `allow` → `note`).

use crate::diagnostics::{LintCode, LintReport, Severity};
use equitls_obs::json::JsonValue;

/// SARIF schema URI for version 2.1.0.
pub const SARIF_SCHEMA: &str =
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json";

fn s(v: impl Into<String>) -> JsonValue {
    JsonValue::String(v.into())
}

fn obj(fields: Vec<(&str, JsonValue)>) -> JsonValue {
    JsonValue::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn level(severity: Severity) -> &'static str {
    match severity {
        Severity::Deny => "error",
        Severity::Warn => "warning",
        Severity::Allow => "note",
    }
}

/// A target name as an artifact URI: spaces and non-URI characters are
/// conservatively percent-escaped so the log stays schema-valid.
fn artifact_uri(target: &str) -> String {
    let mut out = String::with_capacity(target.len());
    for c in target.chars() {
        match c {
            'a'..='z' | 'A'..='Z' | '0'..='9' | '-' | '.' | '_' | '/' => out.push(c),
            _ => {
                let mut buf = [0u8; 4];
                for b in c.encode_utf8(&mut buf).bytes() {
                    out.push('%');
                    out.push_str(&format!("{b:02X}"));
                }
            }
        }
    }
    out
}

/// Render `reports` as one SARIF 2.1.0 log with a single `tls-lint` run.
pub fn to_sarif(reports: &[&LintReport]) -> JsonValue {
    let rules: Vec<JsonValue> = LintCode::ALL
        .iter()
        .map(|code| {
            obj(vec![
                ("id", s(code.name())),
                (
                    "defaultConfiguration",
                    obj(vec![("level", s(level(code.default_severity())))]),
                ),
            ])
        })
        .collect();

    let mut results = Vec::new();
    for report in reports {
        for d in &report.diagnostics {
            let rule_index = LintCode::ALL.iter().position(|&c| c == d.code).unwrap_or(0);
            let mut fields = vec![
                ("ruleId", s(d.code.name())),
                ("ruleIndex", JsonValue::Number(rule_index as f64)),
                ("level", s(level(d.severity))),
                ("message", obj(vec![("text", s(&d.message))])),
            ];
            let mut location = vec![(
                "artifactLocation",
                obj(vec![("uri", s(artifact_uri(&report.target)))]),
            )];
            if let Some(span) = &d.span {
                location.push((
                    "region",
                    obj(vec![
                        ("startLine", JsonValue::Number(span.line as f64)),
                        ("startColumn", JsonValue::Number(span.column as f64)),
                    ]),
                ));
            }
            fields.push((
                "locations",
                JsonValue::Array(vec![obj(vec![("physicalLocation", obj(location))])]),
            ));
            let mut properties = Vec::new();
            if let Some(rule) = &d.rule {
                properties.push(("rule", s(rule)));
            }
            if let Some(why) = &d.justification {
                properties.push(("justification", s(why)));
            }
            if !properties.is_empty() {
                fields.push(("properties", obj(properties)));
            }
            results.push(obj(fields));
        }
    }

    obj(vec![
        ("version", s("2.1.0")),
        ("$schema", s(SARIF_SCHEMA)),
        (
            "runs",
            JsonValue::Array(vec![obj(vec![
                (
                    "tool",
                    obj(vec![(
                        "driver",
                        obj(vec![
                            ("name", s("tls-lint")),
                            ("rules", JsonValue::Array(rules)),
                        ]),
                    )]),
                ),
                ("results", JsonValue::Array(results)),
            ])]),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diagnostics::Diagnostic;
    use equitls_obs::json::parse;
    use equitls_spec::ast::SourceSpan;

    #[test]
    fn sarif_log_roundtrips_spans_and_codes_through_json() {
        let mut report = LintReport::new("UNB");
        report.diagnostics.push(Diagnostic {
            code: LintCode::UnboundVariable,
            severity: Severity::Deny,
            message: "equation `orphan-unbound` is not executable".into(),
            rule: Some("orphan-unbound".into()),
            span: Some(SourceSpan {
                line: 8,
                column: 15,
            }),
            justification: None,
        });
        let rendered = to_sarif(&[&report]).to_string();
        let back = parse(&rendered).expect("SARIF output is valid JSON");
        assert_eq!(back.get("version").and_then(|v| v.as_str()), Some("2.1.0"));
        let runs = match back.get("runs") {
            Some(JsonValue::Array(runs)) => runs,
            other => panic!("runs must be an array, got {other:?}"),
        };
        assert_eq!(runs.len(), 1);
        let driver = runs[0].get("tool").and_then(|t| t.get("driver")).unwrap();
        assert_eq!(
            driver.get("name").and_then(|v| v.as_str()),
            Some("tls-lint")
        );
        let rules = match driver.get("rules") {
            Some(JsonValue::Array(rules)) => rules,
            other => panic!("rules must be an array, got {other:?}"),
        };
        assert_eq!(rules.len(), LintCode::ALL.len());
        assert!(rules
            .iter()
            .any(|r| r.get("id").and_then(|v| v.as_str()) == Some("unbound-variable")));
        let results = match runs[0].get("results") {
            Some(JsonValue::Array(results)) => results,
            other => panic!("results must be an array, got {other:?}"),
        };
        assert_eq!(results.len(), 1);
        let result = &results[0];
        assert_eq!(
            result.get("ruleId").and_then(|v| v.as_str()),
            Some("unbound-variable")
        );
        assert_eq!(result.get("level").and_then(|v| v.as_str()), Some("error"));
        let region = result
            .get("locations")
            .and_then(|l| match l {
                JsonValue::Array(items) => items.first(),
                _ => None,
            })
            .and_then(|l| l.get("physicalLocation"))
            .and_then(|p| p.get("region"))
            .expect("span must survive into the region");
        assert_eq!(region.get("startLine").and_then(|v| v.as_f64()), Some(8.0));
        assert_eq!(
            region.get("startColumn").and_then(|v| v.as_f64()),
            Some(15.0)
        );
    }
}
