//! Cheap structural lints: duplicates, subsumption, non-linearity,
//! unused declarations, trivial conditions.
//!
//! None of these prove anything about the rewrite relation; they catch
//! the specification mistakes that precede semantic bugs — a rule pasted
//! twice, a case shadowed by an earlier catch-all, a guard that the
//! Boolean ring already decides.

use crate::diagnostics::{Diagnostic, LintCode, LintConfig, LintReport};
use equitls_kernel::matching::{match_term, MatchOutcome};
use equitls_kernel::op::OpKind;
use equitls_kernel::term::{Term, TermId, TermStore, VarId};
use equitls_rewrite::bool_alg::BoolAlg;
use equitls_rewrite::engine::Normalizer;
use equitls_rewrite::rule::RuleSet;
use std::collections::{HashMap, HashSet};

/// Fuel for deciding trivial conditions; guards are small terms.
const COND_FUEL: u64 = 10_000;

fn diag(code: LintCode, message: String, rule: Option<String>) -> Diagnostic {
    Diagnostic {
        code,
        severity: code.default_severity(),
        message,
        rule,
        span: None,
        justification: None,
    }
}

/// Count variable *occurrences* (not distinct variables) in `t`.
fn var_occurrences(store: &TermStore, t: TermId, counts: &mut HashMap<VarId, usize>) {
    match store.node(t) {
        Term::Var(v) => *counts.entry(*v).or_insert(0) += 1,
        Term::App { args, .. } => {
            for &a in args.clone().iter() {
                var_occurrences(store, a, counts);
            }
        }
    }
}

/// Duplicate and subsumed (shadowed) rules.
pub fn check_redundancy(
    store: &TermStore,
    rules: &RuleSet,
    config: &LintConfig,
    report: &mut LintReport,
) {
    let all: Vec<_> = rules.iter().collect();
    for (j, later) in all.iter().enumerate() {
        for earlier in &all[..j] {
            if earlier.head != later.head {
                continue;
            }
            let exact =
                earlier.lhs == later.lhs && earlier.rhs == later.rhs && earlier.cond == later.cond;
            if exact {
                report.push(
                    config,
                    diag(
                        LintCode::DuplicateRule,
                        format!(
                            "rule duplicates `{}` (identical sides and condition)",
                            earlier.label,
                        ),
                        Some(later.label.clone()),
                    ),
                );
                break;
            }
            // An earlier unconditional rule whose pattern generalizes this
            // one fires first at every redex this one could claim.
            if earlier.cond.is_none()
                && matches!(
                    match_term(store, earlier.lhs, later.lhs),
                    MatchOutcome::Matched(_)
                )
            {
                report.push(
                    config,
                    diag(
                        LintCode::SubsumedRule,
                        format!(
                            "left-hand side {} is an instance of the earlier unconditional \
                             rule `{}`; this rule can never fire",
                            store.display(later.lhs),
                            earlier.label,
                        ),
                        Some(later.label.clone()),
                    ),
                );
                break;
            }
        }
    }
}

/// Left-nonlinear rules (informational).
pub fn check_linearity(
    store: &TermStore,
    rules: &RuleSet,
    config: &LintConfig,
    report: &mut LintReport,
) {
    for rule in rules.iter() {
        let mut counts = HashMap::new();
        var_occurrences(store, rule.lhs, &mut counts);
        let mut repeated: Vec<&str> = counts
            .iter()
            .filter(|(_, &n)| n > 1)
            .map(|(v, _)| store.var_decl(*v).name.as_str())
            .collect();
        if repeated.is_empty() {
            continue;
        }
        repeated.sort_unstable();
        report.push(
            config,
            diag(
                LintCode::LeftNonlinear,
                format!(
                    "left-hand side is non-linear (variable{} {} repeat); the rule only \
                     fires on syntactically identical subterms",
                    if repeated.len() > 1 { "s" } else { "" },
                    repeated.join(", "),
                ),
                Some(rule.label.clone()),
            ),
        );
    }
}

/// Conditions the Boolean ring already decides.
pub fn check_trivial_conditions(
    store: &mut TermStore,
    alg: &BoolAlg,
    rules: &RuleSet,
    config: &LintConfig,
    report: &mut LintReport,
) {
    // Built-in semantics only: the rule set under analysis must not get to
    // vouch for its own guards.
    let mut norm = Normalizer::new(alg.clone(), RuleSet::new());
    norm.set_fuel_limit(COND_FUEL);
    for rule in rules.iter() {
        let Some(cond) = rule.cond else { continue };
        let Ok(poly) = norm.normalize_to_poly(store, cond) else {
            continue;
        };
        let message = if poly.is_true() {
            "condition is trivially true; use an unconditional `eq`"
        } else if poly.is_false() {
            "condition is trivially false; the rule never fires"
        } else {
            continue;
        };
        report.push(
            config,
            diag(
                LintCode::TrivialCondition,
                message.to_string(),
                Some(rule.label.clone()),
            ),
        );
    }
}

/// Declarations no rule (and no other declaration) touches.
pub fn check_unused(
    store: &TermStore,
    rules: &RuleSet,
    config: &LintConfig,
    report: &mut LintReport,
) {
    let sig = store.signature();
    let mut used_ops = HashSet::new();
    for rule in rules.iter() {
        for t in [Some(rule.lhs), Some(rule.rhs), rule.cond]
            .into_iter()
            .flatten()
        {
            for s in store.subterms(t) {
                if let Some(op) = store.op_of(s) {
                    used_ops.insert(op);
                }
            }
        }
    }
    for (id, decl) in sig.ops() {
        let lintable = matches!(
            decl.attrs.kind,
            OpKind::Defined | OpKind::Observer | OpKind::Action
        );
        if lintable && !used_ops.contains(&id) {
            // Spell out the profile: overloaded names (each sort gets its
            // own `_=_`) are otherwise indistinguishable in the report.
            let args: Vec<&str> = decl
                .args
                .iter()
                .map(|&s| sig.sort(s).name.as_str())
                .collect();
            report.push(
                config,
                diag(
                    LintCode::UnusedOp,
                    format!(
                        "operator `{} : {} -> {}` ({:?}) occurs in no rule",
                        decl.name,
                        args.join(" "),
                        sig.sort(decl.result).name,
                        decl.attrs.kind,
                    ),
                    None,
                ),
            );
        }
    }
    let mut used_sorts = HashSet::new();
    for (_, decl) in sig.ops() {
        used_sorts.insert(decl.result);
        used_sorts.extend(decl.args.iter().copied());
    }
    for (id, decl) in sig.sorts() {
        if !used_sorts.contains(&id) {
            report.push(
                config,
                diag(
                    LintCode::UnusedSort,
                    format!("sort `{}` is mentioned by no operator", decl.name),
                    None,
                ),
            );
        }
    }
}

/// Run every structural lint.
pub fn check_style(
    store: &mut TermStore,
    alg: &BoolAlg,
    rules: &RuleSet,
    config: &LintConfig,
    report: &mut LintReport,
) {
    check_redundancy(store, rules, config, report);
    check_linearity(store, rules, config, report);
    check_trivial_conditions(store, alg, rules, config, report);
    check_unused(store, rules, config, report);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Severity;
    use equitls_kernel::signature::Signature;
    use equitls_rewrite::bool_rules::hd_bool_rules;

    fn bool_world() -> (TermStore, BoolAlg) {
        let mut sig = Signature::new();
        let alg = BoolAlg::install(&mut sig).unwrap();
        (TermStore::new(sig), alg)
    }

    #[test]
    fn hd_bool_is_clean_above_allow_level() {
        let (mut store, alg) = bool_world();
        let rules = hd_bool_rules(&mut store, &alg).unwrap();
        let config = LintConfig::new();
        let mut report = LintReport::new("BOOL");
        check_style(&mut store, &alg, &rules, &config, &mut report);
        assert_eq!(report.count(Severity::Deny), 0, "{report}");
        assert_eq!(report.count(Severity::Warn), 0, "{report}");
        // xor-nilpotent and and-idempotent are deliberately non-linear.
        assert_eq!(report.with_code(LintCode::LeftNonlinear).len(), 2);
    }

    #[test]
    fn duplicates_and_shadowed_rules_warn() {
        let (mut store, alg) = bool_world();
        let p = store.declare_var("STP", alg.sort()).unwrap();
        let pv = store.var(p);
        let not_p = store.app(alg.not_op(), &[pv]).unwrap();
        let tt = alg.tt(&mut store);
        let not_true = store.app(alg.not_op(), &[tt]).unwrap();
        let ff = alg.ff(&mut store);
        let mut rules = RuleSet::new();
        rules.add(&store, "a", not_p, tt, None, None).unwrap();
        rules.add(&store, "b", not_p, tt, None, None).unwrap();
        rules.add(&store, "c", not_true, ff, None, None).unwrap();
        let config = LintConfig::new();
        let mut report = LintReport::new("redundant");
        check_redundancy(&store, &rules, &config, &mut report);
        let dups = report.with_code(LintCode::DuplicateRule);
        assert_eq!(dups.len(), 1);
        assert_eq!(dups[0].rule.as_deref(), Some("b"));
        let shadowed = report.with_code(LintCode::SubsumedRule);
        assert_eq!(shadowed.len(), 1);
        assert_eq!(shadowed[0].rule.as_deref(), Some("c"));
    }

    #[test]
    fn trivial_conditions_warn_both_ways() {
        let (mut store, alg) = bool_world();
        let p = store.declare_var("STQ", alg.sort()).unwrap();
        let pv = store.var(p);
        let not_p = store.app(alg.not_op(), &[pv]).unwrap();
        let tt = alg.tt(&mut store);
        let ff = alg.ff(&mut store);
        // `P or not P` is trivially true through the ring.
        let tautology = store.app(alg.or_op(), &[pv, not_p]).unwrap();
        let bs = Some(alg.sort());
        let mut rules = RuleSet::new();
        rules
            .add(&store, "always", not_p, tt, Some(tautology), bs)
            .unwrap();
        rules.add(&store, "never", not_p, ff, Some(ff), bs).unwrap();
        let config = LintConfig::new();
        let mut report = LintReport::new("trivial");
        check_trivial_conditions(&mut store, &alg, &rules, &config, &mut report);
        let found = report.with_code(LintCode::TrivialCondition);
        assert_eq!(found.len(), 2, "{report}");
        assert!(found[0].message.contains("trivially true"));
        assert!(found[1].message.contains("trivially false"));
    }

    #[test]
    fn unused_declarations_are_informational() {
        let (mut store, alg) = bool_world();
        store.signature_mut().add_visible_sort("STDead").unwrap();
        let p = store.declare_var("STR", alg.sort()).unwrap();
        let pv = store.var(p);
        let not_p = store.app(alg.not_op(), &[pv]).unwrap();
        let tt = alg.tt(&mut store);
        let mut rules = RuleSet::new();
        rules.add(&store, "only", not_p, tt, None, None).unwrap();
        let config = LintConfig::new();
        let mut report = LintReport::new("unused");
        check_unused(&store, &rules, &config, &mut report);
        assert_eq!(report.count(Severity::Warn), 0);
        assert_eq!(report.count(Severity::Deny), 0);
        let sorts = report.with_code(LintCode::UnusedSort);
        assert_eq!(sorts.len(), 1);
        assert!(sorts[0].message.contains("STDead"));
        // and/or/xor/… are installed but unused by this one-rule system.
        assert!(!report.with_code(LintCode::UnusedOp).is_empty());
    }
}
