//! The operator/rule dependency graph: which defined operator's rules
//! mention which.
//!
//! Nodes are the rule-defined operators ([`RuleSet::defined_heads`]).
//! There is an edge `f → g` when some rule with head `f` mentions `g`
//! anywhere — in the left-hand side's arguments, the right-hand side, or
//! the condition. The graph is condensed into strongly connected
//! components (Tarjan), each SCC is assigned a *stratification layer*
//! (leaves at layer 0, every SCC one above the deepest SCC it calls
//! into), and reachability is computed from a set of **roots**: the
//! observers and actions of an OTS signature plus any operator marked
//! with the `{root}` DSL attribute or [`Spec::mark_root`].
//!
//! Rules whose head no root reaches are *dead code* — the prover and the
//! model checker can never fire them — and are flagged [`LintCode::DeadRule`];
//! the operators themselves are flagged [`LintCode::UnreachableOp`].
//! When a system declares no roots at all (a plain algebraic module such
//! as `BOOL`), every defined operator is treated as a root and the
//! dead-code analysis is skipped with a note, so that library modules do
//! not drown in false positives.
//!
//! [`Spec::mark_root`]: equitls_spec::spec::Spec::mark_root

use crate::diagnostics::{Diagnostic, LintCode, LintConfig, LintReport};
use equitls_kernel::op::OpKind;
use equitls_kernel::prelude::OpId;
use equitls_kernel::term::{Term, TermStore};
use equitls_rewrite::rule::RuleSet;
use std::fmt::Write as _;

/// The dependency graph over rule-defined operators.
#[derive(Debug, Clone)]
pub struct DepGraph {
    /// Nodes: rule-defined operators, in first-rule order.
    pub nodes: Vec<OpId>,
    /// Adjacency: `edges[i]` lists node indices operator `i`'s rules
    /// mention, sorted and deduplicated.
    pub edges: Vec<Vec<usize>>,
    /// Strongly connected components in reverse-topological order
    /// (callees before callers); each SCC lists node indices in
    /// ascending order.
    pub sccs: Vec<Vec<usize>>,
    /// `layer[i]`: stratification layer of node `i` (0 = leaf SCC that
    /// calls only into itself).
    pub layer: Vec<usize>,
    /// `reachable[i]`: node `i` can be reached from some root.
    pub reachable: Vec<bool>,
    /// The roots reachability was computed from (deduplicated; includes
    /// signature observers/actions and explicitly marked operators).
    pub roots: Vec<OpId>,
    /// `true` when no roots were declared and all nodes were treated as
    /// roots (dead-code analysis skipped).
    pub rootless: bool,
}

impl DepGraph {
    /// Highest stratification layer plus one (0 for an empty graph).
    pub fn strata(&self) -> usize {
        self.layer.iter().max().map_or(0, |&m| m + 1)
    }

    /// Number of SCCs with more than one node (mutual recursion groups).
    pub fn nontrivial_sccs(&self) -> usize {
        self.sccs.iter().filter(|c| c.len() > 1).count()
    }
}

/// Collect every defined-head operator mentioned by `t` into `out`
/// (indices into `nodes` via `index_of`).
fn mentions(
    store: &TermStore,
    t: equitls_kernel::prelude::TermId,
    index_of: &dyn Fn(OpId) -> Option<usize>,
    out: &mut Vec<usize>,
) {
    for s in store.subterms(t) {
        if let Term::App { op, .. } = store.node(s) {
            if let Some(i) = index_of(*op) {
                if !out.contains(&i) {
                    out.push(i);
                }
            }
        }
    }
}

/// Iterative Tarjan SCC over `edges`, deterministic in node order.
/// Returns SCCs in reverse-topological order (callees first).
fn tarjan(edges: &[Vec<usize>]) -> Vec<Vec<usize>> {
    let n = edges.len();
    const UNSET: usize = usize::MAX;
    let mut index = vec![UNSET; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut sccs: Vec<Vec<usize>> = Vec::new();
    let mut counter = 0usize;
    // Explicit call stack: (node, next child position).
    let mut call: Vec<(usize, usize)> = Vec::new();

    for start in 0..n {
        if index[start] != UNSET {
            continue;
        }
        call.push((start, 0));
        while let Some(&mut (v, ref mut child)) = call.last_mut() {
            if *child == 0 {
                index[v] = counter;
                low[v] = counter;
                counter += 1;
                stack.push(v);
                on_stack[v] = true;
            }
            if let Some(&w) = edges[v].get(*child) {
                *child += 1;
                if index[w] == UNSET {
                    call.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                // All children visited: close v.
                call.pop();
                if let Some(&(parent, _)) = call.last() {
                    low[parent] = low[parent].min(low[v]);
                }
                if low[v] == index[v] {
                    let mut comp = Vec::new();
                    while let Some(w) = stack.pop() {
                        on_stack[w] = false;
                        comp.push(w);
                        if w == v {
                            break;
                        }
                    }
                    comp.sort_unstable();
                    sccs.push(comp);
                }
            }
        }
    }
    sccs
}

/// Build the dependency graph of `rules`, with reachability from `roots`.
///
/// `roots` may name operators that are not rule-defined (constructor
/// entry points, observers without equations); they contribute
/// reachability through their rules only when they have any. When
/// `roots` is empty the graph is marked [`DepGraph::rootless`] and every
/// node counts as reachable.
pub fn build_graph(store: &TermStore, rules: &RuleSet, roots: &[OpId]) -> DepGraph {
    let nodes = rules.defined_heads();
    let index_of = |op: OpId| nodes.iter().position(|&n| n == op);

    let mut edges: Vec<Vec<usize>> = vec![Vec::new(); nodes.len()];
    for (i, &head) in nodes.iter().enumerate() {
        let mut out = Vec::new();
        for (_, rule) in rules.rules_for_op(head) {
            // The head op itself appears at the LHS root; mention only
            // *other* operators from the LHS (its arguments), and
            // everything from the RHS and condition.
            for &a in store.args(rule.lhs) {
                mentions(store, a, &index_of, &mut out);
            }
            mentions(store, rule.rhs, &index_of, &mut out);
            if let Some(c) = rule.cond {
                mentions(store, c, &index_of, &mut out);
            }
        }
        out.retain(|&j| j != i);
        out.sort_unstable();
        out.dedup();
        edges[i] = out;
    }

    let sccs = tarjan(&edges);
    // Layer of an SCC: 0 when it calls no other SCC, else 1 + max layer
    // of called SCCs. SCCs arrive callees-first, so one forward sweep
    // suffices.
    let mut scc_of = vec![0usize; nodes.len()];
    for (ci, comp) in sccs.iter().enumerate() {
        for &v in comp {
            scc_of[v] = ci;
        }
    }
    let mut scc_layer = vec![0usize; sccs.len()];
    for (ci, comp) in sccs.iter().enumerate() {
        let mut l = 0usize;
        for &v in comp {
            for &w in &edges[v] {
                let cw = scc_of[w];
                if cw != ci {
                    l = l.max(scc_layer[cw] + 1);
                }
            }
        }
        scc_layer[ci] = l;
    }
    let layer: Vec<usize> = (0..nodes.len()).map(|v| scc_layer[scc_of[v]]).collect();

    // Reachability: BFS from every root that is a node. Roots that are
    // not rule-defined have no outgoing edges here and contribute
    // nothing beyond themselves.
    let mut dedup_roots: Vec<OpId> = Vec::new();
    for &r in roots {
        if !dedup_roots.contains(&r) {
            dedup_roots.push(r);
        }
    }
    let rootless = dedup_roots.is_empty();
    let mut reachable = vec![rootless; nodes.len()];
    let mut queue: Vec<usize> = Vec::new();
    for &r in &dedup_roots {
        if let Some(i) = index_of(r) {
            if !reachable[i] {
                reachable[i] = true;
                queue.push(i);
            }
        }
    }
    while let Some(v) = queue.pop() {
        for &w in &edges[v] {
            if !reachable[w] {
                reachable[w] = true;
                queue.push(w);
            }
        }
    }

    DepGraph {
        nodes,
        edges,
        sccs,
        layer,
        reachable,
        roots: dedup_roots,
        rootless,
    }
}

/// Render the graph in Graphviz DOT syntax.
///
/// Roots are drawn as double octagons, unreachable operators in red;
/// every node is labeled `name\nlayer N`.
pub fn to_dot(store: &TermStore, graph: &DepGraph, name: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{name}\" {{");
    let _ = writeln!(out, "  rankdir=LR;");
    let _ = writeln!(out, "  node [shape=box, fontname=\"monospace\"];");
    for (i, &op) in graph.nodes.iter().enumerate() {
        let decl = store.signature().op(op);
        let mut attrs = format!("label=\"{}\\nlayer {}\"", decl.name, graph.layer[i]);
        if graph.roots.contains(&op) {
            attrs.push_str(", shape=doubleoctagon");
        }
        if !graph.reachable[i] {
            attrs.push_str(", color=red, fontcolor=red");
        }
        let _ = writeln!(out, "  n{i} [{attrs}];");
    }
    for (i, targets) in graph.edges.iter().enumerate() {
        for &j in targets {
            let _ = writeln!(out, "  n{i} -> n{j};");
        }
    }
    let _ = writeln!(out, "}}");
    out
}

/// Run the dependency pass: build the graph, flag dead rules and
/// unreachable operators, leave the census note.
pub fn check_deps(
    store: &TermStore,
    rules: &RuleSet,
    roots: &[OpId],
    config: &LintConfig,
    report: &mut LintReport,
) -> DepGraph {
    let graph = build_graph(store, rules, roots);

    if graph.rootless {
        report.note(format!(
            "dependency graph: {} operators, {} edges, {} SCCs ({} nontrivial), {} strata; \
             no roots declared — reachability analysis skipped",
            graph.nodes.len(),
            graph.edges.iter().map(Vec::len).sum::<usize>(),
            graph.sccs.len(),
            graph.nontrivial_sccs(),
            graph.strata(),
        ));
        return graph;
    }

    let mut dead_rules = 0usize;
    for (i, &op) in graph.nodes.iter().enumerate() {
        if graph.reachable[i] {
            continue;
        }
        let decl = store.signature().op(op);
        // Observers and actions are implicit entry points even when the
        // caller forgot to list them as roots; don't flag them.
        if matches!(decl.attrs.kind, OpKind::Observer | OpKind::Action) {
            continue;
        }
        report.push(
            config,
            Diagnostic {
                code: LintCode::UnreachableOp,
                severity: LintCode::UnreachableOp.default_severity(),
                message: format!(
                    "operator `{}` is unreachable from the {} analysis roots",
                    decl.name,
                    graph.roots.len(),
                ),
                rule: None,
                span: None,
                justification: None,
            },
        );
        for (_, rule) in rules.rules_for_op(op) {
            dead_rules += 1;
            report.push(
                config,
                Diagnostic {
                    code: LintCode::DeadRule,
                    severity: LintCode::DeadRule.default_severity(),
                    message: format!(
                        "rule `{}` can never fire: its head operator `{}` is unreachable \
                         from every analysis root",
                        rule.label, decl.name,
                    ),
                    rule: Some(rule.label.clone()),
                    span: None,
                    justification: None,
                },
            );
        }
    }

    report.note(format!(
        "dependency graph: {} operators, {} edges, {} SCCs ({} nontrivial), {} strata, \
         {} roots, {} dead rules",
        graph.nodes.len(),
        graph.edges.iter().map(Vec::len).sum::<usize>(),
        graph.sccs.len(),
        graph.nontrivial_sccs(),
        graph.strata(),
        graph.roots.len(),
        dead_rules,
    ));
    graph
}

#[cfg(test)]
mod tests {
    use super::*;
    use equitls_kernel::op::OpAttrs;
    use equitls_kernel::signature::Signature;
    use equitls_rewrite::bool_alg::BoolAlg;

    /// f calls g, g calls f (one SCC); h is separate and unreachable.
    fn recursive_world() -> (TermStore, RuleSet, Vec<OpId>) {
        let mut sig = Signature::new();
        let _alg = BoolAlg::install(&mut sig).unwrap();
        let s = sig.add_visible_sort("S").unwrap();
        let c = sig.add_constant("c", s, OpAttrs::constructor()).unwrap();
        let f = sig.add_op("f", &[s], s, OpAttrs::defined()).unwrap();
        let g = sig.add_op("g", &[s], s, OpAttrs::defined()).unwrap();
        let h = sig.add_op("h", &[s], s, OpAttrs::defined()).unwrap();
        let mut store = TermStore::new(sig);
        let x = store.declare_var("X", s).unwrap();
        let xt = store.var(x);
        let cv = store.constant(c);
        let f_x = store.app(f, &[xt]).unwrap();
        let g_x = store.app(g, &[xt]).unwrap();
        let h_x = store.app(h, &[xt]).unwrap();
        let f_c = store.app(f, &[cv]).unwrap();
        let g_c = store.app(g, &[cv]).unwrap();
        let mut rules = RuleSet::new();
        rules.add(&store, "f-rec", f_x, g_x, None, None).unwrap();
        rules.add(&store, "g-rec", g_x, f_x, None, None).unwrap();
        rules.add(&store, "f-c", f_c, cv, None, None).unwrap();
        rules.add(&store, "g-c", g_c, cv, None, None).unwrap();
        rules.add(&store, "h-dead", h_x, cv, None, None).unwrap();
        (store, rules, vec![f, g, h])
    }

    #[test]
    fn mutual_recursion_is_one_scc_and_dead_code_is_flagged() {
        let (store, rules, ops) = recursive_world();
        let roots = [ops[0]]; // f only
        let config = LintConfig::new();
        let mut report = LintReport::new("deps");
        let graph = check_deps(&store, &rules, &roots, &config, &mut report);
        assert_eq!(graph.nodes.len(), 3);
        // {f, g} one SCC, {h} its own.
        assert_eq!(graph.sccs.len(), 2);
        assert_eq!(graph.nontrivial_sccs(), 1);
        let hi = graph.nodes.iter().position(|&n| n == ops[2]).unwrap();
        assert!(!graph.reachable[hi]);
        let dead = report.with_code(LintCode::DeadRule);
        assert_eq!(dead.len(), 1);
        assert_eq!(dead[0].rule.as_deref(), Some("h-dead"));
        assert_eq!(report.with_code(LintCode::UnreachableOp).len(), 1);
    }

    #[test]
    fn rootless_graph_skips_dead_code_analysis() {
        let (store, rules, _) = recursive_world();
        let config = LintConfig::new();
        let mut report = LintReport::new("deps");
        let graph = check_deps(&store, &rules, &[], &config, &mut report);
        assert!(graph.rootless);
        assert!(graph.reachable.iter().all(|&r| r));
        assert!(report.with_code(LintCode::DeadRule).is_empty());
        assert!(report.notes[0].contains("reachability analysis skipped"));
    }

    #[test]
    fn stratification_layers_order_callees_below_callers() {
        let (store, rules, ops) = recursive_world();
        let graph = build_graph(&store, &rules, &[ops[0]]);
        let fi = graph.nodes.iter().position(|&n| n == ops[0]).unwrap();
        let gi = graph.nodes.iter().position(|&n| n == ops[1]).unwrap();
        // f and g share an SCC, hence a layer.
        assert_eq!(graph.layer[fi], graph.layer[gi]);
        assert!(graph.strata() >= 1);
    }

    #[test]
    fn dot_export_renders_every_node_and_edge() {
        let (store, rules, ops) = recursive_world();
        let graph = build_graph(&store, &rules, &[ops[0]]);
        let dot = to_dot(&store, &graph, "deps-test");
        assert!(dot.starts_with("digraph"));
        for name in ["f", "g", "h"] {
            assert!(dot.contains(&format!("label=\"{name}\\n")), "{dot}");
        }
        assert!(dot.contains("->"), "{dot}");
        assert!(
            dot.contains("color=red"),
            "unreachable h should be red: {dot}"
        );
    }
}
