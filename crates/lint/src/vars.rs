//! Variable and sort discipline.
//!
//! Three checks. First, every equation the loader **quarantined** —
//! because its right-hand side or condition uses a variable the left-hand
//! side does not bind, or its sides disagree on sort — is reported as a
//! deny-level finding at its source span ([`LintCode::UnboundVariable`] /
//! [`LintCode::SortIncoherent`]): such a rule is not executable, so the
//! proof scores built on `red` would silently lose it. Second, installed
//! rules are re-validated against the same discipline (defense in depth
//! for rule sets assembled outside [`Spec`]), and **collapsing** rules —
//! right-hand side a bare variable — are surfaced as information
//! ([`LintCode::CollapsingRule`]): legal, but they erase structure and
//! overlap with every rule. Third, declared module variables that occur
//! in no installed equation are reported ([`LintCode::UnusedVariable`]).
//!
//! [`Spec`]: equitls_spec::spec::Spec

use crate::diagnostics::{Diagnostic, LintCode, LintConfig, LintReport, Severity};
use equitls_kernel::term::{Term, TermStore};
use equitls_rewrite::rule::{validate_rule, RuleDefect, RuleSet};
use equitls_spec::spec::QuarantinedEquation;
use std::collections::HashSet;

/// Spec-level inputs to the pass; empty for raw rule-set lints.
#[derive(Debug, Default)]
pub struct VarsInput<'a> {
    /// Equations the loader set aside as non-executable.
    pub quarantined: &'a [QuarantinedEquation],
    /// Declared variables per module: `(module name, variable names)`.
    pub module_vars: Vec<(&'a str, &'a [String])>,
}

/// Which lint code a quarantine defect reports under, and its severity.
///
/// Everything quarantined is non-executable, so everything denies by
/// default; the code differentiates *why* for configuration and SARIF.
fn defect_code(defect: &RuleDefect) -> LintCode {
    match defect {
        RuleDefect::UnboundRhsVar(_) | RuleDefect::UnboundCondVar(_) => LintCode::UnboundVariable,
        RuleDefect::SortMismatch { .. } | RuleDefect::NonBoolCondition(_) => {
            LintCode::SortIncoherent
        }
        RuleDefect::VariableLhs => LintCode::CollapsingRule,
    }
}

/// Run the variable-discipline pass.
pub fn check_vars(
    store: &TermStore,
    rules: &RuleSet,
    input: &VarsInput<'_>,
    config: &LintConfig,
    report: &mut LintReport,
) {
    // 1. Quarantined equations: each one is a rule the system silently
    //    lost. Deny, with the typed defect and the source span.
    for q in input.quarantined {
        report.push(
            config,
            Diagnostic {
                code: defect_code(&q.defect),
                severity: Severity::Deny,
                message: format!(
                    "equation `{}` in module {} is not executable and was quarantined: {} \
                     (equation: {})",
                    q.label, q.module, q.defect, q.rendered,
                ),
                rule: Some(q.label.clone()),
                span: q.span,
                justification: None,
            },
        );
    }

    // 2. Installed rules: re-validate the discipline and flag collapsing
    //    right-hand sides.
    let bool_sort = store.signature().sort_by_name("Bool");
    let mut collapsing = 0usize;
    for rule in rules.iter() {
        if let Err(defect) = validate_rule(store, rule.lhs, rule.rhs, rule.cond, bool_sort) {
            report.push(
                config,
                Diagnostic {
                    code: defect_code(&defect),
                    severity: Severity::Deny,
                    message: format!(
                        "installed rule `{}` violates the variable/sort discipline: {defect}",
                        rule.label
                    ),
                    rule: Some(rule.label.clone()),
                    span: None,
                    justification: None,
                },
            );
            continue;
        }
        if matches!(store.node(rule.rhs), Term::Var(_)) {
            collapsing += 1;
            report.push(
                config,
                Diagnostic {
                    code: LintCode::CollapsingRule,
                    severity: LintCode::CollapsingRule.default_severity(),
                    message: format!(
                        "rule `{}` is collapsing: its right-hand side is the bare variable {}",
                        rule.label,
                        store.display(rule.rhs),
                    ),
                    rule: Some(rule.label.clone()),
                    span: None,
                    justification: None,
                },
            );
        }
    }

    // 3. Declared-but-unused module variables.
    let mut used: HashSet<String> = HashSet::new();
    for rule in rules.iter() {
        let mut collect = |t| {
            for v in store.vars_of(t) {
                used.insert(store.var_decl(v).name.clone());
            }
        };
        collect(rule.lhs);
        collect(rule.rhs);
        if let Some(c) = rule.cond {
            collect(c);
        }
    }
    let mut unused = 0usize;
    for (module, vars) in &input.module_vars {
        for name in vars.iter() {
            if !used.contains(name) {
                unused += 1;
                report.push(
                    config,
                    Diagnostic {
                        code: LintCode::UnusedVariable,
                        severity: LintCode::UnusedVariable.default_severity(),
                        message: format!(
                            "variable `{name}` declared in module {module} occurs in no \
                             installed equation"
                        ),
                        rule: None,
                        span: None,
                        justification: None,
                    },
                );
            }
        }
    }

    if input.quarantined.is_empty() {
        report.note(format!(
            "variable discipline: {} rules checked, {} collapsing, {} unused declared variables",
            rules.len(),
            collapsing,
            unused,
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use equitls_spec::spec::Spec;

    #[test]
    fn quarantined_unbound_rhs_variable_is_denied_with_span() {
        let mut spec = Spec::new().unwrap();
        spec.load_module(
            r#"
            mod! UNB {
              [ U ]
              op u0 : -> U {constr} .
              op mk : U -> U {constr} .
              op orphan : U -> U .
              vars X Y : U .
              eq [orphan-unbound] : orphan(X) = mk(Y) .
            }
            "#,
        )
        .unwrap();
        assert_eq!(spec.quarantined().len(), 1);
        assert_eq!(
            spec.rules().len(),
            0,
            "the defective equation must not install"
        );
        let input = VarsInput {
            quarantined: spec.quarantined(),
            module_vars: Vec::new(),
        };
        let config = LintConfig::new();
        let mut report = LintReport::new("UNB");
        check_vars(spec.store(), spec.rules(), &input, &config, &mut report);
        let unbound = report.with_code(LintCode::UnboundVariable);
        assert_eq!(unbound.len(), 1, "{report}");
        assert_eq!(unbound[0].severity, Severity::Deny);
        assert_eq!(unbound[0].rule.as_deref(), Some("orphan-unbound"));
        assert!(
            unbound[0].span.is_some(),
            "quarantined findings carry spans"
        );
        assert!(unbound[0].message.contains("`Y`"));
    }

    #[test]
    fn collapsing_and_unused_variables_are_informational() {
        let mut spec = Spec::new().unwrap();
        spec.load_module(
            r#"
            mod! COLL {
              [ C ]
              op c0 : -> C {constr} .
              op id : C -> C .
              vars X Z : C .
              eq [id-x] : id(X) = X .
            }
            "#,
        )
        .unwrap();
        let module_vars: Vec<(&str, &[String])> = spec
            .modules()
            .iter()
            .map(|m| (m.name.as_str(), m.vars.as_slice()))
            .collect();
        let input = VarsInput {
            quarantined: spec.quarantined(),
            module_vars,
        };
        let config = LintConfig::new();
        let mut report = LintReport::new("COLL");
        check_vars(spec.store(), spec.rules(), &input, &config, &mut report);
        let coll = report.with_code(LintCode::CollapsingRule);
        assert_eq!(coll.len(), 1, "{report}");
        assert_eq!(coll[0].severity, Severity::Allow);
        let unused = report.with_code(LintCode::UnusedVariable);
        assert_eq!(unused.len(), 1, "{report}");
        assert!(unused[0].message.contains("`Z`"));
        assert!(!report.has_deny());
        assert!(report.notes[0].contains("1 collapsing"));
    }
}
