//! Sufficient completeness: constructor coverage of defined operators.
//!
//! A defined operator is *sufficiently complete* when its rules cover
//! every constructor instantiation of its argument sorts — otherwise some
//! ground terms headed by it are stuck (no rule fires, no normal form in
//! constructor terms). The check is the classic pattern-matrix usefulness
//! recursion (Maranget): the operator is complete iff the all-wildcard
//! vector is *useless* against the matrix of its rules' argument
//! patterns; when it is useful, the recursion reconstructs a concrete
//! witness pattern for the report.
//!
//! Generators per sort:
//! * visible sorts — operators declared `{constr}`;
//! * hidden sorts — actions (the reachable states of the OTS are
//!   `init` and its action closure) plus nullary operators of the sort.
//!
//! Sorts with no generators (abstract data sorts populated by arbitrary
//! constants) are never considered complete, so columns over them are
//! satisfied only by wildcard rows.
//!
//! The check deliberately over-approximates coverage in two ways — both
//! keep it free of false positives at the price of missing some genuine
//! gaps, and both are forced by how the specifications are written:
//! non-linear patterns are read as linear (`p xor p` counts as covering
//! `_ xor _`), and conditional rules count as covering their pattern
//! (the TLS observers are defined by `ceq` pairs with complementary
//! guards; requiring guard-completeness syntactically would flag them
//! all).

use crate::diagnostics::{Diagnostic, LintCode, LintConfig, LintReport};
use equitls_kernel::op::{OpId, OpKind};
use equitls_kernel::signature::Signature;
use equitls_kernel::sort::{SortId, SortKind};
use equitls_kernel::term::{Term, TermId, TermStore};
use equitls_rewrite::rule::RuleSet;

/// A linearized pattern: wildcards and (possibly non-generator)
/// applications.
#[derive(Debug, Clone)]
enum Pat {
    Wild,
    App(OpId, Vec<Pat>),
}

impl Pat {
    fn render(&self, sig: &Signature) -> String {
        match self {
            Pat::Wild => "_".to_string(),
            Pat::App(op, args) => {
                let decl = sig.op(*op);
                if args.is_empty() {
                    decl.name.clone()
                } else {
                    let rendered: Vec<String> = args.iter().map(|a| a.render(sig)).collect();
                    format!("{}({})", decl.name, rendered.join(", "))
                }
            }
        }
    }
}

fn linearize(store: &TermStore, t: TermId) -> Pat {
    match store.node(t) {
        Term::Var(_) => Pat::Wild,
        Term::App { op, args } => {
            let args = args.clone();
            Pat::App(*op, args.iter().map(|&a| linearize(store, a)).collect())
        }
    }
}

/// The generators of `sort`: the operators a ground constructor term of
/// that sort can be headed by.
fn generators(sig: &Signature, sort: SortId) -> Vec<OpId> {
    let hidden = sig.sort(sort).kind == SortKind::Hidden;
    sig.ops()
        .filter(|(_, decl)| decl.result == sort)
        .filter(|(_, decl)| {
            if hidden {
                decl.attrs.kind == OpKind::Action || decl.is_constant()
            } else {
                decl.attrs.kind == OpKind::Constructor
            }
        })
        .map(|(id, _)| id)
        .collect()
}

/// Is the all-wildcard vector useful against `matrix` (columns typed by
/// `sorts`)? Returns a witness vector when it is — a pattern no row
/// covers.
fn uncovered_witness(sig: &Signature, matrix: &[Vec<Pat>], sorts: &[SortId]) -> Option<Vec<Pat>> {
    if matrix.is_empty() {
        return Some(vec![Pat::Wild; sorts.len()]);
    }
    let Some((&col_sort, rest_sorts)) = sorts.split_first() else {
        // Width zero with at least one row: that row covers everything.
        return None;
    };
    let gens = generators(sig, col_sort);
    let heads: Vec<OpId> = matrix
        .iter()
        .filter_map(|row| match &row[0] {
            Pat::App(op, _) => Some(*op),
            Pat::Wild => None,
        })
        .collect();
    let complete = !gens.is_empty() && gens.iter().all(|g| heads.contains(g));
    if complete {
        // Specialize by every generator; useful iff useful for one.
        for &c in &gens {
            let arity = sig.op(c).arity();
            let specialized: Vec<Vec<Pat>> = matrix
                .iter()
                .filter_map(|row| {
                    let (first, rest) = row.split_first().expect("width checked");
                    let head: Option<Vec<Pat>> = match first {
                        Pat::Wild => Some(vec![Pat::Wild; arity]),
                        Pat::App(op, args) if *op == c => Some(args.clone()),
                        Pat::App(..) => None,
                    };
                    head.map(|mut h| {
                        h.extend(rest.iter().cloned());
                        h
                    })
                })
                .collect();
            let mut sub_sorts = sig.op(c).args.clone();
            sub_sorts.extend_from_slice(rest_sorts);
            if let Some(w) = uncovered_witness(sig, &specialized, &sub_sorts) {
                let (ctor_args, rest) = w.split_at(arity);
                let mut out = vec![Pat::App(c, ctor_args.to_vec())];
                out.extend(rest.iter().cloned());
                return Some(out);
            }
        }
        None
    } else {
        // Incomplete column: only wildcard rows constrain the remainder.
        let default: Vec<Vec<Pat>> = matrix
            .iter()
            .filter_map(|row| match &row[0] {
                Pat::Wild => Some(row[1..].to_vec()),
                Pat::App(..) => None,
            })
            .collect();
        let w = uncovered_witness(sig, &default, rest_sorts)?;
        // Make the witness concrete with a generator no row handles.
        let first = gens
            .iter()
            .find(|g| !heads.contains(g))
            .map(|&g| Pat::App(g, vec![Pat::Wild; sig.op(g).arity()]))
            .unwrap_or(Pat::Wild);
        let mut out = vec![first];
        out.extend(w);
        Some(out)
    }
}

/// Run the coverage pass over every operator that heads at least one
/// rule, reporting `missing-case` findings into `report`. Returns the
/// number of operators checked.
pub fn check_coverage(
    store: &TermStore,
    rules: &RuleSet,
    config: &LintConfig,
    report: &mut LintReport,
) -> usize {
    let sig = store.signature();
    let heads = rules.defined_heads();
    let mut missing = 0usize;
    for &op in &heads {
        let decl = sig.op(op);
        let matrix: Vec<Vec<Pat>> = rules
            .rules_for_op(op)
            .map(|(_, rule)| {
                store
                    .args(rule.lhs)
                    .iter()
                    .map(|&a| linearize(store, a))
                    .collect()
            })
            .collect();
        if let Some(witness) = uncovered_witness(sig, &matrix, &decl.args) {
            missing += 1;
            let args: Vec<String> = witness.iter().map(|p| p.render(sig)).collect();
            report.push(
                config,
                Diagnostic {
                    code: LintCode::MissingCase,
                    severity: LintCode::MissingCase.default_severity(),
                    message: format!(
                        "rules for `{}` do not cover the constructor instantiation \
                         `{}({})`; such terms are stuck (no rule fires)",
                        decl.name,
                        decl.name,
                        args.join(", "),
                    ),
                    rule: None,
                    span: None,
                    justification: None,
                },
            );
        }
    }
    if missing == 0 && !heads.is_empty() {
        let counted = if heads.len() == 1 {
            "the 1 rule-defined operator is".to_string()
        } else {
            format!("all {} rule-defined operators are", heads.len())
        };
        report.note(format!(
            "sufficient completeness: {counted} constructor-complete",
        ));
    }
    missing
}

#[cfg(test)]
mod tests {
    use super::*;
    use equitls_kernel::op::OpAttrs;
    use equitls_rewrite::bool_alg::BoolAlg;
    use equitls_rewrite::bool_rules::hd_bool_rules;

    fn bool_world() -> (TermStore, BoolAlg) {
        let mut sig = Signature::new();
        let alg = BoolAlg::install(&mut sig).unwrap();
        (TermStore::new(sig), alg)
    }

    #[test]
    fn hd_bool_rules_are_constructor_complete() {
        let (mut store, alg) = bool_world();
        let rules = hd_bool_rules(&mut store, &alg).unwrap();
        let config = LintConfig::new();
        let mut report = LintReport::new("BOOL");
        let missing = check_coverage(&store, &rules, &config, &mut report);
        assert_eq!(missing, 0, "{report}");
        assert_eq!(report.notes.len(), 1);
    }

    #[test]
    fn a_gap_is_reported_with_a_witness() {
        let (mut store, alg) = bool_world();
        let bool_sort = alg.sort();
        let f = store
            .signature_mut()
            .add_op("coverf", &[bool_sort], bool_sort, OpAttrs::defined())
            .unwrap();
        let tt = alg.tt(&mut store);
        let f_true = store.app(f, &[tt]).unwrap();
        let mut rules = RuleSet::new();
        // Only coverf(true) is handled; coverf(false) is stuck.
        rules
            .add(&store, "partial", f_true, tt, None, None)
            .unwrap();
        let config = LintConfig::new();
        let mut report = LintReport::new("gap");
        let missing = check_coverage(&store, &rules, &config, &mut report);
        assert_eq!(missing, 1);
        let diags = report.with_code(LintCode::MissingCase);
        assert_eq!(diags.len(), 1);
        assert!(
            diags[0].message.contains("coverf(false)"),
            "witness should name the uncovered constructor: {}",
            diags[0].message
        );
    }

    #[test]
    fn wildcard_rows_cover_abstract_sorts() {
        // An operator over a generator-free sort is covered by a variable
        // pattern and can never be flagged otherwise.
        let (mut store, alg) = bool_world();
        let data = store.signature_mut().add_visible_sort("CovData").unwrap();
        let g = store
            .signature_mut()
            .add_op("coverg", &[data], alg.sort(), OpAttrs::defined())
            .unwrap();
        let x = store.declare_var("COVX", data).unwrap();
        let xv = store.var(x);
        let g_x = store.app(g, &[xv]).unwrap();
        let tt = alg.tt(&mut store);
        let mut rules = RuleSet::new();
        rules.add(&store, "total", g_x, tt, None, None).unwrap();
        let config = LintConfig::new();
        let mut report = LintReport::new("abstract");
        assert_eq!(check_coverage(&store, &rules, &config, &mut report), 0);
    }
}
