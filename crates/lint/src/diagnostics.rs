//! Diagnostics: lint codes, severities, findings, and the report.
//!
//! Every pass emits [`Diagnostic`]s into a [`LintReport`]. A diagnostic
//! carries a stable [`LintCode`] (the identifier documented in the README
//! and used for configuration overrides) and a [`Severity`]; the report
//! renders as text or as JSON through the `equitls-obs` writer and decides
//! the process exit status (`deny` findings fail the build).

use equitls_obs::json::JsonValue;
use equitls_spec::ast::SourceSpan;
use std::collections::HashMap;
use std::fmt;

/// How serious a finding is.
///
/// Ordered: `Allow < Warn < Deny`, so `max` aggregates severities.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational; never affects the exit status.
    Allow,
    /// Suspicious but not known-broken; reported, exit status unaffected.
    Warn,
    /// The rule set is broken (or cannot be shown sound); fails the gate.
    Deny,
}

impl Severity {
    /// Stable lowercase name used in reports and JSON.
    pub fn name(self) -> &'static str {
        match self {
            Severity::Allow => "allow",
            Severity::Warn => "warn",
            Severity::Deny => "deny",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Stable identifiers for every lint the analyzer can raise.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LintCode {
    /// A rule's left-hand side matches a subterm of its own right-hand
    /// side: the rule re-fires inside its own result and the normalizer
    /// diverges.
    TerminationLoop,
    /// No lexicographic path order was found orienting the rule; the
    /// system may still terminate (LPO is incomplete), but nothing here
    /// proves it.
    TerminationOrder,
    /// A critical pair whose two sides normalize to different terms: the
    /// system is not locally confluent and normal forms depend on rule
    /// order.
    UnjoinableCriticalPair,
    /// A defined operator's rules do not cover every constructor
    /// instantiation of its argument sorts.
    MissingCase,
    /// Two rules with structurally identical sides and condition.
    DuplicateRule,
    /// A rule whose left-hand side is an instance of an earlier
    /// unconditional rule for the same operator: it can never fire.
    SubsumedRule,
    /// A left-hand side using the same variable twice (legal, but the
    /// rule only fires on syntactically identical subterms).
    LeftNonlinear,
    /// A sort no operator mentions.
    UnusedSort,
    /// A non-constructor operator that occurs in no rule.
    UnusedOp,
    /// A condition that normalizes to constant `true` (should be an
    /// unconditional `eq`) or `false` (the rule never fires).
    TrivialCondition,
    /// An equation whose right-hand side or condition uses a variable the
    /// left-hand side does not bind: the rule is not executable. Such
    /// equations are quarantined at load time and reported here.
    UnboundVariable,
    /// An equation whose two sides have different sorts (or whose
    /// condition is not Bool-sorted): incoherent under the subsort-free
    /// signature, quarantined at load time and reported here.
    SortIncoherent,
    /// A rule whose right-hand side is a bare variable (a *collapsing*
    /// rule): legal, but it erases structure and overlaps with every rule,
    /// so it deserves an explicit look.
    CollapsingRule,
    /// A rule on an operator unreachable from the analysis roots
    /// (observers, actions, `{root}`-marked operators): dead code.
    DeadRule,
    /// A rule-defined operator unreachable from the analysis roots.
    UnreachableOp,
    /// A declared module variable that occurs in no installed equation.
    UnusedVariable,
}

impl LintCode {
    /// All codes, for documentation and configuration validation.
    pub const ALL: [LintCode; 16] = [
        LintCode::TerminationLoop,
        LintCode::TerminationOrder,
        LintCode::UnjoinableCriticalPair,
        LintCode::MissingCase,
        LintCode::DuplicateRule,
        LintCode::SubsumedRule,
        LintCode::LeftNonlinear,
        LintCode::UnusedSort,
        LintCode::UnusedOp,
        LintCode::TrivialCondition,
        LintCode::UnboundVariable,
        LintCode::SortIncoherent,
        LintCode::CollapsingRule,
        LintCode::DeadRule,
        LintCode::UnreachableOp,
        LintCode::UnusedVariable,
    ];

    /// The stable kebab-case name (documented in the README).
    pub fn name(self) -> &'static str {
        match self {
            LintCode::TerminationLoop => "termination-loop",
            LintCode::TerminationOrder => "termination-order",
            LintCode::UnjoinableCriticalPair => "unjoinable-critical-pair",
            LintCode::MissingCase => "missing-case",
            LintCode::DuplicateRule => "duplicate-rule",
            LintCode::SubsumedRule => "subsumed-rule",
            LintCode::LeftNonlinear => "left-nonlinear",
            LintCode::UnusedSort => "unused-sort",
            LintCode::UnusedOp => "unused-op",
            LintCode::TrivialCondition => "trivial-condition",
            LintCode::UnboundVariable => "unbound-variable",
            LintCode::SortIncoherent => "sort-incoherent",
            LintCode::CollapsingRule => "collapsing-rule",
            LintCode::DeadRule => "dead-rule",
            LintCode::UnreachableOp => "unreachable-op",
            LintCode::UnusedVariable => "unused-variable",
        }
    }

    /// Look a code up by its stable name.
    pub fn by_name(name: &str) -> Option<LintCode> {
        LintCode::ALL.into_iter().find(|c| c.name() == name)
    }

    /// The built-in severity before configuration overrides.
    ///
    /// `termination-order` is only a warning because LPO is an incomplete
    /// criterion; `unjoinable-critical-pair` downgrades to a warning for
    /// conditional pairs at the emitting site (the conditions may be
    /// unsatisfiable in ways the boolring cannot see).
    pub fn default_severity(self) -> Severity {
        match self {
            LintCode::TerminationLoop => Severity::Deny,
            LintCode::TerminationOrder => Severity::Warn,
            LintCode::UnjoinableCriticalPair => Severity::Deny,
            LintCode::MissingCase => Severity::Warn,
            LintCode::DuplicateRule => Severity::Warn,
            LintCode::SubsumedRule => Severity::Warn,
            LintCode::LeftNonlinear => Severity::Allow,
            LintCode::UnusedSort => Severity::Allow,
            LintCode::UnusedOp => Severity::Allow,
            LintCode::TrivialCondition => Severity::Warn,
            // Quarantined equations are non-executable: always broken.
            LintCode::UnboundVariable => Severity::Deny,
            LintCode::SortIncoherent => Severity::Deny,
            // Collapsing rules are legal (ineffective-transition equations
            // in the TLS model are all `s' = s`); they are surfaced as
            // information, escalatable per run.
            LintCode::CollapsingRule => Severity::Allow,
            LintCode::DeadRule => Severity::Warn,
            LintCode::UnreachableOp => Severity::Allow,
            LintCode::UnusedVariable => Severity::Allow,
        }
    }
}

impl fmt::Display for LintCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Per-run configuration: severity overrides with justification.
///
/// Overrides mirror `#[allow(...)]` in rustc: a finding is still computed
/// and reported, but its severity (and therefore the exit status) changes,
/// and the justification is attached so the report explains *why* the
/// finding is acceptable.
#[derive(Debug, Clone, Default)]
pub struct LintConfig {
    overrides: HashMap<LintCode, (Severity, String)>,
}

impl LintConfig {
    /// The default configuration: built-in severities, no overrides.
    pub fn new() -> Self {
        LintConfig::default()
    }

    /// Override `code` to `severity`, recording why.
    pub fn set_severity(
        &mut self,
        code: LintCode,
        severity: Severity,
        justification: impl Into<String>,
    ) -> &mut Self {
        self.overrides
            .insert(code, (severity, justification.into()));
        self
    }

    /// Downgrade `code` to [`Severity::Allow`], recording why.
    pub fn allow(&mut self, code: LintCode, justification: impl Into<String>) -> &mut Self {
        self.set_severity(code, Severity::Allow, justification)
    }

    /// The effective severity of `code` (and the override justification,
    /// when one applies).
    pub fn severity(&self, code: LintCode, default: Severity) -> (Severity, Option<&str>) {
        match self.overrides.get(&code) {
            Some((s, why)) => (*s, Some(why.as_str())),
            None => (default, None),
        }
    }
}

/// One finding.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Which lint fired.
    pub code: LintCode,
    /// Effective severity after configuration overrides.
    pub severity: Severity,
    /// Human-readable description of the finding.
    pub message: String,
    /// Label of the offending rule, when the finding is about one rule.
    pub rule: Option<String>,
    /// Source position of the offending declaration, when it came from
    /// parsed DSL text.
    pub span: Option<SourceSpan>,
    /// Justification recorded by a configuration override, if any.
    pub justification: Option<String>,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]", self.severity, self.code)?;
        if let Some(rule) = &self.rule {
            write!(f, " ({rule})")?;
        }
        if let Some(span) = &self.span {
            write!(f, " at {span}")?;
        }
        write!(f, ": {}", self.message)?;
        if let Some(why) = &self.justification {
            write!(f, " [overridden: {why}]")?;
        }
        Ok(())
    }
}

/// The outcome of linting one rewrite system.
#[derive(Debug, Clone, Default)]
pub struct LintReport {
    /// What was analyzed (e.g. `"BOOL (Hsiang–Dershowitz)"`).
    pub target: String,
    /// All findings, in pass order.
    pub diagnostics: Vec<Diagnostic>,
    /// Pass-level facts worth surfacing even with zero findings: the
    /// orienting precedence, critical-pair statistics, coverage totals.
    pub notes: Vec<String>,
}

impl LintReport {
    /// An empty report for `target`.
    pub fn new(target: impl Into<String>) -> Self {
        LintReport {
            target: target.into(),
            ..LintReport::default()
        }
    }

    /// Record a finding, applying configuration overrides.
    pub fn push(&mut self, config: &LintConfig, mut diag: Diagnostic) {
        let (severity, justification) = config.severity(diag.code, diag.severity);
        diag.severity = severity;
        diag.justification = justification.map(str::to_string);
        self.diagnostics.push(diag);
    }

    /// Record a pass-level note.
    pub fn note(&mut self, note: impl Into<String>) {
        self.notes.push(note.into());
    }

    /// Number of findings at `severity`.
    pub fn count(&self, severity: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == severity)
            .count()
    }

    /// `true` when any finding is deny-level (the gate should fail).
    pub fn has_deny(&self) -> bool {
        self.count(Severity::Deny) > 0
    }

    /// Findings of one code, for tests and triage.
    pub fn with_code(&self, code: LintCode) -> Vec<&Diagnostic> {
        self.diagnostics.iter().filter(|d| d.code == code).collect()
    }

    /// The report as a JSON object (rendered by `equitls-obs`).
    pub fn to_json(&self) -> JsonValue {
        let findings = self
            .diagnostics
            .iter()
            .map(|d| {
                let mut fields = vec![
                    ("code".to_string(), JsonValue::String(d.code.name().into())),
                    (
                        "severity".to_string(),
                        JsonValue::String(d.severity.name().into()),
                    ),
                    ("message".to_string(), JsonValue::String(d.message.clone())),
                ];
                if let Some(rule) = &d.rule {
                    fields.push(("rule".to_string(), JsonValue::String(rule.clone())));
                }
                if let Some(span) = &d.span {
                    fields.push((
                        "span".to_string(),
                        JsonValue::Object(vec![
                            ("line".to_string(), JsonValue::Number(span.line as f64)),
                            ("column".to_string(), JsonValue::Number(span.column as f64)),
                        ]),
                    ));
                }
                if let Some(why) = &d.justification {
                    fields.push(("justification".to_string(), JsonValue::String(why.clone())));
                }
                JsonValue::Object(fields)
            })
            .collect();
        JsonValue::Object(vec![
            ("target".to_string(), JsonValue::String(self.target.clone())),
            (
                "deny".to_string(),
                JsonValue::Number(self.count(Severity::Deny) as f64),
            ),
            (
                "warn".to_string(),
                JsonValue::Number(self.count(Severity::Warn) as f64),
            ),
            (
                "allow".to_string(),
                JsonValue::Number(self.count(Severity::Allow) as f64),
            ),
            ("findings".to_string(), JsonValue::Array(findings)),
            (
                "notes".to_string(),
                JsonValue::Array(
                    self.notes
                        .iter()
                        .map(|n| JsonValue::String(n.clone()))
                        .collect(),
                ),
            ),
        ])
    }
}

impl fmt::Display for LintReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "lint {}: {} deny, {} warn, {} info",
            self.target,
            self.count(Severity::Deny),
            self.count(Severity::Warn),
            self.count(Severity::Allow)
        )?;
        for d in &self.diagnostics {
            writeln!(f, "  {d}")?;
        }
        for n in &self.notes {
            writeln!(f, "  note: {n}")?;
        }
        Ok(())
    }
}
