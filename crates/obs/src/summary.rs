//! Human-readable summaries: plain-text tables and an event aggregator.

use crate::event::Event;
use crate::hist::{format_us, Histogram};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::time::Duration;

/// Shortest interval over which a rendered rate is honest. Below this,
/// clock granularity dominates and `count / duration` is noise.
const MIN_MEASURABLE_SECS: f64 = 1e-3;

/// `count / duration` as an events-per-second rate, or `None` when the
/// interval is too short (< 1ms) to support a meaningful rate.
///
/// Every *rendered* rate goes through this guard: a sub-millisecond run
/// omits the figure instead of reporting a quantized, misleading one
/// (the same rule `Exploration::states_per_sec` applies internally).
pub fn rate_per_sec(count: u64, duration: Duration) -> Option<f64> {
    let secs = duration.as_secs_f64();
    if secs < MIN_MEASURABLE_SECS {
        None
    } else {
        Some(count as f64 / secs)
    }
}

/// Column alignment for [`Table`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Align {
    /// Left-aligned (names).
    Left,
    /// Right-aligned (numbers).
    Right,
}

/// A minimal monospace table renderer.
///
/// ```
/// use equitls_obs::summary::{Align, Table};
/// let mut t = Table::new(&["rule", "fires"], &[Align::Left, Align::Right]);
/// t.row(vec!["cpms-kx".into(), "120".into()]);
/// assert!(t.render().contains("cpms-kx"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    aligns: Vec<Align>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with `headers`; `aligns` must have the same length.
    pub fn new(headers: &[&str], aligns: &[Align]) -> Self {
        assert_eq!(headers.len(), aligns.len(), "one alignment per column");
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            aligns: aligns.to_vec(),
            rows: Vec::new(),
        }
    }

    /// Append one row (short rows are padded with empty cells).
    pub fn row(&mut self, mut cells: Vec<String>) {
        cells.resize(self.headers.len(), String::new());
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when no data rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with a header rule, two-space column gutters.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        let write_row = |out: &mut String, cells: &[String]| {
            for (i, cell) in cells.iter().enumerate().take(cols) {
                if i > 0 {
                    out.push_str("  ");
                }
                let pad = widths[i].saturating_sub(cell.chars().count());
                match self.aligns[i] {
                    Align::Left => {
                        out.push_str(cell);
                        if i + 1 < cols {
                            out.push_str(&" ".repeat(pad));
                        }
                    }
                    Align::Right => {
                        out.push_str(&" ".repeat(pad));
                        out.push_str(cell);
                    }
                }
            }
            out.push('\n');
        };
        write_row(&mut out, &self.headers);
        let rule_len = widths.iter().sum::<usize>() + 2 * (cols - 1);
        let _ = writeln!(out, "{}", "-".repeat(rule_len));
        for row in &self.rows {
            write_row(&mut out, row);
        }
        out
    }
}

/// Aggregate timing for one span name.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanAgg {
    /// Completed enter/exit pairs.
    pub count: u64,
    /// Sum of durations.
    pub total: Duration,
    /// Longest single span.
    pub max: Duration,
}

/// Counters, gauges, and span timings folded out of an event stream.
#[derive(Debug, Clone, Default)]
pub struct MetricsSummary {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    spans: BTreeMap<String, SpanAgg>,
    span_hists: BTreeMap<String, Histogram>,
    dropped_events: u64,
}

impl MetricsSummary {
    /// Fold `events` (typically from a
    /// [`crate::sink::RecordingSink`]) into totals. Gauges keep their last
    /// observed value.
    pub fn from_events(events: &[Event]) -> Self {
        let mut s = MetricsSummary::default();
        for event in events {
            match event {
                Event::Counter { name, delta } => {
                    *s.counters.entry(name.clone()).or_insert(0) += delta;
                }
                Event::Gauge { name, value } => {
                    s.gauges.insert(name.clone(), *value);
                }
                Event::SpanExit { name, dur } => {
                    let agg = s.spans.entry(name.clone()).or_default();
                    agg.count += 1;
                    agg.total += *dur;
                    agg.max = agg.max.max(*dur);
                    s.span_hists
                        .entry(name.clone())
                        .or_default()
                        .record_duration(*dur);
                }
                Event::SpanEnter { .. } => {}
            }
        }
        s
    }

    /// Total for counter `name` (0 when never incremented).
    pub fn counter_total(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Last observed value of gauge `name`.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Aggregated timing for span `name`.
    pub fn span(&self, name: &str) -> Option<SpanAgg> {
        self.spans.get(name).copied()
    }

    /// The latency distribution of span `name` (one µs sample per
    /// completed enter/exit pair).
    pub fn span_histogram(&self, name: &str) -> Option<&Histogram> {
        self.span_hists.get(name)
    }

    /// Fold another summary's totals into this one (e.g. merging
    /// per-worker recorders). Counters and span aggregates add; gauges
    /// keep `other`'s value when both define one; dropped-event counts
    /// add. Histogram merging is associative, so the fold order never
    /// changes a percentile.
    pub fn merge(&mut self, other: &MetricsSummary) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            self.gauges.insert(k.clone(), *v);
        }
        for (k, v) in &other.spans {
            let agg = self.spans.entry(k.clone()).or_default();
            agg.count += v.count;
            agg.total += v.total;
            agg.max = agg.max.max(v.max);
        }
        for (k, v) in &other.span_hists {
            self.span_hists.entry(k.clone()).or_default().merge(v);
        }
        self.dropped_events += other.dropped_events;
    }

    /// Record how many events the sink stack dropped while this summary's
    /// events were collected (from `Obs::dropped_events`). Dropped events
    /// never reach the recorder, so the summary cannot count them itself —
    /// the caller supplies the figure and the rendered tables disclose it.
    pub fn set_dropped_events(&mut self, dropped: u64) {
        self.dropped_events = dropped;
    }

    /// Events the sink stack failed to record (0 = summary is complete).
    pub fn dropped_events(&self) -> u64 {
        self.dropped_events
    }

    /// All counters whose name starts with `prefix`, as
    /// `(suffix, total)` pairs sorted by total, largest first.
    pub fn counters_with_prefix(&self, prefix: &str) -> Vec<(String, u64)> {
        let mut out: Vec<(String, u64)> = self
            .counters
            .iter()
            .filter_map(|(k, v)| k.strip_prefix(prefix).map(|s| (s.to_string(), *v)))
            .collect();
        out.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        out
    }

    /// All span aggregates, sorted by total time, largest first.
    pub fn spans_by_total(&self) -> Vec<(String, SpanAgg)> {
        let mut out: Vec<(String, SpanAgg)> =
            self.spans.iter().map(|(k, v)| (k.clone(), *v)).collect();
        out.sort_by(|a, b| b.1.total.cmp(&a.1.total).then_with(|| a.0.cmp(&b.0)));
        out
    }

    /// Render all span timings as a table, longest first.
    pub fn render_span_table(&self) -> String {
        let mut table = Table::new(
            &["span", "count", "total", "max"],
            &[Align::Left, Align::Right, Align::Right, Align::Right],
        );
        for (name, agg) in self.spans_by_total() {
            table.row(vec![
                name,
                agg.count.to_string(),
                format!("{:.2?}", agg.total),
                format!("{:.2?}", agg.max),
            ]);
        }
        let mut out = table.render();
        self.append_dropped_note(&mut out);
        out
    }

    /// Render the latency distribution of every span name as a table
    /// (count, p50/p90/p99, max, total), ordered by total time. A `rate`
    /// column reports completions per second where the total duration is
    /// long enough to measure, `-` otherwise (see [`rate_per_sec`]).
    pub fn render_histogram_table(&self) -> String {
        let mut table = Table::new(
            &[
                "span", "count", "p50", "p90", "p99", "max", "total", "rate/s",
            ],
            &[
                Align::Left,
                Align::Right,
                Align::Right,
                Align::Right,
                Align::Right,
                Align::Right,
                Align::Right,
                Align::Right,
            ],
        );
        for (name, agg) in self.spans_by_total() {
            let Some(h) = self.span_hists.get(&name) else {
                continue;
            };
            let rate = rate_per_sec(h.count(), agg.total)
                .map(|r| format!("{r:.0}"))
                .unwrap_or_else(|| "-".into());
            table.row(vec![
                name,
                h.count().to_string(),
                format_us(h.p50()),
                format_us(h.p90()),
                format_us(h.p99()),
                format_us(h.max()),
                format!("{:.2?}", agg.total),
                rate,
            ]);
        }
        let mut out = table.render();
        self.append_dropped_note(&mut out);
        out
    }

    fn append_dropped_note(&self, out: &mut String) {
        if self.dropped_events > 0 {
            let _ = writeln!(
                out,
                "(!) {} event(s) dropped by the sink stack — totals above are incomplete",
                self.dropped_events
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_folds_counters_gauges_and_spans() {
        let events = vec![
            Event::Counter {
                name: "rewrites".into(),
                delta: 3,
            },
            Event::Counter {
                name: "rewrites".into(),
                delta: 4,
            },
            Event::Gauge {
                name: "frontier".into(),
                value: 10.0,
            },
            Event::Gauge {
                name: "frontier".into(),
                value: 4.0,
            },
            Event::SpanEnter { name: "p".into() },
            Event::SpanExit {
                name: "p".into(),
                dur: Duration::from_millis(5),
            },
            Event::SpanEnter { name: "p".into() },
            Event::SpanExit {
                name: "p".into(),
                dur: Duration::from_millis(3),
            },
        ];
        let s = MetricsSummary::from_events(&events);
        assert_eq!(s.counter_total("rewrites"), 7);
        assert_eq!(s.gauge("frontier"), Some(4.0));
        let agg = s.span("p").unwrap();
        assert_eq!(agg.count, 2);
        assert_eq!(agg.total, Duration::from_millis(8));
        assert_eq!(agg.max, Duration::from_millis(5));
    }

    #[test]
    fn prefix_query_sorts_by_total_descending() {
        let events = vec![
            Event::Counter {
                name: "rule.fires:a".into(),
                delta: 1,
            },
            Event::Counter {
                name: "rule.fires:b".into(),
                delta: 9,
            },
            Event::Counter {
                name: "other".into(),
                delta: 100,
            },
        ];
        let s = MetricsSummary::from_events(&events);
        assert_eq!(
            s.counters_with_prefix("rule.fires:"),
            vec![("b".to_string(), 9), ("a".to_string(), 1)]
        );
    }

    #[test]
    fn span_table_discloses_dropped_events() {
        let events = vec![
            Event::SpanEnter { name: "p".into() },
            Event::SpanExit {
                name: "p".into(),
                dur: Duration::from_millis(5),
            },
        ];
        let mut s = MetricsSummary::from_events(&events);
        assert!(!s.render_span_table().contains("dropped"));
        s.set_dropped_events(3);
        assert_eq!(s.dropped_events(), 3);
        assert!(s
            .render_span_table()
            .contains("3 event(s) dropped by the sink stack"));
    }

    #[test]
    fn span_histograms_track_distribution() {
        let mut events = Vec::new();
        for ms in [1u64, 2, 4, 100] {
            events.push(Event::SpanEnter { name: "p".into() });
            events.push(Event::SpanExit {
                name: "p".into(),
                dur: Duration::from_millis(ms),
            });
        }
        let s = MetricsSummary::from_events(&events);
        let h = s.span_histogram("p").expect("histogram exists");
        assert_eq!(h.count(), 4);
        assert_eq!(h.max(), 100_000);
        assert!(h.p99() >= 100_000, "p99 reaches the slowest sample");
        let table = s.render_histogram_table();
        assert!(table.contains('p'), "span name is listed");
        assert!(table.contains("100.0ms"), "max column renders: {table}");
    }

    #[test]
    fn rates_are_omitted_on_sub_millisecond_intervals() {
        assert_eq!(rate_per_sec(1000, Duration::from_micros(500)), None);
        assert_eq!(rate_per_sec(1000, Duration::ZERO), None);
        let r = rate_per_sec(1000, Duration::from_secs(2)).expect("measurable");
        assert!((r - 500.0).abs() < 1e-9);

        // A fast span renders `-` in the rate column instead of a number.
        let events = vec![
            Event::SpanEnter {
                name: "fast".into(),
            },
            Event::SpanExit {
                name: "fast".into(),
                dur: Duration::from_micros(3),
            },
        ];
        let s = MetricsSummary::from_events(&events);
        let table = s.render_histogram_table();
        let row = table.lines().last().unwrap();
        assert!(row.trim_end().ends_with('-'), "no fabricated rate: {row}");
    }

    #[test]
    fn merge_adds_counters_spans_and_dropped_counts() {
        let a_events = vec![
            Event::Counter {
                name: "n".into(),
                delta: 2,
            },
            Event::SpanEnter { name: "p".into() },
            Event::SpanExit {
                name: "p".into(),
                dur: Duration::from_millis(5),
            },
        ];
        let b_events = vec![
            Event::Counter {
                name: "n".into(),
                delta: 3,
            },
            Event::SpanEnter { name: "p".into() },
            Event::SpanExit {
                name: "p".into(),
                dur: Duration::from_millis(7),
            },
        ];
        let mut a = MetricsSummary::from_events(&a_events);
        a.set_dropped_events(1);
        let mut b = MetricsSummary::from_events(&b_events);
        b.set_dropped_events(2);
        a.merge(&b);
        assert_eq!(a.counter_total("n"), 5);
        let agg = a.span("p").unwrap();
        assert_eq!(agg.count, 2);
        assert_eq!(agg.total, Duration::from_millis(12));
        assert_eq!(agg.max, Duration::from_millis(7));
        assert_eq!(a.span_histogram("p").unwrap().count(), 2);
        assert_eq!(a.dropped_events(), 3);
    }

    #[test]
    fn table_aligns_columns() {
        let mut t = Table::new(&["name", "n"], &[Align::Left, Align::Right]);
        t.row(vec!["long-name".into(), "7".into()]);
        t.row(vec!["x".into(), "1234".into()]);
        let rendered = t.render();
        let lines: Vec<&str> = rendered.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[2].starts_with("long-name"));
        assert!(lines[3].ends_with("1234"));
    }
}
