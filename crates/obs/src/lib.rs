//! # equitls-obs
//!
//! A **std-only, zero-external-dependency** tracing and metrics substrate
//! for the EquiTLS stack.
//!
//! The paper's headline claim — 18 invariants verified in about a week of
//! human effort (§1, §7) — becomes measurable by machine once every layer
//! reports what it did: per-rule rewrite counts, case-split trees,
//! exploration rates, wall-clock breakdowns (experiment E9 in
//! EXPERIMENTS.md). This crate is the substrate those reports flow
//! through:
//!
//! * [`event`] — the event vocabulary: spans (enter/exit with monotonic
//!   timing), counters, and gauges;
//! * [`sink`] — the [`EventSink`] trait and its implementations: a no-op
//!   sink that compiles to a single boolean test on hot paths, an
//!   in-memory recording sink for tests, a JSONL writer sink for traces,
//!   and a tee combinator;
//! * [`json`] — hand-rolled JSON escaping, rendering, and a small parser
//!   (used to validate trace round-trips) — no serde;
//! * [`summary`] — plain-text table rendering and an event aggregator
//!   ([`summary::MetricsSummary`]) for human-readable reports;
//! * [`hist`] — log-bucketed, mergeable latency [`hist::Histogram`]s
//!   (p50/p90/p99/max) with an associative merge;
//! * [`profile`] — a stack [`profile::Profiler`] attributing wall time
//!   to scope paths, with folded-stack (flamegraph) output;
//! * [`trace`] — offline trace analysis: load a JSONL trace, export it
//!   as Chrome trace-event JSON or folded stacks, diff two runs;
//! * [`rng`] — a deterministic SplitMix64 generator so benchmarks and
//!   property tests need no external `rand`.
//!
//! # Example
//!
//! ```
//! use equitls_obs::prelude::*;
//! use std::sync::Arc;
//!
//! let recorder = Arc::new(RecordingSink::new());
//! let obs = Obs::new(recorder.clone());
//! {
//!     let _span = obs.span("work");
//!     obs.counter("items", 3);
//!     obs.gauge("queue.len", 7.0);
//! }
//! let events = recorder.events();
//! assert_eq!(events.len(), 4); // enter, counter, gauge, exit
//! let summary = MetricsSummary::from_events(&events);
//! assert_eq!(summary.counter_total("items"), 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod event;
pub mod hist;
pub mod json;
pub mod profile;
pub mod rng;
pub mod sink;
pub mod summary;
pub mod trace;

pub use event::{Event, TimedEvent};
pub use hist::Histogram;
pub use profile::Profiler;
pub use sink::{EventSink, JsonlSink, NoopSink, Obs, RecordingSink, SpanGuard, TeeSink};

/// Convenient re-exports.
pub mod prelude {
    pub use crate::event::{Event, TimedEvent};
    pub use crate::hist::Histogram;
    pub use crate::json::JsonValue;
    pub use crate::profile::Profiler;
    pub use crate::rng::SplitMix64;
    pub use crate::sink::{EventSink, JsonlSink, NoopSink, Obs, RecordingSink, SpanGuard, TeeSink};
    pub use crate::summary::{MetricsSummary, Table};
    pub use crate::trace::Trace;
}
