//! Offline trace analysis: load a JSONL trace, summarize it, convert it
//! to Chrome trace-event JSON or folded stacks, and diff two runs.
//!
//! This module is the engine behind the `tls-trace` binary and the
//! `--profile` flag: everything here operates on [`TimedEvent`]s, whether
//! they come from a `.jsonl` file written by a
//! [`crate::sink::JsonlSink`] or straight out of a
//! [`crate::sink::RecordingSink`] in the same process.

use crate::event::{Event, TimedEvent};
use crate::json::{self, JsonValue};
use crate::profile::Profiler;
use crate::summary::MetricsSummary;
use std::collections::BTreeMap;

/// A loaded event trace.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// The events, in file (i.e. capture) order.
    pub events: Vec<TimedEvent>,
    /// Input lines that were not event objects (malformed JSON, unknown
    /// `type`, missing fields). A truncated final line from an
    /// interrupted run is normal; a trace that is *all* skips is not a
    /// trace — callers should check [`Trace::is_empty`].
    pub skipped_lines: usize,
}

impl Trace {
    /// Parse JSONL text, one event per line. Never fails: unusable lines
    /// are counted in [`Trace::skipped_lines`] so an interrupted run's
    /// torn final write does not make the whole trace unreadable.
    pub fn parse(text: &str) -> Trace {
        let mut trace = Trace::default();
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            match json::parse(line)
                .ok()
                .as_ref()
                .and_then(TimedEvent::from_json)
            {
                Some(ev) => trace.events.push(ev),
                None => trace.skipped_lines += 1,
            }
        }
        trace
    }

    /// Wrap events already in memory (e.g. from
    /// [`crate::sink::RecordingSink::timed_events`]).
    pub fn from_events(events: Vec<TimedEvent>) -> Trace {
        Trace {
            events,
            skipped_lines: 0,
        }
    }

    /// `true` when no events loaded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Trace extent: the largest timestamp, in µs (span exits are
    /// stamped at their end, so this is the end of the last event). `0`
    /// for an empty trace.
    pub fn duration_us(&self) -> u64 {
        self.events.iter().map(|e| e.t_us).max().unwrap_or(0)
    }

    /// Fold the trace into counters/gauges/span histograms.
    pub fn summary(&self) -> MetricsSummary {
        let events: Vec<Event> = self.events.iter().map(|e| e.event.clone()).collect();
        MetricsSummary::from_events(&events)
    }

    /// The Chrome trace-event rendering: an object with a `traceEvents`
    /// array of `B`/`E` (span begin/end) and `C` (counter/gauge sample)
    /// records, timestamps in µs — loadable in Perfetto or
    /// `about://tracing` as-is.
    pub fn chrome_trace(&self) -> JsonValue {
        let mut records = Vec::with_capacity(self.events.len());
        // Chrome counter tracks plot absolute values; counters arrive as
        // deltas, so accumulate per name.
        let mut counter_totals: BTreeMap<&str, u64> = BTreeMap::new();
        for ev in &self.events {
            let mut fields: Vec<(String, JsonValue)> = vec![
                ("name".into(), JsonValue::String(ev.event.name().into())),
                ("ts".into(), JsonValue::from_u128(u128::from(ev.t_us))),
                ("pid".into(), JsonValue::Number(1.0)),
                ("tid".into(), JsonValue::from_u128(u128::from(ev.tid))),
            ];
            let (ph, args) = match &ev.event {
                Event::SpanEnter { .. } => ("B", None),
                Event::SpanExit { .. } => ("E", None),
                Event::Counter { name, delta } => {
                    let total = counter_totals.entry(name.as_str()).or_insert(0);
                    *total += delta;
                    ("C", Some(("value".to_string(), *total as f64)))
                }
                Event::Gauge { value, .. } => ("C", Some(("value".to_string(), *value))),
            };
            fields.push(("ph".into(), JsonValue::String(ph.into())));
            if let Some((key, value)) = args {
                fields.push((
                    "args".into(),
                    JsonValue::Object(vec![(key, JsonValue::Number(value))]),
                ));
            }
            records.push(JsonValue::Object(fields));
        }
        JsonValue::Object(vec![
            ("traceEvents".into(), JsonValue::Array(records)),
            ("displayTimeUnit".into(), JsonValue::String("ms".into())),
        ])
    }

    /// The folded-stack rendering (`path;leaf <self-µs>` lines): spans
    /// are replayed through one [`Profiler`] per thread and the threads
    /// merged, so the output is a whole-process flamegraph.
    pub fn folded(&self) -> String {
        let mut per_tid: BTreeMap<u64, (Profiler, u64)> = BTreeMap::new();
        for ev in &self.events {
            let (profiler, last_t) = per_tid
                .entry(ev.tid)
                .or_insert_with(|| (Profiler::new(), 0));
            *last_t = (*last_t).max(ev.t_us);
            match &ev.event {
                Event::SpanEnter { name } => profiler.enter_at(name, ev.t_us),
                Event::SpanExit { .. } => profiler.exit_at(ev.t_us),
                _ => {}
            }
        }
        let mut merged = Profiler::new();
        for (mut profiler, last_t) in per_tid.into_values() {
            profiler.close_all_at(last_t);
            merged.merge(&profiler);
        }
        merged.folded()
    }
}

/// One compared quantity in a [`TraceDiff`].
#[derive(Debug, Clone, PartialEq)]
pub struct DiffRow {
    /// What is compared: `span:<name>` or `rule:<label>`.
    pub name: String,
    /// Cumulative µs in the before-trace.
    pub before_us: u64,
    /// Cumulative µs in the after-trace.
    pub after_us: u64,
    /// Relative change in percent (positive = slower after).
    pub delta_pct: f64,
}

/// The outcome of comparing two traces.
#[derive(Debug, Clone)]
pub struct TraceDiff {
    /// Every quantity present in both traces, sorted slowest-regression
    /// first.
    pub rows: Vec<DiffRow>,
    /// The regression threshold the diff was taken at, in percent.
    pub threshold_pct: f64,
}

/// Ignore changes on quantities faster than this in the before-trace:
/// below 1ms, scheduler and clock noise swamp any real signal, mirroring
/// the rendered-rate guard in [`crate::summary::rate_per_sec`].
pub const DIFF_NOISE_FLOOR_US: u64 = 1_000;

impl TraceDiff {
    /// Rows whose slowdown exceeds the threshold (and whose baseline is
    /// above the noise floor) — the reason `tls-trace diff` exits 1.
    pub fn regressions(&self) -> Vec<&DiffRow> {
        self.rows
            .iter()
            .filter(|r| r.before_us >= DIFF_NOISE_FLOOR_US && r.delta_pct > self.threshold_pct)
            .collect()
    }

    /// `true` when nothing regressed past the threshold.
    pub fn is_clean(&self) -> bool {
        self.regressions().is_empty()
    }
}

/// Compare two trace summaries: cumulative span times (by span name) and
/// cumulative per-rule normalization times (the `rule.time_us:` counters)
/// present in **both** runs. Quantities only one run has are not compared
/// — a renamed obligation is a code change, not a regression.
pub fn diff_summaries(
    before: &MetricsSummary,
    after: &MetricsSummary,
    threshold_pct: f64,
) -> TraceDiff {
    let mut rows = Vec::new();
    let mut push = |name: String, before_us: u64, after_us: u64| {
        let delta_pct = if before_us == 0 {
            if after_us == 0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            (after_us as f64 - before_us as f64) / before_us as f64 * 100.0
        };
        rows.push(DiffRow {
            name,
            before_us,
            after_us,
            delta_pct,
        });
    };
    for (name, b) in before.spans_by_total() {
        if let Some(a) = after.span(&name) {
            let to_us = |d: std::time::Duration| u64::try_from(d.as_micros()).unwrap_or(u64::MAX);
            push(format!("span:{name}"), to_us(b.total), to_us(a.total));
        }
    }
    let after_rules: BTreeMap<String, u64> = after
        .counters_with_prefix("rule.time_us:")
        .into_iter()
        .collect();
    for (label, b_us) in before.counters_with_prefix("rule.time_us:") {
        if let Some(&a_us) = after_rules.get(&label) {
            push(format!("rule:{label}"), b_us, a_us);
        }
    }
    rows.sort_by(|a, b| {
        b.delta_pct
            .partial_cmp(&a.delta_pct)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.name.cmp(&b.name))
    });
    TraceDiff {
        rows,
        threshold_pct,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn span_pair(name: &str, tid: u64, start: u64, end: u64) -> [TimedEvent; 2] {
        [
            TimedEvent {
                t_us: start,
                tid,
                event: Event::SpanEnter { name: name.into() },
            },
            TimedEvent {
                t_us: end,
                tid,
                event: Event::SpanExit {
                    name: name.into(),
                    dur: Duration::from_micros(end - start),
                },
            },
        ]
    }

    fn render_jsonl(events: &[TimedEvent]) -> String {
        events
            .iter()
            .map(|e| e.to_json().to_string() + "\n")
            .collect()
    }

    #[test]
    fn jsonl_round_trips_through_parse() {
        let mut events: Vec<TimedEvent> = span_pair("p", 1, 0, 50).to_vec();
        events.push(TimedEvent {
            t_us: 60,
            tid: 2,
            event: Event::Counter {
                name: "rule.time_us:lem".into(),
                delta: 40,
            },
        });
        let text = render_jsonl(&events);
        let trace = Trace::parse(&text);
        assert_eq!(trace.skipped_lines, 0);
        assert_eq!(trace.events, events);
    }

    #[test]
    fn torn_and_foreign_lines_are_skipped_not_fatal() {
        let text = "{\"t_us\":1,\"tid\":1,\"type\":\"counter\",\"name\":\"c\",\"delta\":1}\n\
                    {\"t_us\":2,\"tid\":1,\"type\":\"coun"; // torn final write
        let trace = Trace::parse(text);
        assert_eq!(trace.events.len(), 1);
        assert_eq!(trace.skipped_lines, 1);
    }

    #[test]
    fn chrome_trace_has_paired_begin_end_records() {
        let events: Vec<TimedEvent> = span_pair("prove", 3, 10, 90).to_vec();
        let chrome = Trace::from_events(events).chrome_trace();
        let JsonValue::Array(records) = chrome.get("traceEvents").unwrap() else {
            panic!("traceEvents is an array");
        };
        assert_eq!(records.len(), 2);
        let ph = |i: usize| records[i].get("ph").unwrap().as_str().unwrap().to_string();
        assert_eq!(ph(0), "B");
        assert_eq!(ph(1), "E");
        assert_eq!(records[0].get("ts").unwrap().as_f64(), Some(10.0));
        assert_eq!(records[0].get("tid").unwrap().as_f64(), Some(3.0));
        // The whole document parses back (it is what we write to disk).
        json::parse(&chrome.to_string()).expect("chrome JSON is valid");
    }

    #[test]
    fn chrome_counters_accumulate() {
        let mk = |t_us, delta| TimedEvent {
            t_us,
            tid: 1,
            event: Event::Counter {
                name: "n".into(),
                delta,
            },
        };
        let chrome = Trace::from_events(vec![mk(0, 2), mk(5, 3)]).chrome_trace();
        let JsonValue::Array(records) = chrome.get("traceEvents").unwrap() else {
            panic!()
        };
        let value = |i: usize| {
            records[i]
                .get("args")
                .and_then(|a| a.get("value"))
                .and_then(JsonValue::as_f64)
        };
        assert_eq!(value(0), Some(2.0));
        assert_eq!(value(1), Some(5.0), "track shows the running total");
    }

    #[test]
    fn folded_keeps_threads_stacks_separate_then_merges() {
        let mut events = Vec::new();
        // Thread 1: outer(0..100) wrapping inner(20..60).
        events.push(span_pair("outer", 1, 0, 100)[0].clone());
        events.extend(span_pair("inner", 1, 20, 60));
        events.push(span_pair("outer", 1, 0, 100)[1].clone());
        // Thread 2: its own flat inner(0..30) — must not nest under
        // thread 1's outer.
        events.extend(span_pair("inner", 2, 0, 30));
        events.sort_by_key(|e| e.t_us);
        let folded = Trace::from_events(events).folded();
        let lines: Vec<&str> = folded.lines().collect();
        assert!(lines.contains(&"inner 30"), "thread 2 stack: {folded}");
        assert!(lines.contains(&"outer 60"), "self time: {folded}");
        assert!(lines.contains(&"outer;inner 40"), "nested: {folded}");
    }

    #[test]
    fn diff_flags_only_regressions_past_threshold_and_noise_floor() {
        let mk_summary = |slow: u64, rule_us: u64| {
            let events = vec![
                Event::SpanEnter { name: "ob".into() },
                Event::SpanExit {
                    name: "ob".into(),
                    dur: Duration::from_micros(slow),
                },
                // A fast span below the noise floor (doubles, never flags).
                Event::SpanEnter {
                    name: "tiny".into(),
                },
                Event::SpanExit {
                    name: "tiny".into(),
                    dur: Duration::from_micros(slow / 100),
                },
                Event::Counter {
                    name: "rule.time_us:lem-a".into(),
                    delta: rule_us,
                },
            ];
            MetricsSummary::from_events(&events)
        };
        let before = mk_summary(10_000, 5_000);

        let same = diff_summaries(&before, &mk_summary(10_000, 5_000), 20.0);
        assert!(same.is_clean(), "identical runs do not regress");

        let slower = diff_summaries(&before, &mk_summary(13_000, 5_000), 20.0);
        let regs = slower.regressions();
        assert_eq!(regs.len(), 1, "only the span past threshold: {regs:?}");
        assert_eq!(regs[0].name, "span:ob");
        assert!((regs[0].delta_pct - 30.0).abs() < 1e-9);

        let rule_slower = diff_summaries(&before, &mk_summary(10_000, 6_500), 20.0);
        assert_eq!(rule_slower.regressions()[0].name, "rule:lem-a");

        // 30% slower but a 50% threshold: clean.
        assert!(diff_summaries(&before, &mk_summary(13_000, 5_000), 50.0).is_clean());
    }
}
