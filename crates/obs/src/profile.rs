//! Stack-scoped wall-time attribution.
//!
//! A [`Profiler`] maintains a stack of named scopes and attributes wall
//! time to the full scope *path* (`prove;obligation:kexch;normalize`),
//! splitting each frame's duration into **self time** (spent in the frame
//! itself) and child time (spent in nested scopes). That is exactly the
//! accounting a flamegraph renders, and [`Profiler::folded`] emits it in
//! the folded-stack format `inferno`/`flamegraph.pl`/speedscope consume:
//! one `path;leaf <self-µs>` line per stack.
//!
//! The profiler has two front doors:
//!
//! * **live** — [`Profiler::enter`]/[`Profiler::exit`] (or the RAII-free
//!   [`Profiler::scoped`]) stamp times from an internal monotonic clock;
//! * **replay** — [`Profiler::enter_at`]/[`Profiler::exit_at`] take
//!   explicit microsecond stamps, so the offline tools can rebuild the
//!   attribution from a recorded trace, one profiler per thread, and
//!   [`Profiler::merge`] the threads afterwards (frame addition is
//!   associative, so merge order does not matter).

use std::collections::BTreeMap;
use std::time::Instant;

/// Aggregate statistics for one scope path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FrameStat {
    /// Completed enter/exit pairs at this path.
    pub count: u64,
    /// Total wall time inside the frame, children included (µs).
    pub total_us: u64,
    /// Wall time inside the frame excluding named children (µs).
    pub self_us: u64,
}

/// One live (not yet exited) scope.
#[derive(Debug)]
struct OpenFrame {
    name: String,
    start_us: u64,
    child_us: u64,
}

/// A stack profiler attributing wall time to named scope paths.
#[derive(Debug)]
pub struct Profiler {
    start: Instant,
    stack: Vec<OpenFrame>,
    frames: BTreeMap<String, FrameStat>,
}

impl Default for Profiler {
    fn default() -> Self {
        Profiler::new()
    }
}

impl Profiler {
    /// An empty profiler; the live clock starts now.
    pub fn new() -> Self {
        Profiler {
            start: Instant::now(),
            stack: Vec::new(),
            frames: BTreeMap::new(),
        }
    }

    fn now_us(&self) -> u64 {
        u64::try_from(self.start.elapsed().as_micros()).unwrap_or(u64::MAX)
    }

    /// Open a scope (live clock).
    pub fn enter(&mut self, name: &str) {
        self.enter_at(name, self.now_us());
    }

    /// Close the innermost scope (live clock).
    pub fn exit(&mut self) {
        self.exit_at(self.now_us());
    }

    /// Run `f` inside a scope named `name` (live clock).
    pub fn scoped<T>(&mut self, name: &str, f: impl FnOnce(&mut Self) -> T) -> T {
        self.enter(name);
        let out = f(self);
        self.exit();
        out
    }

    /// Open a scope at an explicit microsecond stamp (replay).
    pub fn enter_at(&mut self, name: &str, t_us: u64) {
        self.stack.push(OpenFrame {
            name: name.to_string(),
            start_us: t_us,
            child_us: 0,
        });
    }

    /// Close the innermost scope at an explicit stamp (replay). An exit
    /// with no matching enter is ignored — a truncated trace (bounded
    /// recorder, interrupted run) degrades to partial attribution, never
    /// a panic.
    pub fn exit_at(&mut self, t_us: u64) {
        let Some(frame) = self.stack.pop() else {
            return;
        };
        let dur = t_us.saturating_sub(frame.start_us);
        let path = self.path_for(&frame.name);
        let stat = self.frames.entry(path).or_default();
        stat.count += 1;
        stat.total_us += dur;
        stat.self_us += dur.saturating_sub(frame.child_us);
        if let Some(parent) = self.stack.last_mut() {
            parent.child_us += dur;
        }
    }

    /// Close every open scope at `t_us` — used at end of replay so a
    /// trace cut off mid-span still attributes the time observed so far.
    pub fn close_all_at(&mut self, t_us: u64) {
        while !self.stack.is_empty() {
            self.exit_at(t_us);
        }
    }

    /// The `;`-joined path of the current stack plus `leaf`.
    fn path_for(&self, leaf: &str) -> String {
        let mut path = String::new();
        for frame in &self.stack {
            path.push_str(&frame.name);
            path.push(';');
        }
        path.push_str(leaf);
        path
    }

    /// Scope paths currently open, outermost first (for diagnostics).
    pub fn open_depth(&self) -> usize {
        self.stack.len()
    }

    /// All completed frames, keyed by `;`-joined scope path.
    pub fn frames(&self) -> &BTreeMap<String, FrameStat> {
        &self.frames
    }

    /// Fold `other`'s completed frames into this profiler (per-thread
    /// profilers into one view). Addition per path is associative and
    /// commutative, so the merge order never changes the result.
    pub fn merge(&mut self, other: &Profiler) {
        for (path, stat) in &other.frames {
            let mine = self.frames.entry(path.clone()).or_default();
            mine.count += stat.count;
            mine.total_us += stat.total_us;
            mine.self_us += stat.self_us;
        }
    }

    /// The folded-stack rendering: one `a;b;c <self-µs>` line per path
    /// with nonzero attributed self time, sorted by path. Feed to
    /// `flamegraph.pl`, `inferno-flamegraph`, or speedscope.
    pub fn folded(&self) -> String {
        let mut out = String::new();
        for (path, stat) in &self.frames {
            if stat.self_us > 0 {
                out.push_str(path);
                out.push(' ');
                out.push_str(&stat.self_us.to_string());
                out.push('\n');
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replay_attributes_self_and_child_time() {
        let mut p = Profiler::new();
        p.enter_at("prove", 0);
        p.enter_at("normalize", 10);
        p.exit_at(40); // normalize: 30µs
        p.enter_at("split", 50);
        p.exit_at(60); // split: 10µs
        p.exit_at(100); // prove: 100µs total, 60µs self

        let frames = p.frames();
        assert_eq!(frames["prove"].total_us, 100);
        assert_eq!(frames["prove"].self_us, 60);
        assert_eq!(frames["prove"].count, 1);
        assert_eq!(frames["prove;normalize"].total_us, 30);
        assert_eq!(frames["prove;normalize"].self_us, 30);
        assert_eq!(frames["prove;split"].total_us, 10);
    }

    #[test]
    fn folded_output_lists_paths_with_self_time() {
        let mut p = Profiler::new();
        p.enter_at("a", 0);
        p.enter_at("b", 0);
        p.exit_at(5);
        p.exit_at(5); // a has zero self time
        let folded = p.folded();
        assert_eq!(folded, "a;b 5\n", "zero-self frames are elided");
    }

    #[test]
    fn unbalanced_traces_degrade_gracefully() {
        let mut p = Profiler::new();
        p.exit_at(10); // exit with empty stack: ignored
        p.enter_at("left-open", 0);
        p.enter_at("inner", 5);
        p.close_all_at(20);
        assert_eq!(p.open_depth(), 0);
        assert_eq!(p.frames()["left-open"].total_us, 20);
        assert_eq!(p.frames()["left-open;inner"].total_us, 15);
    }

    #[test]
    fn merge_is_order_independent() {
        let build = |spans: &[(&str, u64, u64)]| {
            let mut p = Profiler::new();
            for (name, start, end) in spans {
                p.enter_at(name, *start);
                p.exit_at(*end);
            }
            p
        };
        let a = build(&[("x", 0, 10), ("y", 10, 30)]);
        let b = build(&[("x", 0, 50)]);

        let mut ab = Profiler::new();
        ab.merge(&a);
        ab.merge(&b);
        let mut ba = Profiler::new();
        ba.merge(&b);
        ba.merge(&a);
        assert_eq!(ab.frames(), ba.frames());
        assert_eq!(ab.frames()["x"].total_us, 60);
        assert_eq!(ab.frames()["x"].count, 2);
    }

    #[test]
    fn live_clock_scopes_nest() {
        let mut p = Profiler::new();
        p.scoped("outer", |p| {
            p.scoped("inner", |_| {
                std::thread::sleep(std::time::Duration::from_millis(2))
            });
        });
        let frames = p.frames();
        assert!(frames["outer;inner"].total_us >= 2_000);
        assert!(frames["outer"].total_us >= frames["outer;inner"].total_us);
    }
}
