//! The event vocabulary: spans, counters, gauges.
//!
//! Events deliberately carry owned strings: they are only constructed when
//! a sink is enabled, so the hot-path cost of a disabled [`crate::Obs`]
//! handle is one boolean test, not an allocation.

use crate::json::JsonValue;
use std::time::Duration;

/// One observability event.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A named span was opened (nesting is implied by order).
    SpanEnter {
        /// Span name, e.g. `"prove:inv1"`.
        name: String,
    },
    /// A named span was closed after `dur`.
    SpanExit {
        /// Span name (matches the corresponding [`Event::SpanEnter`]).
        name: String,
        /// Monotonic duration between enter and exit.
        dur: Duration,
    },
    /// A monotone counter was incremented by `delta`.
    Counter {
        /// Counter name, e.g. `"rewrite.fires:cpms-kx"`.
        name: String,
        /// Increment (counters never decrease).
        delta: u64,
    },
    /// A point-in-time measurement.
    Gauge {
        /// Gauge name, e.g. `"mc.frontier"`.
        name: String,
        /// The observed value.
        value: f64,
    },
}

impl Event {
    /// The event's name, whatever its kind.
    pub fn name(&self) -> &str {
        match self {
            Event::SpanEnter { name }
            | Event::SpanExit { name, .. }
            | Event::Counter { name, .. }
            | Event::Gauge { name, .. } => name,
        }
    }

    /// The JSONL rendering of this event, stamped with `t_us`
    /// (microseconds since the sink was created). One line, no newline.
    pub fn to_json(&self, t_us: u128) -> JsonValue {
        let mut fields: Vec<(String, JsonValue)> =
            vec![("t_us".into(), JsonValue::from_u128(t_us))];
        match self {
            Event::SpanEnter { name } => {
                fields.push(("type".into(), JsonValue::String("span_enter".into())));
                fields.push(("name".into(), JsonValue::String(name.clone())));
            }
            Event::SpanExit { name, dur } => {
                fields.push(("type".into(), JsonValue::String("span_exit".into())));
                fields.push(("name".into(), JsonValue::String(name.clone())));
                fields.push(("dur_us".into(), JsonValue::from_u128(dur.as_micros())));
            }
            Event::Counter { name, delta } => {
                fields.push(("type".into(), JsonValue::String("counter".into())));
                fields.push(("name".into(), JsonValue::String(name.clone())));
                fields.push(("delta".into(), JsonValue::from_u128(u128::from(*delta))));
            }
            Event::Gauge { name, value } => {
                fields.push(("type".into(), JsonValue::String("gauge".into())));
                fields.push(("name".into(), JsonValue::String(name.clone())));
                fields.push(("value".into(), JsonValue::Number(*value)));
            }
        }
        JsonValue::Object(fields)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    #[test]
    fn every_event_kind_renders_parseable_json() {
        let events = [
            Event::SpanEnter { name: "a".into() },
            Event::SpanExit {
                name: "a \"quoted\"".into(),
                dur: Duration::from_micros(17),
            },
            Event::Counter {
                name: "c\n".into(),
                delta: 3,
            },
            Event::Gauge {
                name: "g".into(),
                value: 0.25,
            },
        ];
        for e in &events {
            let line = e.to_json(42).to_string();
            let parsed = json::parse(&line).expect("line parses");
            assert_eq!(parsed.get("t_us").and_then(JsonValue::as_f64), Some(42.0));
            assert_eq!(
                parsed.get("name").and_then(JsonValue::as_str),
                Some(e.name())
            );
        }
    }
}
