//! The event vocabulary: spans, counters, gauges.
//!
//! Events deliberately carry owned strings: they are only constructed when
//! a sink is enabled, so the hot-path cost of a disabled [`crate::Obs`]
//! handle is one boolean test, not an allocation.

use crate::json::JsonValue;
use std::time::Duration;

/// One observability event.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A named span was opened (nesting is implied by order).
    SpanEnter {
        /// Span name, e.g. `"prove:inv1"`.
        name: String,
    },
    /// A named span was closed after `dur`.
    SpanExit {
        /// Span name (matches the corresponding [`Event::SpanEnter`]).
        name: String,
        /// Monotonic duration between enter and exit.
        dur: Duration,
    },
    /// A monotone counter was incremented by `delta`.
    Counter {
        /// Counter name, e.g. `"rewrite.fires:cpms-kx"`.
        name: String,
        /// Increment (counters never decrease).
        delta: u64,
    },
    /// A point-in-time measurement.
    Gauge {
        /// Gauge name, e.g. `"mc.frontier"`.
        name: String,
        /// The observed value.
        value: f64,
    },
}

impl Event {
    /// The event's name, whatever its kind.
    pub fn name(&self) -> &str {
        match self {
            Event::SpanEnter { name }
            | Event::SpanExit { name, .. }
            | Event::Counter { name, .. }
            | Event::Gauge { name, .. } => name,
        }
    }

    /// The JSONL rendering of this event, stamped with `t_us`
    /// (microseconds since the sink was created) and `tid` (the small
    /// per-process thread number from [`crate::sink::current_tid`], so a
    /// trace reader can pair span enters/exits per thread). One line, no
    /// newline.
    pub fn to_json(&self, t_us: u128, tid: u64) -> JsonValue {
        let mut fields: Vec<(String, JsonValue)> = vec![
            ("t_us".into(), JsonValue::from_u128(t_us)),
            ("tid".into(), JsonValue::from_u128(u128::from(tid))),
        ];
        match self {
            Event::SpanEnter { name } => {
                fields.push(("type".into(), JsonValue::String("span_enter".into())));
                fields.push(("name".into(), JsonValue::String(name.clone())));
            }
            Event::SpanExit { name, dur } => {
                fields.push(("type".into(), JsonValue::String("span_exit".into())));
                fields.push(("name".into(), JsonValue::String(name.clone())));
                fields.push(("dur_us".into(), JsonValue::from_u128(dur.as_micros())));
            }
            Event::Counter { name, delta } => {
                fields.push(("type".into(), JsonValue::String("counter".into())));
                fields.push(("name".into(), JsonValue::String(name.clone())));
                fields.push(("delta".into(), JsonValue::from_u128(u128::from(*delta))));
            }
            Event::Gauge { name, value } => {
                fields.push(("type".into(), JsonValue::String("gauge".into())));
                fields.push(("name".into(), JsonValue::String(name.clone())));
                fields.push(("value".into(), JsonValue::Number(*value)));
            }
        }
        JsonValue::Object(fields)
    }
}

/// An [`Event`] stamped with its capture time and originating thread —
/// the unit a trace file stores and the offline tools consume.
#[derive(Debug, Clone, PartialEq)]
pub struct TimedEvent {
    /// Microseconds since the sink (hence the run) started.
    pub t_us: u64,
    /// Small per-process thread number (see [`crate::sink::current_tid`]).
    pub tid: u64,
    /// The event itself.
    pub event: Event,
}

impl TimedEvent {
    /// The JSONL rendering (one line, no newline).
    pub fn to_json(&self) -> JsonValue {
        self.event.to_json(u128::from(self.t_us), self.tid)
    }

    /// Rebuild a timed event from a parsed trace line. Returns `None` for
    /// objects that are not an event (unknown `type`, missing fields) —
    /// the offline tools skip those lines rather than fail the whole
    /// trace. A missing `tid` (traces from older builds) reads as `0`.
    pub fn from_json(value: &JsonValue) -> Option<TimedEvent> {
        let field_u64 = |key: &str| value.get(key).and_then(JsonValue::as_f64).map(|v| v as u64);
        let name = value.get("name").and_then(JsonValue::as_str)?.to_string();
        let event = match value.get("type").and_then(JsonValue::as_str)? {
            "span_enter" => Event::SpanEnter { name },
            "span_exit" => Event::SpanExit {
                name,
                dur: Duration::from_micros(field_u64("dur_us")?),
            },
            "counter" => Event::Counter {
                name,
                delta: field_u64("delta")?,
            },
            "gauge" => Event::Gauge {
                name,
                value: value.get("value").and_then(JsonValue::as_f64)?,
            },
            _ => return None,
        };
        Some(TimedEvent {
            t_us: field_u64("t_us")?,
            tid: field_u64("tid").unwrap_or(0),
            event,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    #[test]
    fn every_event_kind_renders_parseable_json() {
        let events = [
            Event::SpanEnter { name: "a".into() },
            Event::SpanExit {
                name: "a \"quoted\"".into(),
                dur: Duration::from_micros(17),
            },
            Event::Counter {
                name: "c\n".into(),
                delta: 3,
            },
            Event::Gauge {
                name: "g".into(),
                value: 0.25,
            },
        ];
        for e in &events {
            let line = e.to_json(42, 1).to_string();
            let parsed = json::parse(&line).expect("line parses");
            assert_eq!(parsed.get("t_us").and_then(JsonValue::as_f64), Some(42.0));
            assert_eq!(parsed.get("tid").and_then(JsonValue::as_f64), Some(1.0));
            assert_eq!(
                parsed.get("name").and_then(JsonValue::as_str),
                Some(e.name())
            );
            let timed = TimedEvent::from_json(&parsed).expect("line round-trips");
            assert_eq!(timed.t_us, 42);
            assert_eq!(timed.tid, 1);
            assert_eq!(&timed.event, e);
        }
    }

    #[test]
    fn non_event_objects_are_skipped_not_errors() {
        let parsed = json::parse(r#"{"type":"comment","name":"x","t_us":1}"#).unwrap();
        assert!(TimedEvent::from_json(&parsed).is_none());
        let parsed = json::parse(r#"{"t_us":1}"#).unwrap();
        assert!(TimedEvent::from_json(&parsed).is_none());
    }
}
