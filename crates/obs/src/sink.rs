//! Event sinks and the [`Obs`] handle instrumented code holds.
//!
//! The design goal is that a disabled handle costs one boolean test per
//! call site: [`Obs`] caches `sink.enabled()` at construction, so hot
//! paths (the rewrite engine's inner loop) pay nothing measurable when
//! tracing is off.

use crate::event::{Event, TimedEvent};
use std::io::Write;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// A small, stable-per-thread process-local thread number, assigned in
/// order of first use starting from 1.
///
/// `std::thread::ThreadId` has no stable integer projection, and trace
/// consumers (Chrome trace events, folded stacks) want small integers to
/// pair span enters/exits per thread. Numbers are never reused within a
/// process; which worker gets which number depends on scheduling, so tids
/// are trace metadata only — never part of a verdict.
pub fn current_tid() -> u64 {
    static NEXT_TID: AtomicU64 = AtomicU64::new(1);
    thread_local! {
        static TID: u64 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
    }
    TID.with(|t| *t)
}

/// A destination for observability events.
///
/// Implementations must be cheap to call and internally synchronized:
/// instrumented components clone [`Obs`] handles freely.
pub trait EventSink: Send + Sync {
    /// Whether callers should bother constructing events at all.
    fn enabled(&self) -> bool {
        true
    }

    /// Record one event.
    fn record(&self, event: &Event);

    /// Flush buffered output, if any.
    fn flush(&self) {}

    /// How many events this sink has *dropped* (failed to record because
    /// of I/O errors, a poisoned writer, …). Observability is
    /// best-effort: a full disk must never abort a proof, but a run that
    /// silently lost trace events is worse than one that says so. Sinks
    /// that cannot fail return `0`.
    fn dropped_events(&self) -> u64 {
        0
    }
}

/// The sink that ignores everything; [`EventSink::enabled`] is `false`, so
/// instrumented code skips event construction entirely.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopSink;

impl EventSink for NoopSink {
    fn enabled(&self) -> bool {
        false
    }

    fn record(&self, _event: &Event) {}
}

/// An in-memory sink for tests, summaries, and in-process profiling.
///
/// Events are stamped with capture time and thread on the way in (see
/// [`RecordingSink::timed_events`]), and the buffer is **bounded**: once
/// `capacity` events are held, further events are counted as dropped
/// ([`EventSink::dropped_events`]) instead of growing the heap without
/// limit on a long profiled campaign. Summaries disclose the overflow the
/// same way they disclose sink I/O failures.
#[derive(Debug)]
pub struct RecordingSink {
    events: Mutex<Vec<TimedEvent>>,
    start: Instant,
    capacity: usize,
    dropped: AtomicU64,
}

impl Default for RecordingSink {
    fn default() -> Self {
        RecordingSink::new()
    }
}

impl RecordingSink {
    /// The default buffer bound: ~1M events, a few hundred MB worst-case
    /// — far above any test workload, low enough that an unattended
    /// profiled campaign cannot exhaust memory through its own telemetry.
    pub const DEFAULT_CAPACITY: usize = 1 << 20;

    /// An empty recorder with the default capacity.
    pub fn new() -> Self {
        RecordingSink::with_capacity(Self::DEFAULT_CAPACITY)
    }

    /// An empty recorder holding at most `capacity` events.
    pub fn with_capacity(capacity: usize) -> Self {
        RecordingSink {
            events: Mutex::new(Vec::new()),
            start: Instant::now(),
            capacity,
            dropped: AtomicU64::new(0),
        }
    }

    /// A snapshot of everything recorded so far, in order.
    pub fn events(&self) -> Vec<Event> {
        self.events
            .lock()
            .expect("recording sink poisoned")
            .iter()
            .map(|t| t.event.clone())
            .collect()
    }

    /// Like [`RecordingSink::events`], with each event's capture time
    /// (µs since the sink was created) and thread number — the same
    /// stamps a [`JsonlSink`] writes, for in-process trace export.
    pub fn timed_events(&self) -> Vec<TimedEvent> {
        self.events.lock().expect("recording sink poisoned").clone()
    }

    /// Drop all recorded events and reset the overflow counter.
    pub fn clear(&self) {
        self.events.lock().expect("recording sink poisoned").clear();
        self.dropped.store(0, Ordering::Relaxed);
    }
}

impl EventSink for RecordingSink {
    fn record(&self, event: &Event) {
        let t_us = u64::try_from(self.start.elapsed().as_micros()).unwrap_or(u64::MAX);
        let mut events = self.events.lock().expect("recording sink poisoned");
        if events.len() >= self.capacity {
            drop(events);
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        events.push(TimedEvent {
            t_us,
            tid: current_tid(),
            event: event.clone(),
        });
    }

    fn dropped_events(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

/// A sink that writes one JSON object per event, newline-delimited
/// (JSONL). Events are stamped with `t_us`, microseconds since the sink
/// was created. See README.md for the schema.
pub struct JsonlSink {
    out: Mutex<Box<dyn Write + Send>>,
    start: Instant,
    dropped: AtomicU64,
}

impl JsonlSink {
    /// Wrap any writer (a `File`, a `Vec<u8>` in tests, …).
    pub fn new(out: Box<dyn Write + Send>) -> Self {
        JsonlSink {
            out: Mutex::new(out),
            start: Instant::now(),
            dropped: AtomicU64::new(0),
        }
    }

    /// Open (create/truncate) `path` and write events to it, buffered.
    ///
    /// # Errors
    ///
    /// I/O errors from file creation.
    pub fn create(path: &std::path::Path) -> std::io::Result<Self> {
        let file = std::fs::File::create(path)?;
        Ok(JsonlSink::new(Box::new(std::io::BufWriter::new(file))))
    }
}

impl EventSink for JsonlSink {
    fn record(&self, event: &Event) {
        let t_us = self.start.elapsed().as_micros();
        let line = event.to_json(t_us, current_tid()).to_string();
        // Trace writing is best-effort: a full disk must not abort a
        // proof, and a writer poisoned by a panicking sibling is still a
        // writer (the buffered bytes are intact) — but every failure is
        // *counted*, so the run can report that its trace is incomplete.
        let mut out = self.out.lock().unwrap_or_else(|e| e.into_inner());
        if writeln!(out, "{line}").is_err() {
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn flush(&self) {
        let _ = self.out.lock().unwrap_or_else(|e| e.into_inner()).flush();
    }

    fn dropped_events(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

/// Fan out events to several sinks (e.g. a JSONL trace *and* an in-memory
/// recorder for the end-of-run summary).
pub struct TeeSink {
    sinks: Vec<Arc<dyn EventSink>>,
}

impl TeeSink {
    /// Combine `sinks`; the tee is enabled if any member is.
    pub fn new(sinks: Vec<Arc<dyn EventSink>>) -> Self {
        TeeSink { sinks }
    }
}

impl EventSink for TeeSink {
    fn enabled(&self) -> bool {
        self.sinks.iter().any(|s| s.enabled())
    }

    fn record(&self, event: &Event) {
        for sink in &self.sinks {
            if sink.enabled() {
                sink.record(event);
            }
        }
    }

    fn flush(&self) {
        for sink in &self.sinks {
            sink.flush();
        }
    }

    fn dropped_events(&self) -> u64 {
        self.sinks.iter().map(|s| s.dropped_events()).sum()
    }
}

/// The handle instrumented components hold.
///
/// Cloning is cheap (one `Arc` clone plus a copied boolean). The default
/// handle is the no-op sink.
#[derive(Clone)]
pub struct Obs {
    sink: Arc<dyn EventSink>,
    on: bool,
}

impl Default for Obs {
    fn default() -> Self {
        Obs::noop()
    }
}

impl std::fmt::Debug for Obs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Obs").field("enabled", &self.on).finish()
    }
}

impl Obs {
    /// A handle over the no-op sink (hot paths pay one boolean test).
    pub fn noop() -> Self {
        Obs {
            sink: Arc::new(NoopSink),
            on: false,
        }
    }

    /// A handle over `sink`.
    pub fn new(sink: Arc<dyn EventSink>) -> Self {
        let on = sink.enabled();
        Obs { sink, on }
    }

    /// Whether events will actually be recorded. Instrumented code should
    /// test this before building expensive event payloads.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.on
    }

    /// Record a counter increment.
    #[inline]
    pub fn counter(&self, name: &str, delta: u64) {
        if self.on {
            self.sink.record(&Event::Counter {
                name: name.to_string(),
                delta,
            });
        }
    }

    /// Record a gauge observation.
    #[inline]
    pub fn gauge(&self, name: &str, value: f64) {
        if self.on {
            self.sink.record(&Event::Gauge {
                name: name.to_string(),
                value,
            });
        }
    }

    /// Open a span; the returned guard records the exit (with monotonic
    /// duration) when dropped. Disabled handles return an inert guard.
    #[inline]
    pub fn span(&self, name: &str) -> SpanGuard {
        if self.on {
            self.sink.record(&Event::SpanEnter {
                name: name.to_string(),
            });
            SpanGuard {
                active: Some((self.sink.clone(), name.to_string(), Instant::now())),
            }
        } else {
            SpanGuard { active: None }
        }
    }

    /// Flush the underlying sink.
    pub fn flush(&self) {
        self.sink.flush();
    }

    /// Events the underlying sink failed to record (see
    /// [`EventSink::dropped_events`]). Nonzero means the trace is
    /// incomplete and any summary derived from it undercounts.
    pub fn dropped_events(&self) -> u64 {
        self.sink.dropped_events()
    }
}

/// RAII guard for a span opened with [`Obs::span`].
pub struct SpanGuard {
    active: Option<(Arc<dyn EventSink>, String, Instant)>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some((sink, name, start)) = self.active.take() {
            sink.record(&Event::SpanExit {
                name,
                dur: start.elapsed(),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    #[test]
    fn noop_handle_is_disabled_and_silent() {
        let obs = Obs::noop();
        assert!(!obs.enabled());
        obs.counter("x", 1);
        obs.gauge("y", 2.0);
        let _span = obs.span("z");
    }

    #[test]
    fn recording_sink_preserves_order_and_nesting() {
        let recorder = Arc::new(RecordingSink::new());
        let obs = Obs::new(recorder.clone());
        {
            let _outer = obs.span("outer");
            obs.counter("ticks", 2);
            {
                let _inner = obs.span("inner");
            }
        }
        let names: Vec<String> = recorder.events().iter().map(|e| e.name().into()).collect();
        assert_eq!(names, ["outer", "ticks", "inner", "inner", "outer"]);
        let kinds: Vec<bool> = recorder
            .events()
            .iter()
            .map(|e| matches!(e, Event::SpanExit { .. }))
            .collect();
        assert_eq!(kinds, [false, false, false, true, true]);
    }

    #[test]
    fn jsonl_sink_emits_one_valid_object_per_line() {
        let buffer: Arc<Mutex<Vec<u8>>> = Arc::new(Mutex::new(Vec::new()));
        struct Shared(Arc<Mutex<Vec<u8>>>);
        impl Write for Shared {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let sink = JsonlSink::new(Box::new(Shared(buffer.clone())));
        let obs = Obs::new(Arc::new(sink));
        {
            let _span = obs.span("s");
            obs.counter("c", 1);
        }
        obs.flush();
        let text = String::from_utf8(buffer.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        for line in lines {
            json::parse(line).expect("every line is valid JSON");
        }
    }

    #[test]
    fn tee_fans_out_to_enabled_members() {
        let a = Arc::new(RecordingSink::new());
        let b = Arc::new(RecordingSink::new());
        let tee = TeeSink::new(vec![a.clone(), Arc::new(NoopSink), b.clone()]);
        let obs = Obs::new(Arc::new(tee));
        obs.counter("n", 7);
        assert_eq!(a.events().len(), 1);
        assert_eq!(b.events().len(), 1);
    }

    /// A writer that fails every `write`, as a full disk would.
    struct FullDisk;
    impl Write for FullDisk {
        fn write(&mut self, _buf: &[u8]) -> std::io::Result<usize> {
            Err(std::io::Error::other("disk full"))
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn jsonl_sink_counts_dropped_events_instead_of_dying() {
        let obs = Obs::new(Arc::new(JsonlSink::new(Box::new(FullDisk))));
        assert_eq!(obs.dropped_events(), 0);
        obs.counter("a", 1);
        obs.gauge("b", 2.0);
        obs.flush();
        assert_eq!(obs.dropped_events(), 2, "every failed write is counted");
    }

    #[test]
    fn recording_sink_bounds_its_buffer_and_counts_overflow() {
        let recorder = Arc::new(RecordingSink::with_capacity(3));
        let obs = Obs::new(recorder.clone());
        for i in 0..5 {
            obs.counter(&format!("c{i}"), 1);
        }
        assert_eq!(recorder.events().len(), 3, "buffer stops at capacity");
        assert_eq!(obs.dropped_events(), 2, "overflow is disclosed");
        let names: Vec<String> = recorder.events().iter().map(|e| e.name().into()).collect();
        assert_eq!(names, ["c0", "c1", "c2"], "oldest events are kept");
        recorder.clear();
        assert_eq!(recorder.dropped_events(), 0, "clear resets the counter");
        obs.counter("again", 1);
        assert_eq!(recorder.events().len(), 1);
    }

    #[test]
    fn recording_sink_stamps_time_and_thread() {
        let recorder = Arc::new(RecordingSink::new());
        let obs = Obs::new(recorder.clone());
        obs.counter("here", 1);
        let obs2 = obs.clone();
        std::thread::spawn(move || obs2.counter("there", 1))
            .join()
            .unwrap();
        let timed = recorder.timed_events();
        assert_eq!(timed.len(), 2);
        assert_eq!(timed[0].tid, current_tid());
        assert_ne!(timed[0].tid, timed[1].tid, "threads get distinct tids");
        assert!(timed[0].t_us <= timed[1].t_us, "stamps are monotone");
    }

    #[test]
    fn tee_sums_dropped_events_across_members() {
        let healthy = Arc::new(RecordingSink::new());
        let failing = Arc::new(JsonlSink::new(Box::new(FullDisk)));
        let tee = TeeSink::new(vec![healthy.clone(), failing]);
        let obs = Obs::new(Arc::new(tee));
        obs.counter("n", 1);
        assert_eq!(obs.dropped_events(), 1);
        assert_eq!(healthy.events().len(), 1, "healthy members keep recording");
    }
}
