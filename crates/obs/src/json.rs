//! Hand-rolled JSON: escaping, rendering, and a small recursive-descent
//! parser.
//!
//! The observability layer must not pull serde into the dependency
//! closure of the kernel crates, and the build environment is offline, so
//! this module implements the 20% of JSON the trace format needs: objects,
//! arrays, strings, numbers, booleans, and null. The parser exists mainly
//! so tests (and downstream tools) can validate that every line of a
//! `.jsonl` trace round-trips.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (rendered minimally; integers stay integral).
    Number(f64),
    /// A string (escaped on render).
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object with insertion-ordered keys.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// A number from an unsigned 128-bit integer (saturating to f64).
    pub fn from_u128(v: u128) -> JsonValue {
        JsonValue::Number(v as f64)
    }

    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }
}

impl fmt::Display for JsonValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JsonValue::Null => write!(f, "null"),
            JsonValue::Bool(b) => write!(f, "{b}"),
            JsonValue::Number(n) => {
                if n.fract() == 0.0 && n.abs() < 9e15 {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n}")
                }
            }
            JsonValue::String(s) => {
                let mut out = String::with_capacity(s.len() + 2);
                escape_into(s, &mut out);
                write!(f, "{out}")
            }
            JsonValue::Array(items) => {
                write!(f, "[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, "]")
            }
            JsonValue::Object(fields) => {
                write!(f, "{{")?;
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    let mut key = String::with_capacity(k.len() + 2);
                    escape_into(k, &mut key);
                    write!(f, "{key}:{v}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

/// Append the JSON string literal for `s` (including surrounding quotes).
pub fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A JSON parse error with a byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parse one complete JSON value; trailing whitespace is allowed, trailing
/// garbage is an error.
///
/// # Errors
///
/// [`JsonError`] on malformed input.
pub fn parse(input: &str) -> Result<JsonValue, JsonError> {
    let bytes = input.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(err(pos, "trailing characters"));
    }
    Ok(value)
}

fn err(at: usize, message: &str) -> JsonError {
    JsonError {
        at,
        message: message.to_string(),
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, JsonError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(err(*pos, "unexpected end of input")),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(JsonValue::String(parse_string(bytes, pos)?)),
        Some(b't') => parse_keyword(bytes, pos, "true", JsonValue::Bool(true)),
        Some(b'f') => parse_keyword(bytes, pos, "false", JsonValue::Bool(false)),
        Some(b'n') => parse_keyword(bytes, pos, "null", JsonValue::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(bytes, pos),
        Some(_) => Err(err(*pos, "unexpected character")),
    }
}

fn parse_keyword(
    bytes: &[u8],
    pos: &mut usize,
    word: &str,
    value: JsonValue,
) -> Result<JsonValue, JsonError> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(err(*pos, "invalid keyword"))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, JsonError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && (bytes[*pos].is_ascii_digit() || matches!(bytes[*pos], b'.' | b'e' | b'E' | b'+' | b'-'))
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|_| err(start, "bad utf8"))?;
    text.parse::<f64>()
        .map(JsonValue::Number)
        .map_err(|_| err(start, "invalid number"))
}

/// Read the four hex digits of a `\u` escape starting at byte `at`.
fn parse_hex4(bytes: &[u8], at: usize) -> Result<u32, JsonError> {
    let hex = bytes
        .get(at..at + 4)
        .ok_or_else(|| err(at, "truncated \\u escape"))?;
    let hex = std::str::from_utf8(hex).map_err(|_| err(at, "bad \\u escape"))?;
    if !hex.bytes().all(|b| b.is_ascii_hexdigit()) {
        return Err(err(at, "bad \\u escape"));
    }
    u32::from_str_radix(hex, 16).map_err(|_| err(at, "bad \\u escape"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    debug_assert_eq!(bytes[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(err(*pos, "unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let code = parse_hex4(bytes, *pos + 1)?;
                        *pos += 4;
                        match code {
                            // A high surrogate must be completed by a
                            // `\uDC00..\uDFFF` escape immediately after;
                            // together they name one supplementary-plane
                            // character (UTF-16 in the wire format, one
                            // scalar in the decoded string).
                            0xD800..=0xDBFF => {
                                if bytes.get(*pos + 1..*pos + 3) != Some(b"\\u") {
                                    return Err(err(*pos, "lone high surrogate in \\u escape"));
                                }
                                let low = parse_hex4(bytes, *pos + 3)?;
                                if !(0xDC00..=0xDFFF).contains(&low) {
                                    return Err(err(*pos, "lone high surrogate in \\u escape"));
                                }
                                let scalar = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                out.push(
                                    char::from_u32(scalar)
                                        .ok_or_else(|| err(*pos, "bad surrogate pair"))?,
                                );
                                *pos += 6;
                            }
                            0xDC00..=0xDFFF => {
                                return Err(err(*pos, "lone low surrogate in \\u escape"));
                            }
                            _ => out.push(
                                char::from_u32(code).ok_or_else(|| err(*pos, "bad \\u escape"))?,
                            ),
                        }
                    }
                    _ => return Err(err(*pos, "invalid escape")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar.
                let rest =
                    std::str::from_utf8(&bytes[*pos..]).map_err(|_| err(*pos, "invalid utf8"))?;
                let c = rest.chars().next().ok_or_else(|| err(*pos, "empty"))?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, JsonError> {
    debug_assert_eq!(bytes[*pos], b'[');
    *pos += 1;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(JsonValue::Array(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(JsonValue::Array(items));
            }
            _ => return Err(err(*pos, "expected `,` or `]`")),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, JsonError> {
    debug_assert_eq!(bytes[*pos], b'{');
    *pos += 1;
    let mut fields = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(JsonValue::Object(fields));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(err(*pos, "expected object key"));
        }
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(err(*pos, "expected `:`"));
        }
        *pos += 1;
        let value = parse_value(bytes, pos)?;
        fields.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(JsonValue::Object(fields));
            }
            _ => return Err(err(*pos, "expected `,` or `}`")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_round_trips() {
        let cases = [
            "plain",
            "with \"quotes\" and \\backslash\\",
            "newline\nand tab\t",
            "control \u{1} char",
            "unicode: ∀x. φ(x) → ψ",
        ];
        for case in cases {
            let rendered = JsonValue::String(case.to_string()).to_string();
            let parsed = parse(&rendered).expect("parses");
            assert_eq!(parsed.as_str(), Some(case), "case {case:?}");
        }
    }

    #[test]
    fn objects_and_arrays_round_trip() {
        let value = JsonValue::Object(vec![
            ("a".into(), JsonValue::Number(1.0)),
            (
                "b".into(),
                JsonValue::Array(vec![
                    JsonValue::Bool(true),
                    JsonValue::Null,
                    JsonValue::Number(-2.5),
                ]),
            ),
            (
                "nested".into(),
                JsonValue::Object(vec![("k".into(), JsonValue::String("v".into()))]),
            ),
        ]);
        let rendered = value.to_string();
        assert_eq!(parse(&rendered).expect("parses"), value);
    }

    #[test]
    fn integers_render_without_a_fraction() {
        assert_eq!(JsonValue::Number(42.0).to_string(), "42");
        assert_eq!(JsonValue::Number(0.5).to_string(), "0.5");
    }

    #[test]
    fn malformed_input_is_rejected() {
        for bad in ["{", "[1,", "\"open", "{\"a\" 1}", "1 2", "tru"] {
            assert!(parse(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn every_control_char_escapes_and_round_trips() {
        for code in 0u32..0x20 {
            let c = char::from_u32(code).unwrap();
            let s = format!("a{c}b");
            let rendered = JsonValue::String(s.clone()).to_string();
            assert!(
                rendered.bytes().all(|b| b >= 0x20),
                "U+{code:04X} must not appear raw in {rendered:?}"
            );
            let parsed = parse(&rendered).expect("control escape parses");
            assert_eq!(parsed.as_str(), Some(s.as_str()), "U+{code:04X}");
        }
    }

    #[test]
    fn non_bmp_unicode_round_trips() {
        // Supplementary-plane characters, raw and as surrogate-pair
        // escapes: 𝔸 (U+1D538), 😀 (U+1F600).
        let raw = "math 𝔸 emoji 😀";
        let rendered = JsonValue::String(raw.to_string()).to_string();
        assert_eq!(parse(&rendered).unwrap().as_str(), Some(raw));

        let escaped = "\"\\ud835\\udd38 \\uD83D\\uDE00\"";
        assert_eq!(parse(escaped).unwrap().as_str(), Some("𝔸 😀"));
    }

    #[test]
    fn bmp_u_escapes_still_parse() {
        assert_eq!(parse("\"\\u2200x\"").unwrap().as_str(), Some("∀x"));
        assert_eq!(parse("\"\\u0041\"").unwrap().as_str(), Some("A"));
    }

    #[test]
    fn lone_surrogates_are_rejected() {
        let cases = [
            "\"\\uD800\"",        // lone high at end of string
            "\"\\uD800x\"",       // high followed by a plain char
            "\"\\uD800\\n\"",     // high followed by a non-\u escape
            "\"\\uDC00\"",        // lone low
            "\"\\uD800\\uD800\"", // high followed by another high
            "\"\\uD800\\u0041\"", // high completed by a non-surrogate
        ];
        for bad in cases {
            let e = parse(bad).expect_err(&format!("{bad} must be rejected"));
            assert!(
                e.message.contains("surrogate"),
                "{bad}: error names the surrogate problem, got {e}"
            );
        }
    }

    #[test]
    fn truncated_and_malformed_u_escapes_are_rejected() {
        for bad in [
            "\"\\u12\"",
            "\"\\u12g4\"",
            "\"\\u+123\"",
            "\"\\uD83D\\uDE\"",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should not parse");
        }
    }
}
