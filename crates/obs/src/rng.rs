//! A deterministic SplitMix64 generator.
//!
//! Benchmarks and property-style tests need reproducible randomness; the
//! offline build cannot depend on `rand`, and SplitMix64 (Steele,
//! Lea & Flood 2014) is four lines of arithmetic with excellent
//! statistical quality for this purpose. It is **not** cryptographic.

/// SplitMix64: a tiny, fast, seedable PRNG.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seeded generator; equal seeds yield equal streams.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A value in `0..bound` (`bound` must be nonzero). Uses the
    /// widening-multiply trick; the modulo bias is < 2⁻⁶⁴·bound,
    /// irrelevant for test generation.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "next_below(0)");
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// A usize in `0..bound`.
    pub fn next_index(&mut self, bound: usize) -> usize {
        self.next_below(bound as u64) as usize
    }

    /// A uniform boolean.
    pub fn next_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// A float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// A uniformly chosen element of `items` (must be non-empty).
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.next_index(items.len())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_seeds_give_equal_streams() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SplitMix64::new(43);
        assert_ne!(SplitMix64::new(42).next_u64(), c.next_u64());
    }

    #[test]
    fn bounded_draws_stay_in_range_and_cover() {
        let mut rng = SplitMix64::new(7);
        let mut seen = [false; 5];
        for _ in 0..200 {
            let v = rng.next_below(5);
            assert!(v < 5);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues drawn: {seen:?}");
    }

    #[test]
    fn floats_are_unit_interval() {
        let mut rng = SplitMix64::new(1);
        for _ in 0..100 {
            let f = rng.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
