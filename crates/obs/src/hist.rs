//! Log-bucketed histograms for latency distributions.
//!
//! The profiling layer needs percentiles (p50/p90/p99) over thousands of
//! span durations without keeping every sample. A [`Histogram`] buckets
//! values by their binary order of magnitude: bucket `i` holds values `v`
//! with `floor(log2(v)) == i` (value `0` lands in bucket 0 alongside
//! `1`). That bounds the relative quantile error by 2× — plenty for "is
//! this rule 40× hotter than that one" — while keeping the structure a
//! flat array of 64 counters that merges by element-wise addition.
//!
//! Merging is **associative and commutative**: folding worker-pool
//! histograms in any order yields identical buckets, hence identical
//! percentiles. That property is what lets the prover merge per-worker
//! observations without breaking the jobs-invariance contract, and it is
//! pinned by the tests below.

use std::time::Duration;

/// Number of buckets: one per possible `floor(log2(v))` of a `u64`.
const BUCKETS: usize = 64;

/// A mergeable log₂-bucketed histogram over `u64` samples (microseconds,
/// by convention, but the structure is unit-agnostic).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; BUCKETS],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// The bucket index for `value`: `floor(log2(max(value, 1)))`.
    fn bucket_of(value: u64) -> usize {
        (63 - (value | 1).leading_zeros()) as usize
    }

    /// Record one sample.
    pub fn record(&mut self, value: u64) {
        self.buckets[Self::bucket_of(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.max = self.max.max(value);
    }

    /// Record a duration as whole microseconds.
    pub fn record_duration(&mut self, dur: Duration) {
        self.record(u64::try_from(dur.as_micros()).unwrap_or(u64::MAX));
    }

    /// Fold `other` into `self` (element-wise bucket addition).
    ///
    /// Associative and commutative: any merge order over any grouping of
    /// the same samples produces the same histogram.
    pub fn merge(&mut self, other: &Histogram) {
        for (b, o) in self.buckets.iter_mut().zip(&other.buckets) {
            *b += o;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// The largest recorded sample, exact (`0` when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean of the samples (`0` when empty).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// The estimated `q`-quantile (`q` in `[0, 1]`), as the upper bound
    /// of the bucket containing the `ceil(q · count)`-th smallest sample
    /// — an overestimate by at most 2×. Returns `0` for an empty
    /// histogram. The estimate never exceeds the exact [`Histogram::max`].
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        // The rank of the sample the quantile asks for, 1-based.
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                // Upper bound of bucket i is 2^(i+1) - 1; clamp to the
                // exact max so p99 never reports past the worst sample.
                let upper = if i >= 63 { u64::MAX } else { (2u64 << i) - 1 };
                return upper.min(self.max);
            }
        }
        self.max
    }

    /// Median estimate (see [`Histogram::quantile`]).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th-percentile estimate.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th-percentile estimate.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }
}

/// Render a microsecond quantity human-readably (`17µs`, `3.2ms`, `1.75s`).
pub fn format_us(us: u64) -> String {
    if us < 1_000 {
        format!("{us}µs")
    } else if us < 1_000_000 {
        format!("{:.1}ms", us as f64 / 1_000.0)
    } else {
        format!("{:.2}s", us as f64 / 1_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SplitMix64;

    #[test]
    fn empty_histogram_reports_zeroes() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.p50(), 0);
        assert_eq!(h.p99(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0);
    }

    #[test]
    fn buckets_follow_binary_magnitude() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 0);
        assert_eq!(Histogram::bucket_of(2), 1);
        assert_eq!(Histogram::bucket_of(3), 1);
        assert_eq!(Histogram::bucket_of(4), 2);
        assert_eq!(Histogram::bucket_of(1023), 9);
        assert_eq!(Histogram::bucket_of(1024), 10);
        assert_eq!(Histogram::bucket_of(u64::MAX), 63);
    }

    #[test]
    fn quantiles_are_bucket_upper_bounds_clamped_to_max() {
        let mut h = Histogram::new();
        for v in [3, 5, 90] {
            h.record(v);
        }
        // rank(p50) = 2 → the 5 sample, bucket 2, upper bound 7.
        assert_eq!(h.p50(), 7);
        // rank(p99) = 3 → the 90 sample, bucket 6 upper bound 127,
        // clamped to the exact max.
        assert_eq!(h.p99(), 90);
        assert_eq!(h.max(), 90);
        assert_eq!(h.mean(), 32);
    }

    #[test]
    fn quantile_overestimates_by_at_most_two_x() {
        let mut rng = SplitMix64::new(7);
        let mut h = Histogram::new();
        let mut samples = Vec::new();
        for _ in 0..1000 {
            let v = rng.next_u64() % 1_000_000;
            samples.push(v);
            h.record(v);
        }
        samples.sort_unstable();
        for q in [0.5, 0.9, 0.99] {
            let rank = ((q * samples.len() as f64).ceil() as usize).max(1);
            let exact = samples[rank - 1];
            let est = h.quantile(q);
            assert!(est >= exact, "q={q}: estimate {est} below exact {exact}");
            assert!(
                est <= exact.saturating_mul(2).max(1),
                "q={q}: estimate {est} beyond 2× exact {exact}"
            );
        }
    }

    /// Satellite: merge order never changes any percentile. Split one
    /// sample stream into worker shards, merge the shards in several
    /// orders and groupings, and require bit-identical histograms.
    #[test]
    fn merge_is_associative_and_commutative() {
        let mut rng = SplitMix64::new(42);
        let shards: Vec<Histogram> = (0..5)
            .map(|_| {
                let mut h = Histogram::new();
                for _ in 0..200 {
                    h.record(rng.next_u64() % 100_000);
                }
                h
            })
            .collect();

        // Left fold: ((((a·b)·c)·d)·e)
        let mut left = Histogram::new();
        for s in &shards {
            left.merge(s);
        }
        // Right fold: a·(b·(c·(d·e)))
        let mut right = Histogram::new();
        for s in shards.iter().rev() {
            right.merge(s);
        }
        // Balanced tree: (a·b)·((c·d)·e)
        let mut ab = shards[0].clone();
        ab.merge(&shards[1]);
        let mut cd = shards[2].clone();
        cd.merge(&shards[3]);
        cd.merge(&shards[4]);
        ab.merge(&cd);

        assert_eq!(left, right, "fold direction must not matter");
        assert_eq!(left, ab, "grouping must not matter");
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(left.quantile(q), right.quantile(q));
            assert_eq!(left.quantile(q), ab.quantile(q));
        }
        assert_eq!(left.count(), 1000);
    }

    #[test]
    fn format_us_picks_sane_units() {
        assert_eq!(format_us(17), "17µs");
        assert_eq!(format_us(3_200), "3.2ms");
        assert_eq!(format_us(1_750_000), "1.75s");
    }
}
