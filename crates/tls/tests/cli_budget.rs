//! `tls-prove` budget flags end-to-end: a starved run must exit nonzero
//! with a message naming the limit and the offending term — never die
//! with a panic or report success.

use std::process::Command;

fn run_tls_prove(args: &[&str]) -> (Option<i32>, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_tls-prove"))
        .args(args)
        .output()
        .expect("tls-prove runs");
    let text = format!(
        "{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    (out.status.code(), text)
}

#[test]
fn fuel_exhaustion_names_the_term_and_limit_and_exits_one() {
    let (code, text) = run_tls_prove(&["lem-src-honest", "--fuel", "64", "--jobs", "2"]);
    assert_eq!(code, Some(1), "starved campaign must fail; output:\n{text}");
    assert!(
        text.contains("fuel exhausted (limit 64)"),
        "message names the exhausted limit:\n{text}"
    );
    assert!(
        text.contains("while normalizing `"),
        "message names the offending term:\n{text}"
    );
    assert!(
        text.contains("OPEN"),
        "obligations are open, not absent:\n{text}"
    );
}

#[test]
fn expired_deadline_skips_obligations_and_exits_one() {
    let (code, text) = run_tls_prove(&["lem-src-honest", "--deadline-ms", "1"]);
    assert_eq!(code, Some(1), "expired deadline must fail; output:\n{text}");
    assert!(
        text.contains("deadline exceeded"),
        "message names the deadline stop:\n{text}"
    );
}
