//! `tls-prove` signal-drain end-to-end: SIGINT/SIGTERM checkpoint, then
//! exit 130.
//!
//! The contract pinned here: a termination signal mid-campaign does not
//! kill the process where it stands. The prover drains cooperatively
//! (the signal cancels the shared budget token), the obligation ledger
//! keeps its last checkpoint, the exit code is **130** — distinct from
//! "failed" (1) and "usage" (2) — and the snapshot left behind is valid
//! and resumable.

use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use equitls_persist::{peek_meta, signal, SnapshotKind};

fn tmp_snapshot(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("equitls_sig_{}_{name}.snap", std::process::id()))
}

/// Start a full `--all` campaign (long enough in a debug build that the
/// signal always lands mid-run) checkpointing to `path`.
fn spawn_campaign(path: &Path) -> Child {
    Command::new(env!("CARGO_BIN_EXE_tls-prove"))
        .args(["--all", "--checkpoint", path.to_str().expect("utf-8 path")])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("tls-prove spawns")
}

/// Wait until the campaign has written its first ledger checkpoint — the
/// signal must interrupt a run that already has progress worth keeping.
fn wait_for_checkpoint(path: &Path, child: &mut Child) {
    let deadline = Instant::now() + Duration::from_secs(120);
    while !path.exists() {
        assert!(
            child.try_wait().expect("poll child").is_none(),
            "campaign must still be running when the checkpoint appears"
        );
        assert!(
            Instant::now() < deadline,
            "campaign never wrote a checkpoint"
        );
        std::thread::sleep(Duration::from_millis(25));
    }
}

fn signal_and_reap(child: Child, signal_flag: &str) -> (Option<i32>, String) {
    let pid = child.id().to_string();
    let status = Command::new("kill")
        .args([signal_flag, &pid])
        .status()
        .expect("kill runs");
    assert!(status.success(), "kill {signal_flag} {pid} delivered");
    let out = child.wait_with_output().expect("campaign exits");
    let text = format!(
        "{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    (out.status.code(), text)
}

#[test]
fn sigint_drains_checkpoints_and_exits_130() {
    let path = tmp_snapshot("sigint");
    let _ = std::fs::remove_file(&path);
    let mut child = spawn_campaign(&path);
    wait_for_checkpoint(&path, &mut child);
    let (code, text) = signal_and_reap(child, "-INT");

    assert_eq!(
        code,
        Some(signal::TERM_EXIT_CODE),
        "signal-drain exits 130; output:\n{text}"
    );
    assert!(
        text.contains("campaign drained"),
        "drain is announced:\n{text}"
    );
    assert!(
        text.contains("resume with --resume"),
        "the operator is told how to continue:\n{text}"
    );
    assert!(!text.contains("panicked"), "never a panic:\n{text}");

    // The ledger left behind is a valid prover snapshot, not torn state.
    let meta = peek_meta(&path).expect("checkpoint is a readable snapshot");
    assert_eq!(meta.kind, SnapshotKind::ProverLedger);

    // And it actually resumes: a follow-up single-property run accepts
    // the snapshot and completes.
    let out = Command::new(env!("CARGO_BIN_EXE_tls-prove"))
        .args([
            "lem-src-honest",
            "--resume",
            "--checkpoint",
            path.to_str().expect("utf-8 path"),
        ])
        .output()
        .expect("resume run");
    let text = format!(
        "{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    assert_eq!(
        out.status.code(),
        Some(0),
        "resume from the drained checkpoint proves; output:\n{text}"
    );
    let _ = std::fs::remove_file(&path);
}

#[test]
fn sigterm_drains_checkpoints_and_exits_130() {
    let path = tmp_snapshot("sigterm");
    let _ = std::fs::remove_file(&path);
    let mut child = spawn_campaign(&path);
    wait_for_checkpoint(&path, &mut child);
    let (code, text) = signal_and_reap(child, "-TERM");

    assert_eq!(
        code,
        Some(signal::TERM_EXIT_CODE),
        "SIGTERM drains exactly like SIGINT; output:\n{text}"
    );
    assert!(
        text.contains("campaign drained"),
        "drain is announced:\n{text}"
    );
    assert!(!text.contains("panicked"), "never a panic:\n{text}");
    let meta = peek_meta(&path).expect("checkpoint is a readable snapshot");
    assert_eq!(meta.kind, SnapshotKind::ProverLedger);
    let _ = std::fs::remove_file(&path);
}
