//! `tls-prove` checkpoint flags end-to-end.
//!
//! Two guarantees are pinned here:
//!
//! 1. **happy path** — a campaign checkpointed to a ledger and then
//!    `--resume`d completes with the same verdict and, under `--metrics`,
//!    announces the resume (snapshot path, age, skipped obligations);
//! 2. **corruption** — a flipped byte, a truncation, or a wrong version
//!    header makes `--resume` exit 2 with a typed message; the process
//!    never panics and never "resumes" from garbage.

use std::path::PathBuf;
use std::process::Command;

fn run_tls_prove(args: &[&str]) -> (Option<i32>, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_tls-prove"))
        .args(args)
        .output()
        .expect("tls-prove runs");
    let text = format!(
        "{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    (out.status.code(), text)
}

fn tmp_snapshot(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("equitls_cli_{}_{name}.snap", std::process::id()))
}

/// Write a cheap but *valid* ledger snapshot: a fuel-starved run exits 1
/// (obligations open) yet still checkpoints every obligation outcome.
fn write_valid_snapshot(path: &PathBuf) {
    let _ = std::fs::remove_file(path);
    let (code, text) = run_tls_prove(&[
        "lem-src-honest",
        "--fuel",
        "64",
        "--checkpoint",
        path.to_str().expect("utf-8 temp path"),
    ]);
    assert_eq!(code, Some(1), "starved seed run fails; output:\n{text}");
    assert!(path.exists(), "seed run leaves a snapshot behind");
}

#[test]
fn resume_without_checkpoint_is_a_usage_error() {
    let (code, text) = run_tls_prove(&["lem-src-honest", "--resume"]);
    assert_eq!(code, Some(2), "usage error exits 2; output:\n{text}");
    assert!(
        text.contains("--resume needs --checkpoint"),
        "message explains the missing flag:\n{text}"
    );
}

#[test]
fn resume_from_missing_snapshot_exits_two_with_a_typed_error() {
    let path = tmp_snapshot("missing");
    let _ = std::fs::remove_file(&path);
    let (code, text) = run_tls_prove(&[
        "lem-src-honest",
        "--resume",
        "--checkpoint",
        path.to_str().expect("utf-8 temp path"),
    ]);
    assert_eq!(code, Some(2), "missing snapshot exits 2; output:\n{text}");
    assert!(
        text.contains("cannot resume from"),
        "message names the snapshot problem:\n{text}"
    );
    assert!(!text.contains("panicked"), "never a panic:\n{text}");
}

#[test]
fn flipped_byte_is_a_checksum_error_not_a_garbage_resume() {
    let path = tmp_snapshot("byteflip");
    write_valid_snapshot(&path);
    let mut bytes = std::fs::read(&path).expect("snapshot readable");
    // Flip a payload byte, well past the 29-byte header: only the CRC can
    // catch this.
    let i = 40.min(bytes.len() - 1);
    bytes[i] ^= 0xFF;
    std::fs::write(&path, &bytes).expect("rewrite snapshot");
    let (code, text) = run_tls_prove(&[
        "lem-src-honest",
        "--resume",
        "--checkpoint",
        path.to_str().expect("utf-8 temp path"),
    ]);
    assert_eq!(code, Some(2), "corrupt snapshot exits 2; output:\n{text}");
    assert!(
        text.contains("checksum"),
        "message names the checksum mismatch:\n{text}"
    );
    assert!(!text.contains("panicked"), "never a panic:\n{text}");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn truncated_snapshot_is_a_typed_error() {
    let path = tmp_snapshot("truncated");
    write_valid_snapshot(&path);
    let bytes = std::fs::read(&path).expect("snapshot readable");
    std::fs::write(&path, &bytes[..bytes.len() / 2]).expect("truncate snapshot");
    let (code, text) = run_tls_prove(&[
        "lem-src-honest",
        "--resume",
        "--checkpoint",
        path.to_str().expect("utf-8 temp path"),
    ]);
    assert_eq!(code, Some(2), "truncated snapshot exits 2; output:\n{text}");
    assert!(
        text.contains("truncated"),
        "message names the truncation:\n{text}"
    );
    assert!(!text.contains("panicked"), "never a panic:\n{text}");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn wrong_version_header_is_a_typed_error() {
    let path = tmp_snapshot("version");
    write_valid_snapshot(&path);
    let mut bytes = std::fs::read(&path).expect("snapshot readable");
    // Bytes 4..8 are the little-endian format version.
    bytes[4..8].copy_from_slice(&99u32.to_le_bytes());
    std::fs::write(&path, &bytes).expect("rewrite snapshot");
    let (code, text) = run_tls_prove(&[
        "lem-src-honest",
        "--resume",
        "--checkpoint",
        path.to_str().expect("utf-8 temp path"),
    ]);
    assert_eq!(code, Some(2), "future version exits 2; output:\n{text}");
    assert!(
        text.contains("version"),
        "message names the unsupported version:\n{text}"
    );
    assert!(!text.contains("panicked"), "never a panic:\n{text}");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn checkpointed_then_resumed_campaign_announces_the_resume() {
    let path = tmp_snapshot("happy");
    let _ = std::fs::remove_file(&path);
    let (code, text) = run_tls_prove(&[
        "lem-src-honest",
        "--checkpoint",
        path.to_str().expect("utf-8 temp path"),
    ]);
    assert_eq!(code, Some(0), "first run proves; output:\n{text}");
    assert!(path.exists(), "ledger snapshot written");

    let (code, text) = run_tls_prove(&[
        "lem-src-honest",
        "--resume",
        "--metrics",
        "--checkpoint",
        path.to_str().expect("utf-8 temp path"),
    ]);
    assert_eq!(code, Some(0), "resumed run proves; output:\n{text}");
    assert!(
        text.contains("resumed from checkpoint"),
        "--metrics announces the resume:\n{text}"
    );
    assert!(
        text.contains("snapshot age"),
        "resume line reports the snapshot age:\n{text}"
    );
    // Every obligation (init + 27 transitions) was already proved, so the
    // whole campaign is spliced from the ledger.
    assert!(
        text.contains("28 proved obligation(s) skipped"),
        "all 28 obligations come from the ledger:\n{text}"
    );
    assert!(text.contains("PROVED"), "verdict unchanged:\n{text}");
    let _ = std::fs::remove_file(&path);
}
