//! Property-based tests of the concrete model's invariants:
//! the intruder's knowledge is monotone and idempotent, the network only
//! grows, and honest transitions never forge creators.

use equitls_tls::concrete::*;
use proptest::prelude::*;

fn prin_strategy() -> impl Strategy<Value = Prin> {
    (0u8..5).prop_map(Prin)
}

fn pms_strategy() -> impl Strategy<Value = Pms> {
    (prin_strategy(), prin_strategy(), 0u8..4).prop_map(|(c, s, x)| Pms {
        client: c,
        server: s,
        secret: Secret(x),
    })
}

fn body_strategy() -> impl Strategy<Value = Body> {
    prop_oneof![
        (0u8..4, 0u8..4).prop_map(|(r, l)| Body::Ch {
            rand: Rand(r),
            list: ChoiceList(l | 1),
        }),
        (0u8..4, 0u8..2, 0u8..2).prop_map(|(r, s, c)| Body::Sh {
            rand: Rand(r),
            sid: Sid(s),
            choice: Choice(c),
        }),
        prin_strategy().prop_map(|p| Body::Ct {
            cert: Cert::genuine(p)
        }),
        (prin_strategy(), pms_strategy()).prop_map(|(k, pms)| Body::Kx { key_of: k, pms }),
        (prin_strategy(), pms_strategy(), 0u8..4, 0u8..4).prop_map(|(p, pms, r1, r2)| {
            Body::Sf {
                key: SymKey {
                    prin: p,
                    pms,
                    r1: Rand(r1),
                    r2: Rand(r2),
                },
                hash: FinHash {
                    kind: FinKind::Server,
                    a: pms.client,
                    b: pms.server,
                    sid: Sid(0),
                    list: Some(ChoiceList(1)),
                    choice: Choice(0),
                    r1: Rand(r1),
                    r2: Rand(r2),
                    pms,
                },
            }
        }),
    ]
}

fn msg_strategy() -> impl Strategy<Value = Msg> {
    (prin_strategy(), prin_strategy(), prin_strategy(), body_strategy())
        .prop_map(|(crt, src, dst, body)| Msg { crt, src, dst, body })
}

fn state_strategy() -> impl Strategy<Value = State> {
    proptest::collection::vec(msg_strategy(), 0..8).prop_map(|msgs| {
        let mut s = State::new();
        for m in msgs {
            s = s.send(m);
        }
        s
    })
}

fn peers() -> Vec<Prin> {
    (1..5).map(Prin).collect()
}

proptest! {
    /// Knowledge is monotone: more messages, no less knowledge.
    #[test]
    fn knowledge_is_monotone(state in state_strategy(), extra in msg_strategy()) {
        let k0 = Knowledge::glean(&state, &[Secret(9)], &peers());
        let k1 = Knowledge::glean(&state.send(extra), &[Secret(9)], &peers());
        prop_assert!(k0.pms.is_subset(&k1.pms));
        prop_assert!(k0.sigs.is_subset(&k1.sigs));
        prop_assert!(k0.epms.is_subset(&k1.epms));
        prop_assert!(k0.ecfin.is_subset(&k1.ecfin));
        prop_assert!(k0.esfin.is_subset(&k1.esfin));
    }

    /// Gleaning is a pure function of the network: idempotent.
    #[test]
    fn knowledge_is_idempotent(state in state_strategy()) {
        let k0 = Knowledge::glean(&state, &[Secret(9)], &peers());
        let k1 = Knowledge::glean(&state, &[Secret(9)], &peers());
        prop_assert_eq!(k0, k1);
    }

    /// Every transition only grows the network (messages are never
    /// deleted, §4.3) and preserves messages' creator fields.
    #[test]
    fn transitions_grow_the_network(state in state_strategy()) {
        let scope = Scope::mitchell();
        for step in successors(&state, &scope) {
            prop_assert!(
                state.network.is_subset(&step.state.network),
                "step {} removed messages",
                step.label
            );
            // At most one new message per step.
            prop_assert!(step.state.network.len() <= state.network.len() + 1);
        }
    }

    /// Honest transitions never produce a message whose creator differs
    /// from its seeming sender; only intruder fakes do.
    #[test]
    fn only_fakes_forge_the_sender(state in state_strategy()) {
        let scope = Scope::mitchell();
        for step in successors(&state, &scope) {
            let new_msgs: Vec<&Msg> = step
                .state
                .network
                .difference(&state.network)
                .collect();
            for m in new_msgs {
                if step.label.starts_with("fake") {
                    prop_assert!(m.crt.is_intruder(), "{}: {m}", step.label);
                } else {
                    prop_assert_eq!(m.crt, m.src, "{}: {}", step.label, m);
                }
            }
        }
    }

    /// PMS secrecy is locally checkable: if no kx under the intruder's key
    /// mentions a given honest pms, gleaning never knows it.
    #[test]
    fn secrecy_depends_only_on_kx_to_intruder(state in state_strategy(), pms in pms_strategy()) {
        prop_assume!(pms.client.is_trustable());
        let leaked = state.messages().any(|m| matches!(m.body, Body::Kx { key_of, pms: p }
            if key_of == Prin::INTRUDER && p == pms));
        let k = Knowledge::glean(&state, &[], &peers());
        prop_assert_eq!(k.pms.contains(&pms), leaked);
    }
}
