//! Randomized tests of the concrete model's invariants:
//! the intruder's knowledge is monotone and idempotent, the network only
//! grows, and honest transitions never forge creators.
//!
//! Generation is SplitMix64-seeded (the offline build cannot depend on
//! proptest), so every run covers the same reproducible case set.

use equitls_obs::rng::SplitMix64;
use equitls_tls::concrete::*;

const CASES: usize = 100;

fn gen_prin(rng: &mut SplitMix64) -> Prin {
    Prin(rng.next_below(5) as u8)
}

fn gen_pms(rng: &mut SplitMix64) -> Pms {
    Pms {
        client: gen_prin(rng),
        server: gen_prin(rng),
        secret: Secret(rng.next_below(4) as u8),
    }
}

fn gen_body(rng: &mut SplitMix64) -> Body {
    match rng.next_below(5) {
        0 => Body::Ch {
            rand: Rand(rng.next_below(4) as u8),
            list: ChoiceList(rng.next_below(4) as u8 | 1),
        },
        1 => Body::Sh {
            rand: Rand(rng.next_below(4) as u8),
            sid: Sid(rng.next_below(2) as u8),
            choice: Choice(rng.next_below(2) as u8),
        },
        2 => Body::Ct {
            cert: Cert::genuine(gen_prin(rng)),
        },
        3 => Body::Kx {
            key_of: gen_prin(rng),
            pms: gen_pms(rng),
        },
        _ => {
            let p = gen_prin(rng);
            let pms = gen_pms(rng);
            let r1 = Rand(rng.next_below(4) as u8);
            let r2 = Rand(rng.next_below(4) as u8);
            Body::Sf {
                key: SymKey {
                    prin: p,
                    pms,
                    r1,
                    r2,
                },
                hash: FinHash {
                    kind: FinKind::Server,
                    a: pms.client,
                    b: pms.server,
                    sid: Sid(0),
                    list: Some(ChoiceList(1)),
                    choice: Choice(0),
                    r1,
                    r2,
                    pms,
                },
            }
        }
    }
}

fn gen_msg(rng: &mut SplitMix64) -> Msg {
    Msg {
        crt: gen_prin(rng),
        src: gen_prin(rng),
        dst: gen_prin(rng),
        body: gen_body(rng),
    }
}

fn gen_state(rng: &mut SplitMix64) -> State {
    let n = rng.next_below(8);
    let mut s = State::new();
    for _ in 0..n {
        s = s.send(gen_msg(rng));
    }
    s
}

fn peers() -> Vec<Prin> {
    (1..5).map(Prin).collect()
}

/// Knowledge is monotone: more messages, no less knowledge.
#[test]
fn knowledge_is_monotone() {
    let mut rng = SplitMix64::new(0x715A);
    for case in 0..CASES {
        let state = gen_state(&mut rng);
        let extra = gen_msg(&mut rng);
        let k0 = Knowledge::glean(&state, &[Secret(9)], &peers());
        let k1 = Knowledge::glean(&state.send(extra), &[Secret(9)], &peers());
        assert!(k0.pms.is_subset(&k1.pms), "case {case}");
        assert!(k0.sigs.is_subset(&k1.sigs), "case {case}");
        assert!(k0.epms.is_subset(&k1.epms), "case {case}");
        assert!(k0.ecfin.is_subset(&k1.ecfin), "case {case}");
        assert!(k0.esfin.is_subset(&k1.esfin), "case {case}");
    }
}

/// Gleaning is a pure function of the network: idempotent.
#[test]
fn knowledge_is_idempotent() {
    let mut rng = SplitMix64::new(0x715B);
    for case in 0..CASES {
        let state = gen_state(&mut rng);
        let k0 = Knowledge::glean(&state, &[Secret(9)], &peers());
        let k1 = Knowledge::glean(&state, &[Secret(9)], &peers());
        assert_eq!(k0, k1, "case {case}");
    }
}

/// Every transition only grows the network (messages are never
/// deleted, §4.3) and preserves messages' creator fields.
#[test]
fn transitions_grow_the_network() {
    let mut rng = SplitMix64::new(0x715C);
    for case in 0..CASES {
        let state = gen_state(&mut rng);
        let scope = Scope::mitchell();
        for step in successors(&state, &scope) {
            assert!(
                state.network.is_subset(&step.state.network),
                "case {case}: step {} removed messages",
                step.label
            );
            // At most one new message per step.
            assert!(
                step.state.network.len() <= state.network.len() + 1,
                "case {case}"
            );
        }
    }
}

/// Honest transitions never produce a message whose creator differs
/// from its seeming sender; only intruder fakes do.
#[test]
fn only_fakes_forge_the_sender() {
    let mut rng = SplitMix64::new(0x715D);
    for case in 0..CASES {
        let state = gen_state(&mut rng);
        let scope = Scope::mitchell();
        for step in successors(&state, &scope) {
            let new_msgs: Vec<&Msg> = step.state.network.difference(&state.network).collect();
            for m in new_msgs {
                if step.label.starts_with("fake") {
                    assert!(m.crt.is_intruder(), "case {case}: {}: {m}", step.label);
                } else {
                    assert_eq!(m.crt, m.src, "case {case}: {}: {m}", step.label);
                }
            }
        }
    }
}

/// PMS secrecy is locally checkable: if no kx under the intruder's key
/// mentions a given honest pms, gleaning never knows it.
#[test]
fn secrecy_depends_only_on_kx_to_intruder() {
    let mut rng = SplitMix64::new(0x715E);
    let mut checked = 0;
    for case in 0..CASES * 2 {
        let state = gen_state(&mut rng);
        let pms = gen_pms(&mut rng);
        if !pms.client.is_trustable() {
            continue;
        }
        checked += 1;
        let leaked = state.messages().any(|m| {
            matches!(m.body, Body::Kx { key_of, pms: p }
            if key_of == Prin::INTRUDER && p == pms)
        });
        let k = Knowledge::glean(&state, &[], &peers());
        assert_eq!(k.pms.contains(&pms), leaked, "case {case}");
    }
    assert!(checked >= CASES / 2, "too few trustable cases: {checked}");
}
