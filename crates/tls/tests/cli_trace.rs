//! End-to-end tests for the `tls-trace` binary: the regression-diff exit
//! codes (the acceptance gate for perf PRs), plus summarize/export smoke
//! on synthetic fixtures.

use std::path::PathBuf;
use std::process::{Command, Output};

fn tls_trace(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_tls-trace"))
        .args(args)
        .output()
        .expect("tls-trace runs")
}

/// A fresh fixture path under the system temp dir.
fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("equitls_trace_{}_{name}", std::process::id()))
}

/// A synthetic single-thread trace: two `prover.obligation:base` span
/// round-trips plus a per-rule time counter, with every span total scaled
/// by `scale_us` so fixtures can model slowdowns.
fn write_fixture(name: &str, scale_us: u64) -> PathBuf {
    let span = "prover.obligation:base";
    let mut lines = String::new();
    let mut t = 0u64;
    for _ in 0..2 {
        lines.push_str(&format!(
            r#"{{"t_us":{t},"tid":1,"type":"span_enter","name":"{span}"}}"#
        ));
        lines.push('\n');
        t += scale_us;
        lines.push_str(&format!(
            r#"{{"t_us":{t},"tid":1,"type":"span_exit","name":"{span}","dur_us":{scale_us}}}"#
        ));
        lines.push('\n');
    }
    lines.push_str(&format!(
        r#"{{"t_us":{t},"tid":1,"type":"counter","name":"rule.time_us:cpms-kx","delta":{scale_us}}}"#
    ));
    lines.push('\n');
    let path = tmp(name);
    std::fs::write(&path, lines).expect("fixture written");
    path
}

#[test]
fn diff_flags_a_30_percent_slowdown_and_exits_nonzero() {
    // Spans well above the 1ms noise floor; after is 30% slower.
    let before = write_fixture("slow_before.jsonl", 10_000);
    let after = write_fixture("slow_after.jsonl", 13_000);

    let out = tls_trace(&[
        "diff",
        before.to_str().unwrap(),
        after.to_str().unwrap(),
        "--threshold-pct",
        "20",
    ]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(1), "regression exits 1:\n{stdout}");
    assert!(stdout.contains("REGRESSION"), "rows are flagged:\n{stdout}");
    assert!(stdout.contains("FAIL"), "verdict line:\n{stdout}");
    // Both the span and the per-rule counter slowed down by 30%.
    assert!(stdout.contains("span:prover.obligation:base"), "{stdout}");
    assert!(stdout.contains("rule:cpms-kx"), "{stdout}");

    // The same pair is clean under a 50% threshold.
    let out = tls_trace(&[
        "diff",
        before.to_str().unwrap(),
        after.to_str().unwrap(),
        "--threshold-pct",
        "50",
    ]);
    assert_eq!(out.status.code(), Some(0), "30% < 50% threshold is clean");

    let _ = std::fs::remove_file(&before);
    let _ = std::fs::remove_file(&after);
}

#[test]
fn diff_of_a_run_against_itself_is_clean() {
    let run = write_fixture("self.jsonl", 10_000);
    let out = tls_trace(&["diff", run.to_str().unwrap(), run.to_str().unwrap()]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(0), "self-diff is clean:\n{stdout}");
    assert!(stdout.contains("OK"), "{stdout}");
    let _ = std::fs::remove_file(&run);
}

#[test]
fn summarize_renders_histogram_and_hot_rule_tables() {
    let run = write_fixture("summ.jsonl", 10_000);
    let out = tls_trace(&["summarize", run.to_str().unwrap()]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(0), "summarize succeeds:\n{stdout}");
    assert!(stdout.contains("span latency"), "{stdout}");
    assert!(stdout.contains("prover.obligation:base"), "{stdout}");
    assert!(stdout.contains("p99"), "{stdout}");
    assert!(stdout.contains("hot rules"), "{stdout}");
    assert!(stdout.contains("cpms-kx"), "{stdout}");
    let _ = std::fs::remove_file(&run);
}

#[test]
fn export_writes_chrome_trace_and_folded_stacks() {
    let run = write_fixture("export.jsonl", 10_000);
    let chrome = tmp("export_chrome.json");
    let folded = tmp("export.folded");

    let out = tls_trace(&[
        "export",
        run.to_str().unwrap(),
        "--chrome",
        chrome.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(0), "chrome export succeeds");
    let chrome_text = std::fs::read_to_string(&chrome).expect("chrome file exists");
    assert!(chrome_text.contains("\"traceEvents\""), "{chrome_text}");
    assert!(chrome_text.contains("\"ph\":\"B\""), "{chrome_text}");

    let out = tls_trace(&[
        "export",
        run.to_str().unwrap(),
        "--folded",
        folded.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(0), "folded export succeeds");
    let folded_text = std::fs::read_to_string(&folded).expect("folded file exists");
    assert!(
        folded_text.contains("prover.obligation:base 20000"),
        "{folded_text}"
    );

    for p in [&run, &chrome, &folded] {
        let _ = std::fs::remove_file(p);
    }
}

#[test]
fn usage_errors_exit_2() {
    for args in [
        &[][..],
        &["frobnicate"][..],
        &["summarize"][..],
        &["summarize", "/nonexistent/trace.jsonl"][..],
        &["diff", "only-one.jsonl"][..],
    ] {
        let out = tls_trace(args);
        assert_eq!(out.status.code(), Some(2), "args {args:?} exit 2");
    }
}
